/**
 * @file
 * The boot-prefix checkpoint cache of the art layer.
 *
 * The Fig 8 matrix re-boots the same guest hundreds of times with only
 * the measured phase differing. The run cache (PR 1) already dedupes
 * identical runs; this tier dedupes the *boot prefix* across runs that
 * differ in timing model or workload: a bootHash is derived from the
 * boot-relevant inputs only (kernel + disk + simulator artifacts,
 * num_cpus, mem_system, boot_type — not the CPU model, not the
 * workload), the first run of each bootHash boots once with the fast
 * CPU and checkpoints at the hack-back point, and every other run
 * restores that checkpoint and simulates only the measured phase under
 * its requested CPU model.
 *
 * Checkpoints live in three tiers:
 *   1. in-process: a CheckpointPtr whose pages forked systems share
 *      copy-on-write (N concurrent sweep variants, one boot image);
 *   2. database: a "checkpoints" collection doc keyed by bootHash,
 *      with the s5ckpt2 image content-addressed in the blob store;
 *   3. cold: boot once (single-flight per bootHash — concurrent
 *      workers wait for the first boot instead of racing their own).
 *
 * `G5ART_NO_CKPT` bypasses the tier entirely (mirrors G5ART_NO_CACHE).
 */

#ifndef G5_ART_CKPT_HH
#define G5_ART_CKPT_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "art/artifact.hh"
#include "base/json.hh"
#include "sim/fs/checkpoint.hh"

namespace g5::scheduler
{
class CancelToken;
} // namespace g5::scheduler

namespace g5::art
{

/**
 * The boot-prefix content key: MD5 over the boot-relevant artifact
 * hashes (gem5 binary, kernel, disk image) and params (num_cpus,
 * mem_system, boot_type). Runs differing only in cpu model, workload,
 * or tick limit share a bootHash — and therefore a boot.
 * @return "" when the inputs cannot key a boot (no kernel artifact).
 */
std::string computeBootHash(const Json &artifacts, const Json &params);

/** Everything obtain() needs to boot the prefix on a cold miss. */
struct BootSpec
{
    std::string simVersion;
    std::string linuxBinary; ///< host path of the kernel binary
    std::string diskImage;   ///< host path of the disk image ("" = none)
    unsigned numCpus = 1;
    std::string bootType = "init";
    Tick maxTicks = 2'000'000'000'000;
};

class BootCheckpoints
{
  public:
    /** The process-wide instance (checkpoints are shared across all
     *  sweep workers — that is the point). */
    static BootCheckpoints &instance();

    /** @return true when G5ART_NO_CKPT disables the checkpoint tier. */
    static bool bypassed();

    /**
     * Resolve @p boot_hash to a checkpoint: in-memory hit, database
     * hit (blob fetched and validated), or a single-flight fast-CPU
     * boot that persists its image for future processes. Counts
     * art.ckpt.hits / art.ckpt.misses (a miss == a boot performed).
     *
     * @return nullptr when the boot failed or produced no checkpoint —
     * callers fall back to a straight run; the failure is remembered
     * so one bad bootHash cannot trigger a boot per run.
     */
    sim::fs::CheckpointPtr obtain(ArtifactDb &adb,
                                  const std::string &boot_hash,
                                  const BootSpec &spec,
                                  scheduler::CancelToken *token = nullptr);

    /** Drop the in-memory tier (tests; the db tier is untouched). */
    void dropMemoryCache();

  private:
    struct Entry
    {
        std::mutex flight; ///< single-flight: held while resolving
        sim::fs::CheckpointPtr ckpt;
        bool resolved = false;
    };

    std::mutex mapMutex;
    std::map<std::string, std::shared_ptr<Entry>> entries;
};

} // namespace g5::art

#endif // G5_ART_CKPT_HH
