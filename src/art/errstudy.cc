#include "art/errstudy.hh"

#include <algorithm>
#include <map>

#include "art/sweep.hh"
#include "base/faultinject.hh"
#include "base/logging.hh"
#include "base/wallclock.hh"

namespace g5::art
{

namespace
{

/** Census classes in fixed order (deterministic totals object). */
const char *const censusClasses[] = {
    "crashed", "detected", "silent-corruption", "masked", "unverified",
};

} // anonymous namespace

ErrorStudy::ErrorStudy(ArtifactDb &adb, std::string study_name)
    : adb(adb), studyName(std::move(study_name))
{
    journal();
}

db::Collection &
ErrorStudy::journal() const
{
    return adb.db().collection("sweeps");
}

std::string
ErrorStudy::keyFor(const Gem5Run &run) const
{
    return studyName + "/" + run.inputHash();
}

std::string
ErrorStudy::classifyPair(const Json &main_doc, const Json &checker_doc)
{
    RunOutcome co = Gem5Run::classify(checker_doc);
    if (co != RunOutcome::Success)
        return "unverified"; // the clean replay itself failed
    RunOutcome mo = Gem5Run::classify(main_doc);
    if (mo != RunOutcome::Success)
        return "crashed";
    if (main_doc.getString("exitCause", "") !=
            checker_doc.getString("exitCause", "") ||
        main_doc.getInt("exitCode", 0) !=
            checker_doc.getInt("exitCode", 0))
        return "detected";
    if (main_doc.getString("archMd5", "") !=
        checker_doc.getString("archMd5", ""))
        return "silent-corruption";
    return "masked";
}

void
ErrorStudy::record(const Gem5Run &run, const Json &doc)
{
    bool terminal = SweepJournal::documentTerminal(doc);
    Json fields = Json::object();
    fields["status"] = std::string(terminal ? "DONE" : "PENDING");
    fields["outcome"] = runOutcomeName(Gem5Run::classify(doc));
    fields["runId"] = doc.getString("_id", "");
    fields["updatedAt"] = isoTimestamp();
    journal().updateOne(Json::object({{"_id", Json(keyFor(run))}}),
                        Json::object({{"$set", std::move(fields)}}));
    // Terminal progress is durable immediately: a crash after this
    // point never re-runs the pair member.
    if (terminal)
        adb.db().save();
}

Json
ErrorStudy::resolveDocument(const std::string &key) const
{
    Json entry = journal().findById(key);
    if (entry.isNull())
        return Json();
    std::string run_id = entry.getString("runId", "");
    if (run_id.empty())
        return Json();
    return adb.db().collection("runs").findById(run_id);
}

Json
ErrorStudy::run(Tasks &tasks, const std::vector<ErrorCell> &cells,
                const RunFactory &factory)
{
    // Compose both members of every pair up front, in a deterministic
    // order — the census walks the same vector later.
    std::vector<Pair> pairs;
    pairs.reserve(cells.size());
    for (const ErrorCell &cell : cells) {
        Json main_params =
            cell.params.isObject() ? cell.params : Json::object();
        main_params["err_inject"] = cell.flip;
        main_params["arch_digest"] = true;
        Json check_params =
            cell.params.isObject() ? cell.params : Json::object();
        check_params["arch_digest"] = true;
        std::string base =
            studyName + "/" + cell.workload + "/" + cell.flip;
        pairs.push_back({cell,
                         factory(base + "/main", main_params),
                         factory(base + "/check", check_params)});
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair &a, const Pair &b) {
                  if (a.cell.workload != b.cell.workload)
                      return a.cell.workload < b.cell.workload;
                  return a.cell.flip < b.cell.flip;
              });

    // Journal every pair member (resuming prior progress) and submit
    // the remainder: main runs as ordinary tasks, each checker as a
    // dependent task gated on its main. Checker runs shared between
    // cells (every flip of one workload replays the same clean
    // configuration) are journalled and submitted once.
    db::Collection &coll = journal();
    lastSkipped = 0;
    std::map<std::string, scheduler::TaskFuturePtr> inflight;
    ErrorStudy *self = this;
    tasks.setOnComplete([self](const Gem5Run &run, const Json &doc) {
        self->record(run, doc);
    });

    auto submitMember = [&](const Gem5Run &run,
                            scheduler::TaskFuturePtr after)
        -> scheduler::TaskFuturePtr {
        // Injectable crash mid-launch (G5_FAULT=errstudy.submit): the
        // kill-and-resume tests interrupt a study between journal
        // writes here.
        fault::checkpoint("errstudy.submit");
        std::string key = keyFor(run);
        auto it = inflight.find(key);
        if (it != inflight.end())
            return it->second; // shared checker, already submitted
        Json entry = coll.findById(key);
        if (!entry.isNull() &&
            entry.getString("status", "") == "DONE") {
            ++lastSkipped;
            return nullptr; // prior process finished this member
        }
        Json fields = Json::object();
        fields["sweep"] = studyName;
        fields["inputHash"] = run.inputHash();
        fields["runName"] = run.name();
        fields["status"] = std::string("PENDING");
        fields["outcome"] = runOutcomeName(RunOutcome::Pending);
        fields["updatedAt"] = isoTimestamp();
        if (entry.isNull()) {
            fields["_id"] = key;
            coll.insertOne(std::move(fields));
        } else {
            coll.updateOne(
                Json::object({{"_id", Json(key)}}),
                Json::object({{"$set", std::move(fields)}}));
        }
        scheduler::TaskFuturePtr fut =
            after ? tasks.applyAsyncAfter(run, std::move(after))
                  : tasks.applyAsync(run);
        inflight[key] = fut;
        return fut;
    };

    for (const Pair &pair : pairs) {
        scheduler::TaskFuturePtr main_fut =
            submitMember(pair.main, nullptr);
        // A skipped main (null future) degrades the checker to an
        // ordinary submission — its dependency is already data.
        submitMember(pair.checker, main_fut);
    }
    // Persist the launch plan before waiting, so a crash mid-study
    // finds every un-started member still journalled.
    adb.db().save();
    tasks.waitAll();

    // Classify every pair from the archived documents (submitted this
    // process or resumed from a previous one — the journal's runId
    // points at the terminal document either way).
    Json cells_out = Json::array();
    std::map<std::string, std::int64_t> totals;
    for (const char *cls : censusClasses)
        totals[cls] = 0;
    for (const Pair &pair : pairs) {
        Json main_doc = resolveDocument(keyFor(pair.main));
        Json check_doc = resolveDocument(keyFor(pair.checker));
        std::string cls = classifyPair(main_doc, check_doc);
        ++totals[cls];
        Json cell = Json::object();
        cell["workload"] = pair.cell.workload;
        cell["flip"] = pair.cell.flip;
        cell["class"] = cls;
        cell["mainOutcome"] =
            runOutcomeName(Gem5Run::classify(main_doc));
        cell["checkerOutcome"] =
            runOutcomeName(Gem5Run::classify(check_doc));
        cell["mainArchMd5"] = main_doc.getString("archMd5", "");
        cell["checkerArchMd5"] = check_doc.getString("archMd5", "");
        cells_out.push(std::move(cell));
    }
    Json totals_out = Json::object();
    for (const char *cls : censusClasses)
        totals_out[cls] = totals[cls];

    Json census = Json::object();
    census["study"] = studyName;
    census["pairs"] = std::int64_t(pairs.size());
    census["cells"] = std::move(cells_out);
    census["totals"] = std::move(totals_out);

    // Archive like a finished sweep: its own collection, keyed by
    // study name, saved durably. The census field carries no
    // timestamps — byte-identity across re-runs is an acceptance
    // criterion — so updatedAt lives beside it, not inside.
    db::Collection &studies = adb.db().collection("errorStudies");
    Json fields = Json::object();
    fields["study"] = studyName;
    fields["census"] = census;
    fields["updatedAt"] = isoTimestamp();
    if (studies.findById(studyName).isNull()) {
        fields["_id"] = studyName;
        studies.insertOne(std::move(fields));
    } else {
        studies.updateOne(
            Json::object({{"_id", Json(studyName)}}),
            Json::object({{"$set", std::move(fields)}}));
    }
    adb.db().save();
    return census;
}

} // namespace g5::art
