/**
 * @file
 * Error-injection coverage study — the "Fig 10" census.
 *
 * An ErrorStudy pairs every injected run (a cell: workload × flip
 * target) with a checker replay — the identical configuration with the
 * flip removed — and classifies each pair by comparing the two runs'
 * terminal documents:
 *
 *  - crashed            the injected run did not reach a clean exit
 *                       (panic, sim crash, deadlock, tick limit);
 *  - detected           both runs finished but the guest-visible
 *                       outcome differs (exit cause or exit code) —
 *                       the workload noticed;
 *  - silent-corruption  same visible outcome, different architectural
 *                       digest (archMd5) — the flip survived to the
 *                       end undetected;
 *  - masked             same outcome and same digest — the flip was
 *                       overwritten or never observed;
 *  - unverified         the checker itself failed, so the pair cannot
 *                       be classified (host trouble, not data).
 *
 * The checker shares the main run's System RNG seed (error-injection
 * parameters are deliberately excluded from FsConfig::signature()), so
 * the only divergence between the two runs is the flip itself — which
 * is what makes "masked" a meaningful class.
 *
 * Pairs are submitted as dependent tasks (the checker through
 * Tasks::applyAsyncAfter) and journalled in the "sweeps" collection
 * with SweepJournal's content-addressed keys, so a killed study
 * resumes: already-terminal runs are skipped and the census is rebuilt
 * from their archived documents. Checker runs shared between cells
 * (every flip of one workload replays the same clean run) are
 * submitted once.
 *
 * The census is deterministic — cells sorted by (workload, flip),
 * totals accumulated in class order — so re-running the study with the
 * same seed, a different CPU model pair, or G5_WORKERS distribution
 * must produce a byte-identical document. It is archived in the
 * "errorStudies" collection keyed by study name.
 */

#ifndef G5_ART_ERRSTUDY_HH
#define G5_ART_ERRSTUDY_HH

#include <functional>
#include <string>
#include <vector>

#include "art/run.hh"
#include "art/tasks.hh"

namespace g5::art
{

/** One cell of the study: a workload and one flip to inject into it. */
struct ErrorCell
{
    /** Display label of the workload (census row). */
    std::string workload;

    /** Error-injection spec ("reg:<bit>[:<atInst>[:<seed>]]" | mem:…). */
    std::string flip;

    /**
     * Base run parameters — without err_inject/arch_digest, which the
     * study adds itself (the flip for the main run, the digest for
     * both).
     */
    Json params;
};

class ErrorStudy
{
  public:
    /**
     * Build the Gem5Run for one study member: the study owns the
     * parameter composition, the caller owns everything artifact-
     * related (binaries, disk images, output directories).
     */
    using RunFactory =
        std::function<Gem5Run(const std::string &name,
                              const Json &params)>;

    /** Attach to (or create) the study @p study_name in @p adb. */
    ErrorStudy(ArtifactDb &adb, std::string study_name);

    /**
     * Execute the study: journal + submit every pair (resuming prior
     * progress), wait for completion, classify, archive and return the
     * census document.
     */
    Json run(Tasks &tasks, const std::vector<ErrorCell> &cells,
             const RunFactory &factory);

    /** Runs skipped as already-terminal by the last run(). */
    std::size_t skipped() const { return lastSkipped; }

    /** The journal document key for @p run (stable across processes). */
    std::string keyFor(const Gem5Run &run) const;

    /**
     * Classify one (main, checker) pair of terminal run documents into
     * a census class name (see the file comment).
     */
    static std::string classifyPair(const Json &main_doc,
                                    const Json &checker_doc);

    const std::string &name() const { return studyName; }

  private:
    struct Pair
    {
        ErrorCell cell;
        Gem5Run main;
        Gem5Run checker;
    };

    /** Per-attempt Tasks hook: update the entry, persist if terminal. */
    void record(const Gem5Run &run, const Json &doc);

    /** Journal entry → archived run document ("" id → null). */
    Json resolveDocument(const std::string &key) const;

    db::Collection &journal() const;

    ArtifactDb &adb;
    std::string studyName;
    std::size_t lastSkipped = 0;
};

} // namespace g5::art

#endif // G5_ART_ERRSTUDY_HH
