/**
 * @file
 * The artifact layer of g5art — the C++ counterpart of the paper's
 * gem5art-artifact package (Section IV-B).
 *
 * An Artifact documents one component of an experiment: a simulator
 * binary, a kernel, a disk image, a source repository, a run script.
 * Registration records the user-supplied attributes (command, type,
 * name, cwd, path, inputs, documentation) and generates the rest:
 *
 *  - hash: MD5 of the file at `path`, or the revision hash for git
 *    repositories;
 *  - id:   a UUID;
 *  - git:  {url, hash} when the artifact is a repository.
 *
 * The database enforces hash uniqueness: re-registering identical
 * content returns the existing artifact; registering different content
 * under an existing hash is impossible by construction. The artifact's
 * backing file is uploaded to the blob store unless already present.
 */

#ifndef G5_ART_ARTIFACT_HH
#define G5_ART_ARTIFACT_HH

#include <memory>
#include <string>
#include <vector>

#include "base/json.hh"
#include "db/database.hh"

namespace g5::art
{

/** A connection to the artifact database (gem5art's getDBConnection). */
class ArtifactDb
{
  public:
    /** Wrap a database; creates the collections + unique hash index. */
    explicit ArtifactDb(std::shared_ptr<db::Database> database);

    db::Database &db() { return *database; }

    /** The "artifacts" collection. */
    db::Collection &artifacts();

    /** The "runs" collection. */
    db::Collection &runs();

    /** The "checkpoints" collection (boot-prefix cache, keyed by
     *  bootHash; images live in the blob store). */
    db::Collection &checkpoints();

    /** Store file bytes in the blob store; @return the MD5 key. */
    std::string putBlob(const std::string &bytes);

    /** Download an artifact's file to @p host_path by its hash. */
    void downloadFile(const std::string &hash,
                      const std::string &host_path);

    // --- gem5art-style artifact queries ---

    /** All artifacts with this exact name. */
    std::vector<Json> searchByName(const std::string &name);

    /** All artifacts of this type ("gem5 binary", "disk image", ...). */
    std::vector<Json> searchByType(const std::string &typ);

    /** Artifacts whose name contains @p fragment, of @p typ. */
    std::vector<Json> searchByLikeNameType(const std::string &fragment,
                                           const std::string &typ);

    /**
     * Runs whose recorded inputs include the artifact with @p hash —
     * the provenance question gem5art exists to answer.
     */
    std::vector<Json> runsUsingArtifact(const std::string &hash);

    std::shared_ptr<db::Database> database;
};

class Artifact
{
  public:
    /** The user-supplied attributes of Fig 3. */
    struct Params
    {
        /** Command that creates the resource (documentation). */
        std::string command;
        /** Artifact type, e.g. "gem5 binary", "disk image". */
        std::string typ;
        std::string name;
        /** Directory the command runs in. */
        std::string cwd;
        /** Host path of the artifact's file ("" for repositories). */
        std::string path;
        /** Hashes of input artifacts (dependency DAG). */
        std::vector<std::string> inputs;
        std::string documentation;
        /** For repositories: the git URL and revision. */
        std::string gitUrl;
        std::string gitHash;
    };

    /**
     * Register an artifact (Fig 3's Artifact.registerArtifact).
     *
     * Content identity: when an artifact with the same hash already
     * exists, the stored artifact is returned (a warn is emitted if
     * the attributes differ). Otherwise the document is inserted and
     * the backing file uploaded.
     */
    static Artifact registerArtifact(ArtifactDb &adb,
                                     const Params &params);

    /** Load an artifact by hash; throws FatalError when unknown. */
    static Artifact fromHash(ArtifactDb &adb, const std::string &hash);

    const std::string &id() const { return idStr; }
    const std::string &hash() const { return hashStr; }
    const std::string &name() const { return nameStr; }
    const std::string &typ() const { return typStr; }
    const std::string &path() const { return pathStr; }

    /** The full database document. */
    const Json &document() const { return doc; }

    /** Hashes of this artifact's inputs. */
    std::vector<std::string> inputHashes() const;

  private:
    Artifact() = default;

    /** Materialize an Artifact from its stored database document. */
    static Artifact fromDoc(Json doc);

    std::string idStr;
    std::string hashStr;
    std::string nameStr;
    std::string typStr;
    std::string pathStr;
    Json doc;
};

} // namespace g5::art

#endif // G5_ART_ARTIFACT_HH
