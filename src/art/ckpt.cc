#include "art/ckpt.hh"

#include <cstdlib>
#include <optional>

#include "base/logging.hh"
#include "base/md5.hh"
#include "base/metrics.hh"
#include "base/tracing.hh"
#include "base/wallclock.hh"
#include "scheduler/task_queue.hh"
#include "sim/fs/fs_system.hh"

namespace g5::art
{

using sim::fs::Checkpoint;
using sim::fs::CheckpointPtr;

std::string
computeBootHash(const Json &artifacts, const Json &params)
{
    if (!artifacts.isObject())
        return "";
    const Json *kernel = artifacts.find("linuxBinary");
    if (!kernel || !kernel->isString())
        return "";

    // Mirrors computeInputHash's shape, restricted to the inputs the
    // boot prefix actually depends on. The cpu model, workload, and
    // tick limit are deliberately absent: runs differing only in those
    // share the boot.
    Json key = Json::object();
    Json arts = Json::object();
    for (const char *name : {"gem5", "linuxBinary", "diskImage"})
        if (const Json *a = artifacts.find(name))
            arts[name] = *a;
    key["artifacts"] = std::move(arts);
    Json p = Json::object();
    p["num_cpus"] = params.getInt("num_cpus", 1);
    p["mem_system"] = params.getString("mem_system", "classic");
    p["boot_type"] = params.getString("boot_type", "init");
    key["params"] = std::move(p);
    key["type"] = "bootPrefix";

    Md5Stream h;
    h.update(key);
    return h.final();
}

BootCheckpoints &
BootCheckpoints::instance()
{
    static BootCheckpoints inst;
    return inst;
}

bool
BootCheckpoints::bypassed()
{
    const char *v = std::getenv("G5ART_NO_CKPT");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

void
BootCheckpoints::dropMemoryCache()
{
    std::lock_guard<std::mutex> lock(mapMutex);
    entries.clear();
}

sim::fs::CheckpointPtr
BootCheckpoints::obtain(ArtifactDb &adb, const std::string &boot_hash,
                        const BootSpec &spec,
                        scheduler::CancelToken *token)
{
    if (bypassed() || boot_hash.empty())
        return nullptr;

    static metrics::Counter &hits = metrics::counter("art.ckpt.hits");
    static metrics::Counter &misses =
        metrics::counter("art.ckpt.misses");

    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mapMutex);
        auto &slot = entries[boot_hash];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    // Single flight: the first caller resolves (db probe or boot);
    // concurrent callers for the same bootHash block here and then
    // share the resolved checkpoint's pages copy-on-write.
    std::lock_guard<std::mutex> flight(entry->flight);
    if (entry->resolved) {
        if (entry->ckpt) {
            hits.inc();
            if (tracing::enabled())
                tracing::instant("ckpt:hit", "ckpt",
                                 Json::object({{"bootHash",
                                                Json(boot_hash)}}));
        }
        return entry->ckpt;
    }
    entry->resolved = true;

    // --- tier 2: the database's checkpoints collection ---
    Json doc = adb.checkpoints().findOne(
        Json::object({{"bootHash", Json(boot_hash)}}));
    if (doc.isObject() && doc.contains("blob")) {
        try {
            std::optional<tracing::Span> span;
            if (tracing::enabled()) {
                span.emplace("ckpt:load", "ckpt");
                span->arg("bootHash", Json(boot_hash));
            }
            std::string bytes =
                adb.db().getBlob(doc.getString("blob"));
            entry->ckpt = Checkpoint::deserialize(bytes);
            hits.inc();
            return entry->ckpt;
        } catch (const std::exception &) {
            // Missing or corrupt image: fall through and re-boot; the
            // fresh image repairs the collection entry below.
        }
    }

    // --- tier 3: boot once with the fast CPU ---
    misses.inc();
    try {
        std::optional<tracing::Span> span;
        if (tracing::enabled()) {
            span.emplace("ckpt:boot", "ckpt");
            span->arg("bootHash", Json(boot_hash));
        }

        sim::fs::FsConfig cfg;
        cfg.cpuType = sim::CpuType::Fast;
        cfg.numCpus = spec.numCpus;
        // The fast CPU requires the classic memory system; the
        // checkpoint holds functional state, so restoring onto the
        // requested memory system is sound (its caches start cold).
        cfg.memSystem = "classic";
        sim::fs::KernelSpec kernel =
            sim::fs::KernelSpec::load(spec.linuxBinary);
        cfg.kernelVersion = kernel.version;
        if (!spec.diskImage.empty())
            cfg.disk = sim::fs::DiskImage::load(spec.diskImage);
        cfg.bootType = sim::fs::bootTypeFromName(spec.bootType);
        cfg.checkpointAfterBoot = true;
        // Leave no guest-visible trace: no hack-back console markers,
        // and the one extra instruction (the m5 checkpoint op itself)
        // is deducted below. A restored run's console and instruction
        // census are then byte-identical to a straight run's.
        cfg.quietCheckpoint = true;
        cfg.simVersion = spec.simVersion;

        sim::fs::FsSystem system(cfg);
        sim::fs::SimResult boot =
            system.run(spec.maxTicks, token);
        if (boot.exitCause != "checkpoint")
            return nullptr; // never reached the hack-back point

        auto taken = system.takeCheckpoint();
        auto adjusted = std::make_shared<Checkpoint>(*taken);
        if (adjusted->cpuState.isArray() &&
            !adjusted->cpuState.asArray().empty()) {
            Json &boot_cpu = adjusted->cpuState.asArray().front();
            boot_cpu["insts"] =
                std::int64_t(boot_cpu.getInt("insts", 1) - 1);
        }
        CheckpointPtr ckpt = std::move(adjusted);

        // Persist for future processes: content-addressed image in the
        // blob store, a small doc keyed by bootHash alongside.
        double save_start = monotonicSeconds();
        std::string hex_md5;
        std::string image = ckpt->serialize(&hex_md5);
        std::string blob_key = adb.putBlob(image);
        metrics::counter("sim.ckpt.bytes")
            .inc(std::int64_t(image.size()));
        metrics::histogram("sim.ckpt.saveSeconds")
            .observe(monotonicSeconds() - save_start);
        if (span) {
            span->arg("bytes", Json(std::int64_t(image.size())));
            span->arg("ckptHash", Json(hex_md5));
        }

        Json fields = Json::object();
        fields["bootHash"] = boot_hash;
        fields["format"] = "s5ckpt2";
        fields["blob"] = blob_key;
        fields["ckptHash"] = hex_md5;
        fields["bytes"] = std::int64_t(image.size());
        fields["simTicks"] = ckpt->simTicks;
        fields["configSignature"] = ckpt->configSignature;
        fields["createdAt"] = isoTimestamp();
        if (doc.isObject()) {
            adb.checkpoints().updateOne(
                Json::object({{"bootHash", Json(boot_hash)}}),
                Json::object({{"$set", fields}}));
        } else {
            fields["_id"] = boot_hash;
            adb.checkpoints().insertOne(std::move(fields));
        }

        entry->ckpt = ckpt;
        return ckpt;
    } catch (const std::exception &) {
        // Boot failed (unsupported config, timeout, fault injection):
        // remember the failure so every later run with this bootHash
        // skips the tier instead of re-paying a doomed boot, and let
        // the caller fall back to a straight run, whose own error
        // handling records the outcome.
        return nullptr;
    }
}

} // namespace g5::art
