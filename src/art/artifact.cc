#include "art/artifact.hh"

#include "base/logging.hh"
#include "base/md5.hh"
#include "base/uuid.hh"
#include "base/wallclock.hh"

namespace g5::art
{

ArtifactDb::ArtifactDb(std::shared_ptr<db::Database> database)
    : database(std::move(database))
{
    artifacts().createUniqueIndex("hash");
    // Secondary indexes for the hot equality lookups: artifact searches
    // by name/type, run collation by name, and the run-result cache's
    // content-addressed probe.
    artifacts().createIndex("name");
    artifacts().createIndex("type");
    runs().createIndex("name");
    runs().createIndex("inputHash");
    checkpoints().createUniqueIndex("bootHash");
}

db::Collection &
ArtifactDb::artifacts()
{
    return database->collection("artifacts");
}

db::Collection &
ArtifactDb::runs()
{
    return database->collection("runs");
}

db::Collection &
ArtifactDb::checkpoints()
{
    return database->collection("checkpoints");
}

std::string
ArtifactDb::putBlob(const std::string &bytes)
{
    return database->putBlob(bytes);
}

void
ArtifactDb::downloadFile(const std::string &hash,
                         const std::string &host_path)
{
    database->exportBlob(hash, host_path);
}

std::vector<Json>
ArtifactDb::searchByName(const std::string &name)
{
    return artifacts().find(Json::object({{"name", Json(name)}}));
}

std::vector<Json>
ArtifactDb::searchByType(const std::string &typ)
{
    return artifacts().find(Json::object({{"type", Json(typ)}}));
}

std::vector<Json>
ArtifactDb::searchByLikeNameType(const std::string &fragment,
                                 const std::string &typ)
{
    std::vector<Json> out;
    for (const auto &doc : searchByType(typ))
        if (doc.getString("name").find(fragment) != std::string::npos)
            out.push_back(doc);
    return out;
}

std::vector<Json>
ArtifactDb::runsUsingArtifact(const std::string &hash)
{
    std::vector<Json> out;
    runs().forEach([&](const Json &doc) {
        if (!doc.contains("artifacts"))
            return;
        for (const auto &kv : doc.at("artifacts").asObject()) {
            if (kv.second.isString() && kv.second.asString() == hash) {
                out.push_back(doc);
                return;
            }
        }
    });
    return out;
}

Artifact
Artifact::fromDoc(Json existing)
{
    Artifact a;
    a.idStr = existing.getString("_id");
    a.hashStr = existing.getString("hash");
    a.nameStr = existing.getString("name");
    a.typStr = existing.getString("type");
    a.pathStr = existing.getString("path");
    a.doc = std::move(existing);
    return a;
}

Artifact
Artifact::registerArtifact(ArtifactDb &adb, const Params &params)
{
    if (params.name.empty())
        fatal("Artifact: 'name' is required");
    if (params.typ.empty())
        fatal("Artifact: 'typ' is required");

    bool is_repo = !params.gitHash.empty();
    if (params.path.empty() && !is_repo)
        fatal("Artifact '" + params.name +
              "': need either a file path or a git revision");

    // Content identity: the file's MD5 (hashed in fixed-size chunks —
    // a multi-GB disk image is never slurped into memory), or the git
    // revision for repos.
    std::string hash =
        is_repo ? params.gitHash : Md5::hashFile(params.path);

    // Deduplicate on hash (the database also enforces this).
    Json existing = adb.artifacts().findOne(
        Json::object({{"hash", Json(hash)}}));
    if (!existing.isNull()) {
        if (existing.getString("name") != params.name ||
            existing.getString("type") != params.typ) {
            warn("Artifact '" + params.name + "': content hash " + hash +
                 " is already registered as '" +
                 existing.getString("name") +
                 "'; returning the stored artifact");
        }
        return fromDoc(std::move(existing));
    }

    Json doc = Json::object();
    doc["_id"] = Uuid::generate().str();
    doc["hash"] = hash;
    doc["name"] = params.name;
    doc["type"] = params.typ;
    doc["command"] = params.command;
    doc["cwd"] = params.cwd;
    doc["path"] = params.path;
    doc["documentation"] = params.documentation;
    doc["registeredAt"] = isoTimestamp();
    Json inputs = Json::array();
    for (const auto &h : params.inputs)
        inputs.push(h);
    doc["inputs"] = std::move(inputs);
    Json git = Json::object();
    if (is_repo) {
        git["url"] = params.gitUrl;
        git["hash"] = params.gitHash;
    }
    doc["git"] = std::move(git);

    // Upload the backing file unless the blob already exists. putFile
    // hashes and copies in fixed-size chunks (streaming).
    if (!is_repo && !adb.database->hasBlob(hash)) {
        std::string key = adb.database->putFile(params.path);
        if (key != hash)
            panic("Artifact: blob key does not match content hash");
    }

    try {
        adb.artifacts().insertOne(doc);
    } catch (const db::DuplicateKeyError &) {
        // Another worker registered the same content between our probe
        // and the insert; the unique hash index picked the winner.
        Json winner = adb.artifacts().findOne(
            Json::object({{"hash", Json(hash)}}));
        if (winner.isNull())
            panic("Artifact: duplicate hash with no stored document");
        return fromDoc(std::move(winner));
    }

    Artifact a;
    a.doc = std::move(doc);
    a.idStr = a.doc.getString("_id");
    a.hashStr = hash;
    a.nameStr = params.name;
    a.typStr = params.typ;
    a.pathStr = params.path;
    return a;
}

Artifact
Artifact::fromHash(ArtifactDb &adb, const std::string &hash)
{
    Json doc =
        adb.artifacts().findOne(Json::object({{"hash", Json(hash)}}));
    if (doc.isNull())
        fatal("Artifact: no artifact with hash '" + hash + "'");
    return fromDoc(std::move(doc));
}

std::vector<std::string>
Artifact::inputHashes() const
{
    std::vector<std::string> out;
    if (doc.contains("inputs"))
        for (const auto &h : doc.at("inputs").asArray())
            out.push_back(h.asString());
    return out;
}

} // namespace g5::art
