/**
 * @file
 * Workspace — the experiment-side conveniences a gem5art launch script
 * normally assembles by hand: a directory holding the "compiled"
 * simulator binary, kernel binaries, disk images and run scripts, with
 * each materialized file registered as an artifact (including its
 * source-repository artifact, mirroring Fig 5's artifact block).
 *
 * Benches, examples, and tests build their cross-product studies on
 * top of this so the launch code stays as small as the paper's Fig 5.
 */

#ifndef G5_ART_WORKSPACE_HH
#define G5_ART_WORKSPACE_HH

#include <memory>
#include <string>

#include "art/artifact.hh"
#include "sim/fs/disk_image.hh"

namespace g5::art
{

class Workspace
{
  public:
    /** A materialized file plus its artifacts. */
    struct Item
    {
        std::string path;       ///< host path of the file
        Artifact artifact;      ///< the file artifact
        Artifact repoArtifact;  ///< its source repository artifact
    };

    /**
     * @param root  directory to materialize into (created; a unique
     *              subdirectory is used per Workspace).
     * @param db_dir on-disk database directory; "" = in-memory.
     */
    explicit Workspace(const std::string &root,
                       const std::string &db_dir = "");

    ArtifactDb &adb() { return *artifactDb; }

    /** The gem5 source repository artifact (shared by binaries). */
    Artifact gem5Repo();

    /**
     * "Build" the simulator binary: write the build descriptor file
     * (version + static configuration) and register it.
     */
    Item gem5Binary(const std::string &version = "20.1.0.4",
                    const std::string &static_config = "X86");

    /** "Compile" a kernel: write the vmlinux file and register it. */
    Item kernel(const std::string &version);

    /** Write a disk image built elsewhere and register it. */
    Item disk(const std::string &name,
              const sim::fs::DiskImagePtr &image,
              const std::string &source_repo_name = "gem5-resources");

    /** Register a run script (configuration file) artifact. */
    Item runScript(const std::string &name,
                   const std::string &description);

    /** A per-run output directory under the workspace. */
    std::string outdir(const std::string &run_name) const;

    /** The workspace root directory. */
    const std::string &root() const { return rootDir; }

  private:
    Artifact repoArtifact(const std::string &name,
                          const std::string &url,
                          const std::string &revision);

    std::string rootDir;
    std::shared_ptr<db::Database> database;
    std::unique_ptr<ArtifactDb> artifactDb;
};

} // namespace g5::art

#endif // G5_ART_WORKSPACE_HH
