#include "art/tasks.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/wallclock.hh"
#include "scheduler/worker_pool.hh"

namespace g5::art
{

namespace
{

std::string
readSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("worker: cannot read run spec '" +
                                 path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Build the process worker pool the environment asks for (G5_WORKERS),
 * or nullptr to stay in-process. Must run before the TaskQueue spawns
 * its threads: the pool forks, and the job registry crosses into the
 * children as a fork-time snapshot.
 */
std::shared_ptr<scheduler::WorkerPool>
makeWorkerPool(scheduler::TaskQueue::Backend backend)
{
    if (backend == scheduler::TaskQueue::Backend::Inline)
        return nullptr;
    unsigned n = scheduler::WorkerPool::envWorkerCount();
    if (n == 0)
        return nullptr;
    if (!scheduler::workerJobRegistered("art.run"))
        scheduler::registerWorkerJob(
            "art.run",
            [](const Json &req, scheduler::CancelToken &token) {
                // Blob-ref handout: on-disk databases ship the spec as
                // a content-addressed file the worker reads directly;
                // in-memory databases inline it (a post-fork memBlob is
                // invisible to the child).
                Json spec =
                    req.contains("spec")
                        ? req.at("spec")
                        : Json::parse(
                              readSpecFile(req.getString("specPath")));
                return Gem5Run::simulateWire(spec, &token);
            });
    auto pool = std::make_shared<scheduler::WorkerPool>(n);
    if (!pool->available()) {
        warn("tasks: G5_WORKERS requested " + std::to_string(n) +
             " worker processes but none could be spawned; "
             "running in-process");
        return nullptr;
    }
    inform("tasks: distributed execution across " +
           std::to_string(pool->workerCount()) +
           " worker processes (lease " +
           std::to_string(pool->leaseSeconds()) + " s)");
    return pool;
}

/**
 * One attempt of @p run in a worker process: cache probe, blob-ref
 * handout, leased dispatch, parent-side commit. WorkerPoolUnavailable
 * propagates (the caller falls back to the in-process path); a lost
 * worker is archived as a transient attempt and re-raised for the
 * RetryPolicy.
 */
Json
runDistributed(Gem5Run &run, ArtifactDb &adb,
               scheduler::WorkerPool &pool, bool cached,
               const scheduler::RetryPolicy &policy,
               const Tasks::RunHook &hook, scheduler::CancelToken &token)
{
    double start = monotonicSeconds();
    if (cached && !Gem5Run::cacheBypassed() &&
        !run.inputHash().empty()) {
        if (std::optional<Json> hit = run.tryServeFromCache(adb)) {
            if (hook)
                hook(run, *hit);
            return *hit;
        }
    }
    run.markRunning(adb);

    Json spec = run.wireSpec();
    Json req = Json::object();
    std::string key = adb.putBlob(spec.dump());
    std::string path = adb.db().blobPath(key);
    if (!path.empty()) {
        req["specBlob"] = key;
        req["specPath"] = path;
    } else {
        req["spec"] = spec;
    }

    Json wire;
    try {
        wire = pool.execute("art.run", req, &token);
    } catch (const scheduler::WorkerPoolUnavailable &) {
        throw; // caller degrades to the in-process path
    } catch (const scheduler::WorkerLost &e) {
        // The crash-tolerance headline: the loss is host trouble, not
        // a property of the configuration. Archive it in the attempts
        // provenance and let the RetryPolicy re-run the lease.
        bool final = token.attempt() >= policy.maxAttempts;
        Json doc = run.recordWorkerLoss(adb, e.what(), final, start);
        if (hook)
            hook(run, doc);
        if (final)
            return doc; // out of attempts: the failure is data
        throw TransientRunError(
            "worker lost running '" + run.name() + "' (attempt " +
                std::to_string(token.attempt()) + "): " + e.what(),
            doc);
    } catch (const scheduler::TaskTimeout &) {
        // Our own deadline expired while the worker held the lease
        // (the pool fenced it first). Terminalize like execute() does:
        // a timed-out run is never left RUNNING.
        Json to = Json::object();
        to["outcome"] = runOutcomeName(RunOutcome::Timeout);
        to["status"] = "TIMEOUT";
        to["error"] = "job exceeded its timeout and was terminated";
        to["schedulerTimeout"] = true;
        try {
            run.commitWire(adb, to, start);
        } catch (const scheduler::TaskTimeout &) {
            // commitWire re-raises by contract; the document is final.
        }
        if (hook)
            hook(run, run.document(adb));
        throw;
    } catch (const std::exception &e) {
        // Harness-level trouble (unreadable spec, unknown job kind):
        // terminal failure, never a stuck document.
        Json w = Json::object();
        w["outcome"] = runOutcomeName(RunOutcome::Failure);
        w["status"] = "FAILURE";
        w["error"] = std::string(e.what());
        Json doc = run.commitWire(adb, w, start);
        if (hook)
            hook(run, doc);
        return doc;
    }

    Json doc;
    try {
        doc = run.commitWire(adb, wire, start);
    } catch (const scheduler::TaskTimeout &) {
        // Worker-side timeout: terminal Timeout doc already written.
        if (hook)
            hook(run, run.document(adb));
        throw;
    }
    if (hook)
        hook(run, doc);
    RunOutcome outcome = Gem5Run::classify(doc);
    if (outcome == RunOutcome::SimCrash &&
        Gem5Run::outcomeTransient(outcome) &&
        token.attempt() < policy.maxAttempts) {
        throw TransientRunError(
            "transient " + std::string(runOutcomeName(outcome)) +
                " in run '" + run.name() + "' (attempt " +
                std::to_string(token.attempt()) + ")",
            doc);
    }
    return doc;
}

} // anonymous namespace

Tasks::Tasks(ArtifactDb &adb, unsigned workers, Backend backend,
             bool use_cache)
    : adb(adb), procPool(makeWorkerPool(backend)),
      queue(backend == Backend::Inline ? 0 : workers, backend),
      useCache(use_cache)
{
    if (procPool)
        queue.attachWorkerPool(procPool);
}

scheduler::TaskFn
Tasks::taskFor(Gem5Run run)
{
    ArtifactDb *adbp = &adb;
    bool cached = useCache;
    scheduler::RetryPolicy policy = retryPolicy;
    RunHook hook = onComplete;
    std::shared_ptr<scheduler::WorkerPool> pool = procPool;
    return [run, adbp, cached, policy, hook,
            pool](scheduler::CancelToken &token) mutable -> Json {
        if (pool && pool->available() && run.wireEligible()) {
            try {
                return runDistributed(run, *adbp, *pool, cached, policy,
                                      hook, token);
            } catch (const scheduler::WorkerPoolUnavailable &e) {
                warn("tasks: worker pool unavailable (" +
                     std::string(e.what()) + "); running '" +
                     run.name() + "' in-process");
                // fall through to the in-process path
            }
        }
        Json doc;
        try {
            doc = cached ? run.executeCached(*adbp, &token)
                         : run.execute(*adbp, &token);
        } catch (const scheduler::TaskTimeout &) {
            // The run layer already recorded a terminal Timeout
            // document; surface it to the hook, then let the scheduler
            // classify the timeout (retried only if retryTimeouts).
            if (hook)
                hook(run, run.document(*adbp));
            throw;
        }
        if (hook)
            hook(run, doc);
        // Fresh transient outcomes become scheduler-visible failures so
        // the RetryPolicy can re-run them. Cached documents are served
        // data — a crash recorded in a *previous* process is a result,
        // not a fault to retry. The last allowed attempt returns the
        // document as-is: failed runs are data.
        RunOutcome outcome = Gem5Run::classify(doc);
        bool fresh = !doc.getBool("cached", false);
        if (fresh && outcome == RunOutcome::SimCrash &&
            Gem5Run::outcomeTransient(outcome) &&
            token.attempt() < policy.maxAttempts) {
            throw TransientRunError(
                "transient " + std::string(runOutcomeName(outcome)) +
                    " in run '" + run.name() + "' (attempt " +
                    std::to_string(token.attempt()) + ")",
                doc);
        }
        return doc;
    };
}

scheduler::TaskFuturePtr
Tasks::applyAsync(Gem5Run run)
{
    double timeout = run.timeoutSeconds();
    std::string name = run.name();
    return queue.applyAsync(name, taskFor(std::move(run)), timeout,
                            retryPolicy);
}

scheduler::TaskFuturePtr
Tasks::applyAsyncAfter(Gem5Run run, scheduler::TaskFuturePtr after)
{
    double timeout = run.timeoutSeconds();
    std::string name = run.name();
    return queue.applyAsyncAfter(name, taskFor(std::move(run)),
                                 std::move(after), timeout,
                                 retryPolicy);
}

std::vector<scheduler::TaskFuturePtr>
Tasks::applyAsyncBatch(std::vector<Gem5Run> runs)
{
    std::vector<scheduler::TaskSpec> specs;
    specs.reserve(runs.size());
    for (auto &run : runs) {
        scheduler::TaskSpec spec;
        spec.name = run.name();
        spec.timeoutSeconds = run.timeoutSeconds();
        spec.retry = retryPolicy;
        spec.fn = taskFor(std::move(run));
        specs.push_back(std::move(spec));
    }
    return queue.map(std::move(specs));
}

} // namespace g5::art
