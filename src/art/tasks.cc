#include "art/tasks.hh"

namespace g5::art
{

Tasks::Tasks(ArtifactDb &adb, unsigned workers, Backend backend,
             bool use_cache)
    : adb(adb), queue(backend == Backend::Inline ? 0 : workers, backend),
      useCache(use_cache)
{}

scheduler::TaskFn
Tasks::taskFor(Gem5Run run)
{
    ArtifactDb *adbp = &adb;
    bool cached = useCache;
    return [run, adbp, cached](scheduler::CancelToken &token) mutable {
        return cached ? run.executeCached(*adbp, &token)
                      : run.execute(*adbp, &token);
    };
}

scheduler::TaskFuturePtr
Tasks::applyAsync(Gem5Run run)
{
    double timeout = run.timeoutSeconds();
    std::string name = run.name();
    return queue.applyAsync(name, taskFor(std::move(run)), timeout);
}

std::vector<scheduler::TaskFuturePtr>
Tasks::applyAsyncBatch(std::vector<Gem5Run> runs)
{
    std::vector<scheduler::TaskSpec> specs;
    specs.reserve(runs.size());
    for (auto &run : runs) {
        scheduler::TaskSpec spec;
        spec.name = run.name();
        spec.timeoutSeconds = run.timeoutSeconds();
        spec.fn = taskFor(std::move(run));
        specs.push_back(std::move(spec));
    }
    return queue.map(std::move(specs));
}

} // namespace g5::art
