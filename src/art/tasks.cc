#include "art/tasks.hh"

namespace g5::art
{

Tasks::Tasks(ArtifactDb &adb, unsigned workers, Backend backend,
             bool use_cache)
    : adb(adb), queue(backend == Backend::Inline ? 0 : workers, backend),
      useCache(use_cache)
{}

scheduler::TaskFn
Tasks::taskFor(Gem5Run run)
{
    ArtifactDb *adbp = &adb;
    bool cached = useCache;
    scheduler::RetryPolicy policy = retryPolicy;
    RunHook hook = onComplete;
    return [run, adbp, cached, policy,
            hook](scheduler::CancelToken &token) mutable -> Json {
        Json doc;
        try {
            doc = cached ? run.executeCached(*adbp, &token)
                         : run.execute(*adbp, &token);
        } catch (const scheduler::TaskTimeout &) {
            // The run layer already recorded a terminal Timeout
            // document; surface it to the hook, then let the scheduler
            // classify the timeout (retried only if retryTimeouts).
            if (hook)
                hook(run, run.document(*adbp));
            throw;
        }
        if (hook)
            hook(run, doc);
        // Fresh transient outcomes become scheduler-visible failures so
        // the RetryPolicy can re-run them. Cached documents are served
        // data — a crash recorded in a *previous* process is a result,
        // not a fault to retry. The last allowed attempt returns the
        // document as-is: failed runs are data.
        RunOutcome outcome = Gem5Run::classify(doc);
        bool fresh = !doc.getBool("cached", false);
        if (fresh && outcome == RunOutcome::SimCrash &&
            Gem5Run::outcomeTransient(outcome) &&
            token.attempt() < policy.maxAttempts) {
            throw TransientRunError(
                "transient " + std::string(runOutcomeName(outcome)) +
                    " in run '" + run.name() + "' (attempt " +
                    std::to_string(token.attempt()) + ")",
                doc);
        }
        return doc;
    };
}

scheduler::TaskFuturePtr
Tasks::applyAsync(Gem5Run run)
{
    double timeout = run.timeoutSeconds();
    std::string name = run.name();
    return queue.applyAsync(name, taskFor(std::move(run)), timeout,
                            retryPolicy);
}

std::vector<scheduler::TaskFuturePtr>
Tasks::applyAsyncBatch(std::vector<Gem5Run> runs)
{
    std::vector<scheduler::TaskSpec> specs;
    specs.reserve(runs.size());
    for (auto &run : runs) {
        scheduler::TaskSpec spec;
        spec.name = run.name();
        spec.timeoutSeconds = run.timeoutSeconds();
        spec.retry = retryPolicy;
        spec.fn = taskFor(std::move(run));
        specs.push_back(std::move(spec));
    }
    return queue.map(std::move(specs));
}

} // namespace g5::art
