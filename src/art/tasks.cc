#include "art/tasks.hh"

namespace g5::art
{

Tasks::Tasks(ArtifactDb &adb, unsigned workers, Backend backend)
    : adb(adb), queue(backend == Backend::Inline ? 0 : workers, backend)
{}

scheduler::TaskFuturePtr
Tasks::applyAsync(Gem5Run run)
{
    double timeout = run.timeoutSeconds();
    ArtifactDb *adbp = &adb;
    return queue.applyAsync(
        run.name(),
        [run, adbp](scheduler::CancelToken &token) mutable {
            return run.execute(*adbp, &token);
        },
        timeout);
}

} // namespace g5::art
