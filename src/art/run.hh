/**
 * @file
 * The run layer of g5art — the counterpart of gem5art-run (Section
 * IV-C and Fig 4).
 *
 * A Gem5Run is a special artifact: it references every input artifact
 * of one full-system simulation (the simulator binary and repository,
 * the run script and its repository, the kernel binary, the disk
 * image), carries the run's parameters, and — once executed — points at
 * its results. All of it lives in the database's "runs" collection, so
 * any data point can be traced back to the exact inputs that produced
 * it.
 *
 * Executing a run loads the kernel spec and disk image from the
 * registered files, builds the FsConfig the "run script" describes,
 * drives the sim5 simulator, writes gem5-style output files
 * (stats.txt, system.terminal, results.json) into the output
 * directory, and archives a summary in the database.
 */

#ifndef G5_ART_RUN_HH
#define G5_ART_RUN_HH

#include <memory>
#include <optional>
#include <string>

#include "art/artifact.hh"
#include "base/json.hh"

namespace g5::scheduler
{
class CancelToken;
} // namespace g5::scheduler

namespace g5::sim::fs
{
struct Checkpoint;
} // namespace g5::sim::fs

namespace g5::art
{

/** The outcome classes Fig 8 reports. */
enum class RunOutcome {
    Success,
    KernelPanic,
    SimCrash,     ///< the simulator itself died (segfault class)
    Deadlock,     ///< protocol deadlock abort
    Timeout,      ///< never finished (tick limit / scheduler timeout)
    Unsupported,  ///< configuration rejected at build time
    Failure,      ///< any other failure
    Pending,
};

const char *runOutcomeName(RunOutcome o);

class Gem5Run
{
  public:
    /**
     * Create a full-system run object (Fig 4's createFSRun).
     *
     * @param adb                      artifact database.
     * @param name                     display name of the data point.
     * @param gem5_binary              host path of the simulator binary.
     * @param run_script               host path of the run script.
     * @param outdir                   output directory for this run.
     * @param gem5_artifact            the simulator binary's artifact.
     * @param gem5_git_artifact        its source repository.
     * @param run_script_git_artifact  the run script's repository.
     * @param linux_binary             host path of the kernel binary.
     * @param disk_image               host path of the disk image.
     * @param linux_binary_artifact    the kernel binary's artifact.
     * @param disk_image_artifact      the disk image's artifact.
     * @param params                   run-script parameters: cpu,
     *        num_cpus, mem_system, boot_type, workload, workload_arg,
     *        max_ticks.
     * @param timeout_s                job timeout in (host) seconds.
     */
    static Gem5Run createFSRun(
        ArtifactDb &adb, const std::string &name,
        const std::string &gem5_binary, const std::string &run_script,
        const std::string &outdir, const Artifact &gem5_artifact,
        const Artifact &gem5_git_artifact,
        const Artifact &run_script_git_artifact,
        const std::string &linux_binary, const std::string &disk_image,
        const Artifact &linux_binary_artifact,
        const Artifact &disk_image_artifact, const Json &params,
        double timeout_s = 15 * 60);

    /**
     * Create a syscall-emulation run (gem5art's createSERun): no
     * kernel, no disk image — the workload binary runs directly on the
     * OS services.
     *
     * @param workload_binary host path of the serialized SimISA binary.
     * @param params cpu, num_cpus, mem_system, workload_arg, max_ticks.
     */
    static Gem5Run createSERun(
        ArtifactDb &adb, const std::string &name,
        const std::string &gem5_binary, const std::string &run_script,
        const std::string &outdir, const Artifact &gem5_artifact,
        const Artifact &gem5_git_artifact,
        const Artifact &run_script_git_artifact,
        const std::string &workload_binary,
        const Artifact &workload_artifact, const Json &params,
        double timeout_s = 15 * 60);

    /** The run's UUID. */
    const std::string &id() const { return runId; }
    const std::string &name() const { return runName; }

    /**
     * Deterministic content hash of the run's inputs: MD5 over the
     * sorted artifact-hash map, the canonicalized parameters, and the
     * run type. Two runs with equal input hashes simulate identically,
     * which is what makes the run-result cache sound.
     */
    const std::string &inputHash() const { return inputHashStr; }

    /**
     * Content key of this run's boot prefix (see art/ckpt.hh): kernel,
     * disk and simulator artifacts plus num_cpus/mem_system/boot_type.
     * Empty for SE runs. Runs sharing a bootHash share one boot
     * through the checkpoint tier.
     */
    const std::string &bootHash() const { return bootHashStr; }

    /** Job timeout in seconds (for the task layer). */
    double timeoutSeconds() const { return timeoutS; }

    /**
     * Execute the simulation on the calling thread.
     *
     * Never throws for simulated-simulator failures — those are
     * recorded in the run document (the whole point of gem5art is that
     * failed runs are data). A scheduler timeout (TaskTimeout) does
     * propagate, but only after a terminal Timeout outcome has been
     * recorded in the document — a timed-out run is never left
     * Pending/RUNNING. Every call appends one record to the document's
     * "attempts" array ({attempt, outcome, wallSeconds, error?}), so
     * retried runs keep full per-attempt provenance.
     *
     * @return the final run document.
     */
    Json execute(ArtifactDb &adb,
                 scheduler::CancelToken *token = nullptr);

    /**
     * Execute through the content-addressed run cache: when the
     * database already holds a run with the same inputHash and a
     * deterministic terminal outcome (see outcomeCacheable), copy its
     * results into this run's document — marked "cached": true with a
     * "cachedFrom" provenance pointer — without re-simulating.
     * Otherwise (cache miss, or caching disabled via the G5ART_NO_CACHE
     * environment variable) falls back to execute().
     *
     * @return the final run document.
     */
    Json executeCached(ArtifactDb &adb,
                       scheduler::CancelToken *token = nullptr);

    /** @return true when G5ART_NO_CACHE is set (forces re-execution). */
    static bool cacheBypassed();

    // --- distributed execution (scheduler worker processes) ---------
    //
    // The simulation is split at the process boundary: simulateWire()
    // is the pure, database-free core a forked worker runs from a JSON
    // spec, and commitWire() is the parent-side commit of the wire
    // result into this run's document (output files, result blob,
    // attempts provenance). Only the parent ever writes the database,
    // which is what makes the worker pool's fencing tokens meaningful.

    /**
     * @return true when this run can execute in a worker process: runs
     * with explicit checkpoint_to/restore_from params need the parent's
     * blob store mid-simulation and take the local path instead.
     */
    bool wireEligible() const;

    /**
     * The process-boundary description of this run's simulation: the
     * input host paths and parameters, nothing database-dependent.
     * Ships to workers as a content-addressed blob reference.
     */
    Json wireSpec() const;

    /**
     * Run one simulation attempt from a wireSpec() document. Pure with
     * respect to the database and this object (static): safe in a
     * forked child. Never throws — every outcome (including a
     * TaskTimeout raised by @p token) is folded into the returned wire
     * result: {outcome, status, error?, schedulerTimeout?, fields?,
     * statsText?, consoleText?, resultsJson?}.
     */
    static Json simulateWire(const Json &spec,
                             scheduler::CancelToken *token);

    /** Mark the document RUNNING (the parent's dispatch-time step). */
    void markRunning(ArtifactDb &adb);

    /**
     * Commit a simulateWire() result: write the gem5-style output
     * files, archive the results blob, terminalize the document, and
     * append the attempt's provenance record — the same document shape
     * execute() produces. Throws TaskTimeout (after terminalizing, like
     * execute()) when the wire result carries schedulerTimeout.
     *
     * @param start_wall monotonic time the attempt was dispatched (for
     *                   wallSeconds provenance).
     * @return the final run document.
     */
    Json commitWire(ArtifactDb &adb, const Json &wire, double start_wall);

    /**
     * Archive a lost worker (lease expiry, SIGKILL, transport failure)
     * as one attempts record — outcome "sim-crash", so the loss is
     * transient and retryable like any other host trouble. When
     * @p final is true (retry budget exhausted) the document is also
     * terminalized FAILURE/sim-crash.
     */
    Json recordWorkerLoss(ArtifactDb &adb, const std::string &error,
                          bool final, double start_wall);

    /**
     * Probe the content-addressed run cache: on a hit, copy the prior
     * run's results into this document (marked cached, with cachedFrom
     * provenance) and return it; on a miss return std::nullopt. Counts
     * art.runCache.hits/misses. Callers must have checked
     * cacheBypassed() themselves.
     */
    std::optional<Json> tryServeFromCache(ArtifactDb &adb);

    /**
     * @return true when an outcome is transient — plausibly caused by
     * host-level trouble rather than the configuration, so re-running
     * the same inputs may legitimately produce a different result.
     * SimCrash (segfault class) and Timeout (host/scheduler dependent)
     * are transient; Success and the deterministic failure classes
     * (KernelPanic, Deadlock, Unsupported) are not. The tasks layer
     * retries fresh transient outcomes under its RetryPolicy.
     */
    static bool outcomeTransient(RunOutcome o);

    /**
     * @return true when a stored outcome may be served from cache.
     * Success and the deterministic failure classes (kernel panic, sim
     * crash, deadlock, unsupported) are; Timeout (host/scheduler
     * dependent), generic Failure, and non-terminal Pending are not.
     */
    static bool outcomeCacheable(RunOutcome o);

    /** Fetch the run document currently stored in the database. */
    Json document(ArtifactDb &adb) const;

    /**
     * Archive the current process-wide metrics snapshot (see
     * base/metrics.hh) into the run document under "metricsSnapshot"
     * and return the updated document. Call after execute() /
     * executeCached() when a run report should carry the observability
     * counters alongside the simulation results.
     */
    Json report(ArtifactDb &adb);

    /** Classify a stored run document into a Fig 8 outcome. */
    static RunOutcome classify(const Json &run_doc);

  private:
    Gem5Run() = default;

    /**
     * Boot-prefix checkpoint tier: when this run is eligible (FS run,
     * no workload, no explicit checkpoint params, no configured
     * version defect — a defect arms during boot, so skipping the boot
     * would change the census), resolve its bootHash through
     * BootCheckpoints and stash the checkpoint for execute() to
     * restore instead of booting. Any failure leaves the run on the
     * straight path.
     */
    void maybePrepareRestore(ArtifactDb &adb,
                             scheduler::CancelToken *token);

    std::string runId;
    std::string runName;
    std::string inputHashStr;
    std::string gem5Binary;
    std::string runScript;
    std::string outdir;
    std::string linuxBinary;   ///< empty for SE runs
    std::string diskImage;     ///< empty for SE runs
    std::string workloadBinary; ///< SE runs only
    Json params;
    double timeoutS = 0;
    std::string bootHashStr;
    std::shared_ptr<const sim::fs::Checkpoint> restoreCkpt;
};

} // namespace g5::art

#endif // G5_ART_RUN_HH
