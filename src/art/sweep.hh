/**
 * @file
 * Crash-resumable sweep execution.
 *
 * A SweepJournal gives a parameter sweep (the paper's Fig 8 boot-test
 * census) durable progress: every run gets one journal document in the
 * "sweeps" collection, keyed by the *content* of its inputs
 * (sweepName + "/" + inputHash) rather than by run UUID — so a
 * relaunched process, which constructs brand-new Gem5Run objects with
 * fresh UUIDs, still recognises work it already finished.
 *
 * submit() skips runs whose journal entry is terminal, (re-)marks the
 * rest pending, persists the journal, and launches only the remainder.
 * As attempts complete, a Tasks hook updates each entry and saves the
 * database on terminal outcomes — killing the process mid-sweep loses
 * at most the in-flight runs, and a subsequent submit() of the same
 * sweep resumes exactly where it stopped. A scheduler timeout leaves
 * its entry pending (timeouts are host-dependent, so a resume retries
 * them); every simulator-level outcome — including failures, which are
 * data — is terminal.
 */

#ifndef G5_ART_SWEEP_HH
#define G5_ART_SWEEP_HH

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "art/run.hh"
#include "art/tasks.hh"

namespace g5::art
{

class SweepJournal
{
  public:
    /**
     * Attach to (or create) the journal for @p sweep_name in @p adb's
     * "sweeps" collection. The journal must outlive any Tasks it
     * submitted through (its completion hook points back at it).
     */
    SweepJournal(ArtifactDb &adb, std::string sweep_name);

    /**
     * Launch the sweep, resuming any prior progress: runs whose journal
     * entry is already terminal are skipped; the rest are journalled as
     * pending, persisted, and submitted to @p tasks (whose completion
     * hook this call installs — replacing any previously set one).
     *
     * @return futures for the runs actually submitted (the skipped runs
     * have their results in the database already).
     */
    std::vector<scheduler::TaskFuturePtr>
    submit(Tasks &tasks, const std::vector<Gem5Run> &runs);

    /** Runs skipped as already-terminal by the last submit(). */
    std::size_t skipped() const { return lastSkipped; }

    /**
     * Census of this sweep's journal: total / done / pending counts
     * plus per-outcome counts ({"success": 12, "kernel panic": 3, ...}).
     */
    Json census() const;

    /** The journal document key for @p run (stable across processes). */
    std::string keyFor(const Gem5Run &run) const;

    /**
     * @return true when a run document settles its journal entry: any
     * simulator-level outcome, including deterministic failures. A
     * scheduler timeout (a Timeout with no archived simulation result)
     * is host trouble, not data — it stays pending for the next launch.
     */
    static bool documentTerminal(const Json &run_doc);

  private:
    /** Per-attempt Tasks hook: update the entry, persist if terminal. */
    void record(const Gem5Run &run, const Json &doc);

    /**
     * Called (under spanMtx) when the last submitted run settles:
     * archives the process metrics snapshot into the "sweepMetrics"
     * collection (_id = sweep name; kept out of the journal collection
     * so census() stays a pure run count) and closes the sweep's async
     * trace span when one is being recorded.
     */
    void finishSweep();

    db::Collection &journal() const;

    ArtifactDb &adb;
    std::string sweepName;
    std::size_t lastSkipped = 0;

    /** Journal keys submitted but not yet terminal (span bookkeeping). */
    std::mutex spanMtx;
    std::set<std::string> pendingKeys;
    bool spanOpen = false;
    std::uint64_t spanId = 0;
};

} // namespace g5::art

#endif // G5_ART_SWEEP_HH
