#include "art/sweep.hh"

#include <functional>

#include "base/faultinject.hh"
#include "base/metrics.hh"
#include "base/tracing.hh"
#include "base/wallclock.hh"

namespace g5::art
{

SweepJournal::SweepJournal(ArtifactDb &adb, std::string sweep_name)
    : adb(adb), sweepName(std::move(sweep_name))
{
    journal();
}

db::Collection &
SweepJournal::journal() const
{
    return adb.db().collection("sweeps");
}

std::string
SweepJournal::keyFor(const Gem5Run &run) const
{
    return sweepName + "/" + run.inputHash();
}

bool
SweepJournal::documentTerminal(const Json &run_doc)
{
    if (run_doc.isNull())
        return false;
    RunOutcome outcome = Gem5Run::classify(run_doc);
    switch (outcome) {
      case RunOutcome::Pending:
        return false;
      case RunOutcome::Timeout:
        // Tick-limit timeouts archived their simulation result
        // (exitCause et al.) and are deterministic data; a scheduler
        // timeout bailed out before any result existed.
        return run_doc.contains("exitCause");
      default:
        return true;
    }
}

std::vector<scheduler::TaskFuturePtr>
SweepJournal::submit(Tasks &tasks, const std::vector<Gem5Run> &runs)
{
    db::Collection &coll = journal();
    std::vector<Gem5Run> fresh;
    lastSkipped = 0;
    for (const Gem5Run &run : runs) {
        // Injectable crash mid-launch (G5_FAULT=sweep.submit): the
        // kill-and-resume tests use this to interrupt a sweep between
        // journal writes.
        fault::checkpoint("sweep.submit");
        std::string key = keyFor(run);
        Json entry = coll.findById(key);
        if (!entry.isNull() && entry.getString("status", "") == "DONE") {
            ++lastSkipped;
            continue;
        }
        Json fields = Json::object();
        fields["sweep"] = sweepName;
        fields["inputHash"] = run.inputHash();
        fields["runName"] = run.name();
        fields["status"] = std::string("PENDING");
        fields["outcome"] = runOutcomeName(RunOutcome::Pending);
        fields["updatedAt"] = isoTimestamp();
        if (entry.isNull()) {
            fields["_id"] = key;
            coll.insertOne(std::move(fields));
        } else {
            coll.updateOne(Json::object({{"_id", Json(key)}}),
                           Json::object({{"$set", std::move(fields)}}));
        }
        fresh.push_back(run);
    }
    // Persist the launch plan before any run executes, so a crash
    // during the sweep finds every un-started run still journalled.
    adb.db().save();

    {
        std::lock_guard<std::mutex> lock(spanMtx);
        pendingKeys.clear();
        for (const Gem5Run &run : fresh)
            pendingKeys.insert(keyFor(run));
        spanOpen = tracing::enabled();
        if (spanOpen) {
            spanId = std::hash<std::string>{}(sweepName);
            Json args = Json::object();
            args["submitted"] = std::int64_t(fresh.size());
            args["skipped"] = std::int64_t(lastSkipped);
            tracing::asyncBegin("sweep:" + sweepName, spanId, "sweep",
                                std::move(args));
        }
        // Everything already terminal (resume of a finished sweep):
        // the sweep is complete the moment it launches.
        if (pendingKeys.empty())
            finishSweep();
    }

    SweepJournal *self = this;
    tasks.setOnComplete([self](const Gem5Run &run, const Json &doc) {
        self->record(run, doc);
    });
    return tasks.applyAsyncBatch(std::move(fresh));
}

void
SweepJournal::record(const Gem5Run &run, const Json &doc)
{
    bool terminal = documentTerminal(doc);
    Json fields = Json::object();
    fields["status"] = std::string(terminal ? "DONE" : "PENDING");
    fields["outcome"] = runOutcomeName(Gem5Run::classify(doc));
    fields["runId"] = doc.getString("_id", "");
    // Provenance of the boot-prefix checkpoint tier: which cells were
    // fast-forwarded past their boot (and from which boot image).
    if (doc.contains("restoredBootHash")) {
        fields["restored"] = true;
        fields["restoredBootHash"] =
            doc.getString("restoredBootHash");
    }
    fields["updatedAt"] = isoTimestamp();
    journal().updateOne(Json::object({{"_id", Json(keyFor(run))}}),
                        Json::object({{"$set", std::move(fields)}}));
    // Terminal progress is durable immediately: a crash after this
    // point never re-runs the simulation.
    if (terminal)
        adb.db().save();

    if (terminal) {
        std::lock_guard<std::mutex> lock(spanMtx);
        pendingKeys.erase(keyFor(run));
        if (pendingKeys.empty())
            finishSweep();
    }
}

void
SweepJournal::finishSweep()
{
    // Archive the observability counters with the sweep. The snapshot
    // lives in its own "sweepMetrics" collection (keyed by sweep name)
    // so the journal collection holds only run entries and census()
    // stays a pure run count.
    Json snap = metrics::snapshot();
    db::Collection &coll = adb.db().collection("sweepMetrics");
    Json fields = Json::object();
    fields["sweep"] = sweepName;
    fields["metricsSnapshot"] = std::move(snap);
    fields["updatedAt"] = isoTimestamp();
    if (coll.findById(sweepName).isNull()) {
        fields["_id"] = sweepName;
        coll.insertOne(std::move(fields));
    } else {
        coll.updateOne(Json::object({{"_id", Json(sweepName)}}),
                       Json::object({{"$set", std::move(fields)}}));
    }
    adb.db().save();

    if (spanOpen) {
        spanOpen = false;
        tracing::asyncEnd("sweep:" + sweepName, spanId, "sweep",
                          census());
    }
}

Json
SweepJournal::census() const
{
    std::vector<Json> entries =
        journal().find(Json::object({{"sweep", Json(sweepName)}}));
    Json by_outcome = Json::object();
    std::int64_t done = 0;
    std::int64_t restored = 0;
    for (const Json &entry : entries) {
        if (entry.getString("status", "") == "DONE")
            ++done;
        if (entry.getBool("restored", false))
            ++restored;
        std::string outcome = entry.getString("outcome", "pending");
        by_outcome[outcome] =
            by_outcome.getInt(outcome, 0) + std::int64_t(1);
    }
    Json out = Json::object();
    out["total"] = std::int64_t(entries.size());
    out["done"] = done;
    out["pending"] = std::int64_t(entries.size()) - done;
    out["restoredFromCheckpoint"] = restored;
    out["outcomes"] = std::move(by_outcome);
    return out;
}

} // namespace g5::art
