#include "art/run.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <optional>

#include "art/ckpt.hh"
#include "base/faultinject.hh"
#include "base/logging.hh"
#include "base/metrics.hh"
#include "base/tracing.hh"
#include "base/md5.hh"
#include "base/uuid.hh"
#include "base/wallclock.hh"
#include "scheduler/task_queue.hh"
#include "sim/fs/checkpoint.hh"
#include "sim/fs/fs_system.hh"
#include "sim/fs/known_issues.hh"

namespace stdfs = std::filesystem;

namespace g5::art
{

using sim::fs::Checkpoint;
using sim::fs::CheckpointPtr;
using sim::fs::DiskImage;
using sim::fs::FsConfig;
using sim::fs::FsSystem;
using sim::fs::KernelSpec;
using sim::fs::SimResult;

const char *
runOutcomeName(RunOutcome o)
{
    switch (o) {
      case RunOutcome::Success:
        return "success";
      case RunOutcome::KernelPanic:
        return "kernel-panic";
      case RunOutcome::SimCrash:
        return "sim-crash";
      case RunOutcome::Deadlock:
        return "deadlock";
      case RunOutcome::Timeout:
        return "timeout";
      case RunOutcome::Unsupported:
        return "unsupported";
      case RunOutcome::Failure:
        return "failure";
      case RunOutcome::Pending:
        return "pending";
    }
    return "?";
}

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("Gem5Run: cannot read '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    stdfs::path p(path);
    if (p.has_parent_path())
        stdfs::create_directories(p.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("Gem5Run: cannot write '" + path + "'");
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

/**
 * The cache key: every artifact hash (Json objects keep keys sorted, so
 * the map serializes deterministically), the canonicalized parameters,
 * and the run type. The artifact hashes cover the simulator version,
 * kernel, disk image, and run script contents.
 */
std::string
computeInputHash(const Json &artifacts, const Json &params,
                 const std::string &run_type)
{
    Json key = Json::object();
    key["artifacts"] = artifacts;
    key["params"] = params;
    key["type"] = run_type;
    // Hash during serialization: the key document streams straight
    // into the digest, so the canonical text never materializes.
    Md5Stream h;
    h.update(key);
    return h.final();
}

/**
 * Assemble the FsConfig a run's inputs describe — the shared core of
 * the local path (execute) and the worker-process path (simulateWire).
 * Throws on unreadable/unparseable inputs; callers classify.
 */
FsConfig
assembleConfig(const std::string &gem5_binary,
               const std::string &linux_binary,
               const std::string &disk_image,
               const std::string &workload_binary, const Json &params)
{
    FsConfig cfg;
    // The "gem5 binary" is a build descriptor: version + variant.
    Json binary = Json::parse(readFile(gem5_binary));
    cfg.simVersion = binary.getString("version");

    if (workload_binary.empty()) {
        // Full-system run: kernel + disk.
        KernelSpec kernel = KernelSpec::load(linux_binary);
        cfg.kernelVersion = kernel.version;
        if (!disk_image.empty())
            cfg.disk = DiskImage::load(disk_image);
        cfg.bootType = sim::fs::bootTypeFromName(
            params.getString("boot_type", "init"));
        cfg.initProgramPath = params.getString("workload", "");
        cfg.initArg = params.getInt("workload_arg", 0);
        cfg.checkpointAfterBoot =
            params.getBool("checkpoint_after_boot", false);
    } else {
        // SE run: the workload binary executes directly.
        cfg.seProgram = sim::isa::Program::fromJson(
            Json::parse(readFile(workload_binary)));
        cfg.seArg = params.getInt("workload_arg", 0);
    }

    cfg.cpuType =
        sim::cpuTypeFromName(params.getString("cpu", "timing"));
    cfg.numCpus = unsigned(params.getInt("num_cpus", 1));
    cfg.memSystem = params.getString("mem_system", "classic");
    cfg.errInject = sim::ErrorInjectConfig::parse(
        params.getString("err_inject", ""));
    cfg.archDigest = params.getBool("arch_digest", false);
    return cfg;
}

/**
 * Fold the G5_ERRINJ environment spec into a run's params (unless the
 * caller already set err_inject explicitly). This happens at run
 * *creation* so the spec lands inside the inputHash: an error-injected
 * run must never be served from (or poison) the cache entry of its
 * clean twin.
 */
void
foldErrInjectEnv(Json &params)
{
    if (params.contains("err_inject"))
        return;
    const char *v = std::getenv("G5_ERRINJ");
    if (v != nullptr && *v != '\0')
        params["err_inject"] = std::string(v);
}

} // anonymous namespace

Gem5Run
Gem5Run::createFSRun(
    ArtifactDb &adb, const std::string &name,
    const std::string &gem5_binary, const std::string &run_script,
    const std::string &outdir, const Artifact &gem5_artifact,
    const Artifact &gem5_git_artifact,
    const Artifact &run_script_git_artifact,
    const std::string &linux_binary, const std::string &disk_image,
    const Artifact &linux_binary_artifact,
    const Artifact &disk_image_artifact, const Json &params,
    double timeout_s)
{
    Gem5Run run;
    run.runId = Uuid::generate().str();
    run.runName = name;
    run.gem5Binary = gem5_binary;
    run.runScript = run_script;
    run.outdir = outdir;
    run.linuxBinary = linux_binary;
    run.diskImage = disk_image;
    run.params = params.isObject() ? params : Json::object();
    foldErrInjectEnv(run.params);
    run.timeoutS = timeout_s;

    Json doc = Json::object();
    doc["_id"] = run.runId;
    doc["type"] = "gem5 run fs";
    doc["name"] = name;
    doc["gem5Binary"] = gem5_binary;
    doc["runScript"] = run_script;
    doc["outdir"] = outdir;
    doc["linuxBinary"] = linux_binary;
    doc["diskImage"] = disk_image;
    doc["artifacts"] = Json::object({
        {"gem5", Json(gem5_artifact.hash())},
        {"gem5Git", Json(gem5_git_artifact.hash())},
        {"runScriptGit", Json(run_script_git_artifact.hash())},
        {"linuxBinary", Json(linux_binary_artifact.hash())},
        {"diskImage", Json(disk_image_artifact.hash())},
    });
    doc["params"] = run.params;
    run.inputHashStr =
        computeInputHash(doc.at("artifacts"), run.params, "fs");
    doc["inputHash"] = run.inputHashStr;
    run.bootHashStr = computeBootHash(doc.at("artifacts"), run.params);
    doc["bootHash"] = run.bootHashStr;
    doc["timeoutSeconds"] = timeout_s;
    doc["status"] = "PENDING";
    doc["outcome"] = runOutcomeName(RunOutcome::Pending);
    doc["createdAt"] = isoTimestamp();
    adb.runs().insertOne(std::move(doc));

    return run;
}

Gem5Run
Gem5Run::createSERun(
    ArtifactDb &adb, const std::string &name,
    const std::string &gem5_binary, const std::string &run_script,
    const std::string &outdir, const Artifact &gem5_artifact,
    const Artifact &gem5_git_artifact,
    const Artifact &run_script_git_artifact,
    const std::string &workload_binary,
    const Artifact &workload_artifact, const Json &params,
    double timeout_s)
{
    Gem5Run run;
    run.runId = Uuid::generate().str();
    run.runName = name;
    run.gem5Binary = gem5_binary;
    run.runScript = run_script;
    run.outdir = outdir;
    run.workloadBinary = workload_binary;
    run.params = params.isObject() ? params : Json::object();
    foldErrInjectEnv(run.params);
    run.timeoutS = timeout_s;

    Json doc = Json::object();
    doc["_id"] = run.runId;
    doc["type"] = "gem5 run se";
    doc["name"] = name;
    doc["gem5Binary"] = gem5_binary;
    doc["runScript"] = run_script;
    doc["outdir"] = outdir;
    doc["workloadBinary"] = workload_binary;
    doc["artifacts"] = Json::object({
        {"gem5", Json(gem5_artifact.hash())},
        {"gem5Git", Json(gem5_git_artifact.hash())},
        {"runScriptGit", Json(run_script_git_artifact.hash())},
        {"workload", Json(workload_artifact.hash())},
    });
    doc["params"] = run.params;
    run.inputHashStr =
        computeInputHash(doc.at("artifacts"), run.params, "se");
    doc["inputHash"] = run.inputHashStr;
    doc["timeoutSeconds"] = timeout_s;
    doc["status"] = "PENDING";
    doc["outcome"] = runOutcomeName(RunOutcome::Pending);
    doc["createdAt"] = isoTimestamp();
    adb.runs().insertOne(std::move(doc));

    return run;
}

Json
Gem5Run::document(ArtifactDb &adb) const
{
    return adb.runs().findById(runId);
}

Json
Gem5Run::report(ArtifactDb &adb)
{
    Json snap = metrics::snapshot();
    adb.runs().updateOne(
        Json::object({{"_id", Json(runId)}}),
        Json::object({{"$set",
                       Json::object({{"metricsSnapshot", snap}})}}));
    return document(adb);
}

RunOutcome
Gem5Run::classify(const Json &run_doc)
{
    std::string outcome = run_doc.getString("outcome");
    for (RunOutcome o :
         {RunOutcome::Success, RunOutcome::KernelPanic,
          RunOutcome::SimCrash, RunOutcome::Deadlock, RunOutcome::Timeout,
          RunOutcome::Unsupported, RunOutcome::Failure,
          RunOutcome::Pending}) {
        if (outcome == runOutcomeName(o))
            return o;
    }
    return RunOutcome::Pending;
}

bool
Gem5Run::cacheBypassed()
{
    const char *v = std::getenv("G5ART_NO_CACHE");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

bool
Gem5Run::outcomeTransient(RunOutcome o)
{
    switch (o) {
      case RunOutcome::SimCrash:
      case RunOutcome::Timeout:
        return true;
      default:
        return false;
    }
}

bool
Gem5Run::outcomeCacheable(RunOutcome o)
{
    switch (o) {
      case RunOutcome::Success:
      case RunOutcome::KernelPanic:
      case RunOutcome::SimCrash:
      case RunOutcome::Deadlock:
      case RunOutcome::Unsupported:
        return true;
      case RunOutcome::Timeout:
      case RunOutcome::Failure:
      case RunOutcome::Pending:
        return false;
    }
    return false;
}

void
Gem5Run::maybePrepareRestore(ArtifactDb &adb,
                             scheduler::CancelToken *token)
{
    restoreCkpt = nullptr;
    if (BootCheckpoints::bypassed() || bootHashStr.empty())
        return;
    // Boot-prefix acceleration only applies to plain FS boots: a
    // workload's init exec index is baked into the boot program, and
    // explicit checkpoint/restore params mean the user drives
    // checkpointing themselves.
    if (!workloadBinary.empty() || linuxBinary.empty())
        return;
    if (!params.getString("workload", "").empty() ||
        !params.getString("restore_from", "").empty() ||
        !params.getString("checkpoint_to", "").empty() ||
        params.getBool("checkpoint_after_boot", false))
        return;
    // Error-injected (and digest-checked) runs take the straight path:
    // a flip can land during boot, and a restore would change the
    // dynamic instruction counts the injection boundary is defined on.
    if (!params.getString("err_inject", "").empty() ||
        params.getBool("arch_digest", false))
        return;

    try {
        Json binary = Json::parse(readFile(gem5Binary));

        FsConfig probe;
        probe.simVersion = binary.getString("version");
        probe.cpuType =
            sim::cpuTypeFromName(params.getString("cpu", "timing"));
        probe.numCpus = unsigned(params.getInt("num_cpus", 1));
        probe.memSystem = params.getString("mem_system", "classic");
        probe.bootType = sim::fs::bootTypeFromName(
            params.getString("boot_type", "init"));
        probe.kernelVersion = KernelSpec::load(linuxBinary).version;
        // A configured version defect arms *during* boot (it counts
        // syscalls); restoring past the boot would skip it and change
        // the census, so defect cells always take the straight path.
        if (sim::fs::knownIssueFor(probe).kind !=
            sim::DefectPlan::Kind::None)
            return;

        Tick max_ticks = Tick(
            params.getInt("max_ticks", 2'000'000'000'000));
        BootSpec spec;
        spec.simVersion = probe.simVersion;
        spec.linuxBinary = linuxBinary;
        spec.diskImage = diskImage;
        spec.numCpus = probe.numCpus;
        spec.bootType = params.getString("boot_type", "init");
        spec.maxTicks = max_ticks;
        CheckpointPtr ckpt = BootCheckpoints::instance().obtain(
            adb, bootHashStr, spec, token);
        // A straight run would have spent the boot's ticks inside the
        // same budget; a boot that already exhausted it cannot be
        // fast-forwarded past honestly.
        if (ckpt && ckpt->simTicks < max_ticks)
            restoreCkpt = std::move(ckpt);
    } catch (const scheduler::TaskTimeout &) {
        // The token expired while resolving the boot prefix; execute()
        // notices the expired token and records the Timeout outcome.
        restoreCkpt = nullptr;
    } catch (const std::exception &) {
        restoreCkpt = nullptr; // any trouble: run the straight path
    }
}

std::optional<Json>
Gem5Run::tryServeFromCache(ArtifactDb &adb)
{
    static metrics::Counter &cache_hits =
        metrics::counter("art.runCache.hits");
    static metrics::Counter &cache_misses =
        metrics::counter("art.runCache.misses");

    // The "inputHash" secondary index makes this probe O(matches).
    Json q = Json::object({{"inputHash", Json(inputHashStr)}});
    for (const Json &prior : adb.runs().find(q)) {
        if (prior.getString("_id") == runId)
            continue;
        if (!outcomeCacheable(classify(prior)))
            continue;

        // Serve the hit: the prior results ARE this run's results.
        static const char *result_keys[] = {
            "status", "outcome", "error", "exitCause", "exitCode",
            "simTicks", "roiTicks", "workBeginTick", "workEndTick",
            "totalInsts", "resultsBlob", "stats", "archMd5",
            "errInject",
        };
        Json fields = Json::object();
        for (const char *key : result_keys)
            if (prior.contains(key))
                fields[key] = prior.at(key);
        fields["cached"] = true;
        // Provenance: always point at the originally simulated run.
        fields["cachedFrom"] = prior.getBool("cached", false)
                                   ? prior.getString("cachedFrom")
                                   : prior.getString("_id");
        fields["wallSeconds"] = 0.0;
        fields["startedAt"] = isoTimestamp();
        fields["finishedAt"] = isoTimestamp();
        adb.runs().updateOne(Json::object({{"_id", Json(runId)}}),
                             Json::object({{"$set", fields}}));
        cache_hits.inc();
        if (tracing::enabled()) {
            Json args = Json::object();
            args["outcome"] = fields.getString("outcome");
            args["cachedFrom"] = fields.getString("cachedFrom");
            tracing::instant("run:" + runName + ":cache-hit", "run",
                             std::move(args));
        }
        return document(adb);
    }
    cache_misses.inc();
    return std::nullopt;
}

Json
Gem5Run::executeCached(ArtifactDb &adb, scheduler::CancelToken *token)
{
    if (cacheBypassed() || inputHashStr.empty()) {
        // The checkpoint tier is independent of the run cache: even a
        // cold (or disabled) run cache pays each unique boot once.
        maybePrepareRestore(adb, token);
        return execute(adb, token);
    }
    if (std::optional<Json> hit = tryServeFromCache(adb))
        return *hit;
    maybePrepareRestore(adb, token);
    return execute(adb, token);
}

Json
Gem5Run::execute(ArtifactDb &adb, scheduler::CancelToken *token)
{
    auto update = [&](const Json &fields) {
        adb.runs().updateOne(Json::object({{"_id", Json(runId)}}),
                             Json::object({{"$set", fields}}));
    };

    // One span per execute() call (so one per attempt); the outcome tag
    // is attached by finish() just before the span closes.
    std::optional<tracing::Span> span;
    if (tracing::enabled()) {
        span.emplace("run:" + runName, "run");
        span->arg("inputHash", Json(inputHashStr));
    }

    double start_wall = monotonicSeconds();

    auto finish = [&](RunOutcome outcome, const std::string &status,
                      const std::string &error) {
        Json fields = Json::object();
        fields["status"] = status;
        fields["outcome"] = runOutcomeName(outcome);
        if (!error.empty())
            fields["error"] = error;
        double wall = monotonicSeconds() - start_wall;
        fields["wallSeconds"] = wall;
        fields["finishedAt"] = isoTimestamp();
        // Per-attempt provenance: every execute() call — including
        // retries of transient outcomes — leaves one record behind.
        Json doc = document(adb);
        Json attempts = doc.contains("attempts") ? doc.at("attempts")
                                                 : Json::array();
        Json rec = Json::object();
        rec["attempt"] = std::int64_t(attempts.size()) + 1;
        rec["outcome"] = runOutcomeName(outcome);
        rec["wallSeconds"] = wall;
        if (!error.empty())
            rec["error"] = error;
        attempts.push(std::move(rec));
        fields["attempts"] = std::move(attempts);
        update(fields);
        if (span)
            span->arg("outcome", Json(runOutcomeName(outcome)));
    };

    // A task dequeued after its deadline passed (queue backlog) or
    // cancelled before starting must still leave a terminal document —
    // never a run stuck at Pending/RUNNING.
    if (token && token->expired()) {
        update(Json::object({{"startedAt", Json(isoTimestamp())}}));
        finish(RunOutcome::Timeout, "TIMEOUT",
               "job cancelled or timed out before execution");
        throw scheduler::TaskTimeout(
            "run '" + runName + "' cancelled before execution");
    }

    update(Json::object({{"status", Json("RUNNING")},
                         {"startedAt", Json(isoTimestamp())}}));

    // --- assemble the configuration the run script describes ---
    FsConfig cfg;
    SimResult result;
    Json checkpoint_stub;        // set when checkpoint_to was honored
    bool restored_from_ckpt = false;
    Tick boot_ticks = 0;         // fast-forwarded prefix (ckpt tier)
    try {
        // Injectable host-level failure (G5_FAULT=run.execute[:p[:s]]):
        // a transient simulator crash, retried by the tasks layer.
        fault::checkpoint("run.execute");
        cfg = assembleConfig(gem5Binary, linuxBinary, diskImage,
                             workloadBinary, params);

        Tick max_ticks = Tick(
            params.getInt("max_ticks", 2'000'000'000'000)); // 2 s sim

        std::string restore_from = params.getString("restore_from", "");
        std::unique_ptr<FsSystem> system;
        Tick budget = max_ticks;
        if (restoreCkpt) {
            // Boot-prefix checkpoint tier: restore instead of booting
            // and simulate only the measured phase. The boot's ticks
            // come off the budget (and back onto simTicks below) so
            // tick-limit semantics match the straight path.
            std::optional<tracing::Span> rspan;
            if (tracing::enabled()) {
                rspan.emplace("ckpt:restore", "ckpt");
                rspan->arg("bootHash", Json(bootHashStr));
            }
            double restore_start = monotonicSeconds();
            system = std::make_unique<FsSystem>(cfg, *restoreCkpt);
            metrics::histogram("sim.ckpt.restoreSeconds")
                .observe(monotonicSeconds() - restore_start);
            boot_ticks = restoreCkpt->simTicks;
            budget = max_ticks - boot_ticks;
            restored_from_ckpt = true;
        } else if (restore_from.empty()) {
            system = std::make_unique<FsSystem>(cfg);
        } else {
            // An explicit restore file: either an s5ckpt2 stub written
            // by checkpoint_to (image in the blob store) or a legacy
            // s5ckpt1 JSON document.
            Json r = Json::parse(readFile(restore_from));
            if (r.getString("format") == "s5ckpt2") {
                auto ckpt = Checkpoint::deserialize(
                    adb.db().getBlob(r.getString("blob")));
                system = std::make_unique<FsSystem>(cfg, *ckpt);
            } else {
                system = std::make_unique<FsSystem>(cfg, r);
            }
        }
        result = system->run(budget, token);
        result.simTicks += boot_ticks;

        // hack-back support: persist a requested checkpoint through
        // the binary writer + blob store; only a small stub reaches
        // the filesystem and the run doc.
        std::string checkpoint_to =
            params.getString("checkpoint_to", "");
        if (!checkpoint_to.empty() &&
            result.exitCause == "checkpoint") {
            std::optional<tracing::Span> cspan;
            if (tracing::enabled())
                cspan.emplace("ckpt:save", "ckpt");
            double save_start = monotonicSeconds();
            CheckpointPtr ckpt = system->takeCheckpoint();
            std::string hex_md5;
            std::string image = ckpt->serialize(&hex_md5);
            std::string blob_key = adb.putBlob(image);
            metrics::counter("sim.ckpt.bytes")
                .inc(std::int64_t(image.size()));
            metrics::histogram("sim.ckpt.saveSeconds")
                .observe(monotonicSeconds() - save_start);
            checkpoint_stub = Json::object();
            checkpoint_stub["format"] = "s5ckpt2";
            checkpoint_stub["bootHash"] = bootHashStr;
            checkpoint_stub["blob"] = blob_key;
            checkpoint_stub["ckptHash"] = hex_md5;
            checkpoint_stub["bytes"] = std::int64_t(image.size());
            checkpoint_stub["simTicks"] = ckpt->simTicks;
            writeFile(checkpoint_to, checkpoint_stub.dump(2));
        }
    } catch (const scheduler::TaskTimeout &) {
        // gem5art kills the job; record and let the task layer see it.
        finish(RunOutcome::Timeout, "TIMEOUT",
               "job exceeded its timeout and was terminated");
        throw;
    } catch (const SimulatorCrash &e) {
        finish(RunOutcome::SimCrash, "FAILURE", e.what());
        return document(adb);
    } catch (const PanicError &e) {
        std::string msg = e.what();
        RunOutcome outcome =
            msg.find("Possible Deadlock") != std::string::npos
                ? RunOutcome::Deadlock
                : RunOutcome::SimCrash;
        finish(outcome, "FAILURE", msg);
        return document(adb);
    } catch (const FatalError &e) {
        std::string msg = e.what();
        bool unsupported =
            msg.find("cannot handle more than one core") !=
                std::string::npos ||
            msg.find("is not supported") != std::string::npos;
        finish(unsupported ? RunOutcome::Unsupported
                           : RunOutcome::Failure,
               "FAILURE", msg);
        return document(adb);
    } catch (const InjectedFault &e) {
        // Injected host faults model the simulator process dying:
        // transient, so the tasks layer may retry this run.
        finish(RunOutcome::SimCrash, "FAILURE", e.what());
        return document(adb);
    } catch (const std::exception &e) {
        // Anything else (bad file, parse error, ...) still terminates
        // the document: failed runs are data, never stuck at RUNNING.
        finish(RunOutcome::Failure, "FAILURE", e.what());
        return document(adb);
    }

    // --- gem5-style output files ---
    writeFile(outdir + "/stats.txt", result.statsText);
    writeFile(outdir + "/system.terminal", result.consoleText);
    writeFile(outdir + "/results.json", result.toJson().dump(2));

    // --- archive the results in the database ---
    std::string results_blob = adb.putBlob(result.toJson().dump());
    Json fields = Json::object();
    fields["exitCause"] = result.exitCause;
    fields["exitCode"] = result.exitCode;
    fields["simTicks"] = result.simTicks;
    fields["roiTicks"] = result.roiTicks();
    fields["workBeginTick"] = result.workBeginTick;
    fields["workEndTick"] = result.workEndTick;
    fields["totalInsts"] = result.totalInsts;
    fields["resultsBlob"] = results_blob;
    fields["stats"] = result.stats;
    if (!result.archMd5.empty())
        fields["archMd5"] = result.archMd5;
    if (!result.errInject.isNull())
        fields["errInject"] = result.errInject;
    if (restored_from_ckpt)
        fields["restoredBootHash"] = bootHashStr;
    if (checkpoint_stub.isObject())
        fields["checkpoint"] = checkpoint_stub;
    update(fields);

    bool se_success =
        result.exitCause == "exiting with last active thread context" &&
        result.exitCode == 0;
    bool checkpointed = result.exitCause == "checkpoint";
    if (result.success() || se_success || checkpointed)
        finish(RunOutcome::Success, "SUCCESS", "");
    else if (result.limitReached)
        finish(RunOutcome::Timeout, "TIMEOUT",
               "simulate() limit reached before the guest finished");
    else if (result.exitCause == "guest kernel panicked")
        finish(RunOutcome::KernelPanic, "FAILURE",
               "guest kernel panicked");
    else
        finish(RunOutcome::Failure, "FAILURE", result.exitCause);

    return document(adb);
}

bool
Gem5Run::wireEligible() const
{
    // Explicit checkpoint/restore params need the parent's blob store
    // mid-simulation; such runs keep the local path.
    return params.getString("checkpoint_to", "").empty() &&
           params.getString("restore_from", "").empty();
}

Json
Gem5Run::wireSpec() const
{
    Json spec = Json::object();
    spec["name"] = runName;
    spec["gem5Binary"] = gem5Binary;
    if (!linuxBinary.empty())
        spec["linuxBinary"] = linuxBinary;
    if (!diskImage.empty())
        spec["diskImage"] = diskImage;
    if (!workloadBinary.empty())
        spec["workloadBinary"] = workloadBinary;
    spec["params"] = params;
    return spec;
}

Json
Gem5Run::simulateWire(const Json &spec, scheduler::CancelToken *token)
{
    Json out = Json::object();
    auto fail = [&](RunOutcome o, const char *status,
                    const std::string &err) {
        out["outcome"] = runOutcomeName(o);
        out["status"] = status;
        if (!err.empty())
            out["error"] = err;
    };

    SimResult result;
    try {
        // Same injectable host-level failure as the local path.
        fault::checkpoint("run.execute");
        FsConfig cfg = assembleConfig(
            spec.getString("gem5Binary"),
            spec.getString("linuxBinary", ""),
            spec.getString("diskImage", ""),
            spec.getString("workloadBinary", ""),
            spec.contains("params") ? spec.at("params") : Json::object());
        const Json &params = spec.at("params");
        Tick max_ticks =
            Tick(params.getInt("max_ticks", 2'000'000'000'000));
        // No boot-checkpoint tier here: the parent's in-memory
        // checkpoint cache does not cross the process boundary. The
        // results are identical either way; only the boot is slower.
        FsSystem system(cfg);
        result = system.run(max_ticks, token);
    } catch (const scheduler::TaskTimeout &) {
        fail(RunOutcome::Timeout, "TIMEOUT",
             "job exceeded its timeout and was terminated");
        out["schedulerTimeout"] = true;
        return out;
    } catch (const SimulatorCrash &e) {
        fail(RunOutcome::SimCrash, "FAILURE", e.what());
        return out;
    } catch (const PanicError &e) {
        std::string msg = e.what();
        RunOutcome outcome =
            msg.find("Possible Deadlock") != std::string::npos
                ? RunOutcome::Deadlock
                : RunOutcome::SimCrash;
        fail(outcome, "FAILURE", msg);
        return out;
    } catch (const FatalError &e) {
        std::string msg = e.what();
        bool unsupported =
            msg.find("cannot handle more than one core") !=
                std::string::npos ||
            msg.find("is not supported") != std::string::npos;
        fail(unsupported ? RunOutcome::Unsupported : RunOutcome::Failure,
             "FAILURE", msg);
        return out;
    } catch (const InjectedFault &e) {
        fail(RunOutcome::SimCrash, "FAILURE", e.what());
        return out;
    } catch (const std::exception &e) {
        fail(RunOutcome::Failure, "FAILURE", e.what());
        return out;
    }

    Json fields = Json::object();
    fields["exitCause"] = result.exitCause;
    fields["exitCode"] = result.exitCode;
    fields["simTicks"] = result.simTicks;
    fields["roiTicks"] = result.roiTicks();
    fields["workBeginTick"] = result.workBeginTick;
    fields["workEndTick"] = result.workEndTick;
    fields["totalInsts"] = result.totalInsts;
    fields["stats"] = result.stats;
    if (!result.archMd5.empty())
        fields["archMd5"] = result.archMd5;
    if (!result.errInject.isNull())
        fields["errInject"] = result.errInject;
    out["fields"] = std::move(fields);
    out["statsText"] = result.statsText;
    out["consoleText"] = result.consoleText;
    out["resultsJson"] = result.toJson().dump();

    bool se_success =
        result.exitCause == "exiting with last active thread context" &&
        result.exitCode == 0;
    if (result.success() || se_success)
        fail(RunOutcome::Success, "SUCCESS", "");
    else if (result.limitReached)
        fail(RunOutcome::Timeout, "TIMEOUT",
             "simulate() limit reached before the guest finished");
    else if (result.exitCause == "guest kernel panicked")
        fail(RunOutcome::KernelPanic, "FAILURE",
             "guest kernel panicked");
    else
        fail(RunOutcome::Failure, "FAILURE", result.exitCause);
    return out;
}

void
Gem5Run::markRunning(ArtifactDb &adb)
{
    adb.runs().updateOne(
        Json::object({{"_id", Json(runId)}}),
        Json::object({{"$set",
                       Json::object({{"status", Json("RUNNING")},
                                     {"startedAt",
                                      Json(isoTimestamp())}})}}));
}

Json
Gem5Run::commitWire(ArtifactDb &adb, const Json &wire, double start_wall)
{
    auto update = [&](const Json &fields) {
        adb.runs().updateOne(Json::object({{"_id", Json(runId)}}),
                             Json::object({{"$set", fields}}));
    };

    // Same per-attempt span/record shape as the local path, so traces
    // and provenance read identically whichever path executed the run.
    std::optional<tracing::Span> span;
    if (tracing::enabled()) {
        span.emplace("run:" + runName + ":commit", "run");
        span->arg("inputHash", Json(inputHashStr));
    }

    if (wire.contains("fields")) {
        std::string results_json = wire.getString("resultsJson");
        writeFile(outdir + "/stats.txt", wire.getString("statsText"));
        writeFile(outdir + "/system.terminal",
                  wire.getString("consoleText"));
        writeFile(outdir + "/results.json",
                  Json::parse(results_json).dump(2));

        Json fields = wire.at("fields");
        fields["resultsBlob"] = adb.putBlob(results_json);
        update(fields);
    }

    RunOutcome outcome = classify(wire); // wire carries "outcome"
    std::string error = wire.getString("error", "");
    Json fields = Json::object();
    fields["status"] = wire.getString("status", "FAILURE");
    fields["outcome"] = runOutcomeName(outcome);
    if (!error.empty())
        fields["error"] = error;
    double wall = monotonicSeconds() - start_wall;
    fields["wallSeconds"] = wall;
    fields["finishedAt"] = isoTimestamp();
    Json doc = document(adb);
    Json attempts =
        doc.contains("attempts") ? doc.at("attempts") : Json::array();
    Json rec = Json::object();
    rec["attempt"] = std::int64_t(attempts.size()) + 1;
    rec["outcome"] = runOutcomeName(outcome);
    rec["wallSeconds"] = wall;
    if (!error.empty())
        rec["error"] = error;
    attempts.push(std::move(rec));
    fields["attempts"] = std::move(attempts);
    update(fields);
    if (span)
        span->arg("outcome", Json(runOutcomeName(outcome)));

    if (wire.getBool("schedulerTimeout", false))
        throw scheduler::TaskTimeout(
            "run '" + runName + "' exceeded its timeout in a worker");
    return document(adb);
}

Json
Gem5Run::recordWorkerLoss(ArtifactDb &adb, const std::string &error,
                          bool final, double start_wall)
{
    // A lost worker is morally a simulator crash: transient host
    // trouble, retryable, archived in the attempts provenance.
    double wall = monotonicSeconds() - start_wall;
    Json doc = document(adb);
    Json attempts =
        doc.contains("attempts") ? doc.at("attempts") : Json::array();
    Json rec = Json::object();
    rec["attempt"] = std::int64_t(attempts.size()) + 1;
    rec["outcome"] = runOutcomeName(RunOutcome::SimCrash);
    rec["wallSeconds"] = wall;
    rec["error"] = error;
    rec["workerLost"] = true;
    attempts.push(std::move(rec));
    Json fields = Json::object();
    fields["attempts"] = std::move(attempts);
    if (final) {
        fields["status"] = "FAILURE";
        fields["outcome"] = runOutcomeName(RunOutcome::SimCrash);
        fields["error"] = error;
        fields["wallSeconds"] = wall;
        fields["finishedAt"] = isoTimestamp();
    }
    adb.runs().updateOne(Json::object({{"_id", Json(runId)}}),
                         Json::object({{"$set", fields}}));
    return document(adb);
}

} // namespace g5::art
