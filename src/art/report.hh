/**
 * @file
 * Result analysis helpers — the role Jupyter + Matplotlib play in the
 * paper's use-case 1 ("we created a Jupyter Notebook instance to
 * analyze data and automatically create graphs"): pull runs out of the
 * database with a query, tabulate selected fields as CSV, and render
 * quick terminal bar charts.
 */

#ifndef G5_ART_REPORT_HH
#define G5_ART_REPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "art/artifact.hh"

namespace g5::art
{

/**
 * Export matching run documents as CSV.
 *
 * @param adb     the database.
 * @param query   Mongo-style filter over run documents.
 * @param columns dotted field paths ("name", "params.cpu",
 *                "stats.cpu0.numInsts"); missing fields render empty.
 * @return header + one row per matching run.
 */
std::string runsToCsv(ArtifactDb &adb, const Json &query,
                      const std::vector<std::string> &columns);

/**
 * Render a horizontal ASCII bar chart.
 *
 * @param rows  (label, value) pairs; values must be >= 0.
 * @param width maximum bar width in characters.
 */
std::string asciiBarChart(
    const std::vector<std::pair<std::string, double>> &rows,
    unsigned width = 50);

/**
 * Collect one numeric field from matching runs as (run name, value).
 * Non-numeric / missing fields are skipped.
 */
std::vector<std::pair<std::string, double>>
collectMetric(ArtifactDb &adb, const Json &query,
              const std::string &field);

} // namespace g5::art

#endif // G5_ART_REPORT_HH
