#include "art/workspace.hh"

#include <filesystem>
#include <fstream>

#include "base/logging.hh"
#include "base/md5.hh"
#include "base/uuid.hh"
#include "sim/fs/kernel.hh"

namespace stdfs = std::filesystem;

namespace g5::art
{

namespace
{

void
writeFile(const std::string &path, const std::string &bytes)
{
    stdfs::path p(path);
    if (p.has_parent_path())
        stdfs::create_directories(p.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("Workspace: cannot write '" + path + "'");
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

} // anonymous namespace

Workspace::Workspace(const std::string &root, const std::string &db_dir)
{
    stdfs::path base(root);
    stdfs::create_directories(base);
    rootDir = (base / ("ws-" + Uuid::generate().str().substr(0, 8)))
                  .string();
    stdfs::create_directories(rootDir);

    database = db_dir.empty()
                   ? std::make_shared<db::Database>()
                   : std::make_shared<db::Database>(db_dir);
    artifactDb = std::make_unique<ArtifactDb>(database);
}

Artifact
Workspace::repoArtifact(const std::string &name, const std::string &url,
                        const std::string &revision)
{
    Artifact::Params params;
    params.command = "git clone " + url;
    params.typ = "git repo";
    params.name = name;
    params.cwd = rootDir;
    params.documentation = name + " source repository";
    params.gitUrl = url;
    params.gitHash = revision;
    return Artifact::registerArtifact(*artifactDb, params);
}

Artifact
Workspace::gem5Repo()
{
    return repoArtifact("gem5", "https://gem5.googlesource.com/",
                        "440f0bc579fb8b10da7181");
}

Workspace::Item
Workspace::gem5Binary(const std::string &version,
                      const std::string &static_config)
{
    Artifact repo = gem5Repo();

    // The build descriptor stands in for the compiled simulator: the
    // version selects the bug census, the static configuration mirrors
    // "scons build/X86/gem5.opt".
    Json binary = Json::object();
    binary["kind"] = "gem5-binary";
    binary["version"] = version;
    binary["staticConfig"] = static_config;
    binary["compiler"] = "gcc 7.5";
    std::string path = rootDir + "/gem5/build/" + static_config +
                       "/gem5-" + version + ".opt";
    writeFile(path, binary.dump(2));

    Artifact::Params params;
    params.command = "cd gem5; git checkout 440f0bc579fb8b10da7181;\n"
                     "scons build/" +
                     static_config + "/gem5.opt -j8";
    params.typ = "gem5 binary";
    params.name = "gem5";
    params.cwd = rootDir + "/gem5";
    params.path = path;
    params.inputs = {repo.hash()};
    params.documentation =
        "gem5 " + version + " binary, " + static_config +
        " static configuration, compiled with GCC 7.5";
    Artifact binary_artifact =
        Artifact::registerArtifact(*artifactDb, params);
    return Item{path, binary_artifact, repo};
}

Workspace::Item
Workspace::kernel(const std::string &version)
{
    Artifact repo = repoArtifact(
        "linux-stable",
        "https://git.kernel.org/pub/scm/linux/kernel/git/stable/"
        "linux.git",
        "v" + version);

    sim::fs::KernelSpec spec = sim::fs::KernelSpec::forVersion(version);
    std::string path = rootDir + "/linux-stable/vmlinux-" + version;
    spec.save(path);

    Artifact::Params params;
    params.command = "cd linux-stable; git checkout v" + version +
                     "; make -j8 vmlinux";
    params.typ = "kernel";
    params.name = "vmlinux-" + version;
    params.cwd = rootDir + "/linux-stable";
    params.path = path;
    params.inputs = {repo.hash()};
    params.documentation = "Linux kernel " + version +
                           " built with the gem5-resources config";
    Artifact artifact = Artifact::registerArtifact(*artifactDb, params);
    return Item{path, artifact, repo};
}

Workspace::Item
Workspace::disk(const std::string &name,
                const sim::fs::DiskImagePtr &image,
                const std::string &source_repo_name)
{
    Artifact repo = repoArtifact(
        source_repo_name,
        "https://gem5.googlesource.com/public/gem5-resources",
        "c5f5c70d0291e105444f534cf538ea40e4ddcb96");

    std::string path = rootDir + "/disks/" + name + ".img";
    image->save(path);

    Artifact::Params params;
    params.command = "packer build " + name + ".json";
    params.typ = "disk image";
    params.name = name;
    params.cwd = rootDir + "/disks";
    params.path = path;
    params.inputs = {repo.hash()};
    params.documentation =
        "S5DK disk image '" + name + "' built by the packer template";
    Artifact artifact = Artifact::registerArtifact(*artifactDb, params);
    return Item{path, artifact, repo};
}

Workspace::Item
Workspace::runScript(const std::string &name,
                     const std::string &description)
{
    Artifact repo = repoArtifact(
        "g5art-experiments",
        "https://example.org/experiments.git",
        Md5::hashString(name).substr(0, 20));

    std::string path = rootDir + "/configs/" + name;
    writeFile(path, "# run script: " + name + "\n# " + description +
                        "\n");

    Artifact::Params params;
    params.command = "git clone https://example.org/experiments.git";
    params.typ = "run script";
    params.name = name;
    params.cwd = rootDir + "/configs";
    params.path = path;
    params.inputs = {repo.hash()};
    params.documentation = description;
    Artifact artifact = Artifact::registerArtifact(*artifactDb, params);
    return Item{path, artifact, repo};
}

std::string
Workspace::outdir(const std::string &run_name) const
{
    return rootDir + "/results/" + run_name;
}

} // namespace g5::art
