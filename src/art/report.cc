#include "art/report.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/str.hh"

namespace g5::art
{

namespace
{

/** Escape one CSV field (RFC 4180 quoting). */
std::string
csvField(const std::string &value)
{
    if (value.find_first_of(",\"\n") == std::string::npos)
        return value;
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

std::string
renderValue(const Json *v)
{
    if (!v || v->isNull())
        return "";
    if (v->isString())
        return v->asString();
    if (v->isBool())
        return v->asBool() ? "true" : "false";
    if (v->isInt())
        return std::to_string(v->asInt());
    if (v->isDouble())
        return csprintf("%.6g", v->asDouble());
    return v->dump();
}

} // anonymous namespace

std::string
runsToCsv(ArtifactDb &adb, const Json &query,
          const std::vector<std::string> &columns)
{
    if (columns.empty())
        fatal("runsToCsv: need at least one column");

    std::vector<std::string> header;
    // Split each dotted column path once up front instead of per row.
    std::vector<JsonPath> paths;
    for (const auto &col : columns) {
        header.push_back(csvField(col));
        paths.emplace_back(col);
    }
    std::string out = join(header, ",") + "\n";

    for (const auto &doc : adb.runs().find(query)) {
        std::vector<std::string> row;
        for (const auto &path : paths)
            row.push_back(csvField(renderValue(path.resolve(doc))));
        out += join(row, ",") + "\n";
    }
    return out;
}

std::string
asciiBarChart(const std::vector<std::pair<std::string, double>> &rows,
              unsigned width)
{
    if (rows.empty())
        return "(no data)\n";

    double max_val = 0;
    std::size_t label_w = 0;
    for (const auto &row : rows) {
        if (row.second < 0)
            fatal("asciiBarChart: negative values are not drawable");
        max_val = std::max(max_val, row.second);
        label_w = std::max(label_w, row.first.size());
    }

    std::string out;
    for (const auto &row : rows) {
        unsigned bar =
            max_val > 0 ? unsigned(std::lround(row.second / max_val *
                                               width))
                        : 0;
        out += csprintf("%-*s |%-*s %.4g\n", int(label_w),
                        row.first.c_str(), int(width),
                        std::string(bar, '#').c_str(), row.second);
    }
    return out;
}

std::vector<std::pair<std::string, double>>
collectMetric(ArtifactDb &adb, const Json &query,
              const std::string &field)
{
    std::vector<std::pair<std::string, double>> out;
    for (const auto &doc : adb.runs().find(query)) {
        const Json *v = doc.find(field);
        if (v && v->isNumber())
            out.emplace_back(doc.getString("name"), v->asDouble());
    }
    return out;
}

} // namespace g5::art
