/**
 * @file
 * The tasks layer of g5art — the counterpart of gem5art-tasks
 * (Section IV-D).
 *
 * Run objects become jobs on an external scheduler: the Threaded
 * backend plays Celery / Python multiprocessing, the Inline backend is
 * "no job scheduler at all". Timeouts come from each run's registered
 * timeout, enforced cooperatively through the simulator's event loop.
 *
 * Runs execute through the content-addressed run cache by default: a
 * run whose inputHash already has a deterministic terminal result in
 * the database is answered from that document instead of re-simulated.
 * Disable per-Tasks with useCache=false, or globally with the
 * G5ART_NO_CACHE environment variable.
 */

#ifndef G5_ART_TASKS_HH
#define G5_ART_TASKS_HH

#include <memory>
#include <vector>

#include "art/run.hh"
#include "scheduler/task_queue.hh"

namespace g5::art
{

class Tasks
{
  public:
    using Backend = scheduler::TaskQueue::Backend;

    /**
     * @param adb       shared artifact database.
     * @param workers   worker count (ignored by the Inline backend);
     *                  0 saturates the host (one per hardware thread).
     * @param backend   execution backend.
     * @param use_cache serve repeat runs from the run-result cache.
     */
    Tasks(ArtifactDb &adb, unsigned workers = 0,
          Backend backend = Backend::Threaded, bool use_cache = true);

    /**
     * Submit a run for execution (the launch script's apply_async).
     * The run's own timeout governs the job.
     */
    scheduler::TaskFuturePtr applyAsync(Gem5Run run);

    /**
     * Submit a whole sweep at once: one lock acquisition and one pool
     * wake-up for all runs instead of one per run.
     */
    std::vector<scheduler::TaskFuturePtr>
    applyAsyncBatch(std::vector<Gem5Run> runs);

    /** Toggle run-result cache usage for subsequent submissions. */
    void setUseCache(bool use) { useCache = use; }

    /** Block until every submitted run reached a terminal state. */
    void waitAll() { queue.waitAll(); }

    /** Scheduler-side state counts (O(1)). */
    Json summary() const { return queue.summary(); }

  private:
    scheduler::TaskFn taskFor(Gem5Run run);

    ArtifactDb &adb;
    scheduler::TaskQueue queue;
    bool useCache;
};

} // namespace g5::art

#endif // G5_ART_TASKS_HH
