/**
 * @file
 * The tasks layer of g5art — the counterpart of gem5art-tasks
 * (Section IV-D).
 *
 * Run objects become jobs on an external scheduler: the Threaded
 * backend plays Celery / Python multiprocessing, the Inline backend is
 * "no job scheduler at all". Timeouts come from each run's registered
 * timeout, enforced cooperatively through the simulator's event loop.
 */

#ifndef G5_ART_TASKS_HH
#define G5_ART_TASKS_HH

#include <memory>

#include "art/run.hh"
#include "scheduler/task_queue.hh"

namespace g5::art
{

class Tasks
{
  public:
    using Backend = scheduler::TaskQueue::Backend;

    /**
     * @param adb     shared artifact database.
     * @param workers worker count (ignored by the Inline backend).
     */
    Tasks(ArtifactDb &adb, unsigned workers = 2,
          Backend backend = Backend::Threaded);

    /**
     * Submit a run for execution (the launch script's apply_async).
     * The run's own timeout governs the job.
     */
    scheduler::TaskFuturePtr applyAsync(Gem5Run run);

    /** Block until every submitted run reached a terminal state. */
    void waitAll() { queue.waitAll(); }

    /** Scheduler-side state counts. */
    Json summary() const { return queue.summary(); }

  private:
    ArtifactDb &adb;
    scheduler::TaskQueue queue;
};

} // namespace g5::art

#endif // G5_ART_TASKS_HH
