/**
 * @file
 * The tasks layer of g5art — the counterpart of gem5art-tasks
 * (Section IV-D).
 *
 * Run objects become jobs on an external scheduler: the Threaded
 * backend plays Celery / Python multiprocessing, the Inline backend is
 * "no job scheduler at all". Timeouts come from each run's registered
 * timeout, enforced cooperatively through the simulator's event loop.
 *
 * Runs execute through the content-addressed run cache by default: a
 * run whose inputHash already has a deterministic terminal result in
 * the database is answered from that document instead of re-simulated.
 * Disable per-Tasks with useCache=false, or globally with the
 * G5ART_NO_CACHE environment variable.
 *
 * Fault tolerance: fresh (non-cached) transient outcomes — SimCrash,
 * the segfault class — are surfaced to the scheduler as failures so the
 * RetryPolicy can re-run them with exponential backoff. Deterministic
 * outcomes (KernelPanic, Unsupported, tick-limit Timeout) and cached
 * documents are final on the first attempt. The default policy is
 * RetryPolicy::transientFaults(); override with setRetryPolicy().
 *
 * Distributed execution: with G5_WORKERS set (a count, or "auto"),
 * Tasks forks a scheduler::WorkerPool of worker *processes* before the
 * thread pool starts, and wire-eligible runs simulate in a worker —
 * the spec crosses as a content-addressed blob reference, the result
 * commits parent-side through the pool's fencing tokens. A worker
 * SIGKILLed (or lease-expired) mid-run surfaces as WorkerLost,
 * archived in the run doc's "attempts" and retried like any other
 * transient fault; if the pool dies entirely, runs fall back to the
 * in-process path. G5_WORKERS unset or 0 keeps everything in-process.
 */

#ifndef G5_ART_TASKS_HH
#define G5_ART_TASKS_HH

#include <functional>
#include <memory>
#include <vector>

#include "art/run.hh"
#include "scheduler/task_queue.hh"

namespace g5::art
{

/**
 * Thrown by the task wrapper when a fresh run produced a transient
 * outcome (SimCrash) and attempts remain: unwinding with an exception
 * is what lets the scheduler's RetryPolicy classify and re-enqueue the
 * job. Carries the terminal run document of the failed attempt.
 */
class TransientRunError : public std::runtime_error
{
  public:
    TransientRunError(const std::string &msg, Json doc)
        : std::runtime_error(msg), runDoc(std::move(doc))
    {}

    const Json &document() const { return runDoc; }

  private:
    Json runDoc;
};

class Tasks
{
  public:
    using Backend = scheduler::TaskQueue::Backend;

    /** Callback fired after every attempt with the run document. */
    using RunHook = std::function<void(const Gem5Run &, const Json &)>;

    /**
     * @param adb       shared artifact database.
     * @param workers   worker count (ignored by the Inline backend);
     *                  0 saturates the host (one per hardware thread).
     * @param backend   execution backend.
     * @param use_cache serve repeat runs from the run-result cache.
     */
    Tasks(ArtifactDb &adb, unsigned workers = 0,
          Backend backend = Backend::Threaded, bool use_cache = true);

    /**
     * Submit a run for execution (the launch script's apply_async).
     * The run's own timeout governs the job.
     */
    scheduler::TaskFuturePtr applyAsync(Gem5Run run);

    /**
     * Submit a whole sweep at once: one lock acquisition and one pool
     * wake-up for all runs instead of one per run.
     */
    std::vector<scheduler::TaskFuturePtr>
    applyAsyncBatch(std::vector<Gem5Run> runs);

    /**
     * Submit a run that must not start before @p after is terminal —
     * the error study's pairing primitive: the checker replay is
     * submitted dependent on its main (injected) run so the pair's
     * documents settle in order. Ordering only: the dependent run
     * executes whatever the dependency's outcome.
     */
    scheduler::TaskFuturePtr
    applyAsyncAfter(Gem5Run run, scheduler::TaskFuturePtr after);

    /** Toggle run-result cache usage for subsequent submissions. */
    void setUseCache(bool use) { useCache = use; }

    /**
     * Replace the retry policy applied to subsequent submissions.
     * RetryPolicy::none() disables retries entirely.
     */
    void setRetryPolicy(scheduler::RetryPolicy policy)
    {
        retryPolicy = std::move(policy);
    }

    /**
     * Install a completion hook invoked (on the worker thread) with the
     * run's document after every attempt — terminal or transient. The
     * sweep journal uses this to persist per-run progress.
     */
    void setOnComplete(RunHook hook) { onComplete = std::move(hook); }

    /** Block until every submitted run reached a terminal state. */
    void waitAll() { queue.waitAll(); }

    /** Cancel queued runs and request cancellation of running ones. */
    void cancelAll() { queue.cancelAll(); }

    /** Scheduler-side state counts (O(1)). */
    Json summary() const { return queue.summary(); }

    /** The underlying scheduler (watchdog/drain tuning). */
    scheduler::TaskQueue &scheduler() { return queue; }

    /**
     * The multi-process worker pool (nullptr unless G5_WORKERS enabled
     * it). Tests use it to find worker PIDs to SIGKILL.
     */
    std::shared_ptr<scheduler::WorkerPool> workerPool() const
    {
        return procPool;
    }

  private:
    scheduler::TaskFn taskFor(Gem5Run run);

    ArtifactDb &adb;
    /** Declared before queue: workers must fork before threads spawn. */
    std::shared_ptr<scheduler::WorkerPool> procPool;
    scheduler::TaskQueue queue;
    bool useCache;
    scheduler::RetryPolicy retryPolicy =
        scheduler::RetryPolicy::transientFaults();
    RunHook onComplete;
};

} // namespace g5::art

#endif // G5_ART_TASKS_HH
