#include "db/query.hh"

#include "base/logging.hh"

namespace g5::db
{

namespace
{

/** Total order over comparable Json scalars; returns false on mixed types
 *  other than int/double. Sets @p ok accordingly. */
int
compareValues(const Json &a, const Json &b, bool &ok)
{
    ok = true;
    if (a.isNumber() && b.isNumber()) {
        double x = a.asDouble();
        double y = b.asDouble();
        return x < y ? -1 : (x > y ? 1 : 0);
    }
    if (a.isString() && b.isString())
        return a.asString().compare(b.asString());
    if (a.isBool() && b.isBool())
        return int(a.asBool()) - int(b.asBool());
    ok = false;
    return 0;
}

bool
matchOperators(const Json *field, const Json &ops)
{
    for (const auto &kv : ops.asObject()) {
        const std::string &op = kv.first;
        const Json &operand = kv.second;

        if (op == "$exists") {
            bool want = operand.isBool() ? operand.asBool() : true;
            if ((field != nullptr) != want)
                return false;
            continue;
        }

        if (op == "$eq") {
            if (!field || *field != operand)
                return false;
            continue;
        }
        if (op == "$ne") {
            if (field && *field == operand)
                return false;
            continue;
        }
        if (op == "$in") {
            if (!operand.isArray())
                fatal("query: $in needs an array operand");
            if (!field)
                return false;
            bool found = false;
            for (const auto &cand : operand.asArray()) {
                if (*field == cand) {
                    found = true;
                    break;
                }
            }
            if (!found)
                return false;
            continue;
        }
        if (op == "$nin") {
            if (!operand.isArray())
                fatal("query: $nin needs an array operand");
            if (field) {
                for (const auto &cand : operand.asArray())
                    if (*field == cand)
                        return false;
            }
            continue;
        }

        if (op == "$gt" || op == "$gte" || op == "$lt" || op == "$lte") {
            if (!field)
                return false;
            bool ok = false;
            int c = compareValues(*field, operand, ok);
            if (!ok)
                return false;
            if (op == "$gt" && !(c > 0))
                return false;
            if (op == "$gte" && !(c >= 0))
                return false;
            if (op == "$lt" && !(c < 0))
                return false;
            if (op == "$lte" && !(c <= 0))
                return false;
            continue;
        }

        fatal("query: unsupported operator '" + op + "'");
    }
    return true;
}

/** Literal equality, with Mongo's array-contains semantics. */
bool
matchLiteral(const Json *field, const Json &cond)
{
    if (!field)
        return false;
    if (*field == cond)
        return true;
    if (field->isArray()) {
        for (const auto &elem : field->asArray())
            if (elem == cond)
                return true;
    }
    return false;
}

} // anonymous namespace

bool
isOperatorObject(const Json &v)
{
    if (!v.isObject() || v.size() == 0)
        return false;
    for (const auto &kv : v.asObject())
        if (kv.first.empty() || kv.first[0] != '$')
            return false;
    return true;
}

const Json *
equalityOperand(const Json &cond)
{
    if (!isOperatorObject(cond))
        return &cond;
    if (cond.contains("$eq"))
        return &cond.at("$eq");
    return nullptr;
}

RangeBounds
rangeBounds(const Json &cond)
{
    RangeBounds rb;
    if (!isOperatorObject(cond))
        return rb;
    // Keep the tightest bound of each direction; matchOperators applies
    // the exact (strict vs inclusive) semantics to every candidate, so
    // the planner only needs each operand, not its strictness.
    auto tighter = [](const Json *cur, const Json &cand, int dir) {
        if (!cur)
            return &cand;
        bool ok = false;
        int c = compareValues(cand, *cur, ok);
        return (ok && c * dir > 0) ? &cand : cur;
    };
    for (const auto &kv : cond.asObject()) {
        if (kv.first == "$gt" || kv.first == "$gte")
            rb.lo = tighter(rb.lo, kv.second, 1);
        else if (kv.first == "$lt" || kv.first == "$lte")
            rb.hi = tighter(rb.hi, kv.second, -1);
    }
    return rb;
}

bool
matches(const Json &doc, const Json &query)
{
    if (!query.isObject())
        fatal("query: query must be a JSON object");

    for (const auto &kv : query.asObject()) {
        const std::string &key = kv.first;
        const Json &cond = kv.second;

        if (key == "$and") {
            for (const auto &sub : cond.asArray())
                if (!matches(doc, sub))
                    return false;
            continue;
        }
        if (key == "$or") {
            bool any = false;
            for (const auto &sub : cond.asArray()) {
                if (matches(doc, sub)) {
                    any = true;
                    break;
                }
            }
            if (!any)
                return false;
            continue;
        }
        if (key == "$not") {
            if (matches(doc, cond))
                return false;
            continue;
        }

        const Json *field = doc.find(key);
        if (isOperatorObject(cond)) {
            if (!matchOperators(field, cond))
                return false;
        } else {
            // Literal equality. An array field also matches when it
            // contains the literal (Mongo semantics).
            if (!matchLiteral(field, cond))
                return false;
        }
    }
    return true;
}

CompiledQuery::CompiledQuery(const Json &query)
{
    if (!query.isObject())
        fatal("query: query must be a JSON object");

    for (const auto &kv : query.asObject()) {
        const std::string &key = kv.first;
        const Json &cond = kv.second;

        if (key == "$and") {
            for (const auto &sub : cond.asArray())
                andSubs.emplace_back(sub);
            continue;
        }
        if (key == "$or") {
            hasOr = true;
            for (const auto &sub : cond.asArray())
                orSubs.emplace_back(sub);
            continue;
        }
        if (key == "$not") {
            notSubs.emplace_back(cond);
            continue;
        }

        fields.push_back({JsonPath(key), &cond, isOperatorObject(cond)});
    }
}

bool
CompiledQuery::matches(const Json &doc) const
{
    for (const auto &fc : fields) {
        const Json *field = fc.path.resolve(doc);
        if (fc.isOp) {
            if (!matchOperators(field, *fc.cond))
                return false;
        } else {
            if (!matchLiteral(field, *fc.cond))
                return false;
        }
    }
    for (const auto &sub : andSubs)
        if (!sub.matches(doc))
            return false;
    if (hasOr) {
        bool any = false;
        for (const auto &sub : orSubs) {
            if (sub.matches(doc)) {
                any = true;
                break;
            }
        }
        if (!any)
            return false;
    }
    for (const auto &sub : notSubs)
        if (sub.matches(doc))
            return false;
    return true;
}

} // namespace g5::db
