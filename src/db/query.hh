/**
 * @file
 * Mongo-style query matching over Json documents.
 *
 * A query is a Json object whose keys are dotted field paths and whose
 * values are either literals (equality) or operator objects:
 *
 *   {"type": "gem5 binary"}                       — equality
 *   {"runtime": {"$gt": 10, "$lte": 100}}         — comparisons
 *   {"name": {"$in": ["parsec", "npb"]}}          — membership
 *   {"git.hash": {"$exists": true}}               — presence
 *   {"$or": [{...}, {...}]}, {"$and": [...]}      — boolean combinators
 *
 * This is the slice of MongoDB's query language gem5art actually uses.
 */

#ifndef G5_DB_QUERY_HH
#define G5_DB_QUERY_HH

#include <vector>

#include "base/json.hh"

namespace g5::db
{

/** @return true when @p doc satisfies @p query. */
bool matches(const Json &doc, const Json &query);

/**
 * A query pre-compiled for repeated evaluation: every dotted field path
 * is split into a JsonPath once at construction, so scanning a
 * collection resolves each path with binary searches only — no per-
 * document string splitting or allocation. Collection::find/count/
 * deleteMany compile the query once per call and evaluate it against
 * every candidate document.
 *
 * The compiled form borrows operand values from the source query; the
 * query Json must outlive the CompiledQuery.
 */
class CompiledQuery
{
  public:
    explicit CompiledQuery(const Json &query);

    /** @return true when @p doc satisfies the compiled query. */
    bool matches(const Json &doc) const;

  private:
    struct FieldCond
    {
        JsonPath path;
        const Json *cond;   // borrowed from the source query
        bool isOp;          // operator object vs literal equality
    };

    std::vector<FieldCond> fields;
    std::vector<CompiledQuery> andSubs; // $and clauses
    std::vector<CompiledQuery> orSubs;  // $or clauses
    std::vector<CompiledQuery> notSubs; // $not clauses
    bool hasOr = false; // {"$or": []} matches nothing, not everything
};

/** @return true when @p v is an operator object ({"$gt": 3, ...}). */
bool isOperatorObject(const Json &v);

/**
 * Extract the equality operand of a per-field condition, when it has
 * one: a literal condition yields the literal, an operator object with
 * "$eq" yields its operand (the remaining operators still apply as a
 * residual filter). The query planner uses this to route conditions
 * through a field index.
 *
 * @return pointer to the operand, or nullptr when the condition is not
 *         an equality.
 */
const Json *equalityOperand(const Json &cond);

/**
 * The range bounds of a per-field condition, when it has any: an
 * operator object with $gt/$gte/$lt/$lte contributes its operands.
 * Like equalityOperand, the planner uses this to bound a sorted-index
 * probe; the full condition is always re-applied to every candidate,
 * so the bounds only need to be conservative (a superset is fine).
 */
struct RangeBounds
{
    const Json *lo = nullptr; // $gt/$gte operand (tightest)
    const Json *hi = nullptr; // $lt/$lte operand (tightest)

    /** @return true when at least one bound is present. */
    bool usable() const { return lo != nullptr || hi != nullptr; }
};

/**
 * Extract the range bounds of a per-field condition.
 * @return bounds with usable() == false when the condition carries no
 *         range operator (or is not an operator object).
 */
RangeBounds rangeBounds(const Json &cond);

} // namespace g5::db

#endif // G5_DB_QUERY_HH
