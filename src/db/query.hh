/**
 * @file
 * Mongo-style query matching over Json documents.
 *
 * A query is a Json object whose keys are dotted field paths and whose
 * values are either literals (equality) or operator objects:
 *
 *   {"type": "gem5 binary"}                       — equality
 *   {"runtime": {"$gt": 10, "$lte": 100}}         — comparisons
 *   {"name": {"$in": ["parsec", "npb"]}}          — membership
 *   {"git.hash": {"$exists": true}}               — presence
 *   {"$or": [{...}, {...}]}, {"$and": [...]}      — boolean combinators
 *
 * This is the slice of MongoDB's query language gem5art actually uses.
 */

#ifndef G5_DB_QUERY_HH
#define G5_DB_QUERY_HH

#include "base/json.hh"

namespace g5::db
{

/** @return true when @p doc satisfies @p query. */
bool matches(const Json &doc, const Json &query);

} // namespace g5::db

#endif // G5_DB_QUERY_HH
