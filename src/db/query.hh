/**
 * @file
 * Mongo-style query matching over Json documents.
 *
 * A query is a Json object whose keys are dotted field paths and whose
 * values are either literals (equality) or operator objects:
 *
 *   {"type": "gem5 binary"}                       — equality
 *   {"runtime": {"$gt": 10, "$lte": 100}}         — comparisons
 *   {"name": {"$in": ["parsec", "npb"]}}          — membership
 *   {"git.hash": {"$exists": true}}               — presence
 *   {"$or": [{...}, {...}]}, {"$and": [...]}      — boolean combinators
 *
 * This is the slice of MongoDB's query language gem5art actually uses.
 */

#ifndef G5_DB_QUERY_HH
#define G5_DB_QUERY_HH

#include "base/json.hh"

namespace g5::db
{

/** @return true when @p doc satisfies @p query. */
bool matches(const Json &doc, const Json &query);

/** @return true when @p v is an operator object ({"$gt": 3, ...}). */
bool isOperatorObject(const Json &v);

/**
 * Extract the equality operand of a per-field condition, when it has
 * one: a literal condition yields the literal, an operator object with
 * "$eq" yields its operand (the remaining operators still apply as a
 * residual filter). The query planner uses this to route conditions
 * through a field index.
 *
 * @return pointer to the operand, or nullptr when the condition is not
 *         an equality.
 */
const Json *equalityOperand(const Json &cond);

} // namespace g5::db

#endif // G5_DB_QUERY_HH
