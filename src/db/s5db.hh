/**
 * @file
 * The s5db1 binary on-disk record format for the document database:
 * length-prefixed, Md5Stream-hashed snapshot and WAL encodings that a
 * reader can mmap and replay without re-parsing JSON text.
 *
 * The format reuses the s5ckpt2 idiom (see sim/fs/checkpoint.hh): an
 * 8-byte ASCII magic, little-endian fixed-width integers, explicit
 * length prefixes so a loader can skip or bounds-check every record,
 * and MD5 digests computed over the payload bytes while they are
 * serialized so corruption and truncation are detected before a single
 * document is applied.
 *
 * Two file kinds share the document encoding (Json::dumpBinaryTo):
 *
 *   snapshot  "s5db1.s\n"  magic
 *             { u32 docLen, docBytes }*        one record per document
 *             u32 0                            end-of-records marker
 *             md5[16]                          digest of everything
 *                                              after the magic up to
 *                                              (and including) the
 *                                              end marker
 *
 *   WAL       "s5db1.w\n"  magic
 *             { u64 payloadLen, payload, md5[16](payload) }*   groups
 *
 * A WAL *group* is the unit of group commit: one frame holds every
 * operation the leader batched for a collection in one commit. Replay
 * verifies each frame's digest and applies complete groups only; a
 * torn tail (truncated frame or digest mismatch from a crash mid-
 * write) drops exactly the incomplete group and everything after it.
 *
 * A group's payload is a sequence of operation records, the binary
 * analogue of the legacy JSONL oplog lines:
 *
 *   'i' u32 docLen docBytes          insert
 *   'u' u32 docLen docBytes          update (upsert by _id)
 *   'd' u32 count { u32 idLen, id }* delete by _id
 */

#ifndef G5_DB_S5DB_HH
#define G5_DB_S5DB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace g5
{
class Json;
}

namespace g5::db::s5db
{

/** 8-byte magic opening a binary snapshot file. */
constexpr char snapMagic[9] = "s5db1.s\n";
/** 8-byte magic opening a binary WAL file. */
constexpr char walMagic[9] = "s5db1.w\n";
constexpr std::size_t magicLen = 8;

/** @return true when @p bytes begins with the binary WAL magic. */
bool isWal(std::string_view bytes);

/** @return true when @p bytes begins with the binary snapshot magic. */
bool isSnapshot(std::string_view bytes);

/**
 * Read-only view of a file, memory-mapped when the platform allows it
 * (falling back to an in-memory read). Replay and snapshot loads go
 * through this so a multi-MB collection image is paged in on demand
 * instead of being copied through a stream.
 */
class MmapFile
{
  public:
    explicit MmapFile(const std::string &path);
    ~MmapFile();

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /** @return the file's bytes (empty for a missing/empty file). */
    std::string_view view() const { return {base, len}; }

    /** @return true when the view is an actual mmap (not a copy). */
    bool mapped() const { return mappedRegion; }

  private:
    const char *base = nullptr;
    std::size_t len = 0;
    bool mappedRegion = false;
    std::string fallback;
};

// --- snapshot files ----------------------------------------------------

/**
 * Serialize a full snapshot image. @p each_doc is called with a
 * callback to invoke once per document (the caller owns iteration
 * order; it must be deterministic for byte-stable snapshots).
 */
std::string buildSnapshot(
    const std::function<void(const std::function<void(const Json &)> &)>
        &each_doc);

/**
 * Decode a snapshot image, invoking @p on_doc per document in file
 * order. Throws FatalError on a bad magic, digest mismatch, or
 * truncation — snapshots are written atomically (temp + rename), so
 * unlike a WAL tail, a damaged snapshot is real corruption.
 */
void readSnapshot(std::string_view bytes,
                  const std::function<void(Json)> &on_doc);

// --- WAL group framing -------------------------------------------------

/** Append one commit-group frame (length + payload + digest). */
void appendGroupFrame(std::string &out, std::string_view ops_payload);

struct WalReplayStats
{
    std::size_t groups = 0;     // complete groups applied
    std::size_t tornBytes = 0;  // bytes dropped after the last group
};

/**
 * Iterate the complete groups of a binary WAL image (after the magic),
 * invoking @p on_group_payload per verified frame. Stops at the first
 * torn or corrupt frame — committed-prefix semantics.
 */
WalReplayStats replayWal(
    std::string_view bytes,
    const std::function<void(std::string_view)> &on_group_payload);

// --- operation records (a group's payload) -----------------------------

void appendInsertOp(std::string &payload, const Json &doc);
void appendUpdateOp(std::string &payload, const Json &doc);
void appendDeleteOp(std::string &payload,
                    const std::vector<std::string> &ids);

/**
 * Decode a group payload, invoking @p on_upsert('i'|'u', doc) and
 * @p on_delete(ids) per record. Throws JsonError on malformed input
 * (the payload already passed its digest check, so this indicates a
 * logic error, not disk corruption).
 */
void forEachOp(std::string_view payload,
               const std::function<void(char, Json)> &on_upsert,
               const std::function<void(std::vector<std::string>)>
                   &on_delete);

} // namespace g5::db::s5db

#endif // G5_DB_S5DB_HH
