#include "db/collection.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "base/str.hh"
#include "base/uuid.hh"
#include "db/query.hh"
#include "db/s5db.hh"

namespace g5::db
{

namespace
{

/** Serialize a value so that equal values (including Int/Double pairs
 *  that compare equal) produce identical keys. */
void
canonicalize(const Json &value, std::string &out)
{
    if (value.isNumber()) {
        double d = value.asDouble();
        std::int64_t i = value.asInt();
        if (double(i) == d) {
            out += std::to_string(i);
            return;
        }
        Json(d).dumpTo(out);
        return;
    }
    if (value.isArray()) {
        out += '[';
        bool first = true;
        for (const auto &elem : value.asArray()) {
            if (!first)
                out += ',';
            first = false;
            canonicalize(elem, out);
        }
        out += ']';
        return;
    }
    if (value.isObject()) {
        out += '{';
        bool first = true;
        for (const auto &kv : value.asObject()) {
            if (!first)
                out += ',';
            first = false;
            Json(kv.first).dumpTo(out);
            out += ':';
            canonicalize(kv.second, out);
        }
        out += '}';
        return;
    }
    value.dumpTo(out);
}

/** FNV-1a 64 over an _id, forced nonzero (0 means "empty cell"). */
std::uint64_t
idHash(std::string_view id)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : id) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h ? h : 1;
}

/** Process-unique Collection instance ids (thread-local cache keys). */
std::atomic<std::uint64_t> nextInstId{1};

} // anonymous namespace

/**
 * The reader fast path's per-thread snapshot cache: a small direct-
 * mapped array of pinned Views keyed by collection instance id. In the
 * steady state a read costs one acquire load of the version counter; a
 * shared_ptr is only copied (one contended refcount bump) when the
 * writer has published a newer version since this thread last looked.
 * The pinned View also keeps the returned reference stable for the
 * duration of the read operation.
 */
namespace
{

struct TlsViewSlot
{
    std::uint64_t collId = 0;
    std::uint64_t version = 0;
    std::shared_ptr<const Collection::View> view;
};

constexpr std::size_t tlsViewSlots = 8;
thread_local std::array<TlsViewSlot, tlsViewSlots> tlsViewCache;

} // anonymous namespace

// --- index keys --------------------------------------------------------

std::string
Collection::indexKey(const Json &value)
{
    std::string out;
    canonicalize(value, out);
    return out;
}

Collection::IndexKey
Collection::indexKeyOf(const Json &value)
{
    // Class bytes order null < bool < number < string < composite so a
    // range scan never crosses a type boundary unnoticed.
    IndexKey k;
    switch (value.type()) {
      case Json::Type::Null:
        k.cls = 0;
        return k;
      case Json::Type::Bool:
        k.cls = 1;
        k.num = value.asBool() ? 1.0 : 0.0;
        return k;
      case Json::Type::Int:
      case Json::Type::Double:
        k.cls = 2;
        k.num = value.asDouble();
        if (std::isnan(k.num))
            k.num = 0.0; // keep operator< a strict weak order
        k.str = indexKey(value); // canonical digits break double ties
        return k;
      case Json::Type::String:
        k.cls = 3;
        k.str = value.asString();
        return k;
      case Json::Type::Array:
      case Json::Type::Object:
        k.cls = 4;
        k.str = indexKey(value);
        return k;
    }
    return k;
}

void
Collection::indexKeysFor(const Json &value, std::vector<IndexKey> &keys)
{
    keys.push_back(indexKeyOf(value));
    if (!value.isArray())
        return;
    for (const auto &elem : value.asArray()) {
        IndexKey k = indexKeyOf(elem);
        bool dup = false;
        for (const auto &seen : keys) {
            if (!(seen < k) && !(k < seen)) {
                dup = true;
                break;
            }
        }
        if (!dup)
            keys.push_back(std::move(k));
    }
}

// --- append-only bucket ------------------------------------------------

Collection::Bucket::~Bucket()
{
    Node *n = head.next.load(std::memory_order_relaxed);
    while (n != nullptr) {
        Node *next = n->next.load(std::memory_order_relaxed);
        delete n;
        n = next;
    }
}

void
Collection::Bucket::append(std::uint32_t slot)
{
    // The flag is stored BEFORE the cell (which is released): a reader
    // whose cell acquire observes the out-of-order slot is guaranteed
    // to observe unsorted too.
    if (seeded && slot <= lastSlot)
        unsorted.store(true, std::memory_order_relaxed);
    lastSlot = slot;
    seeded = true;
    if (tailUsed == nodeCap) {
        Node *n = new Node;
        tail->next.store(n, std::memory_order_release);
        tail = n;
        tailUsed = 0;
    }
    tail->cells[tailUsed++].store(slot, std::memory_order_release);
    count.fetch_add(1, std::memory_order_relaxed);
}

// --- View --------------------------------------------------------------

void
Collection::View::forEach(const std::function<void(const Json &)> &fn)
    const
{
    for (std::uint32_t s = 0; s < slotCount; ++s) {
        const Json *d = docAt(s);
        if (d != nullptr)
            fn(*d);
    }
}

const Json *
Collection::View::byId(std::string_view id) const
{
    std::uint32_t slot = probeId(*spine, *ids, slotCount, id);
    return slot == emptySlot ? nullptr : docAt(slot);
}

std::uint32_t
Collection::probeId(const Spine &spine, const IdTable &ids,
                    std::uint32_t slot_count, std::string_view id)
{
    std::uint64_t h = idHash(id);
    std::size_t i = h & ids.mask;
    for (;;) {
        std::uint64_t cell = ids.hashes[i].load(std::memory_order_acquire);
        if (cell == 0)
            return emptySlot;
        if (cell == h) {
            std::uint32_t s = ids.slots[i].load(std::memory_order_relaxed);
            if (s < slot_count) {
                const Json *d = spine[s >> chunkShift]
                                    ->docs[s & (chunkCap - 1)]
                                    .get();
                if (d != nullptr) {
                    const Json *did = d->find("_id");
                    if (did != nullptr && did->isString() &&
                        did->asString() == id) {
                        return s;
                    }
                }
            }
        }
        i = (i + 1) & ids.mask;
    }
}

// --- construction / publication ----------------------------------------

Collection::Collection(std::string name)
    : collName(std::move(name)),
      instId(nextInstId.fetch_add(1, std::memory_order_relaxed))
{
    wr.spine = std::make_shared<Spine>();
    wr.ids = std::make_shared<IdTable>(16);
    wr.indexes = std::make_shared<const IndexMap>();
    publish();
}

Collection::~Collection() = default;

void
Collection::publish()
{
    ++wr.version;
    auto v = std::make_shared<View>();
    v->spine = wr.spine;
    v->ids = wr.ids;
    v->indexes = wr.indexes;
    v->slotCount = wr.slotCount;
    v->liveCount = wr.liveCount;
    v->version = wr.version;
    // Order matters: the View first, then the version counter readers
    // poll — a reader observing version N is guaranteed to load a View
    // at least that new.
    pubView.store(std::move(v), std::memory_order_release);
    pubVersion.store(wr.version, std::memory_order_release);
}

std::shared_ptr<const Collection::View>
Collection::view() const
{
    return pubView.load(std::memory_order_acquire);
}

const Collection::View &
Collection::viewRef() const
{
    TlsViewSlot &e = tlsViewCache[instId % tlsViewSlots];
    std::uint64_t v = pubVersion.load(std::memory_order_acquire);
    if (e.collId != instId || e.version < v || !e.view) {
        e.view = pubView.load(std::memory_order_acquire);
        e.collId = instId;
        e.version = e.view->version;
    }
    return *e.view;
}

Collection::View
Collection::writerView() const
{
    View v;
    v.spine = wr.spine;
    v.ids = wr.ids;
    v.indexes = wr.indexes;
    v.slotCount = wr.slotCount;
    v.liveCount = wr.liveCount;
    v.version = wr.version;
    return v;
}

// --- writer-side storage primitives ------------------------------------

Collection::Chunk *
Collection::chunkForWrite(std::uint32_t slot)
{
    // COW both the spine and the chunk: a published View may share them.
    auto spine = std::make_shared<Spine>(*wr.spine);
    std::size_t ci = slot >> chunkShift;
    auto chunk = std::make_shared<Chunk>(*(*spine)[ci]);
    Chunk *raw = chunk.get();
    (*spine)[ci] = std::move(chunk);
    wr.spine = std::move(spine);
    return raw;
}

void
Collection::idInsertRaw(IdTable &t, std::uint64_t h, std::uint32_t slot)
{
    std::size_t i = h & t.mask;
    while (t.hashes[i].load(std::memory_order_relaxed) != 0)
        i = (i + 1) & t.mask;
    // Slot first, then the hash with release: a reader that acquires
    // the hash is guaranteed to read the matching slot.
    t.slots[i].store(slot, std::memory_order_relaxed);
    t.hashes[i].store(h, std::memory_order_release);
    ++t.filled;
}

void
Collection::idTableInsert(std::string_view id, std::uint32_t slot)
{
    if ((wr.ids->filled + 1) * 2 > wr.ids->hashes.size()) {
        // Half full: rebuild at 4x the live count, dropping entries
        // staled by deletes (only live documents are re-entered).
        std::size_t cap = 16;
        while (cap < std::size_t(wr.liveCount + 1) * 4)
            cap <<= 1;
        auto t = std::make_shared<IdTable>(cap);
        for (std::uint32_t s = 0; s < wr.slotCount; ++s) {
            const Json *d =
                (*wr.spine)[s >> chunkShift]->docs[s & (chunkCap - 1)].get();
            if (d == nullptr)
                continue;
            idInsertRaw(*t, idHash(d->getString("_id")), s);
        }
        wr.ids = std::move(t);
    }
    idInsertRaw(*wr.ids, idHash(id), slot);
}

void
Collection::bucketAppend(std::shared_ptr<IndexMap> &cow,
                         const std::string &field, IndexKey key,
                         std::uint32_t slot)
{
    const std::shared_ptr<const FieldIndex> &cur =
        cow ? cow->at(field) : wr.indexes->at(field);
    auto it = cur->buckets.find(key);
    if (it != cur->buckets.end()) {
        // Existing key: grow the shared bucket in place, no COW at all.
        it->second->append(slot);
        return;
    }
    // New distinct key: clone the directory (bucket pointers are
    // shared, so this costs one map copy) and the index map once.
    if (!cow)
        cow = std::make_shared<IndexMap>(*wr.indexes);
    auto fi = std::make_shared<FieldIndex>(*cur);
    auto bucket = std::make_shared<Bucket>();
    bucket->append(slot);
    fi->buckets.emplace(std::move(key), std::move(bucket));
    (*cow)[field] = std::move(fi);
}

void
Collection::indexDoc(const Json &doc, std::uint32_t slot)
{
    if (wr.indexes->empty())
        return;
    std::shared_ptr<IndexMap> cow;
    std::vector<IndexKey> keys;
    for (const auto &entry : *wr.indexes) {
        const Json *v = doc.find(entry.first);
        if (v == nullptr)
            continue; // sparse
        keys.clear();
        if (!v->isArray()) {
            // Scalar values (the overwhelmingly common case) have
            // exactly one key; skip the multikey vector entirely.
            bucketAppend(cow, entry.first, indexKeyOf(*v), slot);
            continue;
        }
        indexKeysFor(*v, keys);
        for (auto &key : keys)
            bucketAppend(cow, entry.first, std::move(key), slot);
    }
    if (cow)
        wr.indexes = std::move(cow);
}

void
Collection::indexDocDiff(const Json &new_doc, const Json &old_doc,
                         std::uint32_t slot)
{
    if (wr.indexes->empty())
        return;
    std::shared_ptr<IndexMap> cow;
    std::vector<IndexKey> nk, ok;
    auto same = [](const IndexKey &a, const IndexKey &b) {
        return !(a < b) && !(b < a);
    };
    for (const auto &entry : *wr.indexes) {
        const Json *nv = new_doc.find(entry.first);
        const Json *ov = old_doc.find(entry.first);
        nk.clear();
        ok.clear();
        if (nv != nullptr)
            indexKeysFor(*nv, nk);
        if (ov != nullptr)
            indexKeysFor(*ov, ok);
        for (auto &k : nk) {
            bool unchanged = false;
            for (const auto &o : ok) {
                if (same(k, o)) {
                    unchanged = true;
                    break;
                }
            }
            if (!unchanged)
                bucketAppend(cow, entry.first, std::move(k), slot);
        }
        // Keys the document left keep a stale cell behind; count them
        // toward the compaction trigger.
        for (const auto &o : ok) {
            bool still = false;
            for (const auto &k : nk) {
                if (same(k, o)) {
                    still = true;
                    break;
                }
            }
            if (!still)
                ++wr.garbage;
        }
    }
    if (cow)
        wr.indexes = std::move(cow);
}

std::uint32_t
Collection::appendDoc(Json &&doc, const std::string &id)
{
    return appendStored(std::make_shared<const Json>(std::move(doc)), id);
}

std::uint32_t
Collection::appendStored(std::shared_ptr<const Json> stored,
                         const std::string &id)
{
    std::uint32_t slot = wr.slotCount;
    std::size_t ci = slot >> chunkShift;
    if (ci == wr.spine->size()) {
        // Out of spine capacity: COW-grow geometrically. Published
        // Views iterate the old vector, so it is copied, never
        // resized; the doubled tail stays null until appends reach
        // it, which keeps total spine-copy work linear instead of
        // quadratic in the document count.
        auto spine =
            std::make_shared<Spine>(std::max<std::size_t>(4, ci * 2));
        std::copy(wr.spine->begin(), wr.spine->end(), spine->begin());
        wr.spine = std::move(spine);
    }
    if ((*wr.spine)[ci] == nullptr) {
        // Null tail entry: allocate the chunk in place even though the
        // spine may be shared — every reader bounds its spine indexing
        // by the slotCount its View published, so this element is
        // unreachable until the next publish().
        (*wr.spine)[ci] = std::make_shared<Chunk>();
    }
    const Json &ref = *stored;
    // Filling a never-published slot is the write-once append: the
    // store becomes visible to readers only through the next publish().
    (*wr.spine)[slot >> chunkShift]->docs[slot & (chunkCap - 1)] =
        std::move(stored);
    idTableInsert(id, slot);
    indexDoc(ref, slot);
    wr.slotCount = slot + 1;
    ++wr.liveCount;
    return slot;
}

std::size_t
Collection::removeSlots(const std::vector<std::uint32_t> &slots)
{
    if (slots.empty())
        return 0;
    auto spine = std::make_shared<Spine>(*wr.spine);
    std::size_t prev_ci = std::size_t(-1);
    Chunk *ch = nullptr;
    for (std::uint32_t s : slots) { // sorted: one COW per touched chunk
        std::size_t ci = s >> chunkShift;
        if (ci != prev_ci) {
            auto chunk = std::make_shared<Chunk>(*(*spine)[ci]);
            ch = chunk.get();
            (*spine)[ci] = std::move(chunk);
            prev_ci = ci;
        }
        ch->docs[s & (chunkCap - 1)].reset(); // tombstone
    }
    wr.spine = std::move(spine);
    wr.liveCount -= std::uint32_t(slots.size());
    wr.garbage += slots.size();
    return slots.size();
}

void
Collection::rebuildStorage()
{
    // Collect the live documents in insertion order; the Json objects
    // themselves are shared with old snapshots, never copied.
    std::vector<std::shared_ptr<const Json>> live;
    live.reserve(wr.liveCount);
    for (std::uint32_t s = 0; s < wr.slotCount; ++s) {
        const auto &p = (*wr.spine)[s >> chunkShift]->docs[s & (chunkCap - 1)];
        if (p)
            live.push_back(p);
    }

    auto spine = std::make_shared<Spine>();
    std::size_t cap = 16;
    while (cap < (live.size() + 1) * 4)
        cap <<= 1;
    auto ids = std::make_shared<IdTable>(cap);
    // Fresh directories with the same definitions but empty buckets.
    auto map = std::make_shared<IndexMap>();
    for (const auto &entry : *wr.indexes) {
        auto fi = std::make_shared<FieldIndex>();
        fi->unique = entry.second->unique;
        (*map)[entry.first] = std::move(fi);
    }
    wr.spine = std::move(spine);
    wr.ids = std::move(ids);
    wr.indexes = std::move(map);
    wr.slotCount = 0;
    wr.liveCount = 0;
    wr.garbage = 0;

    for (auto &p : live) {
        std::uint32_t slot = wr.slotCount;
        if ((slot >> chunkShift) == wr.spine->size())
            // Freshly-built spine: never published, mutate in place.
            wr.spine->push_back(std::make_shared<Chunk>());
        (*wr.spine)[slot >> chunkShift]->docs[slot & (chunkCap - 1)] = p;
        idTableInsert(p->getString("_id"), slot);
        indexDoc(*p, slot);
        wr.slotCount = slot + 1;
        ++wr.liveCount;
    }
}

void
Collection::maybeCompactStorage()
{
    // Tombstoned slots and stale index cells are reclaimed wholesale
    // once they outnumber the live documents (with a floor so small
    // collections never churn). Old snapshots keep the old structures
    // alive until their last reader drops them.
    if (wr.garbage > 64 && wr.garbage > wr.liveCount) {
        rebuildStorage();
        publish();
    }
}

// --- uniqueness --------------------------------------------------------

void
Collection::checkUnique(const Json &doc, std::string_view skip_id)
{
    for (const auto &entry : *wr.indexes) {
        const FieldIndex &fi = *entry.second;
        if (!fi.unique)
            continue;
        const std::string &field = entry.first;
        const Json *v = doc.find(field);
        if (v == nullptr || v->isNull())
            continue; // sparse semantics
        auto it = fi.buckets.find(indexKeyOf(*v));
        if (it == fi.buckets.end())
            continue;
        bool dup = false;
        it->second->forEachSlot([&](std::uint32_t s) {
            if (dup || s >= wr.slotCount)
                return;
            const Json *other =
                (*wr.spine)[s >> chunkShift]->docs[s & (chunkCap - 1)].get();
            if (other == nullptr)
                return; // staled by a delete
            const Json *oid = other->find("_id");
            if (oid != nullptr && oid->isString() &&
                oid->asString() == skip_id)
                return;
            const Json *ov = other->find(field);
            if (ov != nullptr && *ov == *v)
                dup = true;
        });
        if (dup) {
            throw DuplicateKeyError(
                "collection '" + collName + "': duplicate value " +
                v->dump() + " for unique field '" + field + "'");
        }
    }
}

// --- oplog -------------------------------------------------------------

void
Collection::logInsert(const Json &doc)
{
    if (!oplogEnabled)
        return;
    if (walFmt == WalFormat::Binary) {
        s5db::appendInsertOp(oplog, doc);
    } else {
        // Serialize straight into the append buffer: WAL records never
        // exist as a separate intermediate string.
        oplog += "{\"op\":\"i\",\"doc\":";
        doc.dumpTo(oplog);
        oplog += "}\n";
    }
    dirtyFlag.store(true, std::memory_order_release);
}

void
Collection::logUpdate(const Json &doc)
{
    if (!oplogEnabled)
        return;
    if (walFmt == WalFormat::Binary) {
        s5db::appendUpdateOp(oplog, doc);
    } else {
        oplog += "{\"op\":\"u\",\"doc\":";
        doc.dumpTo(oplog);
        oplog += "}\n";
    }
    dirtyFlag.store(true, std::memory_order_release);
}

void
Collection::logDelete(const std::vector<std::string> &ids)
{
    if (!oplogEnabled || ids.empty())
        return;
    if (walFmt == WalFormat::Binary) {
        s5db::appendDeleteOp(oplog, ids);
    } else {
        Json rec = Json::object();
        rec["op"] = "d";
        Json arr = Json::array();
        for (const auto &id : ids)
            arr.push(id);
        rec["ids"] = std::move(arr);
        rec.dumpTo(oplog);
        oplog += '\n';
    }
    dirtyFlag.store(true, std::memory_order_release);
}

// --- CRUD --------------------------------------------------------------

std::string
Collection::insertOne(Json doc)
{
    if (!doc.isObject())
        fatal("collection '" + collName + "': documents must be objects");

    // Everything that needs no writer state happens before the writer
    // lock — id assignment, the document's heap home, and the encoded
    // WAL record — so concurrent inserters serialize only on the
    // structural append and publish. (oplogEnabled/walFmt are fixed at
    // load time and only change while the collection is quiescent.)
    std::string id = doc.getString("_id");
    if (id.empty()) {
        id = Uuid::generate().str();
        doc["_id"] = id;
    }
    auto stored = std::make_shared<const Json>(std::move(doc));
    // Reused per thread so steady-state encoding never reallocates;
    // consumed (appended to the oplog) before insertOne returns.
    static thread_local std::string op;
    op.clear();
    if (oplogEnabled) {
        if (walFmt == WalFormat::Binary) {
            s5db::appendInsertOp(op, *stored);
        } else {
            op += "{\"op\":\"i\",\"doc\":";
            stored->dumpTo(op);
            op += "}\n";
        }
    }

    std::lock_guard<std::mutex> lock(writerMtx);
    if (probeId(*wr.spine, *wr.ids, wr.slotCount, id) != emptySlot) {
        throw DuplicateKeyError("collection '" + collName +
                                "': duplicate _id '" + id + "'");
    }
    checkUnique(*stored, id);

    if (!op.empty()) {
        oplog += op;
        dirtyFlag.store(true, std::memory_order_release);
    }
    appendStored(std::move(stored), id);
    publish();
    insertsC.inc();
    return id;
}

bool
Collection::planCandidates(const View &v, const Json &query,
                           std::vector<std::uint32_t> &slots)
{
    if (!query.isObject())
        return false;

    const Bucket *best = nullptr;
    const Json *rangeCondField = nullptr;
    const FieldIndex *rangeIdx = nullptr;
    for (const auto &kv : query.asObject()) {
        const std::string &key = kv.first;
        if (!key.empty() && key[0] == '$')
            continue; // combinators don't constrain a single field

        if (key == "_id") {
            const Json *operand = equalityOperand(kv.second);
            if (!operand)
                continue;
            // The primary index answers this one exactly.
            slots.clear();
            if (operand->isString()) {
                std::uint32_t s = probeId(*v.spine, *v.ids, v.slotCount,
                                          operand->asString());
                if (s != emptySlot)
                    slots.push_back(s);
            }
            return true;
        }

        auto idx = v.indexes->find(key);
        if (idx == v.indexes->end())
            continue;
        const FieldIndex &fi = *idx->second;

        if (const Json *operand = equalityOperand(kv.second)) {
            auto b = fi.buckets.find(indexKeyOf(*operand));
            if (b == fi.buckets.end()) {
                slots.clear();
                return true; // indexed field, no candidates at all
            }
            // Prefer the most selective index available.
            if (!best ||
                b->second->count.load(std::memory_order_relaxed) <
                    best->count.load(std::memory_order_relaxed)) {
                best = b->second.get();
            }
            continue;
        }

        // No equality: remember the first indexed range condition as a
        // fallback plan (equality probes win when present).
        if (!rangeCondField && rangeBounds(kv.second).usable()) {
            rangeCondField = &kv.second;
            rangeIdx = &fi;
        }
    }

    slots.clear();
    bool presorted = false;
    if (best) {
        // Insert-only buckets hold ascending slots already; only
        // update churn (unsorted) forces the sort+dedup pass below.
        presorted = !best->unsorted.load(std::memory_order_acquire);
        best->forEachSlot([&](std::uint32_t s) {
            if (s < v.slotCount)
                slots.push_back(s);
        });
    } else if (rangeCondField) {
        RangeBounds rb = rangeBounds(*rangeCondField);
        // Bound the sorted-bucket walk by the operand's class; the
        // bounds only have to be conservative (candidates are always
        // re-filtered), so strictness and exact canonical ties are
        // left to matches().
        const Json *probe = rb.lo ? rb.lo : rb.hi;
        IndexKey loKey;
        if (probe->isNumber() || probe->isBool()) {
            loKey = rb.lo ? indexKeyOf(*rb.lo)
                          : IndexKey{indexKeyOf(*probe).cls,
                                     -std::numeric_limits<double>::infinity(),
                                     ""};
            loKey.str.clear(); // include canonical ties at the bound
        } else if (probe->isString()) {
            loKey.cls = 3;
            if (rb.lo)
                loKey.str = rb.lo->asString();
        } else {
            return false; // unorderable operand: fall back to a scan
        }
        if (std::isnan(loKey.num))
            return false;
        std::uint8_t cls = loKey.cls;
        for (auto it = rangeIdx->buckets.lower_bound(loKey);
             it != rangeIdx->buckets.end(); ++it) {
            const IndexKey &k = it->first;
            if (k.cls != cls)
                break;
            if (rb.hi) {
                if (cls == 3) {
                    if (k.str > rb.hi->asString())
                        break;
                } else if (k.num > rb.hi->asDouble()) {
                    break;
                }
            }
            it->second->forEachSlot([&](std::uint32_t s) {
                if (s < v.slotCount)
                    slots.push_back(s);
            });
        }
    } else {
        return false;
    }

    // Buckets accumulate duplicates when updates re-append a slot and
    // stale cells when documents change; sort for insertion order and
    // dedup before the caller filters. Range walks concatenate several
    // buckets, so they always pay this pass.
    if (!presorted) {
        std::sort(slots.begin(), slots.end());
        slots.erase(std::unique(slots.begin(), slots.end()),
                    slots.end());
    }
    return true;
}

namespace
{

/**
 * Per-thread candidate-slot scratch for the read paths: a query's
 * planning never spans user code, so reusing one buffer is safe and
 * keeps indexed probes allocation-free after warmup.
 */
std::vector<std::uint32_t> &
candScratch()
{
    static thread_local std::vector<std::uint32_t> v;
    v.clear();
    return v;
}

} // anonymous namespace

std::uint32_t
Collection::findFirstSlot(const View &v, const Json &query)
{
    std::vector<std::uint32_t> &cand = candScratch();
    if (planCandidates(v, query, cand)) {
        for (std::uint32_t s : cand) {
            const Json *d = v.docAt(s);
            if (d != nullptr && db::matches(*d, query))
                return s;
        }
        return emptySlot;
    }
    CompiledQuery cq(query);
    for (std::uint32_t s = 0; s < v.slotCount; ++s) {
        const Json *d = v.docAt(s);
        if (d != nullptr && cq.matches(*d))
            return s;
    }
    return emptySlot;
}

std::vector<Json>
Collection::find(const Json &query) const
{
    queriesC.inc();
    const View &v = viewRef();
    std::vector<Json> out;
    std::vector<std::uint32_t> &cand = candScratch();
    if (planCandidates(v, query, cand)) {
        plannedC.inc();
        // Indexed probes yield a handful of candidates; interpreting
        // the query directly beats paying compilation for so few docs.
        for (std::uint32_t s : cand) {
            const Json *d = v.docAt(s);
            if (d != nullptr && db::matches(*d, query))
                out.push_back(*d);
        }
        return out;
    }
    // Full scan against the snapshot: compile once so every dotted
    // path in the query is split here, not once per scanned document.
    CompiledQuery cq(query);
    for (std::uint32_t s = 0; s < v.slotCount; ++s) {
        const Json *d = v.docAt(s);
        if (d != nullptr && cq.matches(*d))
            out.push_back(*d);
    }
    return out;
}

Json
Collection::findOne(const Json &query) const
{
    queriesC.inc();
    const View &v = viewRef();
    std::uint32_t s = findFirstSlot(v, query);
    return s == emptySlot ? Json() : *v.docAt(s);
}

Json
Collection::findById(const std::string &id) const
{
    queriesC.inc();
    const View &v = viewRef();
    const Json *d = v.byId(id);
    return d == nullptr ? Json() : *d;
}

std::size_t
Collection::count(const Json &query) const
{
    queriesC.inc();
    const View &v = viewRef();
    std::size_t n = 0;
    std::vector<std::uint32_t> &cand = candScratch();
    if (planCandidates(v, query, cand)) {
        plannedC.inc();
        for (std::uint32_t s : cand) {
            const Json *d = v.docAt(s);
            if (d != nullptr && db::matches(*d, query))
                ++n;
        }
        return n;
    }
    CompiledQuery cq(query);
    for (std::uint32_t s = 0; s < v.slotCount; ++s) {
        const Json *d = v.docAt(s);
        if (d != nullptr && cq.matches(*d))
            ++n;
    }
    return n;
}

std::size_t
Collection::size() const
{
    return viewRef().size();
}

bool
Collection::updateOne(const Json &query, const Json &update)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    View v = writerView();
    std::uint32_t slot = findFirstSlot(v, query);
    if (slot == emptySlot)
        return false;
    const Json &old = *v.docAt(slot);
    const std::string id = old.getString("_id");

    bool has_op = update.isObject() &&
                  (update.contains("$set") || update.contains("$inc"));

    Json updated;
    if (!has_op) {
        // Replacement document (keeps the _id).
        updated = update;
        updated["_id"] = id;
    } else {
        updated = old;
        if (update.contains("$set")) {
            for (const auto &kv : update.at("$set").asObject())
                updated[kv.first] = kv.second;
        }
        if (update.contains("$inc")) {
            for (const auto &kv : update.at("$inc").asObject()) {
                std::int64_t cur = updated.getInt(kv.first, 0);
                updated[kv.first] = cur + kv.second.asInt();
            }
        }
    }

    // Validate before touching any state: a DuplicateKeyError leaves
    // the collection (and every published snapshot) untouched.
    checkUnique(updated, id);

    logUpdate(updated);
    auto stored = std::make_shared<const Json>(std::move(updated));
    Chunk *ch = chunkForWrite(slot);
    ch->docs[slot & (chunkCap - 1)] = stored;
    indexDocDiff(*stored, old, slot);
    publish();
    updatesC.inc();
    maybeCompactStorage();
    return true;
}

std::size_t
Collection::deleteMany(const Json &query)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    View v = writerView();
    std::vector<std::uint32_t> victims;
    std::vector<std::uint32_t> cand;
    if (planCandidates(v, query, cand)) {
        for (std::uint32_t s : cand) {
            const Json *d = v.docAt(s);
            if (d != nullptr && db::matches(*d, query))
                victims.push_back(s);
        }
    } else {
        CompiledQuery cq(query);
        for (std::uint32_t s = 0; s < v.slotCount; ++s) {
            const Json *d = v.docAt(s);
            if (d != nullptr && cq.matches(*d))
                victims.push_back(s);
        }
    }
    std::vector<std::string> removed_ids;
    removed_ids.reserve(victims.size());
    for (std::uint32_t s : victims)
        removed_ids.push_back(v.docAt(s)->getString("_id"));
    removeSlots(victims);
    logDelete(removed_ids);
    publish();
    deletesC.inc(std::int64_t(removed_ids.size()));
    maybeCompactStorage();
    return removed_ids.size();
}

// --- indexes -----------------------------------------------------------

void
Collection::installIndex(const std::string &field_path, bool unique)
{
    auto fi = std::make_shared<FieldIndex>();
    fi->unique = unique;
    std::vector<IndexKey> keys;
    for (std::uint32_t s = 0; s < wr.slotCount; ++s) {
        const Json *d =
            (*wr.spine)[s >> chunkShift]->docs[s & (chunkCap - 1)].get();
        if (d == nullptr)
            continue;
        const Json *v = d->find(field_path);
        if (v == nullptr)
            continue;
        keys.clear();
        indexKeysFor(*v, keys);
        for (auto &k : keys) {
            auto &bucket = fi->buckets[std::move(k)];
            if (!bucket)
                bucket = std::make_shared<Bucket>();
            bucket->append(s);
        }
    }
    auto map = std::make_shared<IndexMap>(*wr.indexes);
    (*map)[field_path] = std::move(fi);
    wr.indexes = std::move(map);
}

void
Collection::createUniqueIndex(const std::string &field_path)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    // Verify existing documents first so a bad index never half-applies.
    std::set<std::string> seen;
    for (std::uint32_t s = 0; s < wr.slotCount; ++s) {
        const Json *d =
            (*wr.spine)[s >> chunkShift]->docs[s & (chunkCap - 1)].get();
        if (d == nullptr)
            continue;
        const Json *v = d->find(field_path);
        if (v == nullptr || v->isNull())
            continue;
        if (!seen.insert(indexKey(*v)).second) {
            throw DuplicateKeyError(
                "collection '" + collName + "': existing duplicates on '" +
                field_path + "', cannot create unique index");
        }
    }
    auto it = wr.indexes->find(field_path);
    if (it != wr.indexes->end()) {
        // Upgrade in place: clone the directory (buckets are shared)
        // with the unique flag set.
        auto fi = std::make_shared<FieldIndex>(*it->second);
        fi->unique = true;
        auto map = std::make_shared<IndexMap>(*wr.indexes);
        (*map)[field_path] = std::move(fi);
        wr.indexes = std::move(map);
    } else {
        installIndex(field_path, true);
    }
    publish();
}

void
Collection::createIndex(const std::string &field_path)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    if (wr.indexes->count(field_path))
        return;
    installIndex(field_path, false);
    publish();
}

std::vector<std::string>
Collection::indexedFields() const
{
    const View &v = viewRef();
    std::vector<std::string> out;
    for (const auto &entry : *v.indexes)
        out.push_back(entry.first);
    return out;
}

std::vector<Json>
Collection::distinct(const std::string &field_path) const
{
    const View &v = viewRef();
    std::map<std::string, Json> seen;
    for (std::uint32_t s = 0; s < v.slotCount; ++s) {
        const Json *d = v.docAt(s);
        if (d == nullptr)
            continue;
        const Json *val = d->find(field_path);
        if (val != nullptr)
            seen.emplace(indexKey(*val), *val);
    }
    std::vector<Json> out;
    for (auto &kv : seen)
        out.push_back(std::move(kv.second));
    return out;
}

void
Collection::forEach(const std::function<void(const Json &)> &fn) const
{
    // Pin the snapshot: the callback is user code that may re-enter
    // this or another collection, which can evict the thread-local
    // cached View mid-iteration.
    auto v = view();
    v->forEach(fn);
}

std::string
Collection::toJsonl() const
{
    auto v = view();
    std::string out;
    v->forEach([&](const Json &doc) {
        doc.dumpTo(out);
        out += '\n';
    });
    return out;
}

// --- persistence hooks -------------------------------------------------

void
Collection::bulkLoad(std::vector<Json> &&loaded)
{
    // writerMtx held. Reset to fresh structures (index definitions
    // survive with empty buckets), then append everything and publish
    // once.
    auto map = std::make_shared<IndexMap>();
    for (const auto &entry : *wr.indexes) {
        auto fi = std::make_shared<FieldIndex>();
        fi->unique = entry.second->unique;
        (*map)[entry.first] = std::move(fi);
    }
    std::size_t cap = 16;
    while (cap < (loaded.size() + 1) * 4)
        cap <<= 1;
    wr.spine = std::make_shared<Spine>();
    wr.ids = std::make_shared<IdTable>(cap);
    wr.indexes = std::move(map);
    wr.slotCount = 0;
    wr.liveCount = 0;
    wr.garbage = 0;
    oplog.clear();
    dirtyFlag.store(false, std::memory_order_release);

    for (auto &doc : loaded) {
        std::string id = doc.getString("_id");
        if (id.empty())
            fatal("collection '" + collName + "': loaded doc without _id");
        appendDoc(std::move(doc), id);
    }
    publish();
}

void
Collection::loadJsonl(const std::string &text)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    std::vector<Json> loaded;
    for (const auto &line : split(text, '\n')) {
        std::string t = trim(line);
        if (t.empty())
            continue;
        loaded.push_back(Json::parse(t));
    }
    bulkLoad(std::move(loaded));
}

void
Collection::loadBinarySnapshot(std::string_view bytes)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    std::vector<Json> loaded;
    s5db::readSnapshot(bytes,
                       [&](Json doc) { loaded.push_back(std::move(doc)); });
    bulkLoad(std::move(loaded));
}

void
Collection::enableOplog(WalFormat fmt)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    oplogEnabled = true;
    walFmt = fmt;
}

Collection::WalFormat
Collection::walFormat() const
{
    std::lock_guard<std::mutex> lock(writerMtx);
    return walFmt;
}

void
Collection::setWalFormat(WalFormat fmt)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    if (walFmt == fmt)
        return;
    if (!oplog.empty()) {
        fatal("collection '" + collName +
              "': cannot switch WAL format with pending records");
    }
    walFmt = fmt;
}

bool
Collection::dirty() const
{
    return dirtyFlag.load(std::memory_order_acquire);
}

std::string
Collection::drainOplog()
{
    std::lock_guard<std::mutex> lock(writerMtx);
    std::string out = std::move(oplog);
    oplog.clear();
    dirtyFlag.store(false, std::memory_order_release);
    return out;
}

void
Collection::upsertUnlogged(Json doc)
{
    std::string id = doc.getString("_id");
    if (id.empty())
        fatal("collection '" + collName + "': WAL doc without _id");
    std::uint32_t slot = probeId(*wr.spine, *wr.ids, wr.slotCount, id);
    if (slot != emptySlot) {
        const Json *old =
            (*wr.spine)[slot >> chunkShift]->docs[slot & (chunkCap - 1)].get();
        auto stored = std::make_shared<const Json>(std::move(doc));
        Chunk *ch = chunkForWrite(slot);
        ch->docs[slot & (chunkCap - 1)] = stored;
        indexDocDiff(*stored, *old, slot);
        return;
    }
    appendDoc(std::move(doc), id);
}

void
Collection::removeIdsUnlogged(const std::set<std::string> &ids)
{
    std::vector<std::uint32_t> victims;
    for (const auto &id : ids) {
        std::uint32_t slot = probeId(*wr.spine, *wr.ids, wr.slotCount, id);
        if (slot != emptySlot)
            victims.push_back(slot);
    }
    std::sort(victims.begin(), victims.end());
    removeSlots(victims);
}

void
Collection::applyOplogLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    Json rec = Json::parse(line);
    std::string op = rec.getString("op");
    if (op == "i" || op == "u") {
        upsertUnlogged(rec.at("doc"));
    } else if (op == "d") {
        std::set<std::string> ids;
        for (const auto &id : rec.at("ids").asArray())
            ids.insert(id.asString());
        removeIdsUnlogged(ids);
    } else {
        fatal("collection '" + collName + "': unknown WAL op '" + op +
              "'");
    }
    publish();
    maybeCompactStorage();
}

void
Collection::applyBinaryOps(std::string_view payload)
{
    std::lock_guard<std::mutex> lock(writerMtx);
    s5db::forEachOp(
        payload,
        [&](char, Json doc) { upsertUnlogged(std::move(doc)); },
        [&](std::vector<std::string> ids) {
            removeIdsUnlogged(
                std::set<std::string>(ids.begin(), ids.end()));
        });
    publish();
    maybeCompactStorage();
}

std::shared_ptr<const Collection::View>
Collection::viewForCompaction()
{
    // Holding writerMtx makes "pin the snapshot" and "discard pending
    // records" one atomic step: every operation record cleared here is
    // contained in the pinned snapshot, and every operation logged
    // after is not.
    std::lock_guard<std::mutex> lock(writerMtx);
    oplog.clear();
    dirtyFlag.store(false, std::memory_order_release);
    return pubView.load(std::memory_order_acquire);
}

std::string
Collection::snapshotJsonl()
{
    auto v = viewForCompaction();
    std::string out;
    v->forEach([&](const Json &doc) {
        doc.dumpTo(out);
        out += '\n';
    });
    return out;
}

} // namespace g5::db
