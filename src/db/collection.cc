#include "db/collection.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/str.hh"
#include "base/uuid.hh"
#include "db/query.hh"

namespace g5::db
{

Collection::Collection(std::string name)
    : collName(std::move(name))
{}

namespace
{

/** Serialize a value so that equal values (including Int/Double pairs
 *  that compare equal) produce identical keys. */
void
canonicalize(const Json &value, std::string &out)
{
    if (value.isNumber()) {
        double d = value.asDouble();
        std::int64_t i = value.asInt();
        if (double(i) == d) {
            out += std::to_string(i);
            return;
        }
        Json(d).dumpTo(out);
        return;
    }
    if (value.isArray()) {
        out += '[';
        bool first = true;
        for (const auto &elem : value.asArray()) {
            if (!first)
                out += ',';
            first = false;
            canonicalize(elem, out);
        }
        out += ']';
        return;
    }
    if (value.isObject()) {
        out += '{';
        bool first = true;
        for (const auto &kv : value.asObject()) {
            if (!first)
                out += ',';
            first = false;
            Json(kv.first).dumpTo(out);
            out += ':';
            canonicalize(kv.second, out);
        }
        out += '}';
        return;
    }
    value.dumpTo(out);
}

} // anonymous namespace

std::string
Collection::indexKey(const Json &value)
{
    std::string out;
    canonicalize(value, out);
    return out;
}

std::vector<std::string>
Collection::indexKeysFor(const Json &value)
{
    std::vector<std::string> keys;
    keys.push_back(indexKey(value));
    if (value.isArray()) {
        for (const auto &elem : value.asArray()) {
            std::string k = indexKey(elem);
            if (std::find(keys.begin(), keys.end(), k) == keys.end())
                keys.push_back(std::move(k));
        }
    }
    return keys;
}

void
Collection::indexDoc(const Json &doc, const std::string &id)
{
    for (auto &entry : indexes) {
        const Json *v = doc.find(entry.first);
        if (!v)
            continue; // sparse
        if (!v->isArray()) {
            // Scalar values (the overwhelmingly common case) have
            // exactly one key; skip the multikey vector entirely.
            entry.second.buckets[indexKey(*v)].push_back(id);
            continue;
        }
        for (const auto &key : indexKeysFor(*v))
            entry.second.buckets[key].push_back(id);
    }
}

void
Collection::unindexDoc(const Json &doc, const std::string &id)
{
    auto removeKey = [](FieldIndex &fi, const std::string &key,
                            const std::string &id_) {
        auto it = fi.buckets.find(key);
        if (it == fi.buckets.end())
            return;
        auto &ids = it->second;
        ids.erase(std::remove(ids.begin(), ids.end(), id_), ids.end());
        if (ids.empty())
            fi.buckets.erase(it);
    };
    for (auto &entry : indexes) {
        const Json *v = doc.find(entry.first);
        if (!v)
            continue;
        if (!v->isArray()) {
            removeKey(entry.second, indexKey(*v), id);
            continue;
        }
        for (const auto &key : indexKeysFor(*v))
            removeKey(entry.second, key, id);
    }
}

Collection::FieldIndex
Collection::buildIndex(const std::string &field_path, bool unique) const
{
    FieldIndex fi;
    fi.unique = unique;
    for (const auto &doc : docs) {
        const Json *v = doc.find(field_path);
        if (!v)
            continue;
        const std::string id = doc.getString("_id");
        for (const auto &key : indexKeysFor(*v))
            fi.buckets[key].push_back(id);
    }
    return fi;
}

void
Collection::checkUnique(const Json &doc, const std::string &skip_id) const
{
    for (const auto &field : uniqueFields) {
        const Json *v = doc.find(field);
        if (!v || v->isNull())
            continue; // sparse semantics
        auto idx = indexes.find(field);
        if (idx == indexes.end())
            continue;
        auto bucket = idx->second.buckets.find(indexKey(*v));
        if (bucket == idx->second.buckets.end())
            continue;
        for (const auto &id : bucket->second) {
            if (id == skip_id)
                continue;
            const Json &other = docs[byId.at(id)];
            const Json *ov = other.find(field);
            if (ov && *ov == *v) {
                throw DuplicateKeyError(
                    "collection '" + collName + "': duplicate value " +
                    v->dump() + " for unique field '" + field + "'");
            }
        }
    }
}

void
Collection::logInsert(const Json &doc)
{
    if (!oplogEnabled)
        return;
    // Serialize straight into the append buffer: WAL records never
    // exist as a separate intermediate string.
    oplog += "{\"op\":\"i\",\"doc\":";
    doc.dumpTo(oplog);
    oplog += "}\n";
}

void
Collection::logUpdate(const Json &doc)
{
    if (!oplogEnabled)
        return;
    oplog += "{\"op\":\"u\",\"doc\":";
    doc.dumpTo(oplog);
    oplog += "}\n";
}

void
Collection::logDelete(const std::vector<std::string> &ids)
{
    if (!oplogEnabled || ids.empty())
        return;
    Json rec = Json::object();
    rec["op"] = "d";
    Json arr = Json::array();
    for (const auto &id : ids)
        arr.push(id);
    rec["ids"] = std::move(arr);
    rec.dumpTo(oplog);
    oplog += '\n';
}

std::string
Collection::insertOne(Json doc)
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    if (!doc.isObject())
        fatal("collection '" + collName + "': documents must be objects");

    std::string id = doc.getString("_id");
    if (id.empty()) {
        id = Uuid::generate().str();
        doc["_id"] = id;
    }
    if (byId.count(id)) {
        throw DuplicateKeyError("collection '" + collName +
                                "': duplicate _id '" + id + "'");
    }
    checkUnique(doc, id);

    byId[id] = docs.size();
    indexDoc(doc, id);
    logInsert(doc);
    docs.push_back(std::move(doc));
    insertsC.inc();
    return id;
}

bool
Collection::planCandidates(const Json &query,
                           std::vector<std::size_t> &positions) const
{
    if (!query.isObject())
        return false;

    const std::vector<std::string> *bucket = nullptr;
    for (const auto &kv : query.asObject()) {
        const std::string &key = kv.first;
        if (!key.empty() && key[0] == '$')
            continue; // combinators don't constrain a single field
        const Json *operand = equalityOperand(kv.second);
        if (!operand)
            continue;

        if (key == "_id") {
            // The primary index answers this one exactly.
            positions.clear();
            if (operand->isString()) {
                auto it = byId.find(operand->asString());
                if (it != byId.end())
                    positions.push_back(it->second);
            }
            return true;
        }

        auto idx = indexes.find(key);
        if (idx == indexes.end())
            continue;
        auto b = idx->second.buckets.find(indexKey(*operand));
        if (b == idx->second.buckets.end()) {
            positions.clear();
            return true; // indexed field, no candidates at all
        }
        // Prefer the most selective index available.
        if (!bucket || b->second.size() < bucket->size())
            bucket = &b->second;
    }

    if (!bucket)
        return false;
    positions.clear();
    positions.reserve(bucket->size());
    for (const auto &id : *bucket)
        positions.push_back(byId.at(id));
    std::sort(positions.begin(), positions.end());
    return true;
}

std::vector<Json>
Collection::find(const Json &query) const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    queriesC.inc();
    std::vector<Json> out;
    std::vector<std::size_t> cand;
    if (planCandidates(query, cand)) {
        // Indexed probes yield a handful of candidates; interpreting
        // the query directly beats paying compilation for so few docs.
        for (std::size_t pos : cand)
            if (db::matches(docs[pos], query))
                out.push_back(docs[pos]);
        return out;
    }
    // Full scan: compile once so every dotted path in the query is
    // split here, not once per scanned document.
    CompiledQuery cq(query);
    for (const auto &doc : docs)
        if (cq.matches(doc))
            out.push_back(doc);
    return out;
}

std::size_t
Collection::findFirstPos(const Json &query) const
{
    std::vector<std::size_t> cand;
    if (planCandidates(query, cand)) {
        for (std::size_t pos : cand)
            if (db::matches(docs[pos], query))
                return pos;
        return npos;
    }
    CompiledQuery cq(query);
    for (std::size_t pos = 0; pos < docs.size(); ++pos)
        if (cq.matches(docs[pos]))
            return pos;
    return npos;
}

Json
Collection::findOne(const Json &query) const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    queriesC.inc();
    std::size_t pos = findFirstPos(query);
    return pos == npos ? Json() : docs[pos];
}

Json
Collection::findById(const std::string &id) const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    queriesC.inc();
    auto it = byId.find(id);
    if (it == byId.end())
        return Json();
    return docs[it->second];
}

std::size_t
Collection::count(const Json &query) const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    queriesC.inc();
    std::size_t n = 0;
    std::vector<std::size_t> cand;
    if (planCandidates(query, cand)) {
        for (std::size_t pos : cand)
            if (db::matches(docs[pos], query))
                ++n;
        return n;
    }
    CompiledQuery cq(query);
    for (const auto &doc : docs)
        if (cq.matches(doc))
            ++n;
    return n;
}

std::size_t
Collection::size() const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    return docs.size();
}

bool
Collection::updateOne(const Json &query, const Json &update)
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    std::size_t pos = findFirstPos(query);
    if (pos == npos)
        return false;
    Json &doc = docs[pos];
    const std::string id = doc.getString("_id");

    bool has_op = update.isObject() &&
                  (update.contains("$set") || update.contains("$inc"));

    if (!has_op) {
        // Replacement: a new document is unavoidable, but the old one
        // is released rather than copied.
        Json updated = update;
        updated["_id"] = id;
        unindexDoc(doc, id);
        try {
            checkUnique(updated, id);
        } catch (...) {
            indexDoc(doc, id);
            throw;
        }
        doc = std::move(updated);
        indexDoc(doc, id);
        logUpdate(doc);
        return true;
    }

    // Operator update: mutate the affected fields in place, keeping
    // just enough of the old values to roll back a uniqueness failure.
    Json::ObjectT &members = doc.asObject();
    std::map<std::string, Json> savedVals;
    std::set<std::string> savedAbsent;
    auto snapshot = [&](const std::string &key) {
        if (savedVals.count(key) || savedAbsent.count(key))
            return;
        auto it = members.find(key);
        if (it == members.end())
            savedAbsent.insert(key);
        else
            savedVals.emplace(key, it->second);
    };

    unindexDoc(doc, id);
    if (update.contains("$set")) {
        for (const auto &kv : update.at("$set").asObject()) {
            snapshot(kv.first);
            doc[kv.first] = kv.second;
        }
    }
    if (update.contains("$inc")) {
        for (const auto &kv : update.at("$inc").asObject()) {
            snapshot(kv.first);
            std::int64_t cur = doc.getInt(kv.first, 0);
            doc[kv.first] = cur + kv.second.asInt();
        }
    }
    try {
        checkUnique(doc, id);
    } catch (...) {
        for (auto &kv : savedVals)
            doc[kv.first] = std::move(kv.second);
        for (const auto &key : savedAbsent)
            members.erase(key);
        indexDoc(doc, id);
        throw;
    }
    indexDoc(doc, id);
    logUpdate(doc);
    updatesC.inc();
    return true;
}

std::size_t
Collection::deleteMany(const Json &query)
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    // Compact in place: deleted documents leave byId and every field
    // index incrementally; survivors only have their position refreshed.
    std::size_t write = 0;
    std::vector<std::string> removedIds;
    CompiledQuery cq(query);
    for (std::size_t read = 0; read < docs.size(); ++read) {
        Json &doc = docs[read];
        const std::string id = doc.getString("_id");
        if (cq.matches(doc)) {
            unindexDoc(doc, id);
            byId.erase(id);
            removedIds.push_back(id);
            continue;
        }
        byId[id] = write;
        if (write != read)
            docs[write] = std::move(doc);
        ++write;
    }
    docs.resize(write);
    logDelete(removedIds);
    deletesC.inc(std::int64_t(removedIds.size()));
    return removedIds.size();
}

void
Collection::createUniqueIndex(const std::string &field_path)
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    // Verify existing documents first so a bad index never half-applies.
    std::set<std::string> seen;
    for (const auto &doc : docs) {
        const Json *v = doc.find(field_path);
        if (!v || v->isNull())
            continue;
        std::string key = indexKey(*v);
        if (!seen.insert(key).second) {
            throw DuplicateKeyError(
                "collection '" + collName + "': existing duplicates on '" +
                field_path + "', cannot create unique index");
        }
    }
    uniqueFields.insert(field_path);
    auto it = indexes.find(field_path);
    if (it == indexes.end())
        indexes.emplace(field_path, buildIndex(field_path, true));
    else
        it->second.unique = true;
}

void
Collection::createIndex(const std::string &field_path)
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    if (indexes.count(field_path))
        return;
    indexes.emplace(field_path, buildIndex(field_path, false));
}

std::vector<std::string>
Collection::indexedFields() const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    std::vector<std::string> out;
    for (const auto &entry : indexes)
        out.push_back(entry.first);
    return out;
}

std::vector<Json>
Collection::distinct(const std::string &field_path) const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    std::map<std::string, Json> seen;
    for (const auto &doc : docs) {
        const Json *v = doc.find(field_path);
        if (v)
            seen.emplace(indexKey(*v), *v);
    }
    std::vector<Json> out;
    for (auto &kv : seen)
        out.push_back(std::move(kv.second));
    return out;
}

void
Collection::forEach(const std::function<void(const Json &)> &fn) const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    for (const auto &doc : docs)
        fn(doc);
}

std::string
Collection::toJsonl() const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    std::string out;
    for (const auto &doc : docs) {
        doc.dumpTo(out);
        out += '\n';
    }
    return out;
}

void
Collection::loadJsonl(const std::string &text)
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    docs.clear();
    byId.clear();
    oplog.clear();
    for (auto &entry : indexes)
        entry.second.buckets.clear();
    for (const auto &line : split(text, '\n')) {
        std::string t = trim(line);
        if (t.empty())
            continue;
        Json doc = Json::parse(t);
        std::string id = doc.getString("_id");
        if (id.empty())
            fatal("collection '" + collName + "': JSONL doc without _id");
        byId[id] = docs.size();
        indexDoc(doc, id);
        docs.push_back(std::move(doc));
    }
}

void
Collection::enableOplog()
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    oplogEnabled = true;
}

bool
Collection::dirty() const
{
    std::shared_lock<std::shared_mutex> lock(mtx);
    return !oplog.empty();
}

std::string
Collection::drainOplog()
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    std::string out = std::move(oplog);
    oplog.clear();
    return out;
}

void
Collection::upsertUnlogged(Json doc)
{
    std::string id = doc.getString("_id");
    if (id.empty())
        fatal("collection '" + collName + "': WAL doc without _id");
    auto it = byId.find(id);
    if (it != byId.end()) {
        Json &old = docs[it->second];
        unindexDoc(old, id);
        old = std::move(doc);
        indexDoc(old, id);
        return;
    }
    byId[id] = docs.size();
    indexDoc(doc, id);
    docs.push_back(std::move(doc));
}

void
Collection::removeIdsUnlogged(const std::set<std::string> &ids)
{
    std::size_t write = 0;
    for (std::size_t read = 0; read < docs.size(); ++read) {
        Json &doc = docs[read];
        const std::string id = doc.getString("_id");
        if (ids.count(id)) {
            unindexDoc(doc, id);
            byId.erase(id);
            continue;
        }
        byId[id] = write;
        if (write != read)
            docs[write] = std::move(doc);
        ++write;
    }
    docs.resize(write);
}

void
Collection::applyOplogLine(const std::string &line)
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    Json rec = Json::parse(line);
    std::string op = rec.getString("op");
    if (op == "i" || op == "u") {
        upsertUnlogged(rec.at("doc"));
    } else if (op == "d") {
        std::set<std::string> ids;
        for (const auto &id : rec.at("ids").asArray())
            ids.insert(id.asString());
        removeIdsUnlogged(ids);
    } else {
        fatal("collection '" + collName + "': unknown WAL op '" + op +
              "'");
    }
}

std::string
Collection::snapshotJsonl()
{
    std::unique_lock<std::shared_mutex> lock(mtx);
    std::string out;
    for (const auto &doc : docs) {
        doc.dumpTo(out);
        out += '\n';
    }
    oplog.clear();
    return out;
}

} // namespace g5::db
