#include "db/collection.hh"

#include "base/logging.hh"
#include "base/str.hh"
#include "base/uuid.hh"
#include "db/query.hh"

namespace g5::db
{

Collection::Collection(std::string name)
    : collName(std::move(name))
{}

std::string
Collection::indexKey(const Json &value)
{
    return value.dump();
}

void
Collection::checkUnique(const Json &doc, const std::string &skip_id) const
{
    for (const auto &field : uniqueFields) {
        const Json *v = doc.find(field);
        if (!v || v->isNull())
            continue; // sparse semantics
        for (const auto &other : docs) {
            if (other.getString("_id") == skip_id)
                continue;
            const Json *ov = other.find(field);
            if (ov && *ov == *v) {
                throw DuplicateKeyError(
                    "collection '" + collName + "': duplicate value " +
                    v->dump() + " for unique field '" + field + "'");
            }
        }
    }
}

std::string
Collection::insertOne(Json doc)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (!doc.isObject())
        fatal("collection '" + collName + "': documents must be objects");

    std::string id = doc.getString("_id");
    if (id.empty()) {
        id = Uuid::generate().str();
        doc["_id"] = id;
    }
    if (byId.count(id)) {
        throw DuplicateKeyError("collection '" + collName +
                                "': duplicate _id '" + id + "'");
    }
    checkUnique(doc, id);

    byId[id] = docs.size();
    docs.push_back(std::move(doc));
    return id;
}

std::vector<Json>
Collection::find(const Json &query) const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::vector<Json> out;
    for (const auto &doc : docs)
        if (matches(doc, query))
            out.push_back(doc);
    return out;
}

Json
Collection::findOne(const Json &query) const
{
    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &doc : docs)
        if (matches(doc, query))
            return doc;
    return Json();
}

Json
Collection::findById(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = byId.find(id);
    if (it == byId.end())
        return Json();
    return docs[it->second];
}

std::size_t
Collection::count(const Json &query) const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::size_t n = 0;
    for (const auto &doc : docs)
        if (matches(doc, query))
            ++n;
    return n;
}

bool
Collection::updateOne(const Json &query, const Json &update)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (auto &doc : docs) {
        if (!matches(doc, query))
            continue;

        Json updated = doc;
        bool has_op = false;
        if (update.isObject()) {
            if (update.contains("$set")) {
                has_op = true;
                for (const auto &kv : update.at("$set").asObject())
                    updated[kv.first] = kv.second;
            }
            if (update.contains("$inc")) {
                has_op = true;
                for (const auto &kv : update.at("$inc").asObject()) {
                    std::int64_t cur = updated.getInt(kv.first, 0);
                    updated[kv.first] = cur + kv.second.asInt();
                }
            }
        }
        if (!has_op) {
            std::string id = doc.getString("_id");
            updated = update;
            updated["_id"] = id;
        }

        checkUnique(updated, doc.getString("_id"));
        doc = std::move(updated);
        return true;
    }
    return false;
}

std::size_t
Collection::deleteMany(const Json &query)
{
    std::lock_guard<std::mutex> lock(mtx);
    std::vector<Json> kept;
    std::size_t removed = 0;
    for (auto &doc : docs) {
        if (matches(doc, query))
            ++removed;
        else
            kept.push_back(std::move(doc));
    }
    docs = std::move(kept);
    byId.clear();
    for (std::size_t i = 0; i < docs.size(); ++i)
        byId[docs[i].getString("_id")] = i;
    return removed;
}

void
Collection::createUniqueIndex(const std::string &field_path)
{
    std::lock_guard<std::mutex> lock(mtx);
    // Verify existing documents first so a bad index never half-applies.
    std::set<std::string> seen;
    for (const auto &doc : docs) {
        const Json *v = doc.find(field_path);
        if (!v || v->isNull())
            continue;
        std::string key = indexKey(*v);
        if (!seen.insert(key).second) {
            throw DuplicateKeyError(
                "collection '" + collName + "': existing duplicates on '" +
                field_path + "', cannot create unique index");
        }
    }
    uniqueFields.insert(field_path);
}

std::vector<Json>
Collection::distinct(const std::string &field_path) const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::map<std::string, Json> seen;
    for (const auto &doc : docs) {
        const Json *v = doc.find(field_path);
        if (v)
            seen.emplace(indexKey(*v), *v);
    }
    std::vector<Json> out;
    for (auto &kv : seen)
        out.push_back(std::move(kv.second));
    return out;
}

void
Collection::forEach(const std::function<void(const Json &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &doc : docs)
        fn(doc);
}

std::string
Collection::toJsonl() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::string out;
    for (const auto &doc : docs) {
        out += doc.dump();
        out += '\n';
    }
    return out;
}

void
Collection::loadJsonl(const std::string &text)
{
    std::lock_guard<std::mutex> lock(mtx);
    docs.clear();
    byId.clear();
    for (const auto &line : split(text, '\n')) {
        std::string t = trim(line);
        if (t.empty())
            continue;
        Json doc = Json::parse(t);
        std::string id = doc.getString("_id");
        if (id.empty())
            fatal("collection '" + collName + "': JSONL doc without _id");
        byId[id] = docs.size();
        docs.push_back(std::move(doc));
    }
}

} // namespace g5::db
