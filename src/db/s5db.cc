#include "db/s5db.hh"

#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/md5.hh"

namespace g5::db::s5db
{

namespace
{

constexpr std::size_t md5Len = 16;

void
putU32(std::string &out, std::uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    out.append(b, 4);
}

void
putU64(std::string &out, std::uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    out.append(b, 8);
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

} // anonymous namespace

bool
isWal(std::string_view bytes)
{
    return bytes.size() >= magicLen &&
           std::memcmp(bytes.data(), walMagic, magicLen) == 0;
}

bool
isSnapshot(std::string_view bytes)
{
    return bytes.size() >= magicLen &&
           std::memcmp(bytes.data(), snapMagic, magicLen) == 0;
}

// --- MmapFile ----------------------------------------------------------

MmapFile::MmapFile(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return; // missing file -> empty view
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return;
    }
    std::size_t size = std::size_t(st.st_size);
    void *p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
        base = static_cast<const char *>(p);
        len = size;
        mappedRegion = true;
        ::close(fd);
        return;
    }
    // mmap unavailable (exotic filesystem): fall back to a copy.
    fallback.resize(size);
    std::size_t off = 0;
    while (off < size) {
        ssize_t got = ::read(fd, fallback.data() + off, size - off);
        if (got <= 0)
            break;
        off += std::size_t(got);
    }
    ::close(fd);
    fallback.resize(off);
    base = fallback.data();
    len = fallback.size();
}

MmapFile::~MmapFile()
{
    if (mappedRegion)
        ::munmap(const_cast<char *>(base), len);
}

// --- snapshot files ----------------------------------------------------

std::string
buildSnapshot(
    const std::function<void(const std::function<void(const Json &)> &)>
        &each_doc)
{
    std::string out(snapMagic, magicLen);
    std::string doc_bytes;
    each_doc([&](const Json &doc) {
        doc_bytes.clear();
        doc.dumpBinaryTo(doc_bytes);
        putU32(out, std::uint32_t(doc_bytes.size()));
        out.append(doc_bytes);
    });
    putU32(out, 0); // end-of-records marker
    Md5Stream h;
    h.update(out.data() + magicLen, out.size() - magicLen);
    auto digest = h.finalBytes();
    out.append(reinterpret_cast<const char *>(digest.data()), md5Len);
    return out;
}

void
readSnapshot(std::string_view bytes,
             const std::function<void(Json)> &on_doc)
{
    if (!isSnapshot(bytes))
        fatal("s5db: snapshot has a bad magic");
    if (bytes.size() < magicLen + 4 + md5Len)
        fatal("s5db: snapshot truncated");
    std::size_t body_end = bytes.size() - md5Len;
    Md5Stream h;
    h.update(bytes.data() + magicLen, body_end - magicLen);
    auto digest = h.finalBytes();
    if (std::memcmp(digest.data(), bytes.data() + body_end, md5Len) != 0)
        fatal("s5db: snapshot digest mismatch (corrupt file)");

    const char *cur = bytes.data() + magicLen;
    const char *end = bytes.data() + body_end;
    for (;;) {
        if (std::size_t(end - cur) < 4)
            fatal("s5db: snapshot missing end marker");
        std::uint32_t doc_len = getU32(cur);
        cur += 4;
        if (doc_len == 0)
            break;
        if (std::size_t(end - cur) < doc_len)
            fatal("s5db: snapshot record overruns file");
        on_doc(Json::parseBinary({cur, doc_len}));
        cur += doc_len;
    }
    if (cur != end)
        fatal("s5db: snapshot has trailing bytes after end marker");
}

// --- WAL group framing -------------------------------------------------

void
appendGroupFrame(std::string &out, std::string_view ops_payload)
{
    putU64(out, std::uint64_t(ops_payload.size()));
    out.append(ops_payload);
    Md5Stream h;
    h.update(ops_payload.data(), ops_payload.size());
    auto digest = h.finalBytes();
    out.append(reinterpret_cast<const char *>(digest.data()), md5Len);
}

WalReplayStats
replayWal(std::string_view bytes,
          const std::function<void(std::string_view)> &on_group_payload)
{
    WalReplayStats stats;
    if (!isWal(bytes))
        fatal("s5db: WAL has a bad magic");
    const char *cur = bytes.data() + magicLen;
    const char *end = bytes.data() + bytes.size();
    while (cur != end) {
        // A frame that doesn't fit — header, payload, or digest — is a
        // torn tail from an interrupted group commit: stop here and
        // report the dropped byte count.
        if (std::size_t(end - cur) < 8)
            break;
        std::uint64_t payload_len = getU64(cur);
        if (payload_len > std::size_t(end - cur) - 8 ||
            std::size_t(end - cur) - 8 - payload_len < md5Len)
            break;
        const char *payload = cur + 8;
        Md5Stream h;
        h.update(payload, payload_len);
        auto digest = h.finalBytes();
        if (std::memcmp(digest.data(), payload + payload_len, md5Len) != 0)
            break;
        on_group_payload({payload, std::size_t(payload_len)});
        ++stats.groups;
        cur = payload + payload_len + md5Len;
    }
    stats.tornBytes = std::size_t(end - cur);
    return stats;
}

// --- operation records -------------------------------------------------

namespace
{

void
appendDocOp(std::string &payload, char op, const Json &doc)
{
    payload.push_back(op);
    std::size_t len_at = payload.size();
    putU32(payload, 0); // patched once the doc length is known
    doc.dumpBinaryTo(payload);
    std::uint32_t doc_len = std::uint32_t(payload.size() - len_at - 4);
    std::memcpy(payload.data() + len_at, &doc_len, 4);
}

} // anonymous namespace

void
appendInsertOp(std::string &payload, const Json &doc)
{
    appendDocOp(payload, 'i', doc);
}

void
appendUpdateOp(std::string &payload, const Json &doc)
{
    appendDocOp(payload, 'u', doc);
}

void
appendDeleteOp(std::string &payload, const std::vector<std::string> &ids)
{
    payload.push_back('d');
    putU32(payload, std::uint32_t(ids.size()));
    for (const auto &id : ids) {
        putU32(payload, std::uint32_t(id.size()));
        payload.append(id);
    }
}

void
forEachOp(std::string_view payload,
          const std::function<void(char, Json)> &on_upsert,
          const std::function<void(std::vector<std::string>)> &on_delete)
{
    const char *cur = payload.data();
    const char *end = payload.data() + payload.size();
    auto need = [&](std::size_t n) {
        if (std::size_t(end - cur) < n)
            throw JsonError("s5db: truncated operation record");
    };
    while (cur != end) {
        need(1);
        char op = *cur++;
        if (op == 'i' || op == 'u') {
            need(4);
            std::uint32_t doc_len = getU32(cur);
            cur += 4;
            need(doc_len);
            on_upsert(op, Json::parseBinary({cur, doc_len}));
            cur += doc_len;
        } else if (op == 'd') {
            need(4);
            std::uint32_t count = getU32(cur);
            cur += 4;
            std::vector<std::string> ids;
            ids.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                need(4);
                std::uint32_t id_len = getU32(cur);
                cur += 4;
                need(id_len);
                ids.emplace_back(cur, id_len);
                cur += id_len;
            }
            on_delete(std::move(ids));
        } else {
            throw JsonError("s5db: unknown operation tag");
        }
    }
}

} // namespace g5::db::s5db
