#include "db/database.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/md5.hh"
#include "base/str.hh"

namespace fs = std::filesystem;

namespace g5::db
{

namespace
{

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("database: cannot read '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFileOrDie(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("database: cannot write '" + path + "'");
    out.write(bytes.data(), std::streamsize(bytes.size()));
    if (!out)
        fatal("database: short write to '" + path + "'");
}

} // anonymous namespace

Database::Database() = default;

Database::Database(const std::string &dir)
    : rootDir(dir)
{
    fs::create_directories(fs::path(rootDir) / "collections");
    fs::create_directories(fs::path(rootDir) / "blobs");
    loadFromDisk();
}

void
Database::loadFromDisk()
{
    fs::path colls = fs::path(rootDir) / "collections";
    for (const auto &entry : fs::directory_iterator(colls)) {
        if (!entry.is_regular_file())
            continue;
        fs::path p = entry.path();
        if (p.extension() != ".jsonl")
            continue;
        std::string name = p.stem().string();
        auto coll = std::make_unique<Collection>(name);
        coll->loadJsonl(readFileOrDie(p.string()));
        collections[name] = std::move(coll);
    }
}

Collection &
Database::collection(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = collections.find(name);
    if (it == collections.end()) {
        it = collections
                 .emplace(name, std::make_unique<Collection>(name))
                 .first;
    }
    return *it->second;
}

std::vector<std::string>
Database::collectionNames() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::vector<std::string> names;
    for (const auto &kv : collections)
        names.push_back(kv.first);
    return names;
}

std::string
Database::putBlob(const std::string &bytes)
{
    std::string key = Md5::hashBytes(bytes.data(), bytes.size());
    std::lock_guard<std::mutex> lock(mtx);
    if (rootDir.empty()) {
        memBlobs.emplace(key, bytes);
    } else {
        fs::path p = fs::path(rootDir) / "blobs" / key;
        if (!fs::exists(p))
            writeFileOrDie(p.string(), bytes);
    }
    return key;
}

std::string
Database::putFile(const std::string &host_path)
{
    return putBlob(readFileOrDie(host_path));
}

bool
Database::hasBlob(const std::string &md5_key) const
{
    std::lock_guard<std::mutex> lock(mtx);
    if (rootDir.empty())
        return memBlobs.count(md5_key) > 0;
    return fs::exists(fs::path(rootDir) / "blobs" / md5_key);
}

std::string
Database::getBlob(const std::string &md5_key) const
{
    std::lock_guard<std::mutex> lock(mtx);
    if (rootDir.empty()) {
        auto it = memBlobs.find(md5_key);
        if (it == memBlobs.end())
            fatal("database: unknown blob '" + md5_key + "'");
        return it->second;
    }
    fs::path p = fs::path(rootDir) / "blobs" / md5_key;
    if (!fs::exists(p))
        fatal("database: unknown blob '" + md5_key + "'");
    return readFileOrDie(p.string());
}

void
Database::exportBlob(const std::string &md5_key,
                     const std::string &host_path) const
{
    std::string bytes = getBlob(md5_key);
    fs::path p(host_path);
    if (p.has_parent_path())
        fs::create_directories(p.parent_path());
    writeFileOrDie(host_path, bytes);
}

std::size_t
Database::blobCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    if (rootDir.empty())
        return memBlobs.size();
    std::size_t n = 0;
    for (const auto &entry :
         fs::directory_iterator(fs::path(rootDir) / "blobs")) {
        if (entry.is_regular_file())
            ++n;
    }
    return n;
}

void
Database::save()
{
    std::lock_guard<std::mutex> lock(mtx);
    if (rootDir.empty())
        return;
    for (const auto &kv : collections) {
        fs::path p = fs::path(rootDir) / "collections" /
                     (kv.first + ".jsonl");
        writeFileOrDie(p.string(), kv.second->toJsonl());
    }
}

} // namespace g5::db
