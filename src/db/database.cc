#include "db/database.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include "base/faultinject.hh"
#include "base/logging.hh"
#include "base/metrics.hh"
#include "base/md5.hh"
#include "base/str.hh"
#include "db/s5db.hh"

namespace fs = std::filesystem;

namespace g5::db
{

namespace
{

/** Chunk size for streaming file hashing/copies (1 MiB). */
constexpr std::size_t chunkSize = 1 << 20;

/** Durability::None spool flush threshold. */
constexpr std::size_t deferredFlushBytes = 1 << 20;

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("database: cannot read '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFileOrDie(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("database: cannot write '" + path + "'");
    out.write(bytes.data(), std::streamsize(bytes.size()));
    if (!out)
        fatal("database: short write to '" + path + "'");
}

/** Write @p bytes then atomically rename into place. */
void
writeFileAtomic(const fs::path &target, const std::string &bytes,
                const std::string &tmp_tag)
{
    fs::path tmp = target;
    tmp += "." + tmp_tag + ".tmp";
    writeFileOrDie(tmp.string(), bytes);
    std::error_code ec;
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp);
        fatal("database: cannot rename '" + tmp.string() + "' to '" +
              target.string() + "': " + ec.message());
    }
}

/** A process-unique tag for temp file names (concurrent writers). */
std::string
uniqueTmpTag()
{
    static std::atomic<std::uint64_t> counter{0};
    return std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

/** Copy @p src to @p dst in fixed-size chunks (never whole-file). */
void
copyFileChunked(const std::string &src, const std::string &dst)
{
    std::ifstream in(src, std::ios::binary);
    if (!in)
        fatal("database: cannot read '" + src + "'");
    std::ofstream out(dst, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("database: cannot write '" + dst + "'");
    std::vector<char> buf(chunkSize);
    while (in) {
        in.read(buf.data(), std::streamsize(buf.size()));
        std::streamsize got = in.gcount();
        if (got > 0) {
            out.write(buf.data(), got);
            if (!out)
                fatal("database: short write to '" + dst + "'");
        }
    }
}

std::size_t
fileSizeOrZero(const fs::path &p)
{
    std::error_code ec;
    auto n = fs::file_size(p, ec);
    return ec ? 0 : std::size_t(n);
}

/** write(2) an entire buffer, retrying short writes and EINTR. */
void
writeAll(int fd, const char *p, std::size_t len, const std::string &what)
{
    while (len > 0) {
        ssize_t got = ::write(fd, p, len);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            fatal("database: WAL append failed for " + what);
        }
        p += got;
        len -= std::size_t(got);
    }
}

/** writev(2) a whole iovec list, handling partial writes and EINTR. */
void
writevAll(int fd, std::vector<iovec> &iov, const std::string &what)
{
    std::size_t i = 0;
    while (i < iov.size()) {
        int cnt = int(std::min<std::size_t>(iov.size() - i, 64));
        ssize_t got = ::writev(fd, iov.data() + i, cnt);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            fatal("database: WAL append failed for " + what);
        }
        std::size_t n = std::size_t(got);
        while (i < iov.size() && n >= iov[i].iov_len) {
            n -= iov[i].iov_len;
            ++i;
        }
        if (n > 0) {
            iov[i].iov_base = static_cast<char *>(iov[i].iov_base) + n;
            iov[i].iov_len -= n;
        }
    }
}

} // anonymous namespace

TxnGuard::TxnGuard(std::vector<Collection *> colls)
{
    std::sort(colls.begin(), colls.end(),
              [](const Collection *a, const Collection *b) {
                  return a->name() < b->name();
              });
    colls.erase(std::unique(colls.begin(), colls.end()), colls.end());
    locks.reserve(colls.size());
    for (Collection *c : colls)
        locks.emplace_back(c->txnMutex());
}

Database::Database() = default;

Database::Database(const std::string &dir)
    : rootDir(dir)
{
    if (const char *e = std::getenv("G5_DB_DURABILITY")) {
        std::string v = e;
        if (v == "none") {
            dura = Durability::None;
        } else if (v == "fsync") {
            dura = Durability::Fsync;
        } else if (v != "buffer" && !v.empty()) {
            warn("database: unknown G5_DB_DURABILITY '" + v +
                 "' (expected none|buffer|fsync); using \"buffer\"");
        }
    }
    if (const char *e = std::getenv("G5_DB_FORMAT")) {
        std::string v = e;
        if (v == "jsonl") {
            storageFmt = Collection::WalFormat::Jsonl;
        } else if (v != "binary" && !v.empty()) {
            warn("database: unknown G5_DB_FORMAT '" + v +
                 "' (expected binary|jsonl); using \"binary\"");
        }
    }
    fs::create_directories(fs::path(rootDir) / "collections");
    fs::create_directories(fs::path(rootDir) / "blobs");
    removeOrphanTmpFiles();
    loadFromDisk();
}

Database::~Database()
{
    std::lock_guard<std::mutex> save_lock(saveMtx);
    for (auto &[name, ws] : walStates) {
        if (!ws.buffer.empty() && ws.fd >= 0) {
            try {
                flushWalBuffer(name, ws);
            } catch (...) {
                // Destructor: a failed deferred flush loses exactly
                // what Durability::None already permits losing.
            }
        }
        if (ws.fd >= 0)
            ::close(ws.fd);
    }
}

void
Database::removeOrphanTmpFiles()
{
    // Every writer in this file spools through "<something>.tmp" and
    // renames into place, so any *.tmp still present at open time is
    // the debris of a crashed or SIGKILLed process: never referenced,
    // safe to delete, and deleted *before* replay so a half-written
    // spool can never shadow real state.
    std::size_t removed = 0;
    for (const char *sub : {"blobs", "collections"}) {
        fs::path d = fs::path(rootDir) / sub;
        std::error_code ec;
        for (const auto &ent : fs::directory_iterator(d, ec)) {
            if (!ent.is_regular_file())
                continue;
            if (ent.path().extension() != ".tmp")
                continue;
            std::error_code rec;
            if (fs::remove(ent.path(), rec))
                ++removed;
        }
    }
    if (removed > 0) {
        metrics::counter("db.orphansRemoved").inc(std::int64_t(removed));
        warn("database: removed " + std::to_string(removed) +
             " orphaned .tmp spool file(s) left by a crashed process");
    }
}

void
Database::replayWal(const std::string &name, Collection &coll)
{
    fs::path wal = fs::path(rootDir) / "collections" / (name + ".wal");
    if (!fs::exists(wal))
        return;

    // Byte offset of the end of the last complete record; anything
    // after it is the torn tail of an interrupted write and gets
    // truncated away below — replay's committed-prefix rule would
    // otherwise silently drop any group appended after the tear.
    std::size_t keep = 0;
    std::size_t total = 0;
    {
        s5db::MmapFile m(wal.string());
        std::string_view bytes = m.view();
        total = keep = bytes.size();
        if (bytes.empty())
            return;

        if (s5db::isWal(bytes)) {
            // Binary WAL: MD5-sealed commit groups, replayed straight
            // off the mapping. A failed seal or short frame is the torn
            // tail of an interrupted group commit; everything before it
            // is committed state.
            s5db::WalReplayStats stats;
            try {
                stats =
                    s5db::replayWal(bytes, [&](std::string_view payload) {
                        coll.applyBinaryOps(payload);
                    });
            } catch (const std::exception &e) {
                fatal("database: collection '" + name +
                      "': binary WAL replay failed: " + e.what());
            }
            if (stats.tornBytes > 0) {
                warn("database: collection '" + name + "': dropped " +
                     std::to_string(stats.tornBytes) +
                     " torn WAL byte(s) from an interrupted group "
                     "commit; recovering committed groups only");
                keep = bytes.size() - stats.tornBytes;
            }
        } else {
            // Legacy JSONL WAL: one op record per line.
            std::string text(bytes);
            std::size_t pos = 0;
            std::size_t line_no = 0;
            while (pos < text.size()) {
                std::size_t eol = text.find('\n', pos);
                std::size_t end =
                    eol == std::string::npos ? text.size() : eol;
                std::string t = trim(text.substr(pos, end - pos));
                if (!t.empty()) {
                    ++line_no;
                    try {
                        coll.applyOplogLine(t);
                    } catch (const std::exception &e) {
                        // A torn final line from an interrupted append
                        // is expected after a crash; everything before
                        // it is committed state.
                        warn("database: collection '" + name +
                             "': WAL replay stopped at record " +
                             std::to_string(line_no) + " (" + e.what() +
                             "); recovering prior records only");
                        keep = pos;
                        break;
                    }
                }
                pos = eol == std::string::npos ? text.size() : eol + 1;
            }
        }
    }
    if (keep < total) {
        std::error_code ec;
        fs::resize_file(wal, keep, ec);
        if (ec) {
            warn("database: collection '" + name +
                 "': cannot truncate torn WAL tail: " + ec.message());
        }
    }
}

void
Database::loadFromDisk()
{
    fs::path colls = fs::path(rootDir) / "collections";
    // A collection exists on disk as a snapshot — legacy JSONL text
    // (<name>.jsonl) or binary s5db1 (<name>.s5db) — a WAL
    // (<name>.wal), or any mix. Both snapshot encodings load
    // regardless of the configured write format.
    std::set<std::string> names;
    for (const auto &entry : fs::directory_iterator(colls)) {
        if (!entry.is_regular_file())
            continue;
        fs::path p = entry.path();
        auto ext = p.extension();
        if (ext == ".jsonl" || ext == ".wal" || ext == ".s5db")
            names.insert(p.stem().string());
    }
    for (const auto &name : names) {
        auto coll = std::make_unique<Collection>(name);
        coll->enableOplog(storageFmt);
        fs::path snap_j = colls / (name + ".jsonl");
        fs::path snap_b = colls / (name + ".s5db");
        bool have_j = fs::exists(snap_j);
        bool have_b = fs::exists(snap_b);
        if (have_j && have_b) {
            // Both formats present: a crash landed between writing a
            // fresh snapshot and removing the superseded one. The
            // newer file is the completed write.
            std::error_code ec;
            auto tj = fs::last_write_time(snap_j, ec);
            auto tb = fs::last_write_time(snap_b, ec);
            if (tj > tb)
                have_b = false;
            else
                have_j = false;
        }
        if (have_b) {
            s5db::MmapFile snap(snap_b.string());
            coll->loadBinarySnapshot(snap.view());
        } else if (have_j) {
            coll->loadJsonl(readFileOrDie(snap_j.string()));
        }
        replayWal(name, *coll);
        collections[name] = std::move(coll);
    }
}

Collection &
Database::collection(const std::string &name)
{
    {
        std::shared_lock<std::shared_mutex> lock(registryMtx);
        auto it = collections.find(name);
        if (it != collections.end())
            return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(registryMtx);
    auto it = collections.find(name);
    if (it == collections.end()) {
        auto coll = std::make_unique<Collection>(name);
        if (!rootDir.empty())
            coll->enableOplog(storageFmt);
        it = collections.emplace(name, std::move(coll)).first;
    }
    return *it->second;
}

Collection *
Database::findCollection(const std::string &name)
{
    std::shared_lock<std::shared_mutex> lock(registryMtx);
    auto it = collections.find(name);
    return it == collections.end() ? nullptr : it->second.get();
}

std::vector<std::string>
Database::collectionNames() const
{
    std::shared_lock<std::shared_mutex> lock(registryMtx);
    std::vector<std::string> names;
    for (const auto &kv : collections)
        names.push_back(kv.first);
    return names;
}

std::string
Database::putBlob(const std::string &bytes)
{
    std::string key = Md5::hashBytes(bytes.data(), bytes.size());
    static metrics::Counter &blob_bytes =
        metrics::counter("db.blob.bytesHashed");
    blob_bytes.inc(std::int64_t(bytes.size()));
    if (rootDir.empty()) {
        std::lock_guard<std::mutex> lock(blobMtx);
        memBlobs.emplace(key, bytes);
        return key;
    }
    fs::path p = fs::path(rootDir) / "blobs" / key;
    if (!fs::exists(p)) {
        // Concurrent puts of the same content both land on an atomic
        // rename to the same target; either winner leaves identical
        // bytes in place.
        writeFileAtomic(p, bytes, uniqueTmpTag());
    }
    return key;
}

std::string
Database::putFile(const std::string &host_path)
{
    // Injectable crash before the upload (G5_FAULT=db.blob.putFile):
    // content-addressed blobs make an interrupted upload retryable.
    fault::checkpoint("db.blob.putFile");
    std::ifstream in(host_path, std::ios::binary);
    if (!in)
        fatal("database: cannot read '" + host_path + "'");
    std::vector<char> buf(chunkSize);
    static metrics::Counter &blob_bytes =
        metrics::counter("db.blob.bytesHashed");

    if (rootDir.empty()) {
        // In-memory mode stores the bytes anyway; still hash in chunks.
        Md5Stream h;
        std::string bytes;
        while (in) {
            in.read(buf.data(), std::streamsize(buf.size()));
            std::streamsize got = in.gcount();
            if (got > 0) {
                h.update(buf.data(), std::size_t(got));
                blob_bytes.inc(got);
                bytes.append(buf.data(), std::size_t(got));
            }
        }
        std::string key = h.final();
        std::lock_guard<std::mutex> lock(blobMtx);
        memBlobs.emplace(key, std::move(bytes));
        return key;
    }

    // Single pass: hash while spooling to a temp blob, then rename to
    // the content address (or drop the temp when the blob exists).
    fs::path blobs = fs::path(rootDir) / "blobs";
    fs::path tmp = blobs / (".put-" + uniqueTmpTag() + ".tmp");
    {
        std::ofstream out(tmp.string(), std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("database: cannot write '" + tmp.string() + "'");
        Md5Stream h;
        while (in) {
            in.read(buf.data(), std::streamsize(buf.size()));
            std::streamsize got = in.gcount();
            if (got > 0) {
                h.update(buf.data(), std::size_t(got));
                blob_bytes.inc(got);
                out.write(buf.data(), got);
                if (!out)
                    fatal("database: short write to '" + tmp.string() +
                          "'");
            }
        }
        out.close();
        std::string key = h.final();
        fs::path target = blobs / key;
        if (fs::exists(target)) {
            fs::remove(tmp);
            return key;
        }
        std::error_code ec;
        fs::rename(tmp, target, ec);
        if (ec) {
            fs::remove(tmp);
            fatal("database: cannot rename blob into place: " +
                  ec.message());
        }
        return key;
    }
}

bool
Database::hasBlob(const std::string &md5_key) const
{
    if (rootDir.empty()) {
        std::lock_guard<std::mutex> lock(blobMtx);
        return memBlobs.count(md5_key) > 0;
    }
    return fs::exists(fs::path(rootDir) / "blobs" / md5_key);
}

std::string
Database::blobPath(const std::string &md5_key) const
{
    if (rootDir.empty())
        return "";
    fs::path p = fs::path(rootDir) / "blobs" / md5_key;
    return fs::exists(p) ? p.string() : std::string();
}

std::string
Database::getBlob(const std::string &md5_key) const
{
    if (rootDir.empty()) {
        std::lock_guard<std::mutex> lock(blobMtx);
        auto it = memBlobs.find(md5_key);
        if (it == memBlobs.end())
            fatal("database: unknown blob '" + md5_key + "'");
        return it->second;
    }
    fs::path p = fs::path(rootDir) / "blobs" / md5_key;
    if (!fs::exists(p))
        fatal("database: unknown blob '" + md5_key + "'");
    return readFileOrDie(p.string());
}

void
Database::exportBlob(const std::string &md5_key,
                     const std::string &host_path) const
{
    fs::path out(host_path);
    if (out.has_parent_path())
        fs::create_directories(out.parent_path());

    if (rootDir.empty()) {
        std::string bytes;
        {
            std::lock_guard<std::mutex> lock(blobMtx);
            auto it = memBlobs.find(md5_key);
            if (it == memBlobs.end())
                fatal("database: unknown blob '" + md5_key + "'");
            bytes = it->second;
        }
        writeFileOrDie(host_path, bytes);
        return;
    }

    fs::path src = fs::path(rootDir) / "blobs" / md5_key;
    if (!fs::exists(src))
        fatal("database: unknown blob '" + md5_key + "'");
    // Stream the copy: a multi-GB disk image never lives in memory.
    copyFileChunked(src.string(), host_path);
}

std::size_t
Database::blobCount() const
{
    if (rootDir.empty()) {
        std::lock_guard<std::mutex> lock(blobMtx);
        return memBlobs.size();
    }
    std::size_t n = 0;
    for (const auto &entry :
         fs::directory_iterator(fs::path(rootDir) / "blobs")) {
        if (entry.is_regular_file())
            ++n;
    }
    return n;
}

void
Database::compactCollection(const std::string &name, Collection &coll)
{
    fs::path dir = fs::path(rootDir) / "collections";
    // Injectable crash before the snapshot write
    // (G5_FAULT=db.compact.snapshot): the WAL is still intact, so
    // recovery replays it over the previous snapshot.
    fault::checkpoint("db.compact.snapshot");
    static metrics::Counter &compactions =
        metrics::counter("db.wal.compactions");
    compactions.inc();

    WalState &ws = walStates[name];
    // The WAL file is about to be removed; any deferred bytes and the
    // append fd go with it (the snapshot below supersedes both).
    ws.buffer.clear();
    if (ws.fd >= 0) {
        ::close(ws.fd);
        ws.fd = -1;
    }

    std::shared_ptr<const Collection::View> pinned;
    {
        // Atomically: drop the collection's not-yet-written queued
        // frames AND pin the snapshot (which also discards the
        // collection's pending records). Everything dropped here is
        // contained in the pinned snapshot; everything logged or
        // enqueued afterwards is not, and lands in the fresh WAL.
        // drainMtx excludes a save() that has drained its oplog but
        // not yet enqueued the frames.
        std::lock_guard<std::mutex> drain_lock(drainMtx);
        {
            std::lock_guard<std::mutex> gc_lock(gcMtx);
            for (auto &entry : gcQueue) {
                std::erase_if(entry.frames, [&](const auto &f) {
                    return f.first == name;
                });
            }
        }
        pinned = coll.viewForCompaction();
    }

    std::string snapshot;
    fs::path target, stale;
    if (storageFmt == Collection::WalFormat::Binary) {
        snapshot = s5db::buildSnapshot(
            [&](const std::function<void(const Json &)> &emit) {
                pinned->forEach(emit);
            });
        target = dir / (name + ".s5db");
        stale = dir / (name + ".jsonl");
    } else {
        pinned->forEach([&](const Json &doc) {
            doc.dumpTo(snapshot);
            snapshot += '\n';
        });
        target = dir / (name + ".jsonl");
        stale = dir / (name + ".s5db");
    }
    // The snapshot lands via atomic rename BEFORE the superseded
    // snapshot and the WAL are removed, and replay is idempotent, so a
    // crash between any two of these steps is safe.
    writeFileAtomic(target, snapshot, uniqueTmpTag());
    std::error_code ec;
    fs::remove(stale, ec);
    fs::remove(dir / (name + ".wal"), ec);
    ws.walSize = 0;
    ws.snapSize = snapshot.size();
    ws.sized = true;
}

bool
Database::ensureWal(const std::string &name, WalState &ws)
{
    fs::path dir = fs::path(rootDir) / "collections";
    fs::path wal = dir / (name + ".wal");
    if (!ws.sized) {
        ws.walSize = fileSizeOrZero(wal);
        ws.snapSize = std::max(fileSizeOrZero(dir / (name + ".jsonl")),
                               fileSizeOrZero(dir / (name + ".s5db")));
        ws.sized = true;
    }
    if (ws.fd >= 0)
        return ws.fileFormat == storageFmt;

    std::size_t existing = fileSizeOrZero(wal);
    if (existing > 0) {
        // Sniff the existing WAL's magic to learn its encoding; a
        // mismatch means a database reopened under the other format —
        // the caller compacts (rewriting the snapshot in the new
        // format) instead of appending mixed records.
        std::ifstream in(wal, std::ios::binary);
        char head[s5db::magicLen] = {};
        in.read(head, s5db::magicLen);
        auto file_fmt = s5db::isWal({head, std::size_t(in.gcount())})
                            ? Collection::WalFormat::Binary
                            : Collection::WalFormat::Jsonl;
        if (file_fmt != storageFmt)
            return false;
    }
    int fd = ::open(wal.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                    0644);
    if (fd < 0)
        fatal("database: cannot append to '" + wal.string() + "'");
    ws.fd = fd;
    ws.fileFormat = storageFmt;
    ws.walSize = existing;
    if (existing == 0 && storageFmt == Collection::WalFormat::Binary) {
        writeAll(fd, s5db::walMagic, s5db::magicLen, "'" + name + ".wal'");
        ws.walSize = s5db::magicLen;
    }
    return true;
}

void
Database::flushWalBuffer(const std::string &name, WalState &ws)
{
    if (ws.buffer.empty() || ws.fd < 0)
        return;
    repairWal(name, ws);
    writeAll(ws.fd, ws.buffer.data(), ws.buffer.size(),
             "'" + name + ".wal'");
    ws.buffer.clear();
}

void
Database::repairWal(const std::string &name, WalState &ws)
{
    if (!ws.tornTail || ws.fd < 0)
        return;
    // ws.walSize only advances after a successful append, so it is the
    // last group boundary; the spool (Durability::None) counts toward
    // it but has not reached the file yet.
    auto good = off_t(ws.walSize - ws.buffer.size());
    if (::ftruncate(ws.fd, good) != 0) {
        fatal("database: cannot truncate torn tail of '" + name +
              ".wal'");
    }
    ws.tornTail = false;
}

void
Database::writeBatch(std::vector<GcEntry> &batch)
{
    // Group the popped frames by collection, preserving commit order
    // within each (batch is sequence-ordered).
    std::map<std::string, std::vector<std::string *>> per_coll;
    for (auto &entry : batch) {
        for (auto &[name, bytes] : entry.frames)
            per_coll[name].push_back(&bytes);
    }

    static metrics::Counter &wal_bytes =
        metrics::counter("db.wal.bytesAppended");
    static metrics::Counter &groups_c = metrics::counter("db.wal.groups");
    static metrics::Counter &commits_c =
        metrics::counter("db.wal.groupCommits");
    commits_c.inc();

    for (auto &[name, frames] : per_coll) {
        if (frames.empty())
            continue;
        Collection *coll = findCollection(name);
        if (coll == nullptr)
            continue; // unreachable: frames come from live collections
        WalState &ws = walStates[name];
        if (!ensureWal(name, ws)) {
            // Format mismatch: the snapshot pinned inside compaction
            // already contains every operation in these frames, so
            // they are subsumed, not lost.
            compactCollection(name, *coll);
            continue;
        }

        repairWal(name, ws);

        std::size_t appended = 0;
        try {
            // Injectable torn group (G5_FAULT=db.wal.groupCommit): land
            // half of the first frame and die mid-write. Recovery must
            // drop exactly the torn group and keep all prior ones.
            if (fault::shouldFire("db.wal.groupCommit")) {
                flushWalBuffer(name, ws);
                const std::string &f = *frames.front();
                writeAll(ws.fd, f.data(), f.size() / 2,
                         "'" + name + ".wal'");
                throw InjectedFault("db.wal.groupCommit");
            }

            if (dura == Durability::None) {
                // Defer the write: records are spooled in memory and
                // land on the fd once the spool is large, at format
                // flips, or at destruction — a crash may lose them, by
                // contract.
                for (std::string *f : frames) {
                    ws.buffer += *f;
                    appended += f->size();
                }
                if (ws.buffer.size() > deferredFlushBytes)
                    flushWalBuffer(name, ws);
            } else {
                // One gathered write covers every group bound for this
                // collection, and one fsync covers the whole batch.
                std::vector<iovec> iov;
                iov.reserve(frames.size());
                for (std::string *f : frames) {
                    iov.push_back({f->data(), f->size()});
                    appended += f->size();
                }
                writevAll(ws.fd, iov, "'" + name + ".wal'");
                if (dura == Durability::Fsync && ::fsync(ws.fd) != 0)
                    fatal("database: fsync failed for '" + name +
                          ".wal'");
            }
        } catch (...) {
            // The file may end mid-frame; the next append (or the next
            // open) truncates back to the last group boundary.
            ws.tornTail = true;
            throw;
        }
        ws.walSize += appended;
        wal_bytes.inc(std::int64_t(appended));
        groups_c.inc(std::int64_t(frames.size()));

        if (ws.walSize > walCompactMinBytes &&
            double(ws.walSize) > walCompactRatio * double(ws.snapSize)) {
            compactCollection(name, *coll);
        }
    }
}

void
Database::leaderCommit()
{
    for (;;) {
        std::lock_guard<std::mutex> save_lock(saveMtx);
        std::vector<GcEntry> batch;
        {
            std::lock_guard<std::mutex> gc_lock(gcMtx);
            while (!gcQueue.empty()) {
                batch.push_back(std::move(gcQueue.front()));
                gcQueue.pop_front();
            }
            if (batch.empty()) {
                gcLeader = false;
                return;
            }
        }
        try {
            writeBatch(batch);
        } catch (...) {
            {
                std::lock_guard<std::mutex> gc_lock(gcMtx);
                // Every group up to the current tail is lost: fail the
                // saves waiting on them and resign, so the next save
                // starts a clean epoch.
                gcErrSeq = gcTailSeq;
                gcDoneSeq = gcTailSeq;
                gcQueue.clear();
                gcLeader = false;
            }
            gcCv.notify_all();
            throw;
        }
        bool more;
        {
            std::lock_guard<std::mutex> gc_lock(gcMtx);
            gcDoneSeq = batch.back().seq;
            more = !gcQueue.empty();
            if (!more)
                gcLeader = false;
        }
        gcCv.notify_all();
        if (!more)
            return;
    }
}

void
Database::waitForSeq(std::uint64_t seq, bool enqueued)
{
    std::unique_lock<std::mutex> lock(gcMtx);
    gcCv.wait(lock, [&] { return gcDoneSeq >= seq; });
    if (enqueued && seq <= gcErrSeq)
        fatal("database: group commit failed; WAL records were lost");
}

void
Database::save()
{
    if (rootDir.empty())
        return;
    auto t0 = std::chrono::steady_clock::now();

    std::vector<std::pair<std::string, Collection *>> colls;
    {
        std::shared_lock<std::shared_mutex> lock(registryMtx);
        for (const auto &kv : collections)
            colls.emplace_back(kv.first, kv.second.get());
    }

    std::vector<std::pair<std::string, std::string>> frames;
    std::exception_ptr drain_err;
    std::uint64_t wait_seq = 0;
    bool enqueued = false;
    bool lead = false;
    {
        std::lock_guard<std::mutex> drain_lock(drainMtx);
        for (auto &[name, coll] : colls) {
            if (!coll->dirty())
                continue; // clean collections cost nothing
            try {
                // Injectable crash before this collection's drain
                // (G5_FAULT=db.save.append): collections drained
                // earlier in this save() still commit below —
                // committed-prefix semantics.
                fault::checkpoint("db.save.append");
            } catch (...) {
                drain_err = std::current_exception();
                break;
            }
            std::string ops = coll->drainOplog();
            if (ops.empty())
                continue;
            std::string bytes;
            if (coll->walFormat() == Collection::WalFormat::Binary)
                s5db::appendGroupFrame(bytes, ops);
            else
                bytes = std::move(ops);
            frames.emplace_back(name, std::move(bytes));
        }
        std::lock_guard<std::mutex> gc_lock(gcMtx);
        if (frames.empty()) {
            // Nothing of ours to write, but save() returning still
            // promises that previously enqueued groups are durable.
            wait_seq = gcTailSeq;
        } else {
            wait_seq = ++gcTailSeq;
            gcQueue.push_back({wait_seq, std::move(frames)});
            enqueued = true;
            if (!gcLeader) {
                gcLeader = true;
                lead = true;
            }
        }
    }

    // The first saver in becomes the commit leader and writes every
    // queued group (its own included); the others block until the
    // leader reports their sequence number durable. Either way, one
    // batch of disk writes serves all concurrent save() calls.
    if (lead)
        leaderCommit();
    waitForSeq(wait_seq, enqueued);
    if (drain_err)
        std::rethrow_exception(drain_err);

    static metrics::Histogram &commit_s =
        metrics::histogram("db.wal.commitSeconds");
    commit_s.observe(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
}

void
Database::compact()
{
    if (rootDir.empty())
        return;
    std::lock_guard<std::mutex> save_lock(saveMtx);
    std::vector<std::pair<std::string, Collection *>> colls;
    {
        std::shared_lock<std::shared_mutex> lock(registryMtx);
        for (const auto &kv : collections)
            colls.emplace_back(kv.first, kv.second.get());
    }
    for (auto &[name, coll] : colls)
        compactCollection(name, *coll);
}

void
Database::setWalCompaction(std::size_t min_bytes, double ratio)
{
    std::lock_guard<std::mutex> save_lock(saveMtx);
    walCompactMinBytes = min_bytes;
    walCompactRatio = ratio;
}

void
Database::setDurability(Durability d)
{
    std::lock_guard<std::mutex> save_lock(saveMtx);
    if (d != Durability::None) {
        // Tightening the guarantee lands anything previously deferred.
        for (auto &[name, ws] : walStates)
            flushWalBuffer(name, ws);
    }
    dura = d;
}

void
Database::setStorageFormat(Collection::WalFormat f)
{
    if (!rootDir.empty())
        save(); // flush pending records in the old encoding first
    std::lock_guard<std::mutex> save_lock(saveMtx);
    storageFmt = f;
    std::shared_lock<std::shared_mutex> lock(registryMtx);
    for (auto &kv : collections)
        kv.second->setWalFormat(f);
}

TxnGuard
Database::lockGuard()
{
    std::vector<Collection *> colls;
    {
        std::shared_lock<std::shared_mutex> lock(registryMtx);
        for (const auto &kv : collections)
            colls.push_back(kv.second.get());
    }
    return TxnGuard(std::move(colls));
}

TxnGuard
Database::lockGuard(const std::vector<std::string> &names)
{
    std::vector<Collection *> colls;
    for (const auto &name : names)
        colls.push_back(&collection(name));
    return TxnGuard(std::move(colls));
}

} // namespace g5::db
