#include "db/database.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/faultinject.hh"
#include "base/logging.hh"
#include "base/metrics.hh"
#include "base/md5.hh"
#include "base/str.hh"

namespace fs = std::filesystem;

namespace g5::db
{

namespace
{

/** Chunk size for streaming file hashing/copies (1 MiB). */
constexpr std::size_t chunkSize = 1 << 20;

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("database: cannot read '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFileOrDie(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("database: cannot write '" + path + "'");
    out.write(bytes.data(), std::streamsize(bytes.size()));
    if (!out)
        fatal("database: short write to '" + path + "'");
}

/** Write @p bytes then atomically rename into place. */
void
writeFileAtomic(const fs::path &target, const std::string &bytes,
                const std::string &tmp_tag)
{
    fs::path tmp = target;
    tmp += "." + tmp_tag + ".tmp";
    writeFileOrDie(tmp.string(), bytes);
    std::error_code ec;
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp);
        fatal("database: cannot rename '" + tmp.string() + "' to '" +
              target.string() + "': " + ec.message());
    }
}

/** A process-unique tag for temp file names (concurrent writers). */
std::string
uniqueTmpTag()
{
    static std::atomic<std::uint64_t> counter{0};
    return std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

/** Copy @p src to @p dst in fixed-size chunks (never whole-file). */
void
copyFileChunked(const std::string &src, const std::string &dst)
{
    std::ifstream in(src, std::ios::binary);
    if (!in)
        fatal("database: cannot read '" + src + "'");
    std::ofstream out(dst, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("database: cannot write '" + dst + "'");
    std::vector<char> buf(chunkSize);
    while (in) {
        in.read(buf.data(), std::streamsize(buf.size()));
        std::streamsize got = in.gcount();
        if (got > 0) {
            out.write(buf.data(), got);
            if (!out)
                fatal("database: short write to '" + dst + "'");
        }
    }
}

std::size_t
fileSizeOrZero(const fs::path &p)
{
    std::error_code ec;
    auto n = fs::file_size(p, ec);
    return ec ? 0 : std::size_t(n);
}

} // anonymous namespace

TxnGuard::TxnGuard(std::vector<Collection *> colls)
{
    std::sort(colls.begin(), colls.end(),
              [](const Collection *a, const Collection *b) {
                  return a->name() < b->name();
              });
    colls.erase(std::unique(colls.begin(), colls.end()), colls.end());
    locks.reserve(colls.size());
    for (Collection *c : colls)
        locks.emplace_back(c->txnMutex());
}

Database::Database() = default;

Database::Database(const std::string &dir)
    : rootDir(dir)
{
    fs::create_directories(fs::path(rootDir) / "collections");
    fs::create_directories(fs::path(rootDir) / "blobs");
    removeOrphanTmpFiles();
    loadFromDisk();
}

void
Database::removeOrphanTmpFiles()
{
    // Every writer in this file spools through "<something>.tmp" and
    // renames into place, so any *.tmp still present at open time is
    // the debris of a crashed or SIGKILLed process: never referenced,
    // safe to delete, and deleted *before* replay so a half-written
    // spool can never shadow real state.
    std::size_t removed = 0;
    for (const char *sub : {"blobs", "collections"}) {
        fs::path d = fs::path(rootDir) / sub;
        std::error_code ec;
        for (const auto &ent : fs::directory_iterator(d, ec)) {
            if (!ent.is_regular_file())
                continue;
            if (ent.path().extension() != ".tmp")
                continue;
            std::error_code rec;
            if (fs::remove(ent.path(), rec))
                ++removed;
        }
    }
    if (removed > 0) {
        metrics::counter("db.orphansRemoved").inc(std::int64_t(removed));
        warn("database: removed " + std::to_string(removed) +
             " orphaned .tmp spool file(s) left by a crashed process");
    }
}

void
Database::replayWal(const std::string &name, Collection &coll)
{
    fs::path wal = fs::path(rootDir) / "collections" / (name + ".wal");
    if (!fs::exists(wal))
        return;
    std::string text = readFileOrDie(wal.string());
    std::size_t line_no = 0;
    for (const auto &line : split(text, '\n')) {
        std::string t = trim(line);
        if (t.empty())
            continue;
        ++line_no;
        try {
            coll.applyOplogLine(t);
        } catch (const std::exception &e) {
            // A torn final line from an interrupted append is expected
            // after a crash; everything before it is committed state.
            warn("database: collection '" + name + "': WAL replay "
                 "stopped at record " + std::to_string(line_no) + " (" +
                 e.what() + "); recovering prior records only");
            break;
        }
    }
}

void
Database::loadFromDisk()
{
    fs::path colls = fs::path(rootDir) / "collections";
    // A collection exists on disk as a snapshot (<name>.jsonl), a WAL
    // (<name>.wal), or both.
    std::set<std::string> names;
    for (const auto &entry : fs::directory_iterator(colls)) {
        if (!entry.is_regular_file())
            continue;
        fs::path p = entry.path();
        if (p.extension() == ".jsonl" || p.extension() == ".wal")
            names.insert(p.stem().string());
    }
    for (const auto &name : names) {
        auto coll = std::make_unique<Collection>(name);
        coll->enableOplog();
        fs::path snap = colls / (name + ".jsonl");
        if (fs::exists(snap))
            coll->loadJsonl(readFileOrDie(snap.string()));
        replayWal(name, *coll);
        collections[name] = std::move(coll);
    }
}

Collection &
Database::collection(const std::string &name)
{
    {
        std::shared_lock<std::shared_mutex> lock(registryMtx);
        auto it = collections.find(name);
        if (it != collections.end())
            return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(registryMtx);
    auto it = collections.find(name);
    if (it == collections.end()) {
        auto coll = std::make_unique<Collection>(name);
        if (!rootDir.empty())
            coll->enableOplog();
        it = collections.emplace(name, std::move(coll)).first;
    }
    return *it->second;
}

std::vector<std::string>
Database::collectionNames() const
{
    std::shared_lock<std::shared_mutex> lock(registryMtx);
    std::vector<std::string> names;
    for (const auto &kv : collections)
        names.push_back(kv.first);
    return names;
}

std::string
Database::putBlob(const std::string &bytes)
{
    std::string key = Md5::hashBytes(bytes.data(), bytes.size());
    static metrics::Counter &blob_bytes =
        metrics::counter("db.blob.bytesHashed");
    blob_bytes.inc(std::int64_t(bytes.size()));
    if (rootDir.empty()) {
        std::lock_guard<std::mutex> lock(blobMtx);
        memBlobs.emplace(key, bytes);
        return key;
    }
    fs::path p = fs::path(rootDir) / "blobs" / key;
    if (!fs::exists(p)) {
        // Concurrent puts of the same content both land on an atomic
        // rename to the same target; either winner leaves identical
        // bytes in place.
        writeFileAtomic(p, bytes, uniqueTmpTag());
    }
    return key;
}

std::string
Database::putFile(const std::string &host_path)
{
    // Injectable crash before the upload (G5_FAULT=db.blob.putFile):
    // content-addressed blobs make an interrupted upload retryable.
    fault::checkpoint("db.blob.putFile");
    std::ifstream in(host_path, std::ios::binary);
    if (!in)
        fatal("database: cannot read '" + host_path + "'");
    std::vector<char> buf(chunkSize);
    static metrics::Counter &blob_bytes =
        metrics::counter("db.blob.bytesHashed");

    if (rootDir.empty()) {
        // In-memory mode stores the bytes anyway; still hash in chunks.
        Md5Stream h;
        std::string bytes;
        while (in) {
            in.read(buf.data(), std::streamsize(buf.size()));
            std::streamsize got = in.gcount();
            if (got > 0) {
                h.update(buf.data(), std::size_t(got));
                blob_bytes.inc(got);
                bytes.append(buf.data(), std::size_t(got));
            }
        }
        std::string key = h.final();
        std::lock_guard<std::mutex> lock(blobMtx);
        memBlobs.emplace(key, std::move(bytes));
        return key;
    }

    // Single pass: hash while spooling to a temp blob, then rename to
    // the content address (or drop the temp when the blob exists).
    fs::path blobs = fs::path(rootDir) / "blobs";
    fs::path tmp = blobs / (".put-" + uniqueTmpTag() + ".tmp");
    {
        std::ofstream out(tmp.string(), std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("database: cannot write '" + tmp.string() + "'");
        Md5Stream h;
        while (in) {
            in.read(buf.data(), std::streamsize(buf.size()));
            std::streamsize got = in.gcount();
            if (got > 0) {
                h.update(buf.data(), std::size_t(got));
                blob_bytes.inc(got);
                out.write(buf.data(), got);
                if (!out)
                    fatal("database: short write to '" + tmp.string() +
                          "'");
            }
        }
        out.close();
        std::string key = h.final();
        fs::path target = blobs / key;
        if (fs::exists(target)) {
            fs::remove(tmp);
            return key;
        }
        std::error_code ec;
        fs::rename(tmp, target, ec);
        if (ec) {
            fs::remove(tmp);
            fatal("database: cannot rename blob into place: " +
                  ec.message());
        }
        return key;
    }
}

bool
Database::hasBlob(const std::string &md5_key) const
{
    if (rootDir.empty()) {
        std::lock_guard<std::mutex> lock(blobMtx);
        return memBlobs.count(md5_key) > 0;
    }
    return fs::exists(fs::path(rootDir) / "blobs" / md5_key);
}

std::string
Database::blobPath(const std::string &md5_key) const
{
    if (rootDir.empty())
        return "";
    fs::path p = fs::path(rootDir) / "blobs" / md5_key;
    return fs::exists(p) ? p.string() : std::string();
}

std::string
Database::getBlob(const std::string &md5_key) const
{
    if (rootDir.empty()) {
        std::lock_guard<std::mutex> lock(blobMtx);
        auto it = memBlobs.find(md5_key);
        if (it == memBlobs.end())
            fatal("database: unknown blob '" + md5_key + "'");
        return it->second;
    }
    fs::path p = fs::path(rootDir) / "blobs" / md5_key;
    if (!fs::exists(p))
        fatal("database: unknown blob '" + md5_key + "'");
    return readFileOrDie(p.string());
}

void
Database::exportBlob(const std::string &md5_key,
                     const std::string &host_path) const
{
    fs::path out(host_path);
    if (out.has_parent_path())
        fs::create_directories(out.parent_path());

    if (rootDir.empty()) {
        std::string bytes;
        {
            std::lock_guard<std::mutex> lock(blobMtx);
            auto it = memBlobs.find(md5_key);
            if (it == memBlobs.end())
                fatal("database: unknown blob '" + md5_key + "'");
            bytes = it->second;
        }
        writeFileOrDie(host_path, bytes);
        return;
    }

    fs::path src = fs::path(rootDir) / "blobs" / md5_key;
    if (!fs::exists(src))
        fatal("database: unknown blob '" + md5_key + "'");
    // Stream the copy: a multi-GB disk image never lives in memory.
    copyFileChunked(src.string(), host_path);
}

std::size_t
Database::blobCount() const
{
    if (rootDir.empty()) {
        std::lock_guard<std::mutex> lock(blobMtx);
        return memBlobs.size();
    }
    std::size_t n = 0;
    for (const auto &entry :
         fs::directory_iterator(fs::path(rootDir) / "blobs")) {
        if (entry.is_regular_file())
            ++n;
    }
    return n;
}

void
Database::compactCollection(const std::string &name, Collection &coll)
{
    fs::path dir = fs::path(rootDir) / "collections";
    // Injectable crash before the snapshot write
    // (G5_FAULT=db.compact.snapshot): the WAL is still intact, so
    // recovery replays it over the previous snapshot.
    fault::checkpoint("db.compact.snapshot");
    static metrics::Counter &compactions =
        metrics::counter("db.wal.compactions");
    compactions.inc();
    // The WAL file is about to be removed; release our append stream
    // first so buffered bytes land and the handle doesn't go stale.
    WalState &ws = walStates[name];
    if (ws.stream.is_open())
        ws.stream.close();
    // snapshotJsonl atomically serializes the documents AND discards
    // pending records, so nothing is lost or double-applied; the WAL is
    // removed only after the snapshot rename, and replay is idempotent,
    // so a crash between the two is safe.
    std::string snapshot = coll.snapshotJsonl();
    writeFileAtomic(dir / (name + ".jsonl"), snapshot, uniqueTmpTag());
    std::error_code ec;
    fs::remove(dir / (name + ".wal"), ec);
    ws.walSize = 0;
    ws.snapSize = snapshot.size();
    ws.sized = true;
}

void
Database::save()
{
    if (rootDir.empty())
        return;
    std::lock_guard<std::mutex> save_lock(saveMtx);

    std::vector<std::pair<std::string, Collection *>> colls;
    {
        std::shared_lock<std::shared_mutex> lock(registryMtx);
        for (const auto &kv : collections)
            colls.emplace_back(kv.first, kv.second.get());
    }

    fs::path dir = fs::path(rootDir) / "collections";
    for (auto &[name, coll] : colls) {
        if (!coll->dirty())
            continue; // clean collections cost nothing
        // Injectable crash before this collection's WAL append
        // (G5_FAULT=db.save.append): collections already appended this
        // save() stay durable — committed-prefix semantics.
        fault::checkpoint("db.save.append");
        std::string ops = coll->drainOplog();
        if (ops.empty())
            continue;
        fs::path wal = dir / (name + ".wal");
        WalState &ws = walStates[name];
        if (!ws.sized) {
            ws.walSize = fileSizeOrZero(wal);
            ws.snapSize = fileSizeOrZero(dir / (name + ".jsonl"));
            ws.sized = true;
        }
        // Append through a stream held open across saves: one
        // write+flush per save instead of open/write/close, and the
        // compaction check runs off cached sizes instead of stat(2).
        if (!ws.stream.is_open()) {
            ws.stream.open(wal, std::ios::binary | std::ios::app);
            if (!ws.stream)
                fatal("database: cannot append to '" + wal.string() +
                      "'");
        }
        ws.stream.write(ops.data(), std::streamsize(ops.size()));
        ws.stream.flush();
        if (!ws.stream)
            fatal("database: short append to '" + wal.string() + "'");
        ws.walSize += ops.size();
        static metrics::Counter &wal_bytes =
            metrics::counter("db.wal.bytesAppended");
        wal_bytes.inc(std::int64_t(ops.size()));

        if (ws.walSize > walCompactMinBytes &&
            double(ws.walSize) > walCompactRatio * double(ws.snapSize)) {
            compactCollection(name, *coll);
        }
    }
}

void
Database::compact()
{
    if (rootDir.empty())
        return;
    std::lock_guard<std::mutex> save_lock(saveMtx);
    std::vector<std::pair<std::string, Collection *>> colls;
    {
        std::shared_lock<std::shared_mutex> lock(registryMtx);
        for (const auto &kv : collections)
            colls.emplace_back(kv.first, kv.second.get());
    }
    for (auto &[name, coll] : colls)
        compactCollection(name, *coll);
}

void
Database::setWalCompaction(std::size_t min_bytes, double ratio)
{
    std::lock_guard<std::mutex> save_lock(saveMtx);
    walCompactMinBytes = min_bytes;
    walCompactRatio = ratio;
}

TxnGuard
Database::lockGuard()
{
    std::vector<Collection *> colls;
    {
        std::shared_lock<std::shared_mutex> lock(registryMtx);
        for (const auto &kv : collections)
            colls.push_back(kv.second.get());
    }
    return TxnGuard(std::move(colls));
}

TxnGuard
Database::lockGuard(const std::vector<std::string> &names)
{
    std::vector<Collection *> colls;
    for (const auto &name : names)
        colls.push_back(&collection(name));
    return TxnGuard(std::move(colls));
}

} // namespace g5::db
