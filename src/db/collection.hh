/**
 * @file
 * A collection of JSON documents with Mongo-like CRUD and unique indexes.
 *
 * Documents are Json objects. Every document carries a string "_id"
 * (assigned a UUID at insert when absent). Unique indexes over dotted
 * field paths are enforced at insert/update time — gem5art relies on this
 * to guarantee that no two distinct artifacts share a content hash.
 */

#ifndef G5_DB_COLLECTION_HH
#define G5_DB_COLLECTION_HH

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "base/json.hh"

namespace g5::db
{

/** Raised when an insert/update violates a unique index. */
class DuplicateKeyError : public std::runtime_error
{
  public:
    explicit DuplicateKeyError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

class Collection
{
  public:
    explicit Collection(std::string name);

    /** @return the collection's name. */
    const std::string &name() const { return collName; }

    /**
     * Insert a document. Assigns a UUID "_id" when absent.
     * @return the document's _id.
     * @throws DuplicateKeyError on unique-index or _id collision.
     */
    std::string insertOne(Json doc);

    /** @return all documents matching @p query, in insertion order. */
    std::vector<Json> find(const Json &query) const;

    /** @return the first match, or a null Json when none. */
    Json findOne(const Json &query) const;

    /** @return the document with the given _id, or null Json. */
    Json findById(const std::string &id) const;

    /** @return the number of documents matching @p query. */
    std::size_t count(const Json &query) const;

    /** @return the total number of documents. */
    std::size_t size() const { return docs.size(); }

    /**
     * Update the first match with an update spec: {"$set": {...}} and/or
     * {"$inc": {...}}; a spec without operators replaces the document
     * (keeping its _id).
     * @return true when a document was updated.
     */
    bool updateOne(const Json &query, const Json &update);

    /** Delete all matches. @return the number of documents removed. */
    std::size_t deleteMany(const Json &query);

    /**
     * Enforce uniqueness of a dotted field path. Existing duplicates cause
     * a DuplicateKeyError. Documents missing the field are exempt
     * (sparse-index semantics).
     */
    void createUniqueIndex(const std::string &field_path);

    /** @return the sorted distinct serialized values of a field path. */
    std::vector<Json> distinct(const std::string &field_path) const;

    /** Iterate every document (read-only). */
    void forEach(const std::function<void(const Json &)> &fn) const;

    /** Serialize every document, one compact JSON text per line. */
    std::string toJsonl() const;

    /** Replace contents from JSONL text (used when loading from disk). */
    void loadJsonl(const std::string &text);

  private:
    /** Key a field value for index bookkeeping. */
    static std::string indexKey(const Json &value);

    void checkUnique(const Json &doc, const std::string &skip_id) const;

    std::string collName;
    std::vector<Json> docs;
    std::map<std::string, std::size_t> byId;
    std::set<std::string> uniqueFields;
    /** Guards all public operations: collections are shared across
     *  scheduler workers running gem5 jobs concurrently. */
    mutable std::mutex mtx;
};

} // namespace g5::db

#endif // G5_DB_COLLECTION_HH
