/**
 * @file
 * A collection of JSON documents with Mongo-like CRUD and hash indexes.
 *
 * Documents are Json objects. Every document carries a string "_id"
 * (assigned a UUID at insert when absent). Unique indexes over dotted
 * field paths are enforced at insert/update time — gem5art relies on this
 * to guarantee that no two distinct artifacts share a content hash.
 *
 * Every indexed field (unique or secondary, see createIndex) maintains a
 * hash index from canonicalized field value to document ids. Top-level
 * equality conditions ({"field": v} and {"field": {"$eq": v}}) are routed
 * through these indexes by a small query planner, so find/findOne/count
 * on an indexed field are O(matches) instead of O(collection), and the
 * uniqueness check at insert is an O(1) probe instead of a full scan
 * (bulk-inserting N documents is O(N), not O(N^2)). Queries the planner
 * cannot serve fall back to the original full scan, so results are
 * always identical to scanning.
 *
 * Concurrency: every collection carries its own std::shared_mutex.
 * Read operations (find/findOne/findById/count/distinct/forEach/size)
 * take a shared lock and run concurrently with each other; mutations
 * take an exclusive lock. Different collections never share a lock, so
 * scheduler workers touching "artifacts" and "runs" proceed in
 * parallel. Cross-collection transactions are composed through
 * db::Database::lockGuard(), which acquires each collection's dedicated
 * transaction mutex in lexicographic name order (see DESIGN.md,
 * "Concurrency & durability").
 *
 * Durability: when the owning Database is on-disk it enables the
 * operation log (enableOplog). Every committed mutation then appends a
 * compact JSONL record ({"op":"i"|"u"|"d", ...}) to an in-memory
 * pending list; Database::save() drains that list (drainOplog) into the
 * collection's append-only WAL file and Database::loadFromDisk()
 * replays it (applyOplogLine). Replay is idempotent (inserts upsert,
 * deletes of missing ids are no-ops) so a crash between WAL append and
 * snapshot compaction never corrupts the store.
 */

#ifndef G5_DB_COLLECTION_HH
#define G5_DB_COLLECTION_HH

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/json.hh"
#include "base/metrics.hh"

namespace g5::db
{

/** Raised when an insert/update violates a unique index. */
class DuplicateKeyError : public std::runtime_error
{
  public:
    explicit DuplicateKeyError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

class Collection
{
  public:
    explicit Collection(std::string name);

    /** @return the collection's name. */
    const std::string &name() const { return collName; }

    /**
     * Insert a document. Assigns a UUID "_id" when absent.
     * @return the document's _id.
     * @throws DuplicateKeyError on unique-index or _id collision.
     */
    std::string insertOne(Json doc);

    /** @return all documents matching @p query, in insertion order. */
    std::vector<Json> find(const Json &query) const;

    /** @return the first match, or a null Json when none. */
    Json findOne(const Json &query) const;

    /** @return the document with the given _id, or null Json. */
    Json findById(const std::string &id) const;

    /** @return the number of documents matching @p query. */
    std::size_t count(const Json &query) const;

    /** @return the total number of documents. */
    std::size_t size() const;

    /**
     * Update the first match with an update spec: {"$set": {...}} and/or
     * {"$inc": {...}}; a spec without operators replaces the document
     * (keeping its _id).
     * @return true when a document was updated.
     */
    bool updateOne(const Json &query, const Json &update);

    /** Delete all matches. @return the number of documents removed. */
    std::size_t deleteMany(const Json &query);

    /**
     * Enforce uniqueness of a dotted field path. Existing duplicates cause
     * a DuplicateKeyError. Documents missing the field are exempt
     * (sparse-index semantics).
     */
    void createUniqueIndex(const std::string &field_path);

    /**
     * Maintain a secondary (non-unique) hash index over a dotted field
     * path so equality queries on it skip the scan. Idempotent; never
     * changes query results.
     */
    void createIndex(const std::string &field_path);

    /** @return the sorted field paths currently indexed. */
    std::vector<std::string> indexedFields() const;

    /** @return the sorted distinct serialized values of a field path. */
    std::vector<Json> distinct(const std::string &field_path) const;

    /** Iterate every document (read-only). */
    void forEach(const std::function<void(const Json &)> &fn) const;

    /** Serialize every document, one compact JSON text per line. */
    std::string toJsonl() const;

    /** Replace contents from JSONL text (used when loading from disk). */
    void loadJsonl(const std::string &text);

    // --- persistence hooks, used by db::Database ---

    /**
     * Start recording mutation records for WAL persistence. Off by
     * default so standalone collections (tests, benches) pay nothing.
     */
    void enableOplog();

    /** @return true when un-persisted mutations are pending. */
    bool dirty() const;

    /**
     * Move out the pending WAL records (one compact JSON text per line,
     * newline-terminated) and mark the collection clean. The caller is
     * responsible for appending them to durable storage.
     */
    std::string drainOplog();

    /**
     * Replay one WAL record during load. Never re-logs; replay is
     * idempotent ("i" upserts, "d" ignores unknown ids).
     */
    void applyOplogLine(const std::string &line);

    /**
     * Atomically serialize every document (as toJsonl) and discard any
     * pending WAL records — the snapshot supersedes them. Used by
     * Database compaction so records arriving between a drain and the
     * snapshot are neither lost nor double-applied.
     */
    std::string snapshotJsonl();

    /**
     * The collection's transaction mutex. Held (in lexicographic
     * collection-name order) by Database::lockGuard() around
     * caller-composed multi-collection transactions; never taken by the
     * CRUD operations themselves.
     */
    std::mutex &txnMutex() const { return txnMtx; }

  private:
    /**
     * Canonical key of a field value for index bookkeeping. Numeric
     * values that compare equal (Json's Int 3 == Double 3.0) share a
     * key, recursively through arrays and objects, so an index probe
     * agrees with operator==.
     */
    static std::string indexKey(const Json &value);

    /**
     * All keys a field value is findable under: the whole value, plus
     * each element of an array value (Mongo's literal-equality "array
     * contains" semantics).
     */
    static std::vector<std::string> indexKeysFor(const Json &value);

    /** One field's hash index: canonical value key -> document ids. */
    struct FieldIndex
    {
        bool unique = false;
        std::unordered_map<std::string, std::vector<std::string>> buckets;
    };

    /** Add @p doc (by id) to every field index. Lock held. */
    void indexDoc(const Json &doc, const std::string &id);

    /** Remove @p doc (by id) from every field index. Lock held. */
    void unindexDoc(const Json &doc, const std::string &id);

    /** Build a field's buckets from the current documents. Lock held. */
    FieldIndex buildIndex(const std::string &field_path,
                          bool unique) const;

    /**
     * Query planner: when @p query has a top-level equality condition
     * on "_id" or an indexed field, fill @p positions with the (sorted)
     * candidate document positions and return true. Candidates are a
     * superset of the matches for that one condition; callers still
     * filter with matches(). Lock held.
     */
    bool planCandidates(const Json &query,
                        std::vector<std::size_t> &positions) const;

    /** Position of the first document matching @p query. Lock held. */
    std::size_t findFirstPos(const Json &query) const;

    /** O(1)-probe uniqueness check against every unique index. */
    void checkUnique(const Json &doc, const std::string &skip_id) const;

    /** Append an insert record for @p doc to the oplog. Lock held. */
    void logInsert(const Json &doc);

    /** Append an update (post-image) record. Lock held. */
    void logUpdate(const Json &doc);

    /** Append a delete record for @p ids. Lock held. */
    void logDelete(const std::vector<std::string> &ids);

    /** Insert/replace a doc by id without logging (replay). Lock held. */
    void upsertUnlogged(Json doc);

    /** Remove docs by id without logging (replay). Lock held. */
    void removeIdsUnlogged(const std::set<std::string> &ids);

    static constexpr std::size_t npos = std::size_t(-1);

    std::string collName;

    /**
     * Per-collection operation counters in the process-wide metrics
     * registry ("db.<name>.inserts" etc.). Resolved once here; each
     * operation costs one relaxed atomic increment.
     */
    metrics::Counter &insertsC = metrics::counter("db." + collName +
                                                  ".inserts");
    metrics::Counter &updatesC = metrics::counter("db." + collName +
                                                  ".updates");
    metrics::Counter &deletesC = metrics::counter("db." + collName +
                                                  ".deletes");
    metrics::Counter &queriesC = metrics::counter("db." + collName +
                                                  ".queries");
    std::vector<Json> docs;
    std::unordered_map<std::string, std::size_t> byId;
    std::set<std::string> uniqueFields;
    std::map<std::string, FieldIndex> indexes;

    /** WAL records pending persistence (newline-terminated lines). */
    std::string oplog;
    bool oplogEnabled = false;

    /**
     * Reader–writer lock over the documents and indexes: collections
     * are shared across scheduler workers running gem5 jobs
     * concurrently, and reads (index probes, scans, cache lookups)
     * must not serialize against each other.
     */
    mutable std::shared_mutex mtx;

    /** Transaction mutex for Database::lockGuard (see txnMutex()). */
    mutable std::mutex txnMtx;
};

} // namespace g5::db

#endif // G5_DB_COLLECTION_HH
