/**
 * @file
 * A collection of JSON documents with Mongo-like CRUD, MVCC snapshot
 * reads, and sorted field indexes.
 *
 * Documents are Json objects. Every document carries a string "_id"
 * (assigned a UUID at insert when absent). Unique indexes over dotted
 * field paths are enforced at insert/update time — gem5art relies on this
 * to guarantee that no two distinct artifacts share a content hash.
 *
 * Every indexed field (unique or secondary, see createIndex) maintains a
 * sorted index from canonicalized field value to document slots. Top-
 * level equality conditions ({"field": v} and {"field": {"$eq": v}}) AND
 * range conditions ({"field": {"$gt": v}} etc.) are routed through these
 * indexes by a small query planner, so find/findOne/count on an indexed
 * field are O(matches) instead of O(collection), and the uniqueness
 * check at insert is an O(1) probe instead of a full scan. Queries the
 * planner cannot serve fall back to a full scan, so results are always
 * identical to scanning.
 *
 * Concurrency — MVCC (see DESIGN.md "MVCC & binary storage"): readers
 * take NO lock of any kind. Every read operation (find/findOne/findById/
 * count/distinct/forEach/size) runs against an immutable snapshot
 * (View) published through an atomic shared_ptr swap; a slow full scan
 * can run for seconds while writers commit new versions beside it, and
 * it still observes the exact document set that existed when it began.
 * Writers serialize on a per-collection writer mutex and prepare the
 * next version copy-on-write:
 *
 *  - documents live in fixed-size chunks of shared_ptr<const Json>
 *    slots; an insert fills the next never-before-published slot
 *    in place (write-once), an update/delete copies only the one
 *    affected chunk — hammer2-style COW sharing of everything
 *    unmodified;
 *  - the _id hash table and index buckets are write-once/append-only
 *    structures shared across snapshots: entries are added with
 *    release stores and never mutated, and a reader validates each
 *    candidate against its own snapshot (slot bound + re-filter), so
 *    entries from newer versions are invisible and entries staled by
 *    updates/deletes are filtered out;
 *  - tombstones and stale index entries are reclaimed by an in-memory
 *    compaction that rebuilds dense structures once garbage exceeds
 *    the live document count.
 *
 * Cross-collection transactions are composed through
 * db::Database::lockGuard(), which acquires each collection's dedicated
 * transaction mutex in lexicographic name order.
 *
 * Durability: when the owning Database is on-disk it enables the
 * operation log (enableOplog). Every committed mutation then appends an
 * operation record — legacy JSONL text ({"op":"i"|"u"|"d", ...}) or the
 * binary s5db1 encoding (see db/s5db.hh) depending on the WAL format —
 * to an in-memory pending buffer; Database::save() drains that buffer
 * (drainOplog) into the collection's append-only WAL via group commit
 * and Database::loadFromDisk() replays it (applyOplogLine /
 * applyBinaryOps). Replay is idempotent (inserts upsert, deletes of
 * missing ids are no-ops) so a crash between WAL append and snapshot
 * compaction never corrupts the store.
 */

#ifndef G5_DB_COLLECTION_HH
#define G5_DB_COLLECTION_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/json.hh"
#include "base/metrics.hh"

namespace g5::db
{

/** Raised when an insert/update violates a unique index. */
class DuplicateKeyError : public std::runtime_error
{
  public:
    explicit DuplicateKeyError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

class Collection
{
  private:
    // --- MVCC storage internals (shared between snapshots) -------------

    /** Documents per chunk; slot s lives in chunk s>>chunkShift. */
    static constexpr std::uint32_t chunkShift = 6;
    static constexpr std::uint32_t chunkCap = 1u << chunkShift;
    /** Sentinel for an unfilled index-bucket cell. */
    static constexpr std::uint32_t emptySlot = 0xffffffffu;

    /**
     * A fixed block of document slots. The writer fills each slot
     * exactly once (an append) before the slot number is ever published
     * in a View; updates and deletes never touch a shared chunk — they
     * replace it with a copy. Readers therefore only ever load slots
     * whose stores happened-before their snapshot acquisition.
     */
    struct Chunk
    {
        std::array<std::shared_ptr<const Json>, chunkCap> docs;
    };
    using ChunkPtr = std::shared_ptr<Chunk>;
    /** The chunk directory; copied (cheaply, ptr-per-chunk) on any
     *  structural change so published Views never see it mutate. */
    using Spine = std::vector<ChunkPtr>;

    /**
     * Write-once open-addressing _id table: parallel hash/slot arrays
     * where a cell, once filled, is never modified or removed (the
     * writer publishes the slot with a relaxed store, then the hash
     * with a release store; readers load the hash with acquire first).
     * Entries staled by deletes are detected by validating the slot's
     * document against the reader's snapshot; the table is rebuilt
     * (live entries only) when it reaches half full.
     */
    struct IdTable
    {
        explicit IdTable(std::size_t capacity_pow2)
            : hashes(capacity_pow2), slots(capacity_pow2),
              mask(capacity_pow2 - 1)
        {}

        std::vector<std::atomic<std::uint64_t>> hashes; // 0 = empty
        std::vector<std::atomic<std::uint32_t>> slots;
        std::size_t mask;
        std::size_t filled = 0; // writer-only
    };

    /**
     * A field value's position in the index ordering: values are
     * classed (null < bool < number < string < array/object), ordered
     * numerically within the bool/number classes and lexicographically
     * within the rest, with the canonical text as the tie-break so
     * that two values share a key exactly when the legacy hash index
     * would have bucketed them together (Int 3 and Double 3.0 share;
     * distinct int64s that collide as doubles do not).
     */
    struct IndexKey
    {
        std::uint8_t cls = 0;
        double num = 0.0;  // never NaN (sanitized at construction)
        std::string str;

        bool
        operator<(const IndexKey &o) const
        {
            if (cls != o.cls)
                return cls < o.cls;
            if (num != o.num)
                return num < o.num;
            return str < o.str;
        }
    };

    /**
     * Append-only candidate list for one index key, shared by every
     * snapshot that contains the key: a chain of fixed-size nodes of
     * write-once slot cells. Readers treat the contents as a candidate
     * superset — each slot is bounds-checked against the reader's
     * snapshot and every candidate document is re-filtered through
     * matches() — so cells appended for newer versions or staled by
     * updates/deletes are harmless.
     */
    struct Bucket
    {
        static constexpr std::size_t nodeCap = 12;

        struct Node
        {
            Node()
            {
                for (auto &c : cells)
                    c.store(emptySlot, std::memory_order_relaxed);
            }
            std::array<std::atomic<std::uint32_t>, nodeCap> cells;
            std::atomic<Node *> next{nullptr};
        };

        ~Bucket();

        /** Append a slot (writer mutex held). */
        void append(std::uint32_t slot);

        /** Invoke @p fn per filled cell, in append order. */
        template <typename F>
        void
        forEachSlot(F &&fn) const
        {
            for (const Node *n = &head; n != nullptr;
                 n = n->next.load(std::memory_order_acquire)) {
                for (const auto &c : n->cells) {
                    std::uint32_t s = c.load(std::memory_order_acquire);
                    if (s == emptySlot)
                        return; // cells fill in order; first gap ends
                    fn(s);
                }
            }
        }

        Node head;
        Node *tail = &head;       // writer-only
        std::size_t tailUsed = 0; // writer-only
        std::uint32_t lastSlot = 0; // writer-only
        bool seeded = false;        // writer-only
        /** Approximate cell count; the planner's selectivity signal. */
        std::atomic<std::uint32_t> count{0};
        /**
         * Set once an append breaks ascending-slot order (an update
         * re-appending an existing slot). While false — the common,
         * insert-only case — the cells ARE the slots in insertion
         * order, and the planner skips its sort+dedup pass.
         */
        std::atomic<bool> unsorted{false};
    };
    using BucketPtr = std::shared_ptr<Bucket>;

    /**
     * One field's sorted index. The bucket *directory* is immutable
     * once published (copied when a distinct key appears or the index
     * is rebuilt); the buckets it points to grow append-only in place.
     */
    struct FieldIndex
    {
        bool unique = false;
        std::map<IndexKey, BucketPtr> buckets;
    };
    using IndexMap =
        std::map<std::string, std::shared_ptr<const FieldIndex>>;

  public:
    /** Encoding of pending WAL operation records (see drainOplog). */
    enum class WalFormat : std::uint8_t { Jsonl, Binary };

    /**
     * An immutable snapshot of the collection: a consistent document
     * set plus the index structures valid for it. Obtained lock-free;
     * holding one pins its documents (and nothing newer) alive, so a
     * long scan costs writers nothing and a dropped View releases any
     * superseded documents it was the last reader of.
     */
    class View
    {
      public:
        /** @return the number of live documents in this snapshot. */
        std::size_t size() const { return liveCount; }

        /** Iterate every document, in insertion order. */
        void forEach(const std::function<void(const Json &)> &fn) const;

      private:
        friend class Collection;

        /** @return the document at @p slot, or nullptr (tombstone). */
        const Json *
        docAt(std::uint32_t slot) const
        {
            return (*spine)[slot >> chunkShift]
                ->docs[slot & (chunkCap - 1)]
                .get();
        }

        /** _id lookup against this snapshot. @return nullptr if absent. */
        const Json *byId(std::string_view id) const;

        std::shared_ptr<const Spine> spine;
        std::shared_ptr<const IdTable> ids;
        std::shared_ptr<const IndexMap> indexes;
        std::uint32_t slotCount = 0;
        std::uint32_t liveCount = 0;
        std::uint64_t version = 0;
    };

    explicit Collection(std::string name);
    ~Collection();

    /** @return the collection's name. */
    const std::string &name() const { return collName; }

    /**
     * Insert a document. Assigns a UUID "_id" when absent.
     * @return the document's _id.
     * @throws DuplicateKeyError on unique-index or _id collision.
     */
    std::string insertOne(Json doc);

    /** @return all documents matching @p query, in insertion order. */
    std::vector<Json> find(const Json &query) const;

    /** @return the first match, or a null Json when none. */
    Json findOne(const Json &query) const;

    /** @return the document with the given _id, or null Json. */
    Json findById(const std::string &id) const;

    /** @return the number of documents matching @p query. */
    std::size_t count(const Json &query) const;

    /** @return the total number of documents. */
    std::size_t size() const;

    /**
     * Update the first match with an update spec: {"$set": {...}} and/or
     * {"$inc": {...}}; a spec without operators replaces the document
     * (keeping its _id). Uniqueness is validated before any state
     * changes, so a DuplicateKeyError leaves the collection untouched.
     * @return true when a document was updated.
     */
    bool updateOne(const Json &query, const Json &update);

    /** Delete all matches. @return the number of documents removed. */
    std::size_t deleteMany(const Json &query);

    /**
     * Enforce uniqueness of a dotted field path. Existing duplicates cause
     * a DuplicateKeyError. Documents missing the field are exempt
     * (sparse-index semantics).
     */
    void createUniqueIndex(const std::string &field_path);

    /**
     * Maintain a secondary (non-unique) sorted index over a dotted
     * field path so equality and range queries on it skip the scan.
     * Idempotent; never changes query results.
     */
    void createIndex(const std::string &field_path);

    /** @return the sorted field paths currently indexed. */
    std::vector<std::string> indexedFields() const;

    /** @return the sorted distinct serialized values of a field path. */
    std::vector<Json> distinct(const std::string &field_path) const;

    /** Iterate every document (read-only, against one snapshot). */
    void forEach(const std::function<void(const Json &)> &fn) const;

    /** Serialize every document, one compact JSON text per line. */
    std::string toJsonl() const;

    /** Replace contents from JSONL text (used when loading from disk). */
    void loadJsonl(const std::string &text);

    /** Replace contents from a binary s5db1 snapshot image. */
    void loadBinarySnapshot(std::string_view bytes);

    /**
     * Pin the current snapshot. The cheap entry point for callers that
     * iterate for a long time or re-enter the database from inside the
     * iteration (Database compaction, tests).
     */
    std::shared_ptr<const View> view() const;

    // --- persistence hooks, used by db::Database ---

    /**
     * Start recording mutation records for WAL persistence, encoded in
     * @p fmt. Off by default so standalone collections (tests, benches)
     * pay nothing.
     */
    void enableOplog(WalFormat fmt = WalFormat::Jsonl);

    /** @return the current WAL record encoding. */
    WalFormat walFormat() const;

    /**
     * Switch the WAL record encoding. Requires no pending records
     * (Database flushes before flipping formats).
     */
    void setWalFormat(WalFormat fmt);

    /** @return true when un-persisted mutations are pending. */
    bool dirty() const;

    /**
     * Move out the pending WAL records (JSONL lines or binary s5db1
     * operation records per walFormat()) and mark the collection
     * clean. The caller is responsible for appending them to durable
     * storage.
     */
    std::string drainOplog();

    /**
     * Replay one legacy JSONL WAL record during load. Never re-logs;
     * replay is idempotent ("i" upserts, "d" ignores unknown ids).
     */
    void applyOplogLine(const std::string &line);

    /** Replay one binary commit group's operation records. */
    void applyBinaryOps(std::string_view payload);

    /**
     * Atomically pin the current snapshot AND discard any pending WAL
     * records — the snapshot supersedes them. Used by Database
     * compaction so records arriving between a drain and the snapshot
     * write are neither lost nor double-applied.
     */
    std::shared_ptr<const View> viewForCompaction();

    /** Serialize a compaction snapshot as JSONL (legacy format). */
    std::string snapshotJsonl();

    /**
     * The collection's transaction mutex. Held (in lexicographic
     * collection-name order) by Database::lockGuard() around
     * caller-composed multi-collection transactions; never taken by the
     * CRUD operations themselves.
     */
    std::mutex &txnMutex() const { return txnMtx; }

  private:
    /**
     * Canonical text of a field value for index bookkeeping. Numeric
     * values that compare equal (Json's Int 3 == Double 3.0) share a
     * key, recursively through arrays and objects, so an index probe
     * agrees with operator==. Unchanged from the pre-MVCC hash index.
     */
    static std::string indexKey(const Json &value);

    /** The sorted-index key of a single field value. */
    static IndexKey indexKeyOf(const Json &value);

    /**
     * All keys a field value is findable under: the whole value, plus
     * each element of an array value (Mongo's literal-equality "array
     * contains" semantics).
     */
    static void indexKeysFor(const Json &value,
                             std::vector<IndexKey> &keys);

    /**
     * The writer's working state: the mutable mirrors of the published
     * snapshot pieces. All fields are guarded by writerMtx.
     */
    struct WriterState
    {
        std::shared_ptr<Spine> spine;
        std::shared_ptr<IdTable> ids;
        std::shared_ptr<const IndexMap> indexes;
        std::uint32_t slotCount = 0;
        std::uint32_t liveCount = 0;
        std::uint64_t version = 0;
        /** Tombstoned slots + index cells staled by updates/deletes;
         *  drives the in-memory compaction trigger. */
        std::size_t garbage = 0;
    };

    /** Publish the writer state as a new immutable View. */
    void publish();

    /** The reader fast path: a thread-cached pinned snapshot. */
    const View &viewRef() const;

    /** The writer's current state as an (unpublished) View. */
    View writerView() const;

    /**
     * Open-addressing probe for @p id, validated against @p slot_count.
     * @return the document's slot, or emptySlot when absent.
     */
    static std::uint32_t probeId(const Spine &spine, const IdTable &ids,
                                 std::uint32_t slot_count,
                                 std::string_view id);

    /** Append @p doc's slot to every field index. writerMtx held. */
    void indexDoc(const Json &doc, std::uint32_t slot);

    /**
     * Index maintenance for an in-place document replacement: append
     * only the keys the new document gained; keys it lost become stale
     * cells counted toward the compaction trigger.
     */
    void indexDocDiff(const Json &new_doc, const Json &old_doc,
                      std::uint32_t slot);

    /** Append @p slot under @p key, COWing the directory lazily. */
    void bucketAppend(std::shared_ptr<IndexMap> &cow,
                      const std::string &field, IndexKey key,
                      std::uint32_t slot);

    /** COW the chunk holding @p slot so it can be modified. */
    Chunk *chunkForWrite(std::uint32_t slot);

    /** Append a new document into the next slot. writerMtx held. */
    std::uint32_t appendDoc(Json &&doc, const std::string &id);
    std::uint32_t appendStored(std::shared_ptr<const Json> stored,
                               const std::string &id);

    /** Raw table insert of a precomputed hash (no growth check). */
    static void idInsertRaw(IdTable &t, std::uint64_t h,
                            std::uint32_t slot);

    /** Insert (id -> slot) into the id table, growing it as needed. */
    void idTableInsert(std::string_view id, std::uint32_t slot);

    /** Build a field index over the existing docs. writerMtx held. */
    void installIndex(const std::string &field_path, bool unique);

    /** Rebuild dense storage from the live documents. writerMtx held. */
    void rebuildStorage();

    /** Rebuild if tombstones/stale entries outnumber live docs. */
    void maybeCompactStorage();

    /** Replace all contents from parsed documents. writerMtx held. */
    void bulkLoad(std::vector<Json> &&loaded);

    /**
     * Query planner: when @p query has a top-level equality or range
     * condition on "_id" or an indexed field, fill @p slots with the
     * (sorted) candidate document slots and return true. Candidates
     * are a superset of the matches for that one condition; callers
     * still filter with matches().
     */
    static bool planCandidates(const View &v, const Json &query,
                               std::vector<std::uint32_t> &slots);

    /** First slot (in insertion order) matching @p query, or emptySlot. */
    static std::uint32_t findFirstSlot(const View &v, const Json &query);

    /** O(1)-probe uniqueness check against every unique index. */
    void checkUnique(const Json &doc, std::string_view skip_id);

    /** Append an insert/update/delete record to the oplog. */
    void logInsert(const Json &doc);
    void logUpdate(const Json &doc);
    void logDelete(const std::vector<std::string> &ids);

    /** Insert/replace a doc by id without logging (replay). */
    void upsertUnlogged(Json doc);

    /** Remove docs by id without logging (replay). */
    void removeIdsUnlogged(const std::set<std::string> &ids);

    /** deleteMany/removeIdsUnlogged shared tombstoning core. */
    std::size_t removeSlots(const std::vector<std::uint32_t> &slots);

    std::string collName;

    /**
     * Per-collection operation counters in the process-wide metrics
     * registry ("db.<name>.inserts" etc.). Resolved once here; each
     * operation costs one relaxed atomic increment.
     */
    metrics::Counter &insertsC = metrics::counter("db." + collName +
                                                  ".inserts");
    metrics::Counter &updatesC = metrics::counter("db." + collName +
                                                  ".updates");
    metrics::Counter &deletesC = metrics::counter("db." + collName +
                                                  ".deletes");
    metrics::Counter &queriesC = metrics::counter("db." + collName +
                                                  ".queries");
    /** Queries served from an index (equality or range probe). */
    metrics::Counter &plannedC = metrics::counter("db." + collName +
                                                  ".plannedQueries");

    /** Process-unique instance id, keys the thread-local view cache. */
    const std::uint64_t instId;

    /** The published snapshot; readers load it wait-free via version
     *  checks against the thread-local cache (see viewRef). */
    std::atomic<std::shared_ptr<const View>> pubView;
    std::atomic<std::uint64_t> pubVersion{0};

    /** Serializes all mutations; never taken by readers. */
    mutable std::mutex writerMtx;
    WriterState wr;

    /** WAL records pending persistence (format per walFmt). */
    std::string oplog;
    bool oplogEnabled = false;
    WalFormat walFmt = WalFormat::Jsonl;
    /** Lock-free dirty() mirror of !oplog.empty(). */
    std::atomic<bool> dirtyFlag{false};

    /** Transaction mutex for Database::lockGuard (see txnMutex()). */
    mutable std::mutex txnMtx;
};

} // namespace g5::db

#endif // G5_DB_COLLECTION_HH
