/**
 * @file
 * An embedded document database with a content-addressed blob store.
 *
 * This is the MongoDB substitute documented in DESIGN.md. It offers the
 * slice of functionality gem5art needs:
 *
 *  - named collections of JSON documents with unique indexes;
 *  - a blob store keyed by MD5 (GridFS stand-in) for artifact files;
 *  - durable persistence (a directory of snapshots plus append-only
 *    write-ahead logs + blob files), or a purely in-memory mode for
 *    tests.
 *
 * Concurrency: there is no coarse database mutex. Collection reads are
 * lock-free MVCC snapshot reads and writes serialize per collection
 * (see Collection); the collection registry is guarded by a
 * shared_mutex (lookups are shared, creation is exclusive), and blob
 * files are written atomically via temp-file-then-rename so concurrent
 * puts of the same content are benign. Cross-collection transactions go
 * through lockGuard(), which acquires per-collection transaction
 * mutexes in lexicographic name order (deadlock-free by construction).
 *
 * Durability — group commit: save() drains each dirty collection's
 * pending operation records into a commit group and enqueues it.
 * Concurrent save() calls elect one caller the commit leader; the
 * leader pops every queued group and lands them in one gathered
 * writev() per collection WAL (and at most one fsync per batch under
 * Durability::Fsync), while the other callers wait for their group's
 * sequence number to commit. N threads saving concurrently therefore
 * cost one disk round-trip, not N. The G5_DB_DURABILITY env knob (or
 * setDurability) picks the guarantee: "none" buffers records in memory
 * and defers the write, "buffer" (default) writes to the OS page cache
 * without fsync, "fsync" makes save() wait for the platters.
 *
 * Storage format: collections persist either as legacy JSONL text or
 * as the binary s5db1 record format (see db/s5db.hh) — length-prefixed
 * MD5-sealed records that load via mmap without text parsing. The
 * G5_DB_FORMAT env knob (or setStorageFormat) selects the format for
 * new writes ("binary" is the default); either format is transparently
 * read back regardless of the knob, and a legacy database is migrated
 * by compaction on its first WAL append.
 *
 * When a WAL outgrows the snapshot (walCompactMinBytes and
 * walCompactRatio), the collection is compacted: a fresh snapshot is
 * written (atomically, via rename) and the WAL removed. loadFromDisk()
 * loads the snapshot then replays the WAL; replay is idempotent and
 * tolerates a torn tail (a partially-appended final line or group), so
 * reopening after a crash recovers every committed group.
 */

#ifndef G5_DB_DATABASE_HH
#define G5_DB_DATABASE_HH

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "db/collection.hh"

namespace g5::db
{

/**
 * RAII guard for a caller-composed multi-collection transaction:
 * holds each collection's transaction mutex, always acquired in
 * lexicographic collection-name order. Transactions exclude each
 * other; individual CRUD operations remain atomic via the collection
 * locks regardless.
 */
class TxnGuard
{
  public:
    explicit TxnGuard(std::vector<Collection *> colls);

    TxnGuard(TxnGuard &&) = default;
    TxnGuard &operator=(TxnGuard &&) = default;

  private:
    std::vector<std::unique_lock<std::mutex>> locks;
};

class Database
{
  public:
    /** What a completed save() guarantees (see file comment). */
    enum class Durability : std::uint8_t
    {
        None,   ///< records buffered in memory; written when convenient
        Buffer, ///< written to the OS page cache, no fsync (default)
        Fsync,  ///< fsync'd; one fsync covers a whole commit group
    };

    /** Create an in-memory database (nothing touches the filesystem). */
    Database();

    /**
     * Open (or create) an on-disk database rooted at @p dir. Collections
     * load from <dir>/collections/ (snapshot + WAL, either format);
     * blobs live in <dir>/blobs/.
     */
    explicit Database(const std::string &dir);

    /** Flushes deferred WAL writes (Durability::None) and closes fds. */
    ~Database();

    /** @return the on-disk root, or "" for in-memory databases. */
    const std::string &path() const { return rootDir; }

    /** @return the named collection, creating it on first use. */
    Collection &collection(const std::string &name);

    /** @return the names of all existing collections, sorted. */
    std::vector<std::string> collectionNames() const;

    /**
     * Store @p bytes in the blob store.
     * @return the blob's MD5 hex key. Idempotent.
     */
    std::string putBlob(const std::string &bytes);

    /**
     * Store a host file's contents, hashing and copying in fixed-size
     * chunks — a multi-GB disk image is never resident in memory.
     * @return the MD5 key.
     */
    std::string putFile(const std::string &host_path);

    /** @return true when a blob with this MD5 key exists. */
    bool hasBlob(const std::string &md5_key) const;

    /** Fetch blob bytes; throws FatalError when the key is unknown. */
    std::string getBlob(const std::string &md5_key) const;

    /**
     * Content-addressed blob-ref handout: the host path of a stored
     * blob, suitable for handing to another process (a scheduler worker
     * reads the file directly instead of shipping the payload inline).
     * @return "" for in-memory databases or unknown keys.
     */
    std::string blobPath(const std::string &md5_key) const;

    /**
     * Write a blob out to a host file (artifact "downloadFile"),
     * streaming in fixed-size chunks for on-disk databases.
     */
    void exportBlob(const std::string &md5_key,
                    const std::string &host_path) const;

    /** @return the number of stored blobs. */
    std::size_t blobCount() const;

    /**
     * Persist pending changes (no-op for in-memory databases): drain
     * each dirty collection's WAL records into one commit group and
     * group-commit it (see file comment); collections without changes
     * cost nothing. Compacts a collection when its WAL outgrows its
     * snapshot.
     */
    void save();

    /** Force-compact every collection into a fresh snapshot. */
    void compact();

    /**
     * Tune the compaction policy: a collection compacts during save()
     * once its WAL exceeds @p min_bytes AND @p ratio times its snapshot
     * size. Mostly for tests; defaults are 64 KiB and 1.0.
     */
    void setWalCompaction(std::size_t min_bytes, double ratio);

    /** Select what a completed save() guarantees. */
    void setDurability(Durability d);

    /** @return the current durability level. */
    Durability durability() const { return dura; }

    /**
     * Select the on-disk record format for subsequent writes. Flushes
     * pending records first (in the old format); existing files are
     * rewritten lazily, by the next compaction. Call while quiescent.
     */
    void setStorageFormat(Collection::WalFormat f);

    /** @return the on-disk record format used for new writes. */
    Collection::WalFormat storageFormat() const { return storageFmt; }

    /**
     * Lock every existing collection for a caller-composed
     * cross-collection transaction (ordered, deadlock-free).
     */
    TxnGuard lockGuard();

    /** Lock only the named collections (created on first use). */
    TxnGuard lockGuard(const std::vector<std::string> &names);

  private:
    /** One save()'s commit group: (collection, encoded bytes) frames. */
    struct GcEntry
    {
        std::uint64_t seq = 0;
        std::vector<std::pair<std::string, std::string>> frames;
    };

    /**
     * Per-collection persistence state, guarded by saveMtx: the WAL
     * append fd kept open across commits, cached WAL/snapshot sizes so
     * the compaction check never stats the filesystem, the format the
     * open file is encoded in, and the Durability::None spool.
     */
    struct WalState
    {
        int fd = -1;
        Collection::WalFormat fileFormat = Collection::WalFormat::Binary;
        std::string buffer; ///< deferred bytes (Durability::None)
        std::size_t walSize = 0;
        std::size_t snapSize = 0;
        bool sized = false;    // sizes initialized from disk
        bool tornTail = false; ///< a failed commit left partial bytes
    };

    void loadFromDisk();

    /** Delete stale *.tmp spool files a crashed writer left behind. */
    void removeOrphanTmpFiles();

    /** Replay one collection's WAL file into @p coll, if present. */
    void replayWal(const std::string &name, Collection &coll);

    /** @return the existing collection, or nullptr. Registry lock. */
    Collection *findCollection(const std::string &name);

    /** Write a fresh snapshot and drop the WAL. saveMtx held. */
    void compactCollection(const std::string &name, Collection &coll);

    /**
     * Open/validate the WAL append fd for the current storage format.
     * @return false when an existing WAL holds the *other* format (the
     * caller compacts instead of appending). saveMtx held.
     */
    bool ensureWal(const std::string &name, WalState &ws);

    /** Land the Durability::None spool on the fd. saveMtx held. */
    void flushWalBuffer(const std::string &name, WalState &ws);

    /**
     * Truncate partial bytes a failed commit left on the WAL, so the
     * next append starts at a group boundary — without this, replay's
     * committed-prefix rule would drop every later (acknowledged)
     * group behind the torn one. saveMtx held.
     */
    void repairWal(const std::string &name, WalState &ws);

    /** Write every popped commit group to the WAL fds. saveMtx held. */
    void writeBatch(std::vector<GcEntry> &batch);

    /** The commit leader's loop: pop and write until the queue drains. */
    void leaderCommit();

    /** Block until group @p seq is durable; throws if it failed. */
    void waitForSeq(std::uint64_t seq, bool enqueued);

    std::string rootDir;
    std::map<std::string, std::unique_ptr<Collection>> collections;
    std::map<std::string, std::string> memBlobs; // in-memory mode only

    /** Guards the collection registry (not the collections' data). */
    mutable std::shared_mutex registryMtx;
    /** Guards memBlobs (on-disk blobs rely on atomic renames). */
    mutable std::mutex blobMtx;
    /** Serializes WAL/snapshot file writes (leader + compaction). */
    mutable std::mutex saveMtx;
    /**
     * Makes "drain a collection's oplog, then enqueue the frames" atomic
     * with respect to compaction's "purge queued frames, then pin the
     * snapshot" — without it a drained-but-not-yet-enqueued group could
     * be appended after a newer snapshot and regress data on replay.
     * Ordering: saveMtx ⊃ drainMtx ⊃ gcMtx ⊃ Collection::writerMtx.
     */
    mutable std::mutex drainMtx;
    /** WAL fds + cached sizes, keyed by collection. saveMtx held. */
    std::map<std::string, WalState> walStates;

    // --- group commit (guarded by gcMtx except where noted) ---
    std::mutex gcMtx;
    std::condition_variable gcCv;
    std::deque<GcEntry> gcQueue;
    std::uint64_t gcTailSeq = 0; ///< last enqueued group
    std::uint64_t gcDoneSeq = 0; ///< last committed (or failed) group
    std::uint64_t gcErrSeq = 0;  ///< groups <= this failed to commit
    bool gcLeader = false;       ///< a leader is draining the queue

    Durability dura = Durability::Buffer;
    Collection::WalFormat storageFmt = Collection::WalFormat::Binary;

    // Compaction rewrites the whole snapshot synchronously inside the
    // committing save, so the floor is sized to keep that pause rare:
    // a 4 MiB WAL replays in well under the time it takes to churn one.
    std::size_t walCompactMinBytes = 4 * 1024 * 1024;
    double walCompactRatio = 1.0;
};

} // namespace g5::db

#endif // G5_DB_DATABASE_HH
