/**
 * @file
 * An embedded document database with a content-addressed blob store.
 *
 * This is the MongoDB substitute documented in DESIGN.md. It offers the
 * slice of functionality gem5art needs:
 *
 *  - named collections of JSON documents with unique indexes;
 *  - a blob store keyed by MD5 (GridFS stand-in) for artifact files;
 *  - durable persistence (a directory of JSONL files + blob files), or a
 *    purely in-memory mode for tests.
 *
 * Thread-safe: a single coarse mutex guards all operations, which is
 * plenty for the scheduler's worker counts.
 */

#ifndef G5_DB_DATABASE_HH
#define G5_DB_DATABASE_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/collection.hh"

namespace g5::db
{

class Database
{
  public:
    /** Create an in-memory database (nothing touches the filesystem). */
    Database();

    /**
     * Open (or create) an on-disk database rooted at @p dir. Collections
     * load from <dir>/collections/ (JSONL); blobs live in <dir>/blobs/.
     */
    explicit Database(const std::string &dir);

    /** @return the on-disk root, or "" for in-memory databases. */
    const std::string &path() const { return rootDir; }

    /** @return the named collection, creating it on first use. */
    Collection &collection(const std::string &name);

    /** @return the names of all existing collections, sorted. */
    std::vector<std::string> collectionNames() const;

    /**
     * Store @p bytes in the blob store.
     * @return the blob's MD5 hex key. Idempotent.
     */
    std::string putBlob(const std::string &bytes);

    /** Store a host file's contents. @return the MD5 key. */
    std::string putFile(const std::string &host_path);

    /** @return true when a blob with this MD5 key exists. */
    bool hasBlob(const std::string &md5_key) const;

    /** Fetch blob bytes; throws FatalError when the key is unknown. */
    std::string getBlob(const std::string &md5_key) const;

    /** Write a blob out to a host file (artifact "downloadFile"). */
    void exportBlob(const std::string &md5_key,
                    const std::string &host_path) const;

    /** @return the number of stored blobs. */
    std::size_t blobCount() const;

    /** Flush all collections to disk (no-op for in-memory databases). */
    void save();

    /** Acquire the database mutex around a caller-composed transaction. */
    std::unique_lock<std::mutex> lockGuard() { return
        std::unique_lock<std::mutex>(mtx); }

  private:
    void loadFromDisk();

    std::string rootDir;
    std::map<std::string, std::unique_ptr<Collection>> collections;
    std::map<std::string, std::string> memBlobs; // in-memory mode only
    mutable std::mutex mtx;
};

} // namespace g5::db

#endif // G5_DB_DATABASE_HH
