/**
 * @file
 * An embedded document database with a content-addressed blob store.
 *
 * This is the MongoDB substitute documented in DESIGN.md. It offers the
 * slice of functionality gem5art needs:
 *
 *  - named collections of JSON documents with unique indexes;
 *  - a blob store keyed by MD5 (GridFS stand-in) for artifact files;
 *  - durable persistence (a directory of JSONL snapshots plus
 *    append-only JSONL write-ahead logs + blob files), or a purely
 *    in-memory mode for tests.
 *
 * Concurrency: there is no coarse database mutex. Each collection
 * carries its own reader–writer lock (see Collection), the collection
 * registry is guarded by a shared_mutex (lookups are shared, creation
 * is exclusive), and blob files are written atomically via
 * temp-file-then-rename so concurrent puts of the same content are
 * benign. Cross-collection transactions go through lockGuard(), which
 * acquires per-collection transaction mutexes in lexicographic name
 * order (deadlock-free by construction).
 *
 * Durability: save() appends each dirty collection's pending operation
 * records to <dir>/collections/<name>.wal and leaves clean collections
 * untouched. When a WAL outgrows the snapshot (walCompactMinBytes and
 * walCompactRatio), the collection is compacted: a fresh
 * <name>.jsonl snapshot is written (atomically, via rename) and the WAL
 * removed. loadFromDisk() loads the snapshot then replays the WAL;
 * replay is idempotent and tolerates a torn final line, so reopening
 * after a crash recovers every committed document.
 */

#ifndef G5_DB_DATABASE_HH
#define G5_DB_DATABASE_HH

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/collection.hh"

namespace g5::db
{

/**
 * RAII guard for a caller-composed multi-collection transaction:
 * holds each collection's transaction mutex, always acquired in
 * lexicographic collection-name order. Transactions exclude each
 * other; individual CRUD operations remain atomic via the collection
 * locks regardless.
 */
class TxnGuard
{
  public:
    explicit TxnGuard(std::vector<Collection *> colls);

    TxnGuard(TxnGuard &&) = default;
    TxnGuard &operator=(TxnGuard &&) = default;

  private:
    std::vector<std::unique_lock<std::mutex>> locks;
};

class Database
{
  public:
    /** Create an in-memory database (nothing touches the filesystem). */
    Database();

    /**
     * Open (or create) an on-disk database rooted at @p dir. Collections
     * load from <dir>/collections/ (JSONL snapshot + WAL); blobs live in
     * <dir>/blobs/.
     */
    explicit Database(const std::string &dir);

    /** @return the on-disk root, or "" for in-memory databases. */
    const std::string &path() const { return rootDir; }

    /** @return the named collection, creating it on first use. */
    Collection &collection(const std::string &name);

    /** @return the names of all existing collections, sorted. */
    std::vector<std::string> collectionNames() const;

    /**
     * Store @p bytes in the blob store.
     * @return the blob's MD5 hex key. Idempotent.
     */
    std::string putBlob(const std::string &bytes);

    /**
     * Store a host file's contents, hashing and copying in fixed-size
     * chunks — a multi-GB disk image is never resident in memory.
     * @return the MD5 key.
     */
    std::string putFile(const std::string &host_path);

    /** @return true when a blob with this MD5 key exists. */
    bool hasBlob(const std::string &md5_key) const;

    /** Fetch blob bytes; throws FatalError when the key is unknown. */
    std::string getBlob(const std::string &md5_key) const;

    /**
     * Content-addressed blob-ref handout: the host path of a stored
     * blob, suitable for handing to another process (a scheduler worker
     * reads the file directly instead of shipping the payload inline).
     * @return "" for in-memory databases or unknown keys.
     */
    std::string blobPath(const std::string &md5_key) const;

    /**
     * Write a blob out to a host file (artifact "downloadFile"),
     * streaming in fixed-size chunks for on-disk databases.
     */
    void exportBlob(const std::string &md5_key,
                    const std::string &host_path) const;

    /** @return the number of stored blobs. */
    std::size_t blobCount() const;

    /**
     * Persist pending changes (no-op for in-memory databases): append
     * each dirty collection's WAL records; collections without changes
     * cost nothing. Compacts a collection when its WAL outgrows its
     * snapshot.
     */
    void save();

    /** Force-compact every collection into a fresh snapshot. */
    void compact();

    /**
     * Tune the compaction policy: a collection compacts during save()
     * once its WAL exceeds @p min_bytes AND @p ratio times its snapshot
     * size. Mostly for tests; defaults are 64 KiB and 1.0.
     */
    void setWalCompaction(std::size_t min_bytes, double ratio);

    /**
     * Lock every existing collection for a caller-composed
     * cross-collection transaction (ordered, deadlock-free).
     */
    TxnGuard lockGuard();

    /** Lock only the named collections (created on first use). */
    TxnGuard lockGuard(const std::vector<std::string> &names);

  private:
    void loadFromDisk();

    /** Delete stale *.tmp spool files a crashed writer left behind. */
    void removeOrphanTmpFiles();

    /** Replay one collection's WAL file into @p coll, if present. */
    void replayWal(const std::string &name, Collection &coll);

    /** Write a fresh snapshot and drop the WAL. saveMtx held. */
    void compactCollection(const std::string &name, Collection &coll);

    /**
     * Per-collection persistence state, guarded by saveMtx: a WAL
     * append stream kept open across save() calls (one write+flush per
     * save instead of open/write/close) and cached WAL/snapshot sizes
     * so the compaction check never stats the filesystem.
     */
    struct WalState
    {
        std::ofstream stream;
        std::size_t walSize = 0;
        std::size_t snapSize = 0;
        bool sized = false; // sizes initialized from disk
    };

    std::string rootDir;
    std::map<std::string, std::unique_ptr<Collection>> collections;
    std::map<std::string, std::string> memBlobs; // in-memory mode only

    /** Guards the collection registry (not the collections' data). */
    mutable std::shared_mutex registryMtx;
    /** Guards memBlobs (on-disk blobs rely on atomic renames). */
    mutable std::mutex blobMtx;
    /** Serializes save()/compact() so WAL appends never interleave. */
    mutable std::mutex saveMtx;
    /** WAL streams + cached sizes, keyed by collection. saveMtx held. */
    std::map<std::string, WalState> walStates;

    std::size_t walCompactMinBytes = 64 * 1024;
    double walCompactRatio = 1.0;
};

} // namespace g5::db

#endif // G5_DB_DATABASE_HH
