#include "base/metrics.hh"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "base/logging.hh"

namespace g5::metrics
{

namespace
{

/** Fixed-point scale for Histogram sums (microunits). */
constexpr double sumScale = 1e6;

/**
 * One registered metric: exactly one of the three kinds is set. The
 * unique_ptr targets give every metric a stable address, which is what
 * lets call sites cache references across registry growth.
 */
struct Entry
{
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;

    const char *
    kind() const
    {
        return counter ? "counter" : gauge ? "gauge" : "histogram";
    }
};

struct Registry
{
    mutable std::shared_mutex mtx;
    std::map<std::string, Entry, std::less<>> entries;
};

/**
 * Intentionally leaked singleton: metrics are incremented from worker
 * threads and static destructors (database teardown), so the registry
 * must outlive every other static. Still reachable at exit, so LSan
 * does not flag it.
 */
Registry &
registry()
{
    static Registry *r = new Registry();
    return *r;
}

/** Find-or-create the entry for @p name; @p make fills a fresh one. */
template <typename Make>
Entry &
entryFor(std::string_view name, Make make)
{
    Registry &r = registry();
    {
        std::shared_lock<std::shared_mutex> lock(r.mtx);
        auto it = r.entries.find(name);
        if (it != r.entries.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(r.mtx);
    auto it = r.entries.find(name);
    if (it == r.entries.end()) {
        it = r.entries.emplace(std::string(name), Entry()).first;
        make(it->second);
    }
    return it->second;
}

} // anonymous namespace

std::size_t
Counter::laneFor()
{
    static std::atomic<std::size_t> next{0};
    thread_local std::size_t lane =
        next.fetch_add(1, std::memory_order_relaxed) % laneCount;
    return lane;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds(std::move(bounds)), buckets(this->bounds.size() + 1)
{
}

std::vector<double>
Histogram::latencySecondsBounds()
{
    return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60, 300};
}

void
Histogram::observe(double v)
{
    // NaN would poison the bucket scan (every comparison false) and the
    // fixed-point sum (int64 cast of NaN is UB): drop it. Negative
    // values (wall-clock deltas across a clock step, miscomputed diff
    // counts) clamp to zero so they land in bucket 0 and cannot drag
    // the running sum below the true total.
    if (std::isnan(v))
        return;
    if (v < 0.0)
        v = 0.0;
    std::size_t i = 0;
    while (i < bounds.size() && v > bounds[i])
        ++i;
    buckets[i].fetch_add(1, std::memory_order_relaxed);
    cnt.fetch_add(1, std::memory_order_relaxed);
    sumMicro.fetch_add(std::int64_t(v * sumScale),
                       std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return double(sumMicro.load(std::memory_order_relaxed)) / sumScale;
}

Json
Histogram::snapshot() const
{
    Json out = Json::object();
    std::int64_t n = count();
    double s = sum();
    out["count"] = n;
    out["sum"] = s;
    out["mean"] = n > 0 ? s / double(n) : 0.0;
    Json bs = Json::object();
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += buckets[i].load(std::memory_order_relaxed);
        bs["<=" + Json(bounds[i]).dump()] = cumulative;
    }
    cumulative += buckets.back().load(std::memory_order_relaxed);
    bs["+Inf"] = cumulative;
    out["buckets"] = std::move(bs);
    return out;
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
    cnt.store(0, std::memory_order_relaxed);
    sumMicro.store(0, std::memory_order_relaxed);
}

Counter &
counter(std::string_view name)
{
    Entry &e = entryFor(name, [](Entry &fresh) {
        fresh.counter = std::make_unique<Counter>();
    });
    if (!e.counter)
        fatal("metrics: '" + std::string(name) + "' is a " +
              e.kind() + ", not a counter");
    return *e.counter;
}

Gauge &
gauge(std::string_view name)
{
    Entry &e = entryFor(name, [](Entry &fresh) {
        fresh.gauge = std::make_unique<Gauge>();
    });
    if (!e.gauge)
        fatal("metrics: '" + std::string(name) + "' is a " +
              e.kind() + ", not a gauge");
    return *e.gauge;
}

Histogram &
histogram(std::string_view name, std::vector<double> bounds)
{
    Entry &e = entryFor(name, [&](Entry &fresh) {
        fresh.histogram = std::make_unique<Histogram>(
            bounds.empty() ? Histogram::latencySecondsBounds()
                           : std::move(bounds));
    });
    if (!e.histogram)
        fatal("metrics: '" + std::string(name) + "' is a " +
              e.kind() + ", not a histogram");
    return *e.histogram;
}

Json
snapshot()
{
    Registry &r = registry();
    Json out = Json::object();
    std::shared_lock<std::shared_mutex> lock(r.mtx);
    for (const auto &[name, e] : r.entries) {
        if (e.counter)
            out[name] = e.counter->value();
        else if (e.gauge)
            out[name] = e.gauge->value();
        else
            out[name] = e.histogram->snapshot();
    }
    return out;
}

void
resetAll()
{
    Registry &r = registry();
    std::shared_lock<std::shared_mutex> lock(r.mtx);
    for (auto &[name, e] : r.entries) {
        if (e.counter)
            e.counter->reset();
        else if (e.gauge)
            e.gauge->reset();
        else
            e.histogram->reset();
    }
}

} // namespace g5::metrics
