/**
 * @file
 * Small string helpers used throughout g5.
 */

#ifndef G5_BASE_STR_HH
#define G5_BASE_STR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace g5
{

/** Split @p s on @p delim; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Join @p parts with @p sep between elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** @return true when @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** @return true when @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** Render bytes as lowercase hex. */
std::string toHex(const std::uint8_t *data, std::size_t len);

/** Parse lowercase/uppercase hex into bytes; throws FatalError on junk. */
std::vector<std::uint8_t> fromHex(const std::string &hex);

} // namespace g5

#endif // G5_BASE_STR_HH
