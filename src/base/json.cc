#include "base/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace g5
{

Json
Json::object(std::initializer_list<std::pair<std::string, Json>> init)
{
    Json j = object();
    for (const auto &kv : init)
        j.objVal[kv.first] = kv.second;
    return j;
}

namespace
{

[[noreturn]] void
typeError(const char *wanted, Json::Type got)
{
    static const char *names[] = {
        "null", "bool", "int", "double", "string", "array", "object",
    };
    throw JsonError(std::string("Json: expected ") + wanted + ", have " +
                    names[int(got)]);
}

} // anonymous namespace

bool
Json::asBool() const
{
    if (ty != Type::Bool)
        typeError("bool", ty);
    return boolVal;
}

std::int64_t
Json::asInt() const
{
    if (ty == Type::Int)
        return intVal;
    if (ty == Type::Double)
        return std::int64_t(dblVal);
    typeError("number", ty);
}

double
Json::asDouble() const
{
    if (ty == Type::Int)
        return double(intVal);
    if (ty == Type::Double)
        return dblVal;
    typeError("number", ty);
}

const std::string &
Json::asString() const
{
    if (ty != Type::String)
        typeError("string", ty);
    return strVal;
}

const Json::ArrayT &
Json::asArray() const
{
    if (ty != Type::Array)
        typeError("array", ty);
    return arrVal;
}

Json::ArrayT &
Json::asArray()
{
    if (ty != Type::Array)
        typeError("array", ty);
    return arrVal;
}

const Json::ObjectT &
Json::asObject() const
{
    if (ty != Type::Object)
        typeError("object", ty);
    return objVal;
}

Json::ObjectT &
Json::asObject()
{
    if (ty != Type::Object)
        typeError("object", ty);
    return objVal;
}

Json &
Json::operator[](const std::string &key)
{
    if (ty == Type::Null)
        ty = Type::Object; // auto-vivify, like most JSON DOMs
    if (ty != Type::Object)
        typeError("object", ty);
    return objVal[key];
}

const Json &
Json::at(const std::string &key) const
{
    if (ty != Type::Object)
        typeError("object", ty);
    auto it = objVal.find(key);
    if (it == objVal.end())
        throw JsonError("Json: missing key '" + key + "'");
    return it->second;
}

Json &
Json::operator[](std::size_t idx)
{
    if (ty != Type::Array)
        typeError("array", ty);
    if (idx >= arrVal.size())
        throw JsonError("Json: array index out of range");
    return arrVal[idx];
}

const Json &
Json::at(std::size_t idx) const
{
    if (ty != Type::Array)
        typeError("array", ty);
    if (idx >= arrVal.size())
        throw JsonError("Json: array index out of range");
    return arrVal[idx];
}

bool
Json::contains(const std::string &key) const
{
    return ty == Type::Object && objVal.count(key) > 0;
}

std::size_t
Json::size() const
{
    switch (ty) {
      case Type::Array:
        return arrVal.size();
      case Type::Object:
        return objVal.size();
      case Type::String:
        return strVal.size();
      default:
        return 0;
    }
}

void
Json::push(Json v)
{
    if (ty == Type::Null)
        ty = Type::Array;
    if (ty != Type::Array)
        typeError("array", ty);
    arrVal.push_back(std::move(v));
}

std::string
Json::getString(const std::string &key, const std::string &dflt) const
{
    if (!contains(key) || !objVal.at(key).isString())
        return dflt;
    return objVal.at(key).strVal;
}

std::int64_t
Json::getInt(const std::string &key, std::int64_t dflt) const
{
    if (!contains(key) || !objVal.at(key).isNumber())
        return dflt;
    return objVal.at(key).asInt();
}

double
Json::getDouble(const std::string &key, double dflt) const
{
    if (!contains(key) || !objVal.at(key).isNumber())
        return dflt;
    return objVal.at(key).asDouble();
}

bool
Json::getBool(const std::string &key, bool dflt) const
{
    if (!contains(key) || !objVal.at(key).isBool())
        return dflt;
    return objVal.at(key).boolVal;
}

const Json *
Json::find(const std::string &dotted_path) const
{
    const Json *cur = this;
    std::size_t start = 0;
    while (start <= dotted_path.size()) {
        std::size_t dot = dotted_path.find('.', start);
        std::string key = dotted_path.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        if (!cur->isObject())
            return nullptr;
        auto it = cur->objVal.find(key);
        if (it == cur->objVal.end())
            return nullptr;
        cur = &it->second;
        if (dot == std::string::npos)
            return cur;
        start = dot + 1;
    }
    return nullptr;
}

bool
Json::operator==(const Json &other) const
{
    if (isNumber() && other.isNumber()) {
        if (isInt() && other.isInt())
            return intVal == other.intVal;
        return asDouble() == other.asDouble();
    }
    if (ty != other.ty)
        return false;
    switch (ty) {
      case Type::Null:
        return true;
      case Type::Bool:
        return boolVal == other.boolVal;
      case Type::String:
        return strVal == other.strVal;
      case Type::Array:
        return arrVal == other.arrVal;
      case Type::Object:
        return objVal == other.objVal;
      default:
        return false; // unreachable; numbers handled above
    }
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    out += '"';
}

void
formatDouble(std::string &out, double v)
{
    if (std::isnan(v) || std::isinf(v)) {
        // JSON has no NaN/Inf; store as null like most serializers.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
    // Ensure the round-trip stays a double, not an int.
    std::string_view sv(buf);
    if (sv.find('.') == std::string_view::npos &&
        sv.find('e') == std::string_view::npos &&
        sv.find('E') == std::string_view::npos) {
        out += ".0";
    }
}

} // anonymous namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(std::size_t(indent) * d, ' ');
        }
    };

    switch (ty) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(intVal);
        break;
      case Type::Double:
        formatDouble(out, dblVal);
        break;
      case Type::String:
        escapeString(out, strVal);
        break;
      case Type::Array: {
        if (arrVal.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const auto &v : arrVal) {
            if (!first)
                out += indent > 0 ? "," : ",";
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Type::Object: {
        if (objVal.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &kv : objVal) {
            if (!first)
                out += ",";
            first = false;
            newline(depth + 1);
            escapeString(out, kv.first);
            out += indent > 0 ? ": " : ":";
            kv.second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser. */
class Parser
{
  public:
    explicit Parser(const std::string &text)
        : src(text), pos(0)
    {}

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos != src.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos < src.size()) {
            char c = src[pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos;
            else
                break;
        }
    }

    char
    peek()
    {
        if (pos >= src.size())
            fail("unexpected end of input");
        return src[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t len = std::char_traits<char>::length(lit);
        if (src.compare(pos, len, lit) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Json(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            obj[key] = parseValue();
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == '}') {
                ++pos;
                return obj;
            }
            fail("expected ',' or '}' in object");
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == ']') {
                ++pos;
                return arr;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= src.size())
                fail("unterminated string");
            char c = src[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= src.size())
                    fail("unterminated escape");
                char e = src[pos++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos + 4 > src.size())
                        fail("short \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = src[pos++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            fail("bad hex digit in \\u escape");
                    }
                    // Encode the code point as UTF-8 (BMP only; surrogate
                    // pairs are passed through as separate code points).
                    if (cp < 0x80) {
                        out += char(cp);
                    } else if (cp < 0x800) {
                        out += char(0xc0 | (cp >> 6));
                        out += char(0x80 | (cp & 0x3f));
                    } else {
                        out += char(0xe0 | (cp >> 12));
                        out += char(0x80 | ((cp >> 6) & 0x3f));
                        out += char(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    fail("bad escape character");
                }
            } else {
                out += c;
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        bool is_double = false;
        while (pos < src.size()) {
            char c = src[pos];
            if (c >= '0' && c <= '9') {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                if (c == '.' || c == 'e' || c == 'E')
                    is_double = true;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start || (pos == start + 1 && src[start] == '-'))
            fail("malformed number");
        std::string tok = src.substr(start, pos - start);
        if (!is_double) {
            errno = 0;
            char *end = nullptr;
            long long v = std::strtoll(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return Json(std::int64_t(v));
            // fall through to double on overflow
        }
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            fail("malformed number '" + tok + "'");
        return Json(d);
    }

    const std::string &src;
    std::size_t pos;
};

} // anonymous namespace

Json
Json::parse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

} // namespace g5
