#include "base/json.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <new>

namespace g5
{

// ---------------------------------------------------------------------
// JsonObject: flat sorted (key, value) vector
// ---------------------------------------------------------------------

void
JsonObject::clear()
{
    items.clear();
}

JsonObject::StorageT::size_type
JsonObject::lowerBound(std::string_view key) const
{
    // Branchless-ish binary search over the sorted key vector; the
    // comparison cost is the string compare, so keep the loop tight.
    StorageT::size_type lo = 0, hi = items.size();
    while (lo < hi) {
        StorageT::size_type mid = (lo + hi) / 2;
        if (items[mid].first < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

JsonObject::iterator
JsonObject::find(std::string_view key)
{
    auto pos = lowerBound(key);
    if (pos < items.size() && items[pos].first == key)
        return items.begin() + StorageT::difference_type(pos);
    return items.end();
}

JsonObject::const_iterator
JsonObject::find(std::string_view key) const
{
    auto pos = lowerBound(key);
    if (pos < items.size() && items[pos].first == key)
        return items.begin() + StorageT::difference_type(pos);
    return items.end();
}

std::size_t
JsonObject::count(std::string_view key) const
{
    auto pos = lowerBound(key);
    return pos < items.size() && items[pos].first == key ? 1 : 0;
}

Json &
JsonObject::at(std::string_view key)
{
    auto it = find(key);
    if (it == items.end())
        throw JsonError("Json: missing key '" + std::string(key) + "'");
    return it->second;
}

const Json &
JsonObject::at(std::string_view key) const
{
    auto it = find(key);
    if (it == items.end())
        throw JsonError("Json: missing key '" + std::string(key) + "'");
    return it->second;
}

Json &
JsonObject::operator[](std::string_view key)
{
    auto pos = lowerBound(key);
    if (pos < items.size() && items[pos].first == key)
        return items[pos].second;
    auto it = items.emplace(
        items.begin() + StorageT::difference_type(pos),
        std::string(key), Json());
    return it->second;
}

std::pair<JsonObject::iterator, bool>
JsonObject::emplace(std::string key, Json value)
{
    auto pos = lowerBound(key);
    if (pos < items.size() && items[pos].first == key)
        return {items.begin() + StorageT::difference_type(pos), false};
    auto it = items.emplace(
        items.begin() + StorageT::difference_type(pos),
        std::move(key), std::move(value));
    return {it, true};
}

Json &
JsonObject::insertOrAssign(std::string key, Json value)
{
    auto pos = lowerBound(key);
    if (pos < items.size() && items[pos].first == key) {
        items[pos].second = std::move(value);
        return items[pos].second;
    }
    auto it = items.emplace(
        items.begin() + StorageT::difference_type(pos),
        std::move(key), std::move(value));
    return it->second;
}

std::size_t
JsonObject::erase(std::string_view key)
{
    auto it = find(key);
    if (it == items.end())
        return 0;
    items.erase(it);
    return 1;
}

bool
JsonObject::operator==(const JsonObject &other) const
{
    return items == other.items;
}

// ---------------------------------------------------------------------
// JsonPath: pre-split dotted paths
// ---------------------------------------------------------------------

JsonPath::JsonPath(std::string_view path)
    : dotted(path)
{
    std::uint32_t start = 0;
    for (std::uint32_t i = 0; i <= dotted.size(); ++i) {
        if (i == dotted.size() || dotted[i] == '.') {
            segs.emplace_back(start, i - start);
            start = i + 1;
        }
    }
}

const Json *
JsonPath::resolve(const Json &root) const
{
    const Json *cur = &root;
    for (const auto &[off, len] : segs) {
        if (!cur->isObject())
            return nullptr;
        const auto &obj = cur->asObject();
        auto it = obj.find(std::string_view(dotted).substr(off, len));
        if (it == obj.end())
            return nullptr;
        cur = &it->second;
    }
    return cur;
}

// ---------------------------------------------------------------------
// Json: lifetime of the tagged union
// ---------------------------------------------------------------------

void
Json::destroy()
{
    switch (ty) {
      case Type::String:
        pay.s.~basic_string();
        break;
      case Type::Array:
        pay.a.~ArrayT();
        break;
      case Type::Object:
        pay.o.~ObjectT();
        break;
      default:
        break;
    }
}

void
Json::copyFrom(const Json &other)
{
    ty = other.ty;
    switch (ty) {
      case Type::Null:
        break;
      case Type::Bool:
        pay.b = other.pay.b;
        break;
      case Type::Int:
        pay.i = other.pay.i;
        break;
      case Type::Double:
        pay.d = other.pay.d;
        break;
      case Type::String:
        new (&pay.s) std::string(other.pay.s);
        break;
      case Type::Array:
        new (&pay.a) ArrayT(other.pay.a);
        break;
      case Type::Object:
        new (&pay.o) ObjectT(other.pay.o);
        break;
    }
}

void
Json::moveFrom(Json &&other) noexcept
{
    ty = other.ty;
    switch (ty) {
      case Type::Null:
        break;
      case Type::Bool:
        pay.b = other.pay.b;
        break;
      case Type::Int:
        pay.i = other.pay.i;
        break;
      case Type::Double:
        pay.d = other.pay.d;
        break;
      case Type::String:
        new (&pay.s) std::string(std::move(other.pay.s));
        break;
      case Type::Array:
        new (&pay.a) ArrayT(std::move(other.pay.a));
        break;
      case Type::Object:
        new (&pay.o) ObjectT(std::move(other.pay.o));
        break;
    }
    // Collapse the source to null so its destructor is trivial and a
    // moved-from document cannot alias freed storage.
    other.destroy();
    other.ty = Type::Null;
}

Json::Json(const Json &other)
{
    copyFrom(other);
}

Json::Json(Json &&other) noexcept
{
    moveFrom(std::move(other));
}

Json &
Json::operator=(const Json &other)
{
    if (this != &other) {
        // Copy first so self-referential assignment through a child
        // (j = j.at("k")) reads the source before it is destroyed.
        Json tmp(other);
        destroy();
        moveFrom(std::move(tmp));
    }
    return *this;
}

Json &
Json::operator=(Json &&other) noexcept
{
    if (this != &other) {
        destroy();
        moveFrom(std::move(other));
    }
    return *this;
}

Json
Json::object(std::initializer_list<std::pair<std::string, Json>> init)
{
    Json j = object();
    for (const auto &kv : init)
        j.pay.o.insertOrAssign(kv.first, kv.second);
    return j;
}

namespace
{

[[noreturn]] void
typeError(const char *wanted, Json::Type got)
{
    static const char *names[] = {
        "null", "bool", "int", "double", "string", "array", "object",
    };
    throw JsonError(std::string("Json: expected ") + wanted + ", have " +
                    names[int(got)]);
}

} // anonymous namespace

bool
Json::asBool() const
{
    if (ty != Type::Bool)
        typeError("bool", ty);
    return pay.b;
}

std::int64_t
Json::asInt() const
{
    if (ty == Type::Int)
        return pay.i;
    if (ty == Type::Double)
        return std::int64_t(pay.d);
    typeError("number", ty);
}

double
Json::asDouble() const
{
    if (ty == Type::Int)
        return double(pay.i);
    if (ty == Type::Double)
        return pay.d;
    typeError("number", ty);
}

const std::string &
Json::asString() const
{
    if (ty != Type::String)
        typeError("string", ty);
    return pay.s;
}

const Json::ArrayT &
Json::asArray() const
{
    if (ty != Type::Array)
        typeError("array", ty);
    return pay.a;
}

Json::ArrayT &
Json::asArray()
{
    if (ty != Type::Array)
        typeError("array", ty);
    return pay.a;
}

const Json::ObjectT &
Json::asObject() const
{
    if (ty != Type::Object)
        typeError("object", ty);
    return pay.o;
}

Json::ObjectT &
Json::asObject()
{
    if (ty != Type::Object)
        typeError("object", ty);
    return pay.o;
}

Json &
Json::operator[](std::string_view key)
{
    if (ty == Type::Null) {
        // auto-vivify, like most JSON DOMs
        ty = Type::Object;
        new (&pay.o) ObjectT();
    }
    if (ty != Type::Object)
        typeError("object", ty);
    return pay.o[key];
}

const Json &
Json::at(std::string_view key) const
{
    if (ty != Type::Object)
        typeError("object", ty);
    return pay.o.at(key);
}

Json &
Json::operator[](std::size_t idx)
{
    if (ty != Type::Array)
        typeError("array", ty);
    if (idx >= pay.a.size())
        throw JsonError("Json: array index out of range");
    return pay.a[idx];
}

const Json &
Json::at(std::size_t idx) const
{
    if (ty != Type::Array)
        typeError("array", ty);
    if (idx >= pay.a.size())
        throw JsonError("Json: array index out of range");
    return pay.a[idx];
}

bool
Json::contains(std::string_view key) const
{
    return ty == Type::Object && pay.o.count(key) > 0;
}

std::size_t
Json::size() const
{
    switch (ty) {
      case Type::Array:
        return pay.a.size();
      case Type::Object:
        return pay.o.size();
      case Type::String:
        return pay.s.size();
      default:
        return 0;
    }
}

void
Json::push(Json v)
{
    if (ty == Type::Null) {
        ty = Type::Array;
        new (&pay.a) ArrayT();
    }
    if (ty != Type::Array)
        typeError("array", ty);
    pay.a.push_back(std::move(v));
}

std::string
Json::getString(std::string_view key, const std::string &dflt) const
{
    if (ty != Type::Object)
        return dflt;
    auto it = pay.o.find(key);
    if (it == pay.o.end() || !it->second.isString())
        return dflt;
    return it->second.pay.s;
}

std::int64_t
Json::getInt(std::string_view key, std::int64_t dflt) const
{
    if (ty != Type::Object)
        return dflt;
    auto it = pay.o.find(key);
    if (it == pay.o.end() || !it->second.isNumber())
        return dflt;
    return it->second.asInt();
}

double
Json::getDouble(std::string_view key, double dflt) const
{
    if (ty != Type::Object)
        return dflt;
    auto it = pay.o.find(key);
    if (it == pay.o.end() || !it->second.isNumber())
        return dflt;
    return it->second.asDouble();
}

bool
Json::getBool(std::string_view key, bool dflt) const
{
    if (ty != Type::Object)
        return dflt;
    auto it = pay.o.find(key);
    if (it == pay.o.end() || !it->second.isBool())
        return dflt;
    return it->second.pay.b;
}

const Json *
Json::find(std::string_view dotted_path) const
{
    const Json *cur = this;
    std::size_t start = 0;
    for (;;) {
        std::size_t dot = dotted_path.find('.', start);
        std::string_view key =
            dot == std::string_view::npos
                ? dotted_path.substr(start)
                : dotted_path.substr(start, dot - start);
        if (!cur->isObject())
            return nullptr;
        auto it = cur->pay.o.find(key);
        if (it == cur->pay.o.end())
            return nullptr;
        cur = &it->second;
        if (dot == std::string_view::npos)
            return cur;
        start = dot + 1;
    }
}

bool
Json::operator==(const Json &other) const
{
    if (isNumber() && other.isNumber()) {
        if (isInt() && other.isInt())
            return pay.i == other.pay.i;
        return asDouble() == other.asDouble();
    }
    if (ty != other.ty)
        return false;
    switch (ty) {
      case Type::Null:
        return true;
      case Type::Bool:
        return pay.b == other.pay.b;
      case Type::String:
        return pay.s == other.pay.s;
      case Type::Array:
        return pay.a == other.pay.a;
      case Type::Object:
        return pay.o == other.pay.o;
      default:
        return false; // unreachable; numbers handled above
    }
}

// ---------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------

namespace
{

/** Appender writing straight into a caller-owned std::string. */
struct StringAppender
{
    std::string &out;

    void append(const char *data, std::size_t len)
    {
        out.append(data, len);
    }
    void append(std::string_view sv) { out.append(sv); }
    void push(char c) { out += c; }
    void pad(std::size_t n, char c) { out.append(n, c); }
    void flush() {}
};

/**
 * Appender batching writes into a fixed stack buffer and flushing to a
 * JsonSink in chunks, so the sink sees one virtual call per ~4 KiB of
 * output rather than one per token.
 */
struct SinkAppender
{
    JsonSink &sink;
    std::size_t n = 0;
    char buf[4096];

    void
    append(const char *data, std::size_t len)
    {
        if (len >= sizeof(buf)) {
            flush();
            sink.write(data, len);
            return;
        }
        if (n + len > sizeof(buf))
            flush();
        std::memcpy(buf + n, data, len);
        n += len;
    }
    void append(std::string_view sv) { append(sv.data(), sv.size()); }
    void
    push(char c)
    {
        if (n == sizeof(buf))
            flush();
        buf[n++] = c;
    }
    void
    pad(std::size_t count, char c)
    {
        for (std::size_t i = 0; i < count; ++i)
            push(c);
    }
    void
    flush()
    {
        if (n) {
            sink.write(buf, n);
            n = 0;
        }
    }
};

/** Bytes below 0x20 plus '"' and '\\' need escaping; all else copies. */
inline bool
needsEscape(unsigned char c)
{
    return c < 0x20 || c == '"' || c == '\\';
}

template <typename Out>
void
escapeString(Out &out, std::string_view s)
{
    static const char hex[] = "0123456789abcdef";
    out.push('"');
    std::size_t run = 0; // start of the pending unescaped span
    for (std::size_t i = 0; i < s.size(); ++i) {
        unsigned char c = (unsigned char)s[i];
        if (!needsEscape(c))
            continue;
        if (i > run)
            out.append(s.data() + run, i - run);
        run = i + 1;
        switch (c) {
          case '"':
            out.append("\\\"", 2);
            break;
          case '\\':
            out.append("\\\\", 2);
            break;
          case '\b':
            out.append("\\b", 2);
            break;
          case '\f':
            out.append("\\f", 2);
            break;
          case '\n':
            out.append("\\n", 2);
            break;
          case '\r':
            out.append("\\r", 2);
            break;
          case '\t':
            out.append("\\t", 2);
            break;
          default: {
            char u[6] = {'\\', 'u', '0', '0',
                         hex[(c >> 4) & 0xf], hex[c & 0xf]};
            out.append(u, 6);
            break;
          }
        }
    }
    if (s.size() > run)
        out.append(s.data() + run, s.size() - run);
    out.push('"');
}

template <typename Out>
void
formatInt(Out &out, std::int64_t v)
{
    char buf[24];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, std::size_t(res.ptr - buf));
}

template <typename Out>
void
formatDouble(Out &out, double v)
{
    if (std::isnan(v) || std::isinf(v)) {
        // JSON has no NaN/Inf; store as null like most serializers.
        out.append("null", 4);
        return;
    }
    // %.17g-equivalent formatting (std::to_chars with explicit
    // precision is specified to match printf): byte-identical to every
    // document ever persisted by the previous snprintf serializer.
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), v,
                             std::chars_format::general, 17);
    std::size_t len = std::size_t(res.ptr - buf);
    out.append(buf, len);
    // Ensure the round-trip stays a double, not an int.
    std::string_view sv(buf, len);
    if (sv.find('.') == std::string_view::npos &&
        sv.find('e') == std::string_view::npos &&
        sv.find('E') == std::string_view::npos) {
        out.append(".0", 2);
    }
}

template <typename Out>
void
dumpValue(Out &out, const Json &v, int indent, int depth)
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out.push('\n');
            out.pad(std::size_t(indent) * std::size_t(d), ' ');
        }
    };

    switch (v.type()) {
      case Json::Type::Null:
        out.append("null", 4);
        break;
      case Json::Type::Bool:
        if (v.asBool())
            out.append("true", 4);
        else
            out.append("false", 5);
        break;
      case Json::Type::Int:
        formatInt(out, v.asInt());
        break;
      case Json::Type::Double:
        formatDouble(out, v.asDouble());
        break;
      case Json::Type::String:
        escapeString(out, v.asString());
        break;
      case Json::Type::Array: {
        const auto &arr = v.asArray();
        if (arr.empty()) {
            out.append("[]", 2);
            break;
        }
        out.push('[');
        bool first = true;
        for (const auto &elem : arr) {
            if (!first)
                out.push(',');
            first = false;
            newline(depth + 1);
            dumpValue(out, elem, indent, depth + 1);
        }
        newline(depth);
        out.push(']');
        break;
      }
      case Json::Type::Object: {
        const auto &obj = v.asObject();
        if (obj.empty()) {
            out.append("{}", 2);
            break;
        }
        out.push('{');
        bool first = true;
        for (const auto &kv : obj) {
            if (!first)
                out.push(',');
            first = false;
            newline(depth + 1);
            escapeString(out, kv.first);
            if (indent > 0)
                out.append(": ", 2);
            else
                out.push(':');
            dumpValue(out, kv.second, indent, depth + 1);
        }
        newline(depth);
        out.push('}');
        break;
      }
    }
}

} // anonymous namespace

std::string
Json::dump(int indent) const
{
    std::string out;
    // Compact dumps of db documents typically land in the 100s of
    // bytes; one up-front reservation avoids the early growth steps.
    out.reserve(128);
    StringAppender app{out};
    dumpValue(app, *this, indent, 0);
    return out;
}

void
Json::dumpTo(std::string &out, int indent) const
{
    StringAppender app{out};
    dumpValue(app, *this, indent, 0);
}

void
Json::dumpTo(JsonSink &sink, int indent) const
{
    SinkAppender app{sink};
    dumpValue(app, *this, indent, 0);
    app.flush();
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace
{

/** Recursive-descent JSON parser over a borrowed string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text)
        : src(text), pos(0)
    {}

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos != src.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos < src.size()) {
            char c = src[pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos;
            else
                break;
        }
    }

    char
    peek()
    {
        if (pos >= src.size())
            fail("unexpected end of input");
        return src[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (src.substr(pos, lit.size()) == lit) {
            pos += lit.size();
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Json(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        JsonObject &members = obj.asObject();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            // Documents we parse are overwhelmingly our own dumps, so
            // keys arrive in sorted order; insertOrAssign's append
            // fast path makes that O(1) per member while arbitrary
            // order (and duplicate keys: last wins, like std::map
            // assignment) still lands correctly via binary insert.
            members.insertOrAssign(std::move(key), parseValue());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == '}') {
                ++pos;
                return obj;
            }
            fail("expected ',' or '}' in object");
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == ']') {
                ++pos;
                return arr;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        // Fast path: bulk-copy the span up to the next quote, escape,
        // or control byte instead of appending byte-at-a-time.
        for (;;) {
            std::size_t run = pos;
            while (run < src.size()) {
                unsigned char c = (unsigned char)src[run];
                if (c == '"' || c == '\\' || c < 0x20)
                    break;
                ++run;
            }
            if (run > pos) {
                out.append(src.data() + pos, run - pos);
                pos = run;
            }
            if (pos >= src.size())
                fail("unterminated string");
            char c = src[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                // Raw control characters inside strings are tolerated
                // (the previous parser accepted them too).
                out += c;
                continue;
            }
            if (pos >= src.size())
                fail("unterminated escape");
            char e = src[pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > src.size())
                    fail("short \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = src[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // Encode the code point as UTF-8 (BMP only; surrogate
                // pairs are passed through as separate code points).
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xc0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3f));
                } else {
                    out += char(0xe0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3f));
                    out += char(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        bool is_double = false;
        while (pos < src.size()) {
            char c = src[pos];
            if (c >= '0' && c <= '9') {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                if (c == '.' || c == 'e' || c == 'E')
                    is_double = true;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start || (pos == start + 1 && src[start] == '-'))
            fail("malformed number");
        const char *tok = src.data() + start;
        const char *tok_end = src.data() + pos;
        if (!is_double) {
            std::int64_t v = 0;
            auto res = std::from_chars(tok, tok_end, v, 10);
            if (res.ec == std::errc() && res.ptr == tok_end)
                return Json(v);
            // fall through to double on overflow
        }
        double d = 0;
        auto res = std::from_chars(tok, tok_end, d);
        if (res.ec != std::errc() || res.ptr != tok_end) {
            fail("malformed number '" +
                 std::string(tok, std::size_t(tok_end - tok)) + "'");
        }
        return Json(d);
    }

    std::string_view src;
    std::size_t pos;
};

} // anonymous namespace

Json
Json::parse(std::string_view text)
{
    Parser p(text);
    return p.parseDocument();
}

// --- binary wire form (s5db1 document encoding) ------------------------
//
// tag 0 null | 1 false | 2 true | 3 int64 LE | 4 double LE (IEEE bits)
// | 5 string (u32 len + bytes) | 6 array (u32 count + values)
// | 7 object (u32 count + (u32 keyLen + key + value)*, keys sorted).
//
// The layout deliberately matches the in-memory model: objects are
// written in their (sorted) storage order, so decoding appends members
// through insertOrAssign's sorted-append fast path and never searches.

namespace
{

constexpr std::uint8_t binTagNull = 0;
constexpr std::uint8_t binTagFalse = 1;
constexpr std::uint8_t binTagTrue = 2;
constexpr std::uint8_t binTagInt = 3;
constexpr std::uint8_t binTagDouble = 4;
constexpr std::uint8_t binTagString = 5;
constexpr std::uint8_t binTagArray = 6;
constexpr std::uint8_t binTagObject = 7;

void
binPutU32(std::string &out, std::uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    out.append(b, 4);
}

void
binPutU64(std::string &out, std::uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    out.append(b, 8);
}

/** Bounds-checked cursor over one encoded value. */
struct BinCursor
{
    const char *cur;
    const char *end;

    void
    need(std::size_t n) const
    {
        if (std::size_t(end - cur) < n)
            throw JsonError("binary json: truncated value");
    }

    std::uint8_t
    tag()
    {
        need(1);
        return std::uint8_t(*cur++);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v;
        std::memcpy(&v, cur, 4);
        cur += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v;
        std::memcpy(&v, cur, 8);
        cur += 8;
        return v;
    }

    std::string
    str(std::uint32_t len)
    {
        need(len);
        std::string s(cur, len);
        cur += len;
        return s;
    }
};

Json
binParseValue(BinCursor &c)
{
    switch (c.tag()) {
      case binTagNull:
        return Json();
      case binTagFalse:
        return Json(false);
      case binTagTrue:
        return Json(true);
      case binTagInt:
        return Json(std::int64_t(c.u64()));
      case binTagDouble: {
        std::uint64_t bits = c.u64();
        double d;
        std::memcpy(&d, &bits, 8);
        return Json(d);
      }
      case binTagString:
        return Json(c.str(c.u32()));
      case binTagArray: {
        std::uint32_t n = c.u32();
        Json j = Json::array();
        auto &arr = j.asArray();
        arr.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            arr.push_back(binParseValue(c));
        return j;
      }
      case binTagObject: {
        std::uint32_t n = c.u32();
        Json j = Json::object();
        auto &obj = j.asObject();
        for (std::uint32_t i = 0; i < n; ++i) {
            std::string key = c.str(c.u32());
            // Keys were written in sorted order; insertOrAssign's
            // append fast path makes this O(1) per member.
            obj.insertOrAssign(std::move(key), binParseValue(c));
        }
        return j;
      }
      default:
        throw JsonError("binary json: unknown tag");
    }
}

} // anonymous namespace

void
Json::dumpBinaryTo(std::string &out) const
{
    switch (ty) {
      case Type::Null:
        out.push_back(char(binTagNull));
        return;
      case Type::Bool:
        out.push_back(char(pay.b ? binTagTrue : binTagFalse));
        return;
      case Type::Int:
        out.push_back(char(binTagInt));
        binPutU64(out, std::uint64_t(pay.i));
        return;
      case Type::Double: {
        out.push_back(char(binTagDouble));
        std::uint64_t bits;
        std::memcpy(&bits, &pay.d, 8);
        binPutU64(out, bits);
        return;
      }
      case Type::String:
        out.push_back(char(binTagString));
        binPutU32(out, std::uint32_t(pay.s.size()));
        out.append(pay.s);
        return;
      case Type::Array:
        out.push_back(char(binTagArray));
        binPutU32(out, std::uint32_t(pay.a.size()));
        for (const Json &v : pay.a)
            v.dumpBinaryTo(out);
        return;
      case Type::Object:
        out.push_back(char(binTagObject));
        binPutU32(out, std::uint32_t(pay.o.size()));
        for (const auto &[key, value] : pay.o) {
            binPutU32(out, std::uint32_t(key.size()));
            out.append(key);
            value.dumpBinaryTo(out);
        }
        return;
    }
}

Json
Json::parseBinary(std::string_view bytes)
{
    BinCursor c{bytes.data(), bytes.data() + bytes.size()};
    Json j = binParseValue(c);
    if (c.cur != c.end)
        throw JsonError("binary json: trailing bytes after value");
    return j;
}

} // namespace g5
