/**
 * @file
 * Deterministic fault injection for robustness tests.
 *
 * Production code marks interesting failure sites with named fault
 * points (fault::checkpoint("db.save.append")). By default a checkpoint
 * only counts the visit and returns. When a point is armed — through
 * the G5_FAULT environment variable or programmatically from a test —
 * the checkpoint throws InjectedFault, standing in for a host-level
 * failure (full disk, OOM kill, transient simulator segfault) at
 * exactly that site.
 *
 * Environment syntax (comma-separated specs):
 *
 *     G5_FAULT=point[:prob[:seed]][,point2[:prob[:seed]]...]
 *
 * e.g. G5_FAULT=db.blob.putFile:0.25:42 makes every putFile call fail
 * with probability 0.25 — the same seed reproduces the same failure
 * pattern bit-identically, which is what makes "run the sweep under
 * injected faults" a regression test instead of a flake generator.
 *
 * Determinism contract: the verdict of a point's N-th armed draw is a
 * pure function of (point name, seed, N) — see wouldFire(). There is no
 * shared PRNG stream, so the fire pattern does not depend on how visits
 * interleave across threads, and a process that makes the same sequence
 * of visits to a point sees the same sequence of verdicts whether it
 * runs single-threaded, on 8 threads, or as a forked G5_WORKERS child.
 *
 * Fork safety: worker processes call markWorkerProcess() right after
 * fork. From then on every "worker.*" point is parent-only in that
 * process — visits still count, but the point never fires, so
 * fork-inherited arming of the pool's own fault points (worker.spawn,
 * worker.recv, worker.heartbeat, worker.commit) cannot double-fire in
 * children.
 *
 * Tests preferring exact placement over probability use armAfter():
 * the point fires once after N successful passes, then disarms itself —
 * the standard way to simulate "the process crashed at step N".
 *
 * Checkpoints are cheap when nothing is armed (one atomic load) and the
 * registry of visited points (with hit/fired counts) is queryable, so
 * tests can assert "exactly 4 runs executed" via hit deltas.
 */

#ifndef G5_BASE_FAULTINJECT_HH
#define G5_BASE_FAULTINJECT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace g5
{

/** Thrown by an armed, firing fault point. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace fault
{

/**
 * The instrumentation call sites place at a named failure site: count
 * the visit and throw InjectedFault when the point is armed and its
 * draw fires. Thread-safe; ~one atomic load when nothing is armed.
 */
void checkpoint(const char *point);

/** Like checkpoint() but reports instead of throwing. */
bool shouldFire(const char *point);

/** Arm @p point: fire with probability @p prob, PRNG seeded @p seed. */
void arm(const std::string &point, double prob = 1.0,
         std::uint64_t seed = 0);

/**
 * Arm @p point to pass @p passes times, fire once, then disarm itself.
 * Deterministic regardless of seed — the crash-at-step-N primitive.
 */
void armAfter(const std::string &point, std::uint64_t passes);

/** Disarm one point (its counters survive). */
void disarm(const std::string &point);

/** Disarm every point and zero all counters (test isolation). */
void reset();

/** Parse and arm a G5_FAULT-syntax spec string. Throws on bad syntax. */
void armFromSpec(const std::string &spec);

/**
 * The pure draw function: would the @p ordinal-th (1-based) armed draw
 * of @p point fire under (@p prob, @p seed)? This is exactly the
 * verdict checkpoint()/shouldFire() compute for that draw, exposed so
 * tests can predict a fire sequence without visiting the point.
 */
bool wouldFire(const std::string &point, double prob,
               std::uint64_t seed, std::uint64_t ordinal);

/**
 * Mark this process as a forked worker: every "worker.*" point becomes
 * parent-only here (visits count, draws never fire). Called by the
 * worker pool in the child right after fork; irreversible by design.
 */
void markWorkerProcess();

/** @return true when markWorkerProcess() ran in this process. */
bool inWorkerProcess();

/** Clear the worker-process mark. Test isolation only — a real forked
 *  worker never unmarks itself. */
void unmarkWorkerProcessForTest();

/** @return times @p point was visited (armed or not). */
std::uint64_t hits(const std::string &point);

/** @return times @p point actually fired. */
std::uint64_t fired(const std::string &point);

/** @return the sorted names of every point visited or armed so far. */
std::vector<std::string> registry();

} // namespace fault
} // namespace g5

#endif // G5_BASE_FAULTINJECT_HH
