/**
 * @file
 * A self-contained JSON document model, parser, and serializer.
 *
 * The db layer stores documents as Json values; artifacts, runs, stats
 * dumps, kernel specs, and disk-image manifests all serialize through this
 * type. Objects keep keys in sorted order so serialization (and therefore
 * content hashing) is deterministic.
 *
 * Numbers are kept as either Int (int64) or Double, mirroring what BSON
 * would do; the parser picks Int when the literal has no fraction or
 * exponent and fits in int64.
 */

#ifndef G5_BASE_JSON_HH
#define G5_BASE_JSON_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace g5
{

/** Raised on malformed JSON text or type mismatches. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** A JSON value: null, bool, int64, double, string, array, or object. */
class Json
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    using ArrayT = std::vector<Json>;
    using ObjectT = std::map<std::string, Json>;

    /** Construct null. */
    Json() : ty(Type::Null) {}
    Json(std::nullptr_t) : ty(Type::Null) {}
    Json(bool v) : ty(Type::Bool) { boolVal = v; }
    Json(int v) : ty(Type::Int) { intVal = v; }
    Json(unsigned v) : ty(Type::Int) { intVal = std::int64_t(v); }
    Json(std::int64_t v) : ty(Type::Int) { intVal = v; }
    Json(std::uint64_t v) : ty(Type::Int) { intVal = std::int64_t(v); }
    Json(double v) : ty(Type::Double) { dblVal = v; }
    Json(const char *v) : ty(Type::String), strVal(v) {}
    Json(const std::string &v) : ty(Type::String), strVal(v) {}
    Json(std::string &&v) : ty(Type::String), strVal(std::move(v)) {}
    Json(const ArrayT &v) : ty(Type::Array), arrVal(v) {}
    Json(ArrayT &&v) : ty(Type::Array), arrVal(std::move(v)) {}

    /** @return an empty array value. */
    static Json array() { Json j; j.ty = Type::Array; return j; }

    /** @return an empty object value. */
    static Json object() { Json j; j.ty = Type::Object; return j; }

    /** Build an object from key/value pairs. */
    static Json object(
        std::initializer_list<std::pair<std::string, Json>> init);

    Type type() const { return ty; }
    bool isNull() const { return ty == Type::Null; }
    bool isBool() const { return ty == Type::Bool; }
    bool isInt() const { return ty == Type::Int; }
    bool isDouble() const { return ty == Type::Double; }
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return ty == Type::String; }
    bool isArray() const { return ty == Type::Array; }
    bool isObject() const { return ty == Type::Object; }

    /** @return the bool payload; throws JsonError on wrong type. */
    bool asBool() const;
    /** @return the integer payload (Double truncates); throws on others. */
    std::int64_t asInt() const;
    /** @return the numeric payload as double. */
    double asDouble() const;
    /** @return the string payload; throws JsonError on wrong type. */
    const std::string &asString() const;
    /** @return the array payload; throws JsonError on wrong type. */
    const ArrayT &asArray() const;
    ArrayT &asArray();
    /** @return the object payload; throws JsonError on wrong type. */
    const ObjectT &asObject() const;
    ObjectT &asObject();

    /** Object member access; inserts null when absent (object only). */
    Json &operator[](const std::string &key);
    /** Const object member access; throws JsonError when absent. */
    const Json &at(const std::string &key) const;
    /** Array element access; throws JsonError when out of range. */
    Json &operator[](std::size_t idx);
    const Json &at(std::size_t idx) const;

    /** @return true when this object has member @p key. */
    bool contains(const std::string &key) const;

    /** Array/object/string element count; 0 for scalars. */
    std::size_t size() const;

    /** Append to an array (value must be an array). */
    void push(Json v);

    /** Object member lookup with a default for absent/null members. */
    std::string getString(const std::string &key,
                          const std::string &dflt = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt = 0) const;
    double getDouble(const std::string &key, double dflt = 0.0) const;
    bool getBool(const std::string &key, bool dflt = false) const;

    /**
     * Navigate a dotted path ("a.b.c") through nested objects.
     * @return pointer to the value, or nullptr when any hop is missing.
     */
    const Json *find(const std::string &dotted_path) const;

    /** Deep structural equality (Int 3 == Double 3.0 compares equal). */
    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

    /**
     * Serialize. @p indent <= 0 produces compact one-line output;
     * positive values pretty-print with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** Parse JSON text; throws JsonError with offset info on bad input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type ty;
    union {
        bool boolVal;
        std::int64_t intVal;
        double dblVal;
    };
    std::string strVal;
    ArrayT arrVal;
    ObjectT objVal;
};

} // namespace g5

#endif // G5_BASE_JSON_HH
