/**
 * @file
 * A self-contained JSON document model, parser, and serializer.
 *
 * The db layer stores documents as Json values; artifacts, runs, stats
 * dumps, kernel specs, and disk-image manifests all serialize through this
 * type. Objects keep keys in sorted order so serialization (and therefore
 * content hashing) is deterministic.
 *
 * Numbers are kept as either Int (int64) or Double, mirroring what BSON
 * would do; the parser picks Int when the literal has no fraction or
 * exponent and fits in int64.
 *
 * Representation (see DESIGN.md, "Document model internals"): each node
 * is a compact tagged union — a one-byte type tag plus a payload union
 * holding the bool/int64/double inline and the string/array/object
 * storage in place (~40 bytes per node, down from >120 for the old
 * struct that carried a string, a vector, AND a map in every node).
 * Objects are flat sorted std::vector<std::pair<std::string, Json>>
 * (JsonObject): lookups binary-search, iteration is cache-linear, and
 * the sorted order keeps dump() byte-stable with the previous
 * std::map-based serializer — WAL snapshots and content hashes never
 * change across the upgrade.
 */

#ifndef G5_BASE_JSON_HH
#define G5_BASE_JSON_HH

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g5
{

class Json;

/** Raised on malformed JSON text or type mismatches. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Byte-stream target for Json serialization (see Json::dumpTo). The
 * serializer buffers internally and hands over large, infrequent
 * chunks, so a virtual write per chunk — not per token — is the cost.
 * Md5Stream implements one to hash documents without materializing the
 * text; the db layer appends WAL records through one into its oplog.
 */
class JsonSink
{
  public:
    virtual ~JsonSink() = default;

    /** Receive the next @p len serialized bytes. */
    virtual void write(const char *data, std::size_t len) = 0;
};

/**
 * An object's members: a flat vector of (key, value) pairs kept sorted
 * by key. Binary-search lookups, cache-friendly iteration, and the
 * sorted invariant keeps serialization deterministic (identical to the
 * old std::map order). The map-like slice of the std::map API that the
 * codebase uses (find/count/erase/emplace/operator[]) is preserved.
 */
class JsonObject
{
  public:
    using value_type = std::pair<std::string, Json>;
    using StorageT = std::vector<value_type>;
    using iterator = StorageT::iterator;
    using const_iterator = StorageT::const_iterator;

    JsonObject() = default;

    iterator begin() { return items.begin(); }
    iterator end() { return items.end(); }
    const_iterator begin() const { return items.begin(); }
    const_iterator end() const { return items.end(); }

    std::size_t size() const { return items.size(); }
    bool empty() const { return items.empty(); }
    void clear();

    /** Binary-search lookup. @return end() when absent. */
    iterator find(std::string_view key);
    const_iterator find(std::string_view key) const;

    std::size_t count(std::string_view key) const;

    /** @return the member value; throws JsonError when absent. */
    Json &at(std::string_view key);
    const Json &at(std::string_view key) const;

    /** Find-or-insert (null value when inserted), keeping sort order. */
    Json &operator[](std::string_view key);

    /** Insert when absent. @return (position, inserted). */
    std::pair<iterator, bool> emplace(std::string key, Json value);

    /** Insert or overwrite. @return reference to the stored value. */
    Json &insertOrAssign(std::string key, Json value);

    /** Remove a member. @return the number of members removed (0/1). */
    std::size_t erase(std::string_view key);

    bool operator==(const JsonObject &other) const;
    bool operator!=(const JsonObject &other) const
    {
        return !(*this == other);
    }

  private:
    /** Position of the first key >= @p key (insertion point). */
    StorageT::size_type lowerBound(std::string_view key) const;

    StorageT items;
};

/**
 * A dotted field path ("a.b.c") split once at construction so per-
 * document resolution never re-parses or allocates. The db query layer
 * compiles every query path through this (db::CompiledQuery); ad-hoc
 * lookups can keep using Json::find(), which walks the same way but
 * re-splits per call.
 */
class JsonPath
{
  public:
    JsonPath() = default;
    explicit JsonPath(std::string_view dotted);

    /** @return the value at this path under @p root, or nullptr. */
    const Json *resolve(const Json &root) const;

    /** @return the original dotted spelling. */
    const std::string &str() const { return dotted; }

    /** @return the number of segments. */
    std::size_t size() const { return segs.size(); }

  private:
    std::string dotted;
    /** (offset, length) of each segment within @p dotted. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> segs;
};

/** A JSON value: null, bool, int64, double, string, array, or object. */
class Json
{
  public:
    enum class Type : std::uint8_t {
        Null, Bool, Int, Double, String, Array, Object
    };

    using ArrayT = std::vector<Json>;
    using ObjectT = JsonObject;

    /** Construct null. */
    Json() : ty(Type::Null) {}
    Json(std::nullptr_t) : ty(Type::Null) {}
    Json(bool v) : ty(Type::Bool) { pay.b = v; }
    Json(int v) : ty(Type::Int) { pay.i = v; }
    Json(unsigned v) : ty(Type::Int) { pay.i = std::int64_t(v); }
    Json(long v) : ty(Type::Int) { pay.i = v; }
    Json(long long v) : ty(Type::Int) { pay.i = v; }
    /**
     * Unsigned 64-bit values above INT64_MAX (tick counts near maxTick)
     * cannot be stored as Int without wrapping negative; they degrade to
     * Double instead (matching what the parser does for out-of-range
     * integer literals).
     */
    Json(unsigned long v) { constructUnsigned(v); }
    Json(unsigned long long v) { constructUnsigned(v); }
    Json(double v) : ty(Type::Double) { pay.d = v; }
    Json(const char *v) : ty(Type::String)
    {
        new (&pay.s) std::string(v);
    }
    Json(std::string_view v) : ty(Type::String)
    {
        new (&pay.s) std::string(v);
    }
    Json(const std::string &v) : ty(Type::String)
    {
        new (&pay.s) std::string(v);
    }
    Json(std::string &&v) : ty(Type::String)
    {
        new (&pay.s) std::string(std::move(v));
    }
    Json(const ArrayT &v) : ty(Type::Array)
    {
        new (&pay.a) ArrayT(v);
    }
    Json(ArrayT &&v) : ty(Type::Array)
    {
        new (&pay.a) ArrayT(std::move(v));
    }

    Json(const Json &other);
    Json(Json &&other) noexcept;
    Json &operator=(const Json &other);
    Json &operator=(Json &&other) noexcept;
    ~Json() { destroy(); }

    /** @return an empty array value. */
    static Json array()
    {
        Json j;
        j.ty = Type::Array;
        new (&j.pay.a) ArrayT();
        return j;
    }

    /** @return an empty object value. */
    static Json object()
    {
        Json j;
        j.ty = Type::Object;
        new (&j.pay.o) ObjectT();
        return j;
    }

    /** Build an object from key/value pairs. */
    static Json object(
        std::initializer_list<std::pair<std::string, Json>> init);

    Type type() const { return ty; }
    bool isNull() const { return ty == Type::Null; }
    bool isBool() const { return ty == Type::Bool; }
    bool isInt() const { return ty == Type::Int; }
    bool isDouble() const { return ty == Type::Double; }
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return ty == Type::String; }
    bool isArray() const { return ty == Type::Array; }
    bool isObject() const { return ty == Type::Object; }

    /** @return the bool payload; throws JsonError on wrong type. */
    bool asBool() const;
    /** @return the integer payload (Double truncates); throws on others. */
    std::int64_t asInt() const;
    /** @return the numeric payload as double. */
    double asDouble() const;
    /** @return the string payload; throws JsonError on wrong type. */
    const std::string &asString() const;
    /** @return the array payload; throws JsonError on wrong type. */
    const ArrayT &asArray() const;
    ArrayT &asArray();
    /** @return the object payload; throws JsonError on wrong type. */
    const ObjectT &asObject() const;
    ObjectT &asObject();

    /** Object member access; inserts null when absent (object only). */
    Json &operator[](std::string_view key);
    /** Const object member access; throws JsonError when absent. */
    const Json &at(std::string_view key) const;
    /** Array element access; throws JsonError when out of range. */
    Json &operator[](std::size_t idx);
    const Json &at(std::size_t idx) const;

    /** @return true when this object has member @p key. */
    bool contains(std::string_view key) const;

    /** Array/object/string element count; 0 for scalars. */
    std::size_t size() const;

    /** Append to an array (value must be an array). */
    void push(Json v);

    /** Object member lookup with a default for absent/null members. */
    std::string getString(std::string_view key,
                          const std::string &dflt = "") const;
    std::int64_t getInt(std::string_view key, std::int64_t dflt = 0) const;
    double getDouble(std::string_view key, double dflt = 0.0) const;
    bool getBool(std::string_view key, bool dflt = false) const;

    /**
     * Navigate a dotted path ("a.b.c") through nested objects.
     * @return pointer to the value, or nullptr when any hop is missing.
     */
    const Json *find(std::string_view dotted_path) const;

    /** Deep structural equality (Int 3 == Double 3.0 compares equal). */
    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

    /**
     * Serialize. @p indent <= 0 produces compact one-line output;
     * positive values pretty-print with that many spaces per level.
     *
     * Byte-stability guarantee: for any given document the output is a
     * pure function of its value — sorted keys, std::to_chars integer
     * digits, %.17g-equivalent doubles — and is byte-identical to every
     * previous release's serializer. WAL files, run-cache inputHash
     * keys, and blob content addresses depend on this (the golden-
     * corpus test pins it).
     */
    std::string dump(int indent = -1) const;

    /** Serialize, appending to @p out (no intermediate string). */
    void dumpTo(std::string &out, int indent = -1) const;

    /** Serialize into a sink, e.g. a hasher, in buffered chunks. */
    void dumpTo(JsonSink &sink, int indent = -1) const;

    /** Parse JSON text; throws JsonError with offset info on bad input. */
    static Json parse(std::string_view text);

    /**
     * Serialize into the compact binary wire form used by the db layer's
     * s5db1 record format (see DESIGN.md "MVCC & binary storage"):
     * a one-byte type tag, little-endian fixed-width numbers, u32
     * length-prefixed strings, and u32-counted arrays/objects with
     * object keys in sorted order. The encoding preserves the Int vs
     * Double distinction exactly, so parseBinary(dumpBinary(j)) == j
     * structurally AND re-serializes (dump()) to identical text — the
     * same byte-stability contract dump() makes.
     */
    void dumpBinaryTo(std::string &out) const;

    /**
     * Decode one value produced by dumpBinaryTo. @p bytes must span
     * exactly one value; trailing bytes or truncation throw JsonError.
     */
    static Json parseBinary(std::string_view bytes);

  private:
    union Payload {
        bool b;
        std::int64_t i;
        double d;
        std::string s;
        ArrayT a;
        ObjectT o;

        // Lifetime is managed by Json (construct/destroy per tag).
        Payload() {}
        ~Payload() {}
    };

    void destroy();
    void copyFrom(const Json &other);
    void moveFrom(Json &&other) noexcept;

    template <typename UInt>
    void
    constructUnsigned(UInt v)
    {
        if (v <= UInt(std::int64_t(0x7fffffffffffffffLL))) {
            ty = Type::Int;
            pay.i = std::int64_t(v);
        } else {
            ty = Type::Double;
            pay.d = double(v);
        }
    }

    Type ty;
    Payload pay;
};

} // namespace g5

#endif // G5_BASE_JSON_HH
