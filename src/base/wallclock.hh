/**
 * @file
 * Host wall-clock helpers for timestamps and run-duration accounting.
 */

#ifndef G5_BASE_WALLCLOCK_HH
#define G5_BASE_WALLCLOCK_HH

#include <cstdint>
#include <string>

namespace g5
{

/** @return seconds (with sub-second precision) since an arbitrary epoch. */
double monotonicSeconds();

/** @return the current UTC time as an ISO-8601 string (second granularity). */
std::string isoTimestamp();

} // namespace g5

#endif // G5_BASE_WALLCLOCK_HH
