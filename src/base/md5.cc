#include "base/md5.hh"

#include <cstring>
#include <fstream>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/str.hh"

namespace g5
{

namespace
{

// Per-round shift amounts (RFC 1321).
constexpr std::uint32_t shifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr std::uint32_t sines[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
    0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
    0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
    0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
};

inline std::uint32_t
rotl32(std::uint32_t x, std::uint32_t c)
{
    return (x << c) | (x >> (32 - c));
}

} // anonymous namespace

Md5::Md5()
    : a0(0x67452301), b0(0xefcdab89), c0(0x98badcfe), d0(0x10325476),
      totalLen(0), bufferLen(0), finalized(false)
{}

void
Md5::processBlock(const std::uint8_t *block)
{
    std::uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
        m[i] = std::uint32_t(block[i * 4]) |
               std::uint32_t(block[i * 4 + 1]) << 8 |
               std::uint32_t(block[i * 4 + 2]) << 16 |
               std::uint32_t(block[i * 4 + 3]) << 24;
    }

    std::uint32_t a = a0, b = b0, c = c0, d = d0;

    for (int i = 0; i < 64; ++i) {
        std::uint32_t f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        f = f + a + sines[i] + m[g];
        a = d;
        d = c;
        c = b;
        b = b + rotl32(f, shifts[i]);
    }

    a0 += a;
    b0 += b;
    c0 += c;
    d0 += d;
}

void
Md5::update(const void *data, std::size_t len)
{
    if (finalized)
        panic("Md5::update after digest()");
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    totalLen += len;

    while (len > 0) {
        std::size_t take = std::min<std::size_t>(len, 64 - bufferLen);
        std::memcpy(buffer + bufferLen, bytes, take);
        bufferLen += take;
        bytes += take;
        len -= take;
        if (bufferLen == 64) {
            processBlock(buffer);
            bufferLen = 0;
        }
    }
}

std::array<std::uint8_t, 16>
Md5::digest()
{
    if (finalized)
        panic("Md5::digest called twice");

    std::uint64_t bit_len = totalLen * 8;

    // Pad: 0x80, zeros, then the 64-bit little-endian length.
    std::uint8_t pad = 0x80;
    update(&pad, 1);
    totalLen -= 1; // padding is not message content
    std::uint8_t zero = 0;
    while (bufferLen != 56) {
        update(&zero, 1);
        totalLen -= 1;
    }
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i)
        len_bytes[i] = std::uint8_t(bit_len >> (8 * i));
    update(len_bytes, 8);
    finalized = true;

    std::array<std::uint8_t, 16> out;
    std::uint32_t words[4] = {a0, b0, c0, d0};
    for (int w = 0; w < 4; ++w)
        for (int i = 0; i < 4; ++i)
            out[w * 4 + i] = std::uint8_t(words[w] >> (8 * i));
    return out;
}

std::string
Md5::hexDigest()
{
    auto d = digest();
    return toHex(d.data(), d.size());
}

std::string
Md5::hashBytes(const void *data, std::size_t len)
{
    Md5 h;
    h.update(data, len);
    return h.hexDigest();
}

std::string
Md5::hashString(const std::string &s)
{
    return hashBytes(s.data(), s.size());
}

void
Md5Stream::update(const Json &j)
{
    struct HashSink : JsonSink
    {
        Md5 &h;
        explicit HashSink(Md5 &hasher) : h(hasher) {}
        void
        write(const char *data, std::size_t len) override
        {
            h.update(data, len);
        }
    };
    HashSink sink(hasher);
    j.dumpTo(sink);
}

std::string
Md5::hashFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("Md5::hashFile: cannot open '" + path + "'");
    Md5Stream h;
    std::vector<char> buf(1 << 20);
    while (in) {
        in.read(buf.data(), std::streamsize(buf.size()));
        std::streamsize got = in.gcount();
        if (got > 0)
            h.update(buf.data(), std::size_t(got));
    }
    return h.final();
}

} // namespace g5
