#include "base/md5.hh"

#include <bit>
#include <cstring>
#include <fstream>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/str.hh"

namespace g5
{

namespace
{

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr std::uint32_t sines[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
    0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
    0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
    0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
};

inline std::uint32_t
rotl32(std::uint32_t x, std::uint32_t c)
{
    return (x << c) | (x >> (32 - c));
}

// The four round functions (RFC 1321 F/G/H/I).
inline std::uint32_t
fF(std::uint32_t b, std::uint32_t c, std::uint32_t d)
{
    return (b & c) | (~b & d);
}

inline std::uint32_t
fG(std::uint32_t b, std::uint32_t c, std::uint32_t d)
{
    return (b & d) | (c & ~d);
}

inline std::uint32_t
fH(std::uint32_t b, std::uint32_t c, std::uint32_t d)
{
    return b ^ c ^ d;
}

inline std::uint32_t
fI(std::uint32_t b, std::uint32_t c, std::uint32_t d)
{
    return c ^ (b | ~d);
}

} // anonymous namespace

// One MD5 step, fully unrolled at the call sites: the rolled
// one-loop form pays a round branch and two table loads per step,
// which halves digest throughput — and every WAL group and artifact
// upload is sealed with this.
#define G5_MD5_STEP(fn, a, b, c, d, x, t, s)                             \
    (a) += fn((b), (c), (d)) + (x) + (t);                                \
    (a) = rotl32((a), (s)) + (b);

Md5::Md5()
    : a0(0x67452301), b0(0xefcdab89), c0(0x98badcfe), d0(0x10325476),
      totalLen(0), bufferLen(0), finalized(false)
{}

void
Md5::processBlock(const std::uint8_t *block)
{
    std::uint32_t m[16];
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(m, block, 64);
    } else {
        for (int i = 0; i < 16; ++i) {
            m[i] = std::uint32_t(block[i * 4]) |
                   std::uint32_t(block[i * 4 + 1]) << 8 |
                   std::uint32_t(block[i * 4 + 2]) << 16 |
                   std::uint32_t(block[i * 4 + 3]) << 24;
        }
    }

    std::uint32_t a = a0, b = b0, c = c0, d = d0;

    G5_MD5_STEP(fF, a, b, c, d, m[0], sines[0], 7)
    G5_MD5_STEP(fF, d, a, b, c, m[1], sines[1], 12)
    G5_MD5_STEP(fF, c, d, a, b, m[2], sines[2], 17)
    G5_MD5_STEP(fF, b, c, d, a, m[3], sines[3], 22)
    G5_MD5_STEP(fF, a, b, c, d, m[4], sines[4], 7)
    G5_MD5_STEP(fF, d, a, b, c, m[5], sines[5], 12)
    G5_MD5_STEP(fF, c, d, a, b, m[6], sines[6], 17)
    G5_MD5_STEP(fF, b, c, d, a, m[7], sines[7], 22)
    G5_MD5_STEP(fF, a, b, c, d, m[8], sines[8], 7)
    G5_MD5_STEP(fF, d, a, b, c, m[9], sines[9], 12)
    G5_MD5_STEP(fF, c, d, a, b, m[10], sines[10], 17)
    G5_MD5_STEP(fF, b, c, d, a, m[11], sines[11], 22)
    G5_MD5_STEP(fF, a, b, c, d, m[12], sines[12], 7)
    G5_MD5_STEP(fF, d, a, b, c, m[13], sines[13], 12)
    G5_MD5_STEP(fF, c, d, a, b, m[14], sines[14], 17)
    G5_MD5_STEP(fF, b, c, d, a, m[15], sines[15], 22)

    G5_MD5_STEP(fG, a, b, c, d, m[1], sines[16], 5)
    G5_MD5_STEP(fG, d, a, b, c, m[6], sines[17], 9)
    G5_MD5_STEP(fG, c, d, a, b, m[11], sines[18], 14)
    G5_MD5_STEP(fG, b, c, d, a, m[0], sines[19], 20)
    G5_MD5_STEP(fG, a, b, c, d, m[5], sines[20], 5)
    G5_MD5_STEP(fG, d, a, b, c, m[10], sines[21], 9)
    G5_MD5_STEP(fG, c, d, a, b, m[15], sines[22], 14)
    G5_MD5_STEP(fG, b, c, d, a, m[4], sines[23], 20)
    G5_MD5_STEP(fG, a, b, c, d, m[9], sines[24], 5)
    G5_MD5_STEP(fG, d, a, b, c, m[14], sines[25], 9)
    G5_MD5_STEP(fG, c, d, a, b, m[3], sines[26], 14)
    G5_MD5_STEP(fG, b, c, d, a, m[8], sines[27], 20)
    G5_MD5_STEP(fG, a, b, c, d, m[13], sines[28], 5)
    G5_MD5_STEP(fG, d, a, b, c, m[2], sines[29], 9)
    G5_MD5_STEP(fG, c, d, a, b, m[7], sines[30], 14)
    G5_MD5_STEP(fG, b, c, d, a, m[12], sines[31], 20)

    G5_MD5_STEP(fH, a, b, c, d, m[5], sines[32], 4)
    G5_MD5_STEP(fH, d, a, b, c, m[8], sines[33], 11)
    G5_MD5_STEP(fH, c, d, a, b, m[11], sines[34], 16)
    G5_MD5_STEP(fH, b, c, d, a, m[14], sines[35], 23)
    G5_MD5_STEP(fH, a, b, c, d, m[1], sines[36], 4)
    G5_MD5_STEP(fH, d, a, b, c, m[4], sines[37], 11)
    G5_MD5_STEP(fH, c, d, a, b, m[7], sines[38], 16)
    G5_MD5_STEP(fH, b, c, d, a, m[10], sines[39], 23)
    G5_MD5_STEP(fH, a, b, c, d, m[13], sines[40], 4)
    G5_MD5_STEP(fH, d, a, b, c, m[0], sines[41], 11)
    G5_MD5_STEP(fH, c, d, a, b, m[3], sines[42], 16)
    G5_MD5_STEP(fH, b, c, d, a, m[6], sines[43], 23)
    G5_MD5_STEP(fH, a, b, c, d, m[9], sines[44], 4)
    G5_MD5_STEP(fH, d, a, b, c, m[12], sines[45], 11)
    G5_MD5_STEP(fH, c, d, a, b, m[15], sines[46], 16)
    G5_MD5_STEP(fH, b, c, d, a, m[2], sines[47], 23)

    G5_MD5_STEP(fI, a, b, c, d, m[0], sines[48], 6)
    G5_MD5_STEP(fI, d, a, b, c, m[7], sines[49], 10)
    G5_MD5_STEP(fI, c, d, a, b, m[14], sines[50], 15)
    G5_MD5_STEP(fI, b, c, d, a, m[5], sines[51], 21)
    G5_MD5_STEP(fI, a, b, c, d, m[12], sines[52], 6)
    G5_MD5_STEP(fI, d, a, b, c, m[3], sines[53], 10)
    G5_MD5_STEP(fI, c, d, a, b, m[10], sines[54], 15)
    G5_MD5_STEP(fI, b, c, d, a, m[1], sines[55], 21)
    G5_MD5_STEP(fI, a, b, c, d, m[8], sines[56], 6)
    G5_MD5_STEP(fI, d, a, b, c, m[15], sines[57], 10)
    G5_MD5_STEP(fI, c, d, a, b, m[6], sines[58], 15)
    G5_MD5_STEP(fI, b, c, d, a, m[13], sines[59], 21)
    G5_MD5_STEP(fI, a, b, c, d, m[4], sines[60], 6)
    G5_MD5_STEP(fI, d, a, b, c, m[11], sines[61], 10)
    G5_MD5_STEP(fI, c, d, a, b, m[2], sines[62], 15)
    G5_MD5_STEP(fI, b, c, d, a, m[9], sines[63], 21)

    a0 += a;
    b0 += b;
    c0 += c;
    d0 += d;
}

void
Md5::update(const void *data, std::size_t len)
{
    if (finalized)
        panic("Md5::update after digest()");
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    totalLen += len;

    // Top up a ragged head left by a previous update.
    if (bufferLen > 0) {
        std::size_t take = std::min<std::size_t>(len, 64 - bufferLen);
        std::memcpy(buffer + bufferLen, bytes, take);
        bufferLen += take;
        bytes += take;
        len -= take;
        if (bufferLen == 64) {
            processBlock(buffer);
            bufferLen = 0;
        }
    }
    // Whole blocks hash straight from the caller's memory; only the
    // tail below ever touches the staging buffer.
    while (len >= 64) {
        processBlock(bytes);
        bytes += 64;
        len -= 64;
    }
    if (len > 0) {
        std::memcpy(buffer, bytes, len);
        bufferLen = len;
    }
}

std::array<std::uint8_t, 16>
Md5::digest()
{
    if (finalized)
        panic("Md5::digest called twice");

    std::uint64_t bit_len = totalLen * 8;

    // Pad: 0x80, zeros, then the 64-bit little-endian length.
    std::uint8_t pad = 0x80;
    update(&pad, 1);
    totalLen -= 1; // padding is not message content
    std::uint8_t zero = 0;
    while (bufferLen != 56) {
        update(&zero, 1);
        totalLen -= 1;
    }
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i)
        len_bytes[i] = std::uint8_t(bit_len >> (8 * i));
    update(len_bytes, 8);
    finalized = true;

    std::array<std::uint8_t, 16> out;
    std::uint32_t words[4] = {a0, b0, c0, d0};
    for (int w = 0; w < 4; ++w)
        for (int i = 0; i < 4; ++i)
            out[w * 4 + i] = std::uint8_t(words[w] >> (8 * i));
    return out;
}

std::string
Md5::hexDigest()
{
    auto d = digest();
    return toHex(d.data(), d.size());
}

std::string
Md5::hashBytes(const void *data, std::size_t len)
{
    Md5 h;
    h.update(data, len);
    return h.hexDigest();
}

std::string
Md5::hashString(const std::string &s)
{
    return hashBytes(s.data(), s.size());
}

void
Md5Stream::update(const Json &j)
{
    struct HashSink : JsonSink
    {
        Md5 &h;
        explicit HashSink(Md5 &hasher) : h(hasher) {}
        void
        write(const char *data, std::size_t len) override
        {
            h.update(data, len);
        }
    };
    HashSink sink(hasher);
    j.dumpTo(sink);
}

std::string
Md5::hashFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("Md5::hashFile: cannot open '" + path + "'");
    Md5Stream h;
    std::vector<char> buf(1 << 20);
    while (in) {
        in.read(buf.data(), std::streamsize(buf.size()));
        std::streamsize got = in.gcount();
        if (got > 0)
            h.update(buf.data(), std::size_t(got));
    }
    return h.final();
}

} // namespace g5
