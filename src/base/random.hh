/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in g5 — synthetic address streams, defect
 * activation, artifact UUIDs under test — draws from these generators so
 * that every experiment regenerates bit-identically from its
 * configuration. SplitMix64 seeds Xoshiro256**, the standard pairing.
 */

#ifndef G5_BASE_RANDOM_HH
#define G5_BASE_RANDOM_HH

#include <cstdint>
#include <string>

namespace g5
{

/** SplitMix64 step; also useful as a cheap 64-bit mixer/hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Mix an arbitrary string into a 64-bit seed (FNV-1a then SplitMix). */
std::uint64_t hashString(const std::string &s);

/** Combine two 64-bit hashes (order dependent). */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

/**
 * Xoshiro256** — a small, fast, high-quality PRNG.
 *
 * Not cryptographic; used only for reproducible simulation stochastics.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Construct from a string key, e.g. a run configuration signature. */
    explicit Rng(const std::string &key);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return a uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return a uniform double in [0, 1). */
    double real();

    /** @return true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /** @return a normally distributed value (Box–Muller). */
    double gaussian(double mean, double stddev);

  private:
    std::uint64_t s[4];
};

} // namespace g5

#endif // G5_BASE_RANDOM_HH
