#include "base/wallclock.hh"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace g5
{

double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    auto now = clock::now().time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

std::string
isoTimestamp()
{
    std::time_t t = std::time(nullptr);
    std::tm tm_utc;
    gmtime_r(&t, &tm_utc);
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                  tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                  tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
    return buf;
}

} // namespace g5
