/**
 * @file
 * RFC 4122 version-4 UUIDs.
 *
 * gem5art assigns every artifact and run a UUID. Production callers use
 * generate() (seeded from std::random_device once per process); tests and
 * reproducible experiments use generateFrom() with an explicit Rng so runs
 * are replayable.
 */

#ifndef G5_BASE_UUID_HH
#define G5_BASE_UUID_HH

#include <string>

namespace g5
{

class Rng;

/** A v4 UUID in canonical 8-4-4-4-12 hex form. */
class Uuid
{
  public:
    /** The nil UUID (all zeros). */
    Uuid();

    /** Parse from canonical text; throws FatalError on malformed input. */
    explicit Uuid(const std::string &text);

    /** Generate a fresh random v4 UUID (process-global entropy). */
    static Uuid generate();

    /** Generate a v4 UUID from a caller-provided deterministic Rng. */
    static Uuid generateFrom(Rng &rng);

    /** @return canonical lowercase text form. */
    const std::string &str() const { return text; }

    /** @return true when this is the nil UUID. */
    bool isNil() const;

    bool operator==(const Uuid &other) const { return text == other.text; }
    bool operator!=(const Uuid &other) const { return text != other.text; }
    bool operator<(const Uuid &other) const { return text < other.text; }

  private:
    std::string text;
};

} // namespace g5

#endif // G5_BASE_UUID_HH
