#include "base/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace g5
{

namespace
{
bool quietFlag = false;
} // anonymous namespace

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    std::vector<char> buf(len + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    return std::string(buf.data(), len);
}

void
panic(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
inform(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
hack(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "hack: %s\n", msg.c_str());
}

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

} // namespace g5
