/**
 * @file
 * Status-message and error-reporting helpers in the gem5 tradition.
 *
 * The distinction between the two error paths matters (and mirrors
 * src/base/logging.hh in gem5):
 *
 *  - panic():  something happened that should never happen regardless of
 *              what the user does — an internal bug. Throws PanicError.
 *  - fatal():  the simulation cannot continue because of a user-level
 *              problem (bad configuration, invalid arguments). Throws
 *              FatalError.
 *
 * Because g5 is a library (experiments run many simulations in one
 * process), both conditions are reported as exceptions rather than
 * aborting the process; the art layer records them per run.
 *
 * inform()/warn()/hack() print status to stderr and never stop anything.
 */

#ifndef G5_BASE_LOGGING_HH
#define G5_BASE_LOGGING_HH

#include <stdexcept>
#include <string>

namespace g5
{

/** Raised by panic(): an internal invariant was violated (a g5 bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Raised by fatal(): the user asked for something unsupported/invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Raised when a modeled host-level simulator crash occurs (e.g. the
 * v20.1.0.4 O3 segmentation fault reproduced for the Fig 8 census).
 * Distinct from PanicError so the art layer can classify the run the way
 * the paper does ("gem5 crashed" vs "kernel panic").
 */
class SimulatorCrash : public std::runtime_error
{
  public:
    explicit SimulatorCrash(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal invariant violation. Never returns. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user error. Never returns. */
[[noreturn]] void fatal(const std::string &msg);

/** Print an informational message ("info: ..."). */
void inform(const std::string &msg);

/** Print a warning ("warn: ..."). */
void warn(const std::string &msg);

/** Print a hack notice ("hack: ..."). */
void hack(const std::string &msg);

/** Globally silence inform/warn/hack (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when status messages are suppressed. */
bool quiet();

} // namespace g5

#endif // G5_BASE_LOGGING_HH
