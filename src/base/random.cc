#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace g5
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashString(const std::string &s)
{
    // FNV-1a 64-bit, then one SplitMix finalization round for avalanche.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    std::uint64_t state = h;
    return splitmix64(state);
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6));
    return splitmix64(state);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t state = seed;
    for (auto &word : s)
        word = splitmix64(state);
}

Rng::Rng(const std::string &key)
    : Rng(hashString(key))
{}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with bound 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range called with lo > hi");
    const std::uint64_t span = std::uint64_t(hi - lo) + 1;
    return lo + std::int64_t(span == 0 ? next() : below(span));
}

double
Rng::real()
{
    return double(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

double
Rng::gaussian(double mean, double stddev)
{
    double u1 = real();
    double u2 = real();
    if (u1 < 1e-300)
        u1 = 1e-300;
    double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

} // namespace g5
