/**
 * @file
 * MD5 message digest (RFC 1321), implemented from scratch.
 *
 * gem5art identifies every artifact by the MD5 of its backing file (or the
 * git revision hash for repositories); the db layer's blob store is
 * content-addressed by the same digest. MD5 is used here strictly for
 * content identity, never for security.
 */

#ifndef G5_BASE_MD5_HH
#define G5_BASE_MD5_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace g5
{

class Json;

/** Incremental MD5 hasher. */
class Md5
{
  public:
    Md5();

    /** Absorb @p len bytes from @p data. */
    void update(const void *data, std::size_t len);

    /** Absorb a string's bytes. */
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finalize and return the 16-byte digest. Hasher becomes unusable. */
    std::array<std::uint8_t, 16> digest();

    /** Finalize and return the digest as 32 lowercase hex chars. */
    std::string hexDigest();

    /** One-shot convenience: hex MD5 of a byte buffer. */
    static std::string hashBytes(const void *data, std::size_t len);

    /** One-shot convenience: hex MD5 of a string. */
    static std::string hashString(const std::string &s);

    /** Hex MD5 of a file's contents; throws FatalError if unreadable. */
    static std::string hashFile(const std::string &path);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t a0, b0, c0, d0;
    std::uint64_t totalLen;
    std::uint8_t buffer[64];
    std::size_t bufferLen;
    bool finalized;
};

/**
 * Streaming MD5 front-end for chunked file hashing: feed fixed-size
 * chunks with update() and collect the hex digest with final(). The db
 * layer's putFile/blob store and artifact registration hash disk
 * images through this interface so the whole file is never resident
 * in memory.
 */
class Md5Stream
{
  public:
    /** Absorb @p len bytes from @p data. */
    void update(const void *data, std::size_t len)
    {
        hasher.update(data, len);
    }

    /** Absorb a string's bytes. */
    void update(const std::string &s) { hasher.update(s); }

    /**
     * Absorb a document's compact serialization without materializing
     * the text: the serializer streams its buffered chunks straight
     * into the hasher. The digest equals
     * Md5::hashString(j.dump()) by the byte-stability guarantee.
     */
    void update(const Json &j);

    /** Finalize: @return the 32-char lowercase hex digest. */
    std::string final() { return hasher.hexDigest(); }

    /** Finalize: @return the raw 16-byte digest. */
    std::array<std::uint8_t, 16> finalBytes() { return hasher.digest(); }

    /** Reset to the empty-message state for reuse. */
    void reset() { hasher = Md5(); }

  private:
    Md5 hasher;
};

} // namespace g5

#endif // G5_BASE_MD5_HH
