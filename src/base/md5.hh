/**
 * @file
 * MD5 message digest (RFC 1321), implemented from scratch.
 *
 * gem5art identifies every artifact by the MD5 of its backing file (or the
 * git revision hash for repositories); the db layer's blob store is
 * content-addressed by the same digest. MD5 is used here strictly for
 * content identity, never for security.
 */

#ifndef G5_BASE_MD5_HH
#define G5_BASE_MD5_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace g5
{

/** Incremental MD5 hasher. */
class Md5
{
  public:
    Md5();

    /** Absorb @p len bytes from @p data. */
    void update(const void *data, std::size_t len);

    /** Absorb a string's bytes. */
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finalize and return the 16-byte digest. Hasher becomes unusable. */
    std::array<std::uint8_t, 16> digest();

    /** Finalize and return the digest as 32 lowercase hex chars. */
    std::string hexDigest();

    /** One-shot convenience: hex MD5 of a byte buffer. */
    static std::string hashBytes(const void *data, std::size_t len);

    /** One-shot convenience: hex MD5 of a string. */
    static std::string hashString(const std::string &s);

    /** Hex MD5 of a file's contents; throws FatalError if unreadable. */
    static std::string hashFile(const std::string &path);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t a0, b0, c0, d0;
    std::uint64_t totalLen;
    std::uint8_t buffer[64];
    std::size_t bufferLen;
    bool finalized;
};

} // namespace g5

#endif // G5_BASE_MD5_HH
