#include "base/faultinject.hh"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string_view>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"

namespace g5::fault
{

namespace
{

struct Point
{
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;

    bool armed = false;
    double prob = 1.0;
    std::uint64_t seed = 0;
    /** Armed draws made so far (the per-point hit ordinal). */
    std::uint64_t draws = 0;

    /** armAfter mode: pass this many more times, fire once, disarm. */
    bool oneShot = false;
    std::uint64_t passesLeft = 0;
};

struct State
{
    std::mutex mtx;
    std::map<std::string, Point> points;
    /** Fast path: how many points are currently armed. */
    std::atomic<int> armedCount{0};
    std::once_flag envOnce;
    /** Set (pre-fork write, post-fork read — fork-safe) in children. */
    std::atomic<bool> workerProcess{false};
};

State &
state()
{
    static State s;
    return s;
}

/** Read G5_FAULT once, lazily, merging with programmatic arms. */
void
armFromEnvOnce()
{
    State &s = state();
    std::call_once(s.envOnce, [&] {
        const char *v = std::getenv("G5_FAULT");
        if (v != nullptr && *v != '\0')
            armFromSpec(v);
    });
}

/**
 * The stateless verdict underneath wouldFire()/draw(): hash the
 * (point, seed, ordinal) triple to a unit interval and compare against
 * prob. No PRNG state means no dependence on visit interleaving — and
 * no fork-inherited stream a worker child could replay out of step.
 */
bool
verdict(const std::string &point, double prob, std::uint64_t seed,
        std::uint64_t ordinal)
{
    if (prob >= 1.0)
        return true;
    if (prob <= 0.0)
        return false;
    std::uint64_t h = hashCombine(hashCombine(seed, hashString(point)),
                                  ordinal);
    std::uint64_t mixed = splitmix64(h);
    double unit = double(mixed >> 11) * 0x1.0p-53;
    return unit < prob;
}

/** @return true when @p point is parent-only in a worker child. */
bool
suppressedInWorker(const char *point)
{
    return state().workerProcess.load(std::memory_order_relaxed) &&
           std::string_view(point).substr(0, 7) == "worker.";
}

/** Decide whether an armed point fires on this visit. Lock held. */
bool
draw(const char *name, Point &p)
{
    if (p.oneShot) {
        if (p.passesLeft > 0) {
            --p.passesLeft;
            return false;
        }
        p.armed = false; // fire exactly once
        state().armedCount.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }
    return verdict(name, p.prob, p.seed, ++p.draws);
}

bool
visit(const char *point, bool counted)
{
    armFromEnvOnce();
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    Point &p = s.points[point];
    if (counted)
        ++p.hits;
    if (!p.armed || suppressedInWorker(point))
        return false;
    bool fire = draw(point, p);
    if (fire)
        ++p.fired;
    return fire;
}

} // anonymous namespace

void
checkpoint(const char *point)
{
    // Unarmed processes pay one relaxed load — no lock, no map probe.
    if (state().armedCount.load(std::memory_order_relaxed) == 0) {
        armFromEnvOnce();
        if (state().armedCount.load(std::memory_order_relaxed) == 0) {
            std::lock_guard<std::mutex> lock(state().mtx);
            ++state().points[point].hits;
            return;
        }
    }
    if (visit(point, true))
        throw InjectedFault(std::string("injected fault at '") + point +
                            "'");
}

bool
shouldFire(const char *point)
{
    return visit(point, true);
}

void
arm(const std::string &point, double prob, std::uint64_t seed)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    Point &p = s.points[point];
    if (!p.armed)
        s.armedCount.fetch_add(1, std::memory_order_relaxed);
    p.armed = true;
    p.oneShot = false;
    p.prob = prob;
    p.seed = seed;
    // Re-arming restarts the ordinal sequence: the N-th draw after any
    // arm(point, prob, seed) always gets the same verdict.
    p.draws = 0;
}

void
armAfter(const std::string &point, std::uint64_t passes)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    Point &p = s.points[point];
    if (!p.armed)
        s.armedCount.fetch_add(1, std::memory_order_relaxed);
    p.armed = true;
    p.oneShot = true;
    p.passesLeft = passes;
}

void
disarm(const std::string &point)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    auto it = s.points.find(point);
    if (it != s.points.end() && it->second.armed) {
        it->second.armed = false;
        s.armedCount.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
reset()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    for (auto &kv : s.points) {
        if (kv.second.armed)
            s.armedCount.fetch_sub(1, std::memory_order_relaxed);
    }
    s.points.clear();
}

void
armFromSpec(const std::string &spec)
{
    for (const auto &entry : split(spec, ',')) {
        std::string t = trim(entry);
        if (t.empty())
            continue;
        auto parts = split(t, ':');
        if (parts.empty() || trim(parts[0]).empty())
            fatal("G5_FAULT: empty fault point in '" + spec + "'");
        double prob = 1.0;
        std::uint64_t seed = 0;
        try {
            if (parts.size() > 1)
                prob = std::stod(parts[1]);
            if (parts.size() > 2)
                seed = std::stoull(parts[2]);
        } catch (const std::exception &) {
            fatal("G5_FAULT: cannot parse '" + t +
                  "' (want point[:prob[:seed]])");
        }
        if (parts.size() > 3)
            fatal("G5_FAULT: too many fields in '" + t + "'");
        arm(trim(parts[0]), prob, seed);
    }
}

bool
wouldFire(const std::string &point, double prob, std::uint64_t seed,
          std::uint64_t ordinal)
{
    return verdict(point, prob, seed, ordinal);
}

void
markWorkerProcess()
{
    state().workerProcess.store(true, std::memory_order_relaxed);
}

bool
inWorkerProcess()
{
    return state().workerProcess.load(std::memory_order_relaxed);
}

void
unmarkWorkerProcessForTest()
{
    state().workerProcess.store(false, std::memory_order_relaxed);
}

std::uint64_t
hits(const std::string &point)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    auto it = s.points.find(point);
    return it == s.points.end() ? 0 : it->second.hits;
}

std::uint64_t
fired(const std::string &point)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    auto it = s.points.find(point);
    return it == s.points.end() ? 0 : it->second.fired;
}

std::vector<std::string>
registry()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    std::vector<std::string> names;
    for (const auto &kv : s.points)
        names.push_back(kv.first);
    return names;
}

} // namespace g5::fault
