#include "base/str.hh"

#include <cctype>

#include "base/logging.hh"

namespace g5
{

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
toLower(const std::string &s)
{
    std::string out(s);
    for (auto &c : out)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
toHex(const std::uint8_t *data, std::size_t len)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (std::size_t i = 0; i < len; ++i) {
        out += digits[data[i] >> 4];
        out += digits[data[i] & 0xf];
    }
    return out;
}

namespace
{

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // anonymous namespace

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        fatal("fromHex: odd-length hex string");
    std::vector<std::uint8_t> out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexVal(hex[i]);
        int lo = hexVal(hex[i + 1]);
        if (hi < 0 || lo < 0)
            fatal("fromHex: invalid hex digit in '" + hex + "'");
        out.push_back(std::uint8_t((hi << 4) | lo));
    }
    return out;
}

} // namespace g5
