/**
 * @file
 * A process-wide, lock-cheap metrics registry — the observability
 * counterpart of gem5's Stats machinery, shaped for concurrent sweep
 * execution: many scheduler workers increment the same counters while
 * a progress reporter snapshots them.
 *
 * Three metric kinds:
 *
 *  - Counter:   monotonically increasing int64 (ops, bytes, retries);
 *  - Gauge:     settable/adjustable int64 (queue depth, busy workers);
 *  - Histogram: fixed-bucket distribution with count/sum (latencies).
 *
 * All mutation is relaxed-atomic — incrementing a counter from a hot
 * path costs one uncontended fetch_add, no locks. Registration
 * (counter()/gauge()/histogram()) takes a shared_mutex on the registry
 * map; call sites cache the returned reference (addresses are stable
 * for the life of the process), so lookups stay off hot paths.
 *
 * snapshot() renders every registered metric into a Json object —
 * sorted keys, deterministic layout — which the art layer archives
 * into run/sweep documents and TaskQueue::summary() exposes as a live
 * progress line. resetAll() zeroes values (registrations survive) for
 * test isolation.
 */

#ifndef G5_BASE_METRICS_HH
#define G5_BASE_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/json.hh"

namespace g5::metrics
{

/**
 * A monotonically increasing counter, striped across cache lines:
 * each thread increments its own lane, so a counter on a lock-free
 * hot path (every document-db read increments one) never bounces a
 * shared cache line between cores. value() sums the lanes — exact
 * once writers are quiescent, monotonically fresh while they are not.
 */
class Counter
{
  public:
    void
    inc(std::int64_t n = 1)
    {
        lanes[laneFor()].val.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        std::int64_t total = 0;
        for (const Lane &l : lanes)
            total += l.val.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset()
    {
        for (Lane &l : lanes)
            l.val.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Lane
    {
        std::atomic<std::int64_t> val{0};
    };

    static constexpr std::size_t laneCount = 16;

    /** This thread's lane: assigned round-robin on first use. */
    static std::size_t laneFor();

    std::array<Lane, laneCount> lanes{};
};

/** A settable level (queue depth, live workers). Relaxed-atomic. */
class Gauge
{
  public:
    void set(std::int64_t v) { val.store(v, std::memory_order_relaxed); }

    void
    add(std::int64_t d)
    {
        val.fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return val.load(std::memory_order_relaxed);
    }

    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> val{0};
};

/**
 * A fixed-bucket histogram: upper bounds are set at registration and
 * never change, so observe() is a branchless-ish scan over a small
 * array plus three relaxed atomic adds (bucket, count, sum). The
 * implicit final bucket catches everything above the last bound.
 */
class Histogram
{
  public:
    /** @param bounds ascending bucket upper bounds (inclusive). */
    explicit Histogram(std::vector<double> bounds);

    /** Record one observation. */
    void observe(double v);

    std::int64_t count() const
    {
        return cnt.load(std::memory_order_relaxed);
    }

    double sum() const;

    /**
     * Render as {"count": n, "sum": s, "mean": m,
     * "buckets": {"<=bound": n, ..., "+Inf": n}} (cumulative counts,
     * Prometheus-style).
     */
    Json snapshot() const;

    void reset();

    /** Default latency bounds in seconds: 1 ms .. 5 min, log-spaced. */
    static std::vector<double> latencySecondsBounds();

  private:
    std::vector<double> bounds;
    /** One per bound plus the overflow bucket. */
    std::vector<std::atomic<std::int64_t>> buckets;
    std::atomic<std::int64_t> cnt{0};
    /** Sum in fixed point (microunits) so fetch_add stays integral. */
    std::atomic<std::int64_t> sumMicro{0};
};

/**
 * Find-or-register the named counter. The reference is stable for the
 * process lifetime; cache it at the call site (member pointer or
 * function-local static) to keep registry lookups off hot paths.
 * @throws FatalError when @p name is registered as another kind.
 */
Counter &counter(std::string_view name);

/** Find-or-register the named gauge (same contract as counter()). */
Gauge &gauge(std::string_view name);

/**
 * Find-or-register the named histogram. @p bounds applies only on
 * first registration (defaults to latencySecondsBounds()).
 */
Histogram &histogram(std::string_view name,
                     std::vector<double> bounds = {});

/**
 * Snapshot every registered metric into one flat Json object keyed by
 * metric name: counters/gauges as integers, histograms as nested
 * objects (see Histogram::snapshot). Keys sort deterministically.
 */
Json snapshot();

/** Zero every registered metric (registrations survive). For tests. */
void resetAll();

} // namespace g5::metrics

#endif // G5_BASE_METRICS_HH
