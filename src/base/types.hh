/**
 * @file
 * Fundamental scalar type aliases shared by every g5 subsystem.
 *
 * These mirror the conventions of event-driven architecture simulators:
 * simulated time is counted in integer ticks (1 tick = 1 ps at the default
 * clock resolution) and guest physical addresses are 64-bit.
 */

#ifndef G5_BASE_TYPES_HH
#define G5_BASE_TYPES_HH

#include <cstdint>

namespace g5
{

/** Simulated time, in ticks. 1 tick == 1 picosecond. */
using Tick = std::uint64_t;

/** A cycle count for a clocked object. */
using Cycles = std::uint64_t;

/** A guest physical address. */
using Addr = std::uint64_t;

/** Maximum representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per second at the default 1 ps resolution. */
constexpr Tick simClockFrequency = 1'000'000'000'000ULL;

/** Convert a frequency in Hz to a clock period in ticks. */
constexpr Tick
freqToPeriod(std::uint64_t hz)
{
    return hz == 0 ? maxTick : simClockFrequency / hz;
}

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(std::uint64_t ns)
{
    return ns * 1000;
}

} // namespace g5

#endif // G5_BASE_TYPES_HH
