#include "base/tracing.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "base/logging.hh"
#include "base/wallclock.hh"

namespace g5::tracing
{

namespace
{

/** One buffered chrome-trace event. */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph;             ///< 'X' complete, 'i' instant, 'b'/'e' async
    double tsUs;         ///< microseconds since recording start
    double durUs = 0;    ///< 'X' only
    std::uint64_t id = 0; ///< async pairs only
    int tid;
    Json args;           ///< null when absent
};

/**
 * A thread's private event buffer. The mutex is only ever contended
 * when stop() drains a buffer while its owner thread is still
 * recording — the append path is an uncontended lock.
 */
struct ThreadBuf
{
    std::mutex mtx;
    std::vector<TraceEvent> events;
    int tid;
};

struct Recorder
{
    std::atomic<bool> on{false};
    std::mutex mtx; ///< registry of thread buffers + output path
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    std::string outPath;
    int nextTid = 1;
    /** Monotonic clock at start(); atomic so recording
     *  threads read it without taking the registry lock. */
    std::atomic<double> epochUs{0};
};

/** Leaked singleton: worker threads may record until process exit. */
Recorder &
recorder()
{
    static Recorder *r = new Recorder();
    return *r;
}

double
nowUs()
{
    return monotonicSeconds() * 1e6;
}

/**
 * The calling thread's buffer, registered with the recorder on first
 * use. The thread_local holds a shared_ptr so the registry's copy (and
 * any events still buffered) survives the thread's exit until stop()
 * drains them.
 */
ThreadBuf &
myBuf()
{
    thread_local std::shared_ptr<ThreadBuf> buf = [] {
        auto b = std::make_shared<ThreadBuf>();
        Recorder &r = recorder();
        std::lock_guard<std::mutex> lock(r.mtx);
        b->tid = r.nextTid++;
        r.bufs.push_back(b);
        return b;
    }();
    return *buf;
}

void
record(TraceEvent ev)
{
    ThreadBuf &b = myBuf();
    ev.tid = b.tid;
    std::lock_guard<std::mutex> lock(b.mtx);
    b.events.push_back(std::move(ev));
}

Json
eventJson(const TraceEvent &ev)
{
    Json out = Json::object();
    out["name"] = ev.name;
    out["cat"] = ev.cat;
    out["ph"] = std::string(1, ev.ph);
    out["ts"] = ev.tsUs;
    if (ev.ph == 'X')
        out["dur"] = ev.durUs;
    if (ev.ph == 'b' || ev.ph == 'e')
        out["id"] = std::int64_t(ev.id);
    if (ev.ph == 'i')
        out["s"] = "t"; // instant scope: thread
    out["pid"] = 1;
    out["tid"] = ev.tid;
    if (!ev.args.isNull())
        out["args"] = ev.args;
    return out;
}

void
flushAtExit()
{
    if (enabled())
        stop();
}

/** Arms recording at load time when G5_TRACE_OUT names an output file. */
struct EnvInit
{
    EnvInit()
    {
        const char *path = std::getenv("G5_TRACE_OUT");
        if (path != nullptr && *path != '\0')
            start(path);
    }
} envInit;

} // anonymous namespace

bool
enabled()
{
    return recorder().on.load(std::memory_order_relaxed);
}

void
start(const std::string &path)
{
    Recorder &r = recorder();
    {
        std::lock_guard<std::mutex> lock(r.mtx);
        r.outPath = path;
        r.epochUs.store(nowUs(), std::memory_order_relaxed);
        for (const auto &buf : r.bufs) {
            std::lock_guard<std::mutex> bl(buf->mtx);
            buf->events.clear();
        }
    }
    static std::once_flag at_exit_once;
    std::call_once(at_exit_once, [] { std::atexit(flushAtExit); });
    r.on.store(true, std::memory_order_seq_cst);
}

Json
stop()
{
    Recorder &r = recorder();
    // Publish "off" before draining: an emit that observed "on" while
    // we drain lands in a still-registered buffer and is picked up by
    // the drain loop below or by the next stop() — never lost, never
    // touching a freed buffer.
    r.on.store(false, std::memory_order_seq_cst);

    std::vector<TraceEvent> events;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(r.mtx);
        path = r.outPath;
        for (const auto &buf : r.bufs) {
            std::lock_guard<std::mutex> bl(buf->mtx);
            for (auto &ev : buf->events)
                events.push_back(std::move(ev));
            buf->events.clear();
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tsUs < b.tsUs;
                     });

    Json traceEvents = Json::array();
    for (const auto &ev : events)
        traceEvents.push(eventJson(ev));
    Json doc = Json::object();
    doc["traceEvents"] = std::move(traceEvents);
    doc["displayTimeUnit"] = "ms";

    if (!path.empty()) {
        std::filesystem::path p(path);
        if (p.has_parent_path()) {
            std::error_code ec;
            std::filesystem::create_directories(p.parent_path(), ec);
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("tracing: cannot write '" + path + "'");
        } else {
            std::string text = doc.dump(2);
            out.write(text.data(), std::streamsize(text.size()));
        }
    }
    return doc;
}

std::size_t
eventCount()
{
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lock(r.mtx);
    std::size_t n = 0;
    for (const auto &buf : r.bufs) {
        std::lock_guard<std::mutex> bl(buf->mtx);
        n += buf->events.size();
    }
    return n;
}

Span::Span(std::string_view name, std::string_view cat)
    : live(enabled())
{
    if (!live)
        return;
    this->name = std::string(name);
    this->cat = std::string(cat);
    startUs = nowUs();
}

void
Span::arg(std::string_view key, Json value)
{
    if (!live)
        return;
    if (!args.isObject())
        args = Json::object();
    args[key] = std::move(value);
}

Span::~Span()
{
    if (!live)
        return;
    double end = nowUs();
    Recorder &r = recorder();
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ph = 'X';
    ev.tsUs = startUs - r.epochUs.load(std::memory_order_relaxed);
    ev.durUs = end - startUs;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
instant(std::string_view name, std::string_view cat, Json args)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = std::string(name);
    ev.cat = std::string(cat);
    ev.ph = 'i';
    ev.tsUs = nowUs() -
              recorder().epochUs.load(std::memory_order_relaxed);
    ev.args = std::move(args);
    record(std::move(ev));
}

namespace
{

void
asyncEvent(char ph, std::string_view name, std::uint64_t id,
           std::string_view cat, Json args)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = std::string(name);
    ev.cat = std::string(cat);
    ev.ph = ph;
    ev.id = id;
    ev.tsUs = nowUs() -
              recorder().epochUs.load(std::memory_order_relaxed);
    ev.args = std::move(args);
    record(std::move(ev));
}

} // anonymous namespace

void
asyncBegin(std::string_view name, std::uint64_t id,
           std::string_view cat, Json args)
{
    asyncEvent('b', name, id, cat, std::move(args));
}

void
asyncEnd(std::string_view name, std::uint64_t id, std::string_view cat,
         Json args)
{
    asyncEvent('e', name, id, cat, std::move(args));
}

} // namespace g5::tracing
