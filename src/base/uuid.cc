#include "base/uuid.hh"

#include <cstdint>
#include <mutex>
#include <random>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"

namespace g5
{

namespace
{

std::string
formatUuid(const std::uint8_t bytes[16])
{
    std::string hex = toHex(bytes, 16);
    return hex.substr(0, 8) + "-" + hex.substr(8, 4) + "-" +
           hex.substr(12, 4) + "-" + hex.substr(16, 4) + "-" +
           hex.substr(20, 12);
}

void
stampVersion(std::uint8_t bytes[16])
{
    bytes[6] = std::uint8_t((bytes[6] & 0x0f) | 0x40); // version 4
    bytes[8] = std::uint8_t((bytes[8] & 0x3f) | 0x80); // RFC 4122 variant
}

} // anonymous namespace

Uuid::Uuid()
    : text("00000000-0000-0000-0000-000000000000")
{}

Uuid::Uuid(const std::string &t)
    : text(toLower(t))
{
    if (text.size() != 36 || text[8] != '-' || text[13] != '-' ||
        text[18] != '-' || text[23] != '-') {
        fatal("Uuid: malformed UUID '" + t + "'");
    }
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (i == 8 || i == 13 || i == 18 || i == 23)
            continue;
        char c = text[i];
        bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!ok)
            fatal("Uuid: malformed UUID '" + t + "'");
    }
}

Uuid
Uuid::generate()
{
    static std::mutex mtx;
    static Rng *rng = nullptr;
    std::lock_guard<std::mutex> lock(mtx);
    if (!rng) {
        std::random_device rd;
        std::uint64_t seed = (std::uint64_t(rd()) << 32) ^ rd();
        rng = new Rng(seed);
    }
    return generateFrom(*rng);
}

Uuid
Uuid::generateFrom(Rng &rng)
{
    std::uint8_t bytes[16];
    for (int w = 0; w < 2; ++w) {
        std::uint64_t v = rng.next();
        for (int i = 0; i < 8; ++i)
            bytes[w * 8 + i] = std::uint8_t(v >> (8 * i));
    }
    stampVersion(bytes);
    Uuid out;
    out.text = formatUuid(bytes);
    return out;
}

bool
Uuid::isNil() const
{
    return text == "00000000-0000-0000-0000-000000000000";
}

} // namespace g5
