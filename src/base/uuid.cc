#include "base/uuid.hh"

#include <cstdint>
#include <random>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"

namespace g5
{

namespace
{

std::string
formatUuid(const std::uint8_t bytes[16])
{
    // Single pass, one allocation (ids are minted per insert).
    static const char hexd[] = "0123456789abcdef";
    std::string out(36, '-');
    int pos = 0;
    for (int i = 0; i < 16; ++i) {
        if (pos == 8 || pos == 13 || pos == 18 || pos == 23)
            ++pos;
        out[std::size_t(pos++)] = hexd[bytes[i] >> 4];
        out[std::size_t(pos++)] = hexd[bytes[i] & 0xf];
    }
    return out;
}

void
stampVersion(std::uint8_t bytes[16])
{
    bytes[6] = std::uint8_t((bytes[6] & 0x0f) | 0x40); // version 4
    bytes[8] = std::uint8_t((bytes[8] & 0x3f) | 0x80); // RFC 4122 variant
}

} // anonymous namespace

Uuid::Uuid()
    : text("00000000-0000-0000-0000-000000000000")
{}

Uuid::Uuid(const std::string &t)
    : text(toLower(t))
{
    if (text.size() != 36 || text[8] != '-' || text[13] != '-' ||
        text[18] != '-' || text[23] != '-') {
        fatal("Uuid: malformed UUID '" + t + "'");
    }
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (i == 8 || i == 13 || i == 18 || i == 23)
            continue;
        char c = text[i];
        bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!ok)
            fatal("Uuid: malformed UUID '" + t + "'");
    }
}

Uuid
Uuid::generate()
{
    // One generator per thread, each seeded independently from the
    // OS: ids are minted on the document-insert hot path, where a
    // process-wide mutex would serialize otherwise-lock-free writers.
    thread_local Rng rng = [] {
        std::random_device rd;
        return Rng((std::uint64_t(rd()) << 32) ^ rd());
    }();
    return generateFrom(rng);
}

Uuid
Uuid::generateFrom(Rng &rng)
{
    std::uint8_t bytes[16];
    for (int w = 0; w < 2; ++w) {
        std::uint64_t v = rng.next();
        for (int i = 0; i < 8; ++i)
            bytes[w * 8 + i] = std::uint8_t(v >> (8 * i));
    }
    stampVersion(bytes);
    Uuid out;
    out.text = formatUuid(bytes);
    return out;
}

bool
Uuid::isNil() const
{
    return text == "00000000-0000-0000-0000-000000000000";
}

} // namespace g5
