/**
 * @file
 * A span/event recorder with per-thread buffers and chrome://tracing
 * export — the out-of-band profiling layer for experiment execution
 * (in the spirit of FirePerf's out-of-band profiling: observing the
 * system must not perturb it).
 *
 * When recording is off (the default), every instrumentation call is
 * one relaxed atomic load and an early return — no locks, no
 * allocation. When on (G5_TRACE_OUT=trace.json in the environment, or
 * start() programmatically), events append to a per-thread buffer
 * under that buffer's otherwise-uncontended mutex; threads never share
 * buffers, so concurrent sweep workers record without serializing
 * against each other.
 *
 * stop() merges every thread's buffer, sorts by timestamp, and writes
 * a chrome://tracing / Perfetto-loadable JSON document
 * ({"traceEvents": [...]}) to the registered path (when one was
 * given), and returns the document. Synchronous spans are complete
 * events ("ph":"X" with ts+dur), which the viewer nests by
 * containment per thread; cross-thread operations (a sweep spanning
 * many workers) use async begin/end pairs ("ph":"b"/"e").
 *
 * A recording started from G5_TRACE_OUT is flushed automatically at
 * process exit.
 */

#ifndef G5_BASE_TRACING_HH
#define G5_BASE_TRACING_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "base/json.hh"

namespace g5::tracing
{

/** @return true when a recording is active. One relaxed atomic load. */
bool enabled();

/**
 * Start recording. @p path receives the chrome-trace JSON at stop()
 * (or process exit); pass "" to only buffer in memory (tests inspect
 * the document stop() returns). Restarting clears prior events.
 */
void start(const std::string &path);

/**
 * Stop recording: merge per-thread buffers, sort by timestamp, write
 * the JSON file when a path was registered, and return the document
 * ({"traceEvents": [...]}). Safe to call when not recording (returns
 * an empty document).
 */
Json stop();

/** @return events recorded so far (recording continues). */
std::size_t eventCount();

/**
 * RAII synchronous span: construction samples the clock, destruction
 * records a complete event covering the scope. A span constructed
 * while recording is off records nothing (and costs one atomic load).
 */
class Span
{
  public:
    /** @param name event label. @param cat chrome-trace category. */
    explicit Span(std::string_view name, std::string_view cat = "app");

    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach an argument (e.g. outcome tag) shown in the viewer. */
    void arg(std::string_view key, Json value);

  private:
    bool live;
    std::string name;
    std::string cat;
    double startUs = 0;
    Json args;
};

/** Record an instantaneous event ("ph":"i"). */
void instant(std::string_view name, std::string_view cat = "app",
             Json args = Json());

/**
 * Begin/end an async span ("ph":"b"/"e"): the pair is matched by
 * (name, id) and may begin and end on different threads — used for
 * operations like a sweep that spans many workers.
 */
void asyncBegin(std::string_view name, std::uint64_t id,
                std::string_view cat = "app", Json args = Json());
void asyncEnd(std::string_view name, std::uint64_t id,
              std::string_view cat = "app", Json args = Json());

} // namespace g5::tracing

#endif // G5_BASE_TRACING_HH
