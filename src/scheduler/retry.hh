/**
 * @file
 * Retry policy for scheduler tasks.
 *
 * A RetryPolicy says which terminal states of a task attempt are worth
 * another try, how many attempts a task gets in total, and how long to
 * wait between attempts: exponential backoff with deterministic jitter.
 * The jitter is a pure function of (seed, task name, attempt), so a
 * re-run of the same sweep spreads its retries the same way — delays
 * never depend on wall-clock state, keeping fault-injection tests
 * reproducible.
 *
 * Per-class retryability: failures and timeouts are separately
 * switchable, and a classify callback can overrule both from the error
 * text (e.g. "retry only transient run outcomes").
 */

#ifndef G5_SCHEDULER_RETRY_HH
#define G5_SCHEDULER_RETRY_HH

#include <cstdint>
#include <functional>
#include <string>

namespace g5::scheduler
{

enum class TaskState; // see task_queue.hh

struct RetryPolicy
{
    /** Total attempts a task may consume; 1 = never retry. */
    unsigned maxAttempts = 1;

    /** Delay before the 2nd attempt, in seconds. */
    double backoffBase = 0.05;
    /** Multiplier per further attempt (exponential backoff). */
    double backoffFactor = 2.0;
    /** Upper bound for any single delay, in seconds. */
    double backoffMax = 5.0;
    /** Jitter as a +/- fraction of the delay (0 disables). */
    double jitterFrac = 0.25;
    /** Seed for the deterministic jitter draw. */
    std::uint64_t jitterSeed = 0;

    /** Retry attempts that ended in TaskState::Failure? */
    bool retryFailures = true;
    /** Retry attempts that ended in TaskState::Timeout? */
    bool retryTimeouts = false;

    /**
     * Optional per-class override: when set, it alone decides whether
     * an attempt's terminal (state, error) is retryable; the two flags
     * above are ignored. maxAttempts still bounds the total.
     */
    std::function<bool(TaskState, const std::string &error)> classify;

    /** @return true when attempt @p attempt (1-based) may be retried. */
    bool shouldRetry(TaskState state, const std::string &error,
                     unsigned attempt) const;

    /**
     * Deterministic delay before attempt @p attempt + 1: capped
     * exponential backoff, jittered from (jitterSeed, name, attempt).
     */
    double delaySeconds(const std::string &task_name,
                        unsigned attempt) const;

    /** The do-not-retry policy (the default everywhere). */
    static RetryPolicy none() { return RetryPolicy{}; }

    /**
     * A policy for transient host-level trouble: @p attempts total
     * attempts, fast exponential backoff, failures retried, timeouts
     * not (a timed-out attempt already burned its full deadline).
     */
    static RetryPolicy transientFaults(unsigned attempts = 3);
};

} // namespace g5::scheduler

#endif // G5_SCHEDULER_RETRY_HH
