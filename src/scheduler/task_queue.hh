/**
 * @file
 * A job scheduler in the role Celery / Python multiprocessing play for
 * gem5art: accept an unbounded stream of independent simulation jobs,
 * run them on a bounded worker pool, track per-task state, and enforce
 * per-task timeouts.
 *
 * Timeouts are cooperative: each job receives a CancelToken and long-
 * running code (the sim5 event loop) polls it. When the deadline passes,
 * the next poll throws TaskTimeout, unwinding the job — the moral
 * equivalent of gem5art killing a gem5 process after its timeout.
 *
 * Two backends mirror the paper's options:
 *  - Backend::Threaded — worker threads (Celery / multiprocessing);
 *  - Backend::Inline   — run on the submitting thread ("no scheduler").
 */

#ifndef G5_SCHEDULER_TASK_QUEUE_HH
#define G5_SCHEDULER_TASK_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/json.hh"

namespace g5::scheduler
{

/** Lifecycle states, matching Celery's vocabulary. */
enum class TaskState { Pending, Running, Success, Failure, Timeout };

/** @return a human-readable state name. */
const char *taskStateName(TaskState s);

/** Thrown (via CancelToken::checkpoint) when a task exceeds its timeout. */
class TaskTimeout : public std::runtime_error
{
  public:
    explicit TaskTimeout(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Cooperative cancellation/deadline token handed to every task body. */
class CancelToken
{
  public:
    CancelToken() : deadline(0), cancelled(false) {}

    /** Arm the deadline @p seconds from now (0 disables). */
    void arm(double seconds);

    /** Request cancellation regardless of the deadline. */
    void cancel() { cancelled.store(true); }

    /** @return true when the deadline passed or cancel() was called. */
    bool expired() const;

    /** Throw TaskTimeout when expired; call this from inner loops. */
    void checkpoint() const;

  private:
    double deadline; // monotonic seconds; 0 = none
    std::atomic<bool> cancelled;
};

/** The body of a task: receives its token, returns a JSON result. */
using TaskFn = std::function<Json(CancelToken &)>;

/** One entry of a batched submission (TaskQueue::map). */
struct TaskSpec
{
    std::string name;
    TaskFn fn;
    double timeoutSeconds = 0.0;
};

/** Handle for a submitted task; shared between caller and worker. */
class TaskFuture
{
  public:
    TaskFuture(std::string name, TaskFn fn, double timeout_s);

    /** @return the task's name (for reporting). */
    const std::string &name() const { return taskName; }

    /** Block until the task reaches a terminal state. */
    void wait();

    /** @return the current state. */
    TaskState state() const;

    /** @return the result payload (valid after Success). */
    Json result();

    /** @return the error message (valid after Failure/Timeout). */
    std::string error();

    /** @return wall-clock seconds the task ran for (terminal states). */
    double wallSeconds();

  private:
    friend class TaskQueue;
    void execute();

    std::string taskName;
    TaskFn fn;
    double timeoutSeconds;
    CancelToken token;
    /** Owner-queue hook fired on every state transition (running state
     *  counts); set by TaskQueue before the task can execute. */
    std::function<void(TaskState, TaskState)> transitionHook;

    mutable std::mutex mtx;
    std::condition_variable cv;
    TaskState st = TaskState::Pending;
    Json payload;
    std::string errMsg;
    double wallSecs = 0.0;
};

using TaskFuturePtr = std::shared_ptr<TaskFuture>;

class TaskQueue
{
  public:
    enum class Backend { Threaded, Inline };

    /**
     * @param workers number of worker threads (Threaded backend);
     *                0 saturates the host (hardware_concurrency).
     * @param backend execution backend.
     */
    explicit TaskQueue(unsigned workers = 0,
                       Backend backend = Backend::Threaded);

    /** Worker count used when callers pass 0: every hardware thread. */
    static unsigned defaultWorkerCount();

    /** @return the number of worker threads (0 for Inline). */
    unsigned workerCount() const { return unsigned(threads.size()); }

    /** Drains the queue and joins workers. */
    ~TaskQueue();

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /**
     * Submit a task (gem5art's apply_async).
     * @param name      display name.
     * @param fn        task body.
     * @param timeout_s per-task timeout in seconds; 0 = unlimited.
     */
    TaskFuturePtr applyAsync(const std::string &name, TaskFn fn,
                             double timeout_s = 0.0);

    /**
     * Batched submission: enqueue every spec under one lock and wake
     * the whole pool once (notify_all), instead of a lock + notify_one
     * per task. Use this when launching a sweep.
     */
    std::vector<TaskFuturePtr> map(std::vector<TaskSpec> specs);

    /** Block until every submitted task is terminal. */
    void waitAll();

    /**
     * @return counts of tasks by state, as a JSON object. O(1): the
     * queue keeps running state counters instead of polling futures.
     */
    Json summary() const;

  private:
    void workerLoop();
    TaskFuturePtr makeFuture(std::string name, TaskFn fn,
                             double timeout_s);

    Backend backend;
    std::vector<std::thread> threads;
    mutable std::mutex mtx;
    std::condition_variable cv;
    std::deque<TaskFuturePtr> pending;
    bool shuttingDown = false;
    unsigned running = 0;
    /** Live per-state task counts, indexed by TaskState. */
    std::atomic<std::int64_t> stateCounts[5] = {};
    std::atomic<std::int64_t> totalTasks{0};
};

} // namespace g5::scheduler

#endif // G5_SCHEDULER_TASK_QUEUE_HH
