/**
 * @file
 * A job scheduler in the role Celery / Python multiprocessing play for
 * gem5art: accept an unbounded stream of independent simulation jobs,
 * run them on a bounded worker pool, track per-task state, and enforce
 * per-task timeouts.
 *
 * Timeouts are cooperative first: each job receives a CancelToken and
 * long-running code (the sim5 event loop) polls it. When the deadline
 * passes, the next poll throws TaskTimeout, unwinding the job — the
 * moral equivalent of gem5art killing a gem5 process after its timeout.
 * A watchdog thread backstops jobs that never poll: once a task
 * overruns its deadline by more than a grace period, it is force-marked
 * Timeout and its worker quarantined (a replacement worker joins the
 * pool; the stuck thread is abandoned and reaped when — if — its body
 * returns). Waiters never hang on a task that ignores its token.
 *
 * Failed attempts can be retried under a RetryPolicy (see retry.hh):
 * exponential backoff with deterministic jitter, per-class
 * retryability, a per-attempt provenance log on every future.
 * Explicitly cancelled attempts (cancelAll(), watchdog escalation) are
 * never retried.
 *
 * Shutdown is graceful and bounded: the destructor drains remaining
 * work, but gives up after a configurable drain timeout — pending tasks
 * are then cancelled and stuck workers detached, so a poisoned sweep
 * cannot hang the process.
 *
 * Two backends mirror the paper's options:
 *  - Backend::Threaded — worker threads (Celery / multiprocessing);
 *  - Backend::Inline   — run on the submitting thread ("no scheduler").
 */

#ifndef G5_SCHEDULER_TASK_QUEUE_HH
#define G5_SCHEDULER_TASK_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/json.hh"
#include "scheduler/retry.hh"

namespace g5::scheduler
{

/** Lifecycle states, matching Celery's vocabulary (RETRY included). */
enum class TaskState { Pending, Running, Success, Failure, Timeout,
                       Retrying };

/** Number of TaskState values (for state-count arrays). */
constexpr int numTaskStates = 6;

/** @return a human-readable state name. */
const char *taskStateName(TaskState s);

/** Thrown (via CancelToken::checkpoint) when a task exceeds its timeout. */
class TaskTimeout : public std::runtime_error
{
  public:
    explicit TaskTimeout(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Cooperative cancellation/deadline token handed to every task body. */
class CancelToken
{
  public:
    CancelToken() : deadline(0), cancelled(false), attemptNo(0) {}

    /** Arm the deadline @p seconds from now (0 disables). */
    void arm(double seconds);

    /** Request cancellation regardless of the deadline. */
    void cancel() { cancelled.store(true); }

    /** @return true when cancel() was called (vs. deadline expiry). */
    bool wasCancelled() const { return cancelled.load(); }

    /** @return true when the deadline passed or cancel() was called. */
    bool expired() const;

    /** Throw TaskTimeout when expired; call this from inner loops. */
    void checkpoint() const;

    /**
     * Install a hook called on every checkpoint() made from the calling
     * thread (nullptr uninstalls). Thread-local: worker processes use it
     * to piggyback lease heartbeats on the polls the sim loop already
     * makes, so a body that stops polling also stops heartbeating.
     */
    static void setThreadCheckpointHook(std::function<void()> hook);

    /** @return the absolute monotonic deadline (0 = none). */
    double deadlineAt() const { return deadline.load(); }

    /** @return the 1-based attempt this token currently guards. */
    unsigned attempt() const { return attemptNo.load(); }

  private:
    friend class TaskFuture;

    /** Fresh deadline + cleared cancellation for attempt @p attempt. */
    void beginAttempt(double timeout_s, unsigned attempt);

    /**
     * Written by the owning worker at attempt start, read concurrently
     * by the watchdog and by expired() from other threads — atomic to
     * keep the cross-thread read well-defined.
     */
    std::atomic<double> deadline; // monotonic seconds; 0 = none
    std::atomic<bool> cancelled;
    std::atomic<unsigned> attemptNo;
};

/** The body of a task: receives its token, returns a JSON result. */
using TaskFn = std::function<Json(CancelToken &)>;

class TaskFuture;
using TaskFuturePtr = std::shared_ptr<TaskFuture>;

/** One entry of a batched submission (TaskQueue::map). */
struct TaskSpec
{
    std::string name;
    TaskFn fn;
    double timeoutSeconds = 0.0;
    RetryPolicy retry;
    /**
     * Optional ordering dependency: this task stays deferred until
     * @c after reaches a terminal state (Success, Failure or Timeout).
     * Ordering only — the dependent runs whatever the dependency's
     * outcome; bodies that care inspect the dependency's future.
     */
    TaskFuturePtr after;
};

/** Handle for a submitted task; shared between caller and worker. */
class TaskFuture
{
  public:
    TaskFuture(std::string name, TaskFn fn, double timeout_s,
               RetryPolicy policy = RetryPolicy::none());

    /** @return the task's name (for reporting). */
    const std::string &name() const { return taskName; }

    /** Block until the task reaches a terminal state. */
    void wait();

    /** @return the current state. */
    TaskState state() const;

    /** @return the result payload (valid after Success). */
    Json result();

    /** @return the error message (valid after Failure/Timeout). */
    std::string error();

    /** @return wall-clock seconds spent executing, over all attempts. */
    double wallSeconds();

    /** @return the number of attempts started so far. */
    unsigned attempt() const;

    /**
     * Per-attempt provenance: a JSON array of
     * {attempt, outcome, wallSeconds, error?} records, one per
     * completed attempt (the run layer archives this in run documents).
     */
    Json attempts() const;

    /** @return true when the watchdog force-timed-out this task. */
    bool wasAbandoned() const;

  private:
    friend class TaskQueue;

    struct AttemptOutcome
    {
        bool retry = false;
        double delaySeconds = 0;
    };

    /**
     * Run one attempt on the calling thread. @return whether the queue
     * should re-enqueue the task, and after what backoff delay.
     */
    AttemptOutcome runAttempt();

    /**
     * Watchdog escalation: if still Running, transition to Timeout,
     * wake waiters, and mark the future abandoned so the (stuck)
     * executing worker discards its eventual result.
     * @return true when this call performed the transition.
     */
    bool forceTimeout(const std::string &reason);

    /** Cancel a queued (Pending/Retrying) task: transition to Timeout. */
    bool cancelQueued(const std::string &reason);

    std::string taskName;
    TaskFn fn;
    double timeoutSeconds;
    RetryPolicy policy;
    CancelToken token;
    /** Owner-queue hook fired on every state transition (running state
     *  counts); set by TaskQueue before the task can execute. */
    std::function<void(TaskState, TaskState)> transitionHook;

    mutable std::mutex mtx;
    std::condition_variable cv;
    TaskState st = TaskState::Pending;
    Json payload;
    std::string errMsg;
    double wallSecs = 0.0;
    unsigned attemptNo = 0;
    Json attemptsLog = Json::array();
    bool abandoned = false;
};

using TaskFuturePtr = std::shared_ptr<TaskFuture>;

class WorkerPool;

class TaskQueue
{
  public:
    enum class Backend { Threaded, Inline };

    /**
     * @param workers number of worker threads (Threaded backend);
     *                0 saturates the host (hardware_concurrency).
     * @param backend execution backend.
     */
    explicit TaskQueue(unsigned workers = 0,
                       Backend backend = Backend::Threaded);

    /** Worker count used when callers pass 0: every hardware thread. */
    static unsigned defaultWorkerCount();

    /** @return the number of live worker threads (0 for Inline). */
    unsigned workerCount() const;

    /**
     * Drains the queue and joins workers — but waits at most the drain
     * timeout (setDrainTimeout): after it, remaining queued tasks are
     * cancelled and workers stuck in token-ignoring bodies are detached
     * rather than hanging the destructor.
     */
    ~TaskQueue();

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /**
     * Submit a task (gem5art's apply_async).
     * @param name      display name.
     * @param fn        task body.
     * @param timeout_s per-attempt timeout in seconds; 0 = unlimited.
     * @param retry     retry policy (default: no retries).
     */
    TaskFuturePtr applyAsync(const std::string &name, TaskFn fn,
                             double timeout_s = 0.0,
                             RetryPolicy retry = RetryPolicy::none());

    /**
     * Submit a task that must not start before @p after is terminal
     * (Success, Failure or Timeout). Pure ordering — the dependent
     * always runs; a body that cares about the dependency's outcome
     * inspects its future. The error-study pairing (main run, then its
     * checker replay) rides on this. A null @p after degenerates to
     * applyAsync.
     */
    TaskFuturePtr applyAsyncAfter(const std::string &name, TaskFn fn,
                                  TaskFuturePtr after,
                                  double timeout_s = 0.0,
                                  RetryPolicy retry =
                                      RetryPolicy::none());

    /**
     * Batched submission: enqueue every spec under one lock and wake
     * the whole pool once (notify_all), instead of a lock + notify_one
     * per task. Use this when launching a sweep.
     */
    std::vector<TaskFuturePtr> map(std::vector<TaskSpec> specs);

    /** Block until every submitted task is terminal. */
    void waitAll();

    /**
     * Graceful drain: cancel every queued (Pending/Retrying) task
     * immediately and request cancellation of every running one. Tasks
     * polling their token unwind with TaskTimeout; tasks ignoring it
     * are eventually escalated by the watchdog. Explicitly cancelled
     * attempts are never retried.
     */
    void cancelAll();

    /**
     * Tune the watchdog: poll period and the grace period between the
     * cooperative cancel and the forced Timeout + worker quarantine.
     */
    void setWatchdog(double poll_s, double grace_s);

    /** Bound the destructor's drain wait (seconds; default 30). */
    void setDrainTimeout(double seconds);

    /**
     * @return counts of tasks by state, as a JSON object. O(1): the
     * queue keeps running state counters instead of polling futures.
     * Also carries "retries" (attempt re-enqueues), "quarantined"
     * (workers replaced by the watchdog), and a live "metrics"
     * section — queue depth, busy/live workers, utilization, and the
     * task-latency distribution — usable as a sweep progress line.
     */
    Json summary() const;

    /**
     * Attach a multi-process WorkerPool (see worker_pool.hh) as this
     * queue's dispatch companion: task bodies fetch it via workerPool()
     * to farm the heavy part of a task out to a worker process, and
     * summary() grows a "workerPool" section with the cluster's
     * spawn/loss/lease counters. Set once, before tasks run.
     */
    void attachWorkerPool(std::shared_ptr<WorkerPool> wp);

    /** @return the attached process pool, or nullptr. */
    std::shared_ptr<WorkerPool> workerPool() const { return procPool; }

  private:
    /**
     * All queue state shared with worker/watchdog threads, owned by
     * shared_ptr so a worker detached at shutdown (stuck in a task that
     * ignores its token) never touches freed memory.
     */
    struct Pool;

    static void workerLoop(std::shared_ptr<Pool> pool, std::size_t idx);
    static void watchdogLoop(std::shared_ptr<Pool> pool);
    static void spawnWorker(std::shared_ptr<Pool> pool);

    TaskFuturePtr makeFuture(std::string name, TaskFn fn,
                             double timeout_s, RetryPolicy retry);
    void runInline(const TaskFuturePtr &fut);

    Backend backend;
    std::shared_ptr<Pool> pool;
    std::shared_ptr<WorkerPool> procPool;
    std::thread watchdog;
};

} // namespace g5::scheduler

#endif // G5_SCHEDULER_TASK_QUEUE_HH
