#include "scheduler/retry.hh"

#include <algorithm>
#include <cmath>

#include "base/random.hh"
#include "scheduler/task_queue.hh"

namespace g5::scheduler
{

bool
RetryPolicy::shouldRetry(TaskState state, const std::string &error,
                         unsigned attempt) const
{
    if (attempt >= maxAttempts)
        return false;
    if (state != TaskState::Failure && state != TaskState::Timeout)
        return false; // Success (or non-terminal) never retries
    if (classify)
        return classify(state, error);
    return state == TaskState::Failure ? retryFailures : retryTimeouts;
}

double
RetryPolicy::delaySeconds(const std::string &task_name,
                          unsigned attempt) const
{
    if (backoffBase <= 0)
        return 0;
    double exp = std::pow(backoffFactor, double(attempt >= 1 ? attempt - 1
                                                             : 0));
    double delay = std::min(backoffMax, backoffBase * exp);
    if (jitterFrac > 0) {
        Rng rng(hashCombine(jitterSeed, hashString(task_name)) + attempt);
        delay *= 1.0 + jitterFrac * (2.0 * rng.real() - 1.0);
    }
    return std::max(0.0, delay);
}

RetryPolicy
RetryPolicy::transientFaults(unsigned attempts)
{
    RetryPolicy p;
    p.maxAttempts = attempts;
    p.backoffBase = 0.02;
    p.backoffFactor = 2.0;
    p.backoffMax = 1.0;
    p.retryFailures = true;
    p.retryTimeouts = false;
    return p;
}

} // namespace g5::scheduler
