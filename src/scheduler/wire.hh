/**
 * @file
 * Length-prefixed framed JSON messages over a file descriptor pair —
 * the wire protocol between the scheduler's parent process and its
 * forked worker processes (see worker_pool.hh).
 *
 * A frame is a 4-byte little-endian payload length followed by the
 * payload: one JSON document serialized straight into the outgoing
 * buffer through the JsonSink interface (no intermediate dump string).
 * Both directions count their bytes into the process-wide
 * `scheduler.ipc.bytes` counter, so a sweep's IPC volume is visible in
 * TaskQueue::summary() and the archived sweepMetrics snapshot.
 *
 * Reads are poll()-driven with a caller-supplied budget, so a parent
 * waiting on a worker can wake exactly at its lease deadline; writes
 * use MSG_NOSIGNAL, so a worker SIGKILLed mid-conversation surfaces as
 * a send/recv error instead of a SIGPIPE. The connection never throws
 * for peer death — a dead peer is an expected, recoverable event in
 * the lease protocol.
 */

#ifndef G5_SCHEDULER_WIRE_HH
#define G5_SCHEDULER_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/json.hh"

namespace g5::scheduler
{

/** Outcome of one WireConn::recv() call. */
enum class WireRecv
{
    Message, ///< a complete frame was parsed into the out parameter
    Timeout, ///< the budget elapsed without a complete frame
    Closed,  ///< the peer closed the connection (EOF) or the fd errored
};

/**
 * One end of a framed-message connection over a socketpair (or pipe
 * pair). Not thread-safe: the lease protocol guarantees a single
 * owner at any time (the dispatching thread while a lease is active,
 * the monitor thread once the lease is fenced).
 */
class WireConn
{
  public:
    WireConn() = default;

    /** Adopt @p fd for both directions (a socketpair end). */
    explicit WireConn(int fd) : rfd(fd), wfd(fd) {}

    /** Adopt separate read/write descriptors (a pipe pair). */
    WireConn(int read_fd, int write_fd) : rfd(read_fd), wfd(write_fd) {}

    /** @return true when the connection holds live descriptors. */
    bool valid() const { return rfd >= 0 && wfd >= 0; }

    /** Close both descriptors (idempotent). */
    void close();

    /**
     * Frame and send one JSON document.
     * @return false when the peer is gone (EPIPE/EOF class errors).
     */
    bool send(const Json &msg);

    /**
     * Receive the next frame, waiting at most @p timeout_s seconds
     * (0 polls without blocking; negative waits indefinitely). Partial
     * frames are buffered across calls, so a slow writer never corrupts
     * the stream.
     */
    WireRecv recv(Json &out, double timeout_s);

    int readFd() const { return rfd; }
    int writeFd() const { return wfd; }

  private:
    /** Try to cut one complete frame from rbuf. */
    bool parseFrame(Json &out);

    int rfd = -1;
    int wfd = -1;
    std::string rbuf; ///< bytes received but not yet framed
};

/**
 * Resolve the wire-layer metric handles now. Call before fork()ing
 * workers: afterwards the children only ever touch the pre-initialized
 * relaxed atomics, never the (lock-guarded) metrics registry.
 */
void prewarmWireMetrics();

} // namespace g5::scheduler

#endif // G5_SCHEDULER_WIRE_HH
