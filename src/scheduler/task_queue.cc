#include "scheduler/task_queue.hh"

#include <algorithm>
#include <chrono>
#include <optional>

#include "base/logging.hh"
#include "base/metrics.hh"
#include "base/tracing.hh"
#include "base/wallclock.hh"
#include "scheduler/worker_pool.hh"

namespace g5::scheduler
{

namespace
{

std::chrono::duration<double>
secs(double s)
{
    return std::chrono::duration<double>(s);
}

bool
terminalState(TaskState s)
{
    return s == TaskState::Success || s == TaskState::Failure ||
           s == TaskState::Timeout;
}

} // anonymous namespace

const char *
taskStateName(TaskState s)
{
    switch (s) {
      case TaskState::Pending:
        return "PENDING";
      case TaskState::Running:
        return "RUNNING";
      case TaskState::Success:
        return "SUCCESS";
      case TaskState::Failure:
        return "FAILURE";
      case TaskState::Timeout:
        return "TIMEOUT";
      case TaskState::Retrying:
        return "RETRY";
    }
    return "UNKNOWN";
}

void
CancelToken::arm(double seconds)
{
    deadline.store(seconds > 0 ? monotonicSeconds() + seconds : 0);
}

void
CancelToken::beginAttempt(double timeout_s, unsigned attempt)
{
    cancelled.store(false);
    attemptNo.store(attempt);
    arm(timeout_s);
}

bool
CancelToken::expired() const
{
    if (cancelled.load())
        return true;
    double d = deadline.load();
    return d > 0 && monotonicSeconds() > d;
}

namespace
{

thread_local std::function<void()> checkpointHook;

} // anonymous namespace

void
CancelToken::setThreadCheckpointHook(std::function<void()> hook)
{
    checkpointHook = std::move(hook);
}

void
CancelToken::checkpoint() const
{
    if (checkpointHook)
        checkpointHook();
    if (expired())
        throw TaskTimeout("task exceeded its timeout");
}

TaskFuture::TaskFuture(std::string name, TaskFn fn, double timeout_s,
                       RetryPolicy policy)
    : taskName(std::move(name)), fn(std::move(fn)),
      timeoutSeconds(timeout_s), policy(std::move(policy))
{}

void
TaskFuture::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [this] {
        return st == TaskState::Success || st == TaskState::Failure ||
               st == TaskState::Timeout;
    });
}

TaskState
TaskFuture::state() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return st;
}

Json
TaskFuture::result()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return payload;
}

std::string
TaskFuture::error()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return errMsg;
}

double
TaskFuture::wallSeconds()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return wallSecs;
}

unsigned
TaskFuture::attempt() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return attemptNo;
}

Json
TaskFuture::attempts() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return attemptsLog;
}

bool
TaskFuture::wasAbandoned() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return abandoned;
}

TaskFuture::AttemptOutcome
TaskFuture::runAttempt()
{
    TaskState prev;
    unsigned attempt_no;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (st != TaskState::Pending && st != TaskState::Retrying)
            return {}; // cancelled while queued
        prev = st;
        st = TaskState::Running;
        attempt_no = ++attemptNo;
    }
    if (transitionHook)
        transitionHook(prev, TaskState::Running);
    token.beginAttempt(timeoutSeconds, attempt_no);
    // One span per attempt on the executing worker's timeline; the
    // optional keeps the disabled path allocation-free.
    std::optional<tracing::Span> span;
    if (tracing::enabled()) {
        span.emplace("task:" + taskName, "scheduler");
        span->arg("attempt", std::int64_t(attempt_no));
    }
    double start = monotonicSeconds();

    TaskState attempt_state;
    Json attempt_payload;
    std::string attempt_err;
    try {
        attempt_payload = fn(token);
        attempt_state = TaskState::Success;
    } catch (const TaskTimeout &e) {
        attempt_state = TaskState::Timeout;
        attempt_err = e.what();
    } catch (const std::exception &e) {
        attempt_state = TaskState::Failure;
        attempt_err = e.what();
    } catch (...) {
        attempt_state = TaskState::Failure;
        attempt_err = "unknown exception";
    }
    double wall = monotonicSeconds() - start;
    if (span) {
        span->arg("outcome", taskStateName(attempt_state));
        span.reset(); // record the attempt's extent now
    }
    static metrics::Histogram &task_seconds =
        metrics::histogram("scheduler.task.seconds");
    task_seconds.observe(wall);

    AttemptOutcome out;
    TaskState final_state = attempt_state;
    bool discard;
    {
        std::lock_guard<std::mutex> lock(mtx);
        Json rec = Json::object();
        rec["attempt"] = attempt_no;
        rec["outcome"] = taskStateName(attempt_state);
        rec["wallSeconds"] = wall;
        if (!attempt_err.empty())
            rec["error"] = attempt_err;
        attemptsLog.push(std::move(rec));
        wallSecs += wall;

        // The watchdog terminalized us mid-attempt: the transition (and
        // its hook) already happened; the late result is discarded.
        discard = abandoned;
        if (!discard) {
            // An explicit cancel (cancelAll, watchdog escalation) is
            // final; only organic failures consult the retry policy.
            bool may_retry = !token.wasCancelled() &&
                             policy.shouldRetry(attempt_state,
                                                attempt_err, attempt_no);
            if (may_retry) {
                st = TaskState::Retrying;
                final_state = TaskState::Retrying;
                errMsg = attempt_err;
                out.retry = true;
                out.delaySeconds =
                    policy.delaySeconds(taskName, attempt_no);
            } else {
                st = attempt_state;
                payload = std::move(attempt_payload);
                errMsg = attempt_err;
            }
        }
    }
    if (!discard) {
        if (transitionHook)
            transitionHook(TaskState::Running, final_state);
        cv.notify_all();
    }
    return out;
}

bool
TaskFuture::forceTimeout(const std::string &reason)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (st != TaskState::Running)
            return false;
        st = TaskState::Timeout;
        errMsg = reason;
        abandoned = true;
    }
    if (transitionHook)
        transitionHook(TaskState::Running, TaskState::Timeout);
    cv.notify_all();
    return true;
}

bool
TaskFuture::cancelQueued(const std::string &reason)
{
    TaskState prev;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (st != TaskState::Pending && st != TaskState::Retrying)
            return false;
        prev = st;
        st = TaskState::Timeout;
        errMsg = reason;
    }
    token.cancel();
    if (transitionHook)
        transitionHook(prev, TaskState::Timeout);
    cv.notify_all();
    return true;
}

/**
 * Shared pool state. Worker and watchdog threads hold a shared_ptr, so
 * a thread detached at shutdown keeps the state alive for as long as it
 * needs it.
 */
struct TaskQueue::Pool
{
    std::mutex mtx;
    std::condition_variable cv;

    std::deque<TaskFuturePtr> pending;
    struct Delayed
    {
        double readyAt;
        TaskFuturePtr task;
    };
    std::vector<Delayed> delayed; ///< retry backoff queue
    struct Deferred
    {
        TaskFuturePtr after; ///< dependency gating the task
        TaskFuturePtr task;
    };
    /** Dependency-ordered tasks (applyAsyncAfter): parked here until
     *  the watchdog sees the dependency terminal and promotes them. */
    std::vector<Deferred> deferred;
    std::vector<TaskFuturePtr> running;

    std::vector<std::thread> threads;
    /** Parallel to threads: set just before the worker returns, so the
     *  destructor knows which threads join instantly vs. get detached. */
    std::vector<std::unique_ptr<std::atomic<bool>>> exited;
    unsigned liveWorkers = 0;

    bool shuttingDown = false;
    bool abortDrain = false;
    bool watchdogStop = false;

    double watchdogPollS = 0.02;
    double watchdogGraceS = 0.25;
    double drainTimeoutS = 30.0;

    std::atomic<std::int64_t> stateCounts[numTaskStates] = {};
    std::atomic<std::int64_t> totalTasks{0};
    std::atomic<std::int64_t> retriesScheduled{0};
    std::atomic<std::int64_t> quarantinedWorkers{0};

    /** Process-wide observability mirrors of the per-queue counters
     *  (references resolved once; increments are relaxed atomics). */
    metrics::Counter &submittedC =
        metrics::counter("scheduler.tasks.submitted");
    metrics::Counter &retriesC =
        metrics::counter("scheduler.tasks.retries");
    metrics::Counter &timeoutsC =
        metrics::counter("scheduler.tasks.timeouts");
    metrics::Counter &quarantinedC =
        metrics::counter("scheduler.workers.quarantined");

    void
    eraseRunning(const TaskFuturePtr &task)
    {
        auto it = std::find(running.begin(), running.end(), task);
        if (it != running.end())
            running.erase(it);
    }
};

unsigned
TaskQueue::defaultWorkerCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

TaskQueue::TaskQueue(unsigned workers, Backend backend)
    : backend(backend), pool(std::make_shared<Pool>())
{
    if (backend == Backend::Threaded) {
        if (workers == 0)
            workers = defaultWorkerCount();
        {
            std::lock_guard<std::mutex> lock(pool->mtx);
            for (unsigned i = 0; i < workers; ++i)
                spawnWorker(pool);
        }
        watchdog = std::thread(&TaskQueue::watchdogLoop, pool);
    }
}

unsigned
TaskQueue::workerCount() const
{
    if (backend == Backend::Inline)
        return 0;
    std::lock_guard<std::mutex> lock(pool->mtx);
    return pool->liveWorkers;
}

void
TaskQueue::spawnWorker(std::shared_ptr<Pool> pool)
{
    // pool->mtx held by the caller.
    std::size_t idx = pool->threads.size();
    pool->exited.push_back(std::make_unique<std::atomic<bool>>(false));
    ++pool->liveWorkers;
    pool->threads.emplace_back(&TaskQueue::workerLoop, pool, idx);
}

TaskQueue::~TaskQueue()
{
    if (backend == Backend::Inline)
        return;

    double drain_timeout;
    {
        std::lock_guard<std::mutex> lock(pool->mtx);
        pool->shuttingDown = true;
        drain_timeout = pool->drainTimeoutS;
    }
    pool->cv.notify_all();

    {
        // Drain: workers run everything still queued (the watchdog
        // promotes delayed retries immediately during shutdown), but
        // never wait longer than the drain timeout on a poisoned task.
        std::unique_lock<std::mutex> lock(pool->mtx);
        bool drained = pool->cv.wait_for(lock, secs(drain_timeout),
            [this] { return pool->liveWorkers == 0; });
        if (!drained) {
            warn("TaskQueue: drain timed out after " +
                 std::to_string(drain_timeout) +
                 "s; cancelling queued tasks and detaching stuck "
                 "workers");
            pool->abortDrain = true;
            std::vector<TaskFuturePtr> queued(pool->pending.begin(),
                                              pool->pending.end());
            for (const auto &d : pool->delayed)
                queued.push_back(d.task);
            for (const auto &d : pool->deferred)
                queued.push_back(d.task);
            pool->pending.clear();
            pool->delayed.clear();
            pool->deferred.clear();
            for (const auto &t : pool->running)
                t->token.cancel();
            lock.unlock();
            for (const auto &t : queued)
                t->cancelQueued("cancelled: scheduler shut down before "
                                "execution");
            pool->cv.notify_all();
            lock.lock();
            // Give polled cancellations a moment to unwind cleanly.
            pool->cv.wait_for(lock, secs(1.0),
                [this] { return pool->liveWorkers == 0; });
        }
    }

    {
        std::lock_guard<std::mutex> lock(pool->mtx);
        pool->watchdogStop = true;
    }
    pool->cv.notify_all();
    if (watchdog.joinable())
        watchdog.join();

    // After the watchdog is gone nothing mutates the thread table.
    for (std::size_t i = 0; i < pool->threads.size(); ++i) {
        if (pool->exited[i]->load())
            pool->threads[i].join();
        else
            pool->threads[i].detach(); // stuck in a token-ignoring body
    }
}

TaskFuturePtr
TaskQueue::makeFuture(std::string name, TaskFn fn, double timeout_s,
                      RetryPolicy retry)
{
    auto fut = std::make_shared<TaskFuture>(std::move(name),
                                            std::move(fn), timeout_s,
                                            std::move(retry));
    auto p = pool;
    fut->transitionHook = [p](TaskState from, TaskState to) {
        --p->stateCounts[int(from)];
        ++p->stateCounts[int(to)];
        if (to == TaskState::Timeout)
            p->timeoutsC.inc();
    };
    ++pool->stateCounts[int(TaskState::Pending)];
    ++pool->totalTasks;
    pool->submittedC.inc();
    return fut;
}

void
TaskQueue::runInline(const TaskFuturePtr &fut)
{
    for (;;) {
        auto out = fut->runAttempt();
        if (!out.retry)
            return;
        ++pool->retriesScheduled;
        pool->retriesC.inc();
        if (out.delaySeconds > 0)
            std::this_thread::sleep_for(secs(out.delaySeconds));
    }
}

TaskFuturePtr
TaskQueue::applyAsync(const std::string &name, TaskFn fn,
                      double timeout_s, RetryPolicy retry)
{
    auto fut = makeFuture(name, std::move(fn), timeout_s,
                          std::move(retry));
    if (backend == Backend::Inline) {
        runInline(fut);
        return fut;
    }
    {
        std::lock_guard<std::mutex> lock(pool->mtx);
        if (pool->shuttingDown)
            fatal("TaskQueue: applyAsync after shutdown");
        pool->pending.push_back(fut);
    }
    // notify_all, not notify_one: workers share pool->cv with the
    // watchdog and waitAll()/destructor waiters, so a single wakeup can
    // be consumed by a thread that won't run the task.
    pool->cv.notify_all();
    return fut;
}

TaskFuturePtr
TaskQueue::applyAsyncAfter(const std::string &name, TaskFn fn,
                           TaskFuturePtr after, double timeout_s,
                           RetryPolicy retry)
{
    if (!after)
        return applyAsync(name, std::move(fn), timeout_s,
                          std::move(retry));
    auto fut = makeFuture(name, std::move(fn), timeout_s,
                          std::move(retry));
    if (backend == Backend::Inline) {
        // Inline submissions run on the submitting thread; the
        // dependency — also inline — is already terminal, but wait()
        // keeps the contract when callers mix backends across queues.
        after->wait();
        runInline(fut);
        return fut;
    }
    bool ready;
    {
        std::lock_guard<std::mutex> lock(pool->mtx);
        if (pool->shuttingDown)
            fatal("TaskQueue: applyAsyncAfter after shutdown");
        // Safe to take the dependency's future mutex under pool->mtx:
        // no path acquires them in the reverse order (transition hooks
        // touch only atomics).
        ready = terminalState(after->state());
        if (ready)
            pool->pending.push_back(fut);
        else
            pool->deferred.push_back({std::move(after), fut});
    }
    pool->cv.notify_all();
    return fut;
}

std::vector<TaskFuturePtr>
TaskQueue::map(std::vector<TaskSpec> specs)
{
    std::vector<TaskFuturePtr> futs;
    futs.reserve(specs.size());
    for (auto &spec : specs)
        futs.push_back(makeFuture(std::move(spec.name),
                                  std::move(spec.fn),
                                  spec.timeoutSeconds,
                                  std::move(spec.retry)));
    if (backend == Backend::Inline) {
        for (std::size_t i = 0; i < futs.size(); ++i) {
            if (specs[i].after)
                specs[i].after->wait();
            runInline(futs[i]);
        }
        return futs;
    }
    {
        std::lock_guard<std::mutex> lock(pool->mtx);
        if (pool->shuttingDown)
            fatal("TaskQueue: map after shutdown");
        for (std::size_t i = 0; i < futs.size(); ++i) {
            if (specs[i].after &&
                !terminalState(specs[i].after->state()))
                pool->deferred.push_back({specs[i].after, futs[i]});
            else
                pool->pending.push_back(futs[i]);
        }
    }
    // One wake-up for the whole batch instead of one per task.
    pool->cv.notify_all();
    return futs;
}

void
TaskQueue::workerLoop(std::shared_ptr<Pool> pool, std::size_t idx)
{
    for (;;) {
        TaskFuturePtr task;
        {
            std::unique_lock<std::mutex> lock(pool->mtx);
            pool->cv.wait(lock, [&] {
                return pool->abortDrain || !pool->pending.empty() ||
                       (pool->shuttingDown && pool->delayed.empty() &&
                        pool->deferred.empty());
            });
            if (pool->abortDrain)
                break;
            if (pool->pending.empty()) {
                if (pool->shuttingDown && pool->delayed.empty() &&
                    pool->deferred.empty())
                    break;
                continue;
            }
            task = pool->pending.front();
            pool->pending.pop_front();
            pool->running.push_back(task);
        }

        auto out = task->runAttempt();
        bool abandoned = task->wasAbandoned();
        if (!abandoned) {
            std::lock_guard<std::mutex> lock(pool->mtx);
            pool->eraseRunning(task);
            if (out.retry) {
                pool->delayed.push_back(
                    {monotonicSeconds() + out.delaySeconds, task});
                ++pool->retriesScheduled;
                pool->retriesC.inc();
            }
        }
        pool->cv.notify_all();
        if (abandoned) {
            // The watchdog already published our Timeout, removed us
            // from the running set, and spawned a replacement worker:
            // this thread is quarantined and bows out.
            break;
        }
    }
    {
        std::lock_guard<std::mutex> lock(pool->mtx);
        --pool->liveWorkers;
        pool->exited[idx]->store(true);
    }
    pool->cv.notify_all();
}

void
TaskQueue::watchdogLoop(std::shared_ptr<Pool> pool)
{
    std::unique_lock<std::mutex> lock(pool->mtx);
    for (;;) {
        pool->cv.wait_for(lock, secs(pool->watchdogPollS));
        if (pool->watchdogStop)
            return;

        double now = monotonicSeconds();
        bool woke = false;

        // Promote retry-delayed tasks whose backoff elapsed (all of
        // them during shutdown — drain should not wait out backoffs).
        for (std::size_t i = 0; i < pool->delayed.size();) {
            if (pool->shuttingDown ||
                pool->delayed[i].readyAt <= now) {
                pool->pending.push_back(
                    std::move(pool->delayed[i].task));
                pool->delayed.erase(pool->delayed.begin() +
                                    std::ptrdiff_t(i));
                woke = true;
            } else {
                ++i;
            }
        }

        // Promote dependency-ordered tasks whose dependency reached a
        // terminal state (future mutexes nest under pool->mtx — see
        // applyAsyncAfter).
        for (std::size_t i = 0; i < pool->deferred.size();) {
            if (terminalState(pool->deferred[i].after->state())) {
                pool->pending.push_back(
                    std::move(pool->deferred[i].task));
                pool->deferred.erase(pool->deferred.begin() +
                                     std::ptrdiff_t(i));
                woke = true;
            } else {
                ++i;
            }
        }

        // Enforce deadlines on tasks that never poll their token. The
        // token self-expires at its deadline (no cancel() needed — an
        // explicit cancel would also veto a policy-allowed timeout
        // retry); the watchdog only escalates once the grace period
        // passes without the body unwinding.
        std::vector<TaskFuturePtr> overdue;
        for (const auto &task : pool->running) {
            double d = task->token.deadlineAt();
            if (d <= 0)
                continue;
            if (now > d + pool->watchdogGraceS)
                overdue.push_back(task);
        }
        for (const auto &task : overdue) {
            if (!task->forceTimeout(
                    "watchdog: task overran its deadline and ignored "
                    "cancellation; worker quarantined"))
                continue;
            pool->eraseRunning(task);
            ++pool->quarantinedWorkers;
            pool->quarantinedC.inc();
            if (!pool->shuttingDown)
                spawnWorker(pool); // keep pool capacity
            woke = true;
        }

        if (woke)
            pool->cv.notify_all();
    }
}

void
TaskQueue::waitAll()
{
    if (backend == Backend::Inline)
        return; // inline tasks finished at submit time
    std::unique_lock<std::mutex> lock(pool->mtx);
    pool->cv.wait(lock, [this] {
        return pool->pending.empty() && pool->delayed.empty() &&
               pool->deferred.empty() && pool->running.empty();
    });
}

void
TaskQueue::cancelAll()
{
    if (backend == Backend::Inline)
        return; // nothing is ever queued
    std::vector<TaskFuturePtr> queued;
    {
        std::lock_guard<std::mutex> lock(pool->mtx);
        queued.assign(pool->pending.begin(), pool->pending.end());
        for (const auto &d : pool->delayed)
            queued.push_back(d.task);
        for (const auto &d : pool->deferred)
            queued.push_back(d.task);
        pool->pending.clear();
        pool->delayed.clear();
        pool->deferred.clear();
        for (const auto &t : pool->running)
            t->token.cancel();
    }
    for (const auto &t : queued)
        t->cancelQueued("cancelled: cancelAll() before execution");
    pool->cv.notify_all();
}

void
TaskQueue::setWatchdog(double poll_s, double grace_s)
{
    std::lock_guard<std::mutex> lock(pool->mtx);
    if (poll_s > 0)
        pool->watchdogPollS = poll_s;
    if (grace_s >= 0)
        pool->watchdogGraceS = grace_s;
}

void
TaskQueue::setDrainTimeout(double seconds)
{
    std::lock_guard<std::mutex> lock(pool->mtx);
    if (seconds > 0)
        pool->drainTimeoutS = seconds;
}

Json
TaskQueue::summary() const
{
    Json out = Json::object();
    out["PENDING"] = pool->stateCounts[int(TaskState::Pending)].load();
    out["RUNNING"] = pool->stateCounts[int(TaskState::Running)].load();
    out["SUCCESS"] = pool->stateCounts[int(TaskState::Success)].load();
    out["FAILURE"] = pool->stateCounts[int(TaskState::Failure)].load();
    out["TIMEOUT"] = pool->stateCounts[int(TaskState::Timeout)].load();
    out["RETRY"] = pool->stateCounts[int(TaskState::Retrying)].load();
    out["total"] = pool->totalTasks.load();
    out["retries"] = pool->retriesScheduled.load();
    out["quarantined"] = pool->quarantinedWorkers.load();

    // Live observability: queue pressure and worker utilization (a
    // sweep's progress line), plus the task-latency distribution.
    Json m = Json::object();
    {
        std::lock_guard<std::mutex> lock(pool->mtx);
        std::int64_t depth =
            std::int64_t(pool->pending.size() + pool->delayed.size() +
                         pool->deferred.size());
        std::int64_t busy = std::int64_t(pool->running.size());
        std::int64_t live = std::int64_t(pool->liveWorkers);
        m["queueDepth"] = depth;
        m["workersBusy"] = busy;
        m["workersLive"] = live;
        m["utilization"] =
            live > 0 ? double(busy) / double(live) : 0.0;
    }
    metrics::Histogram &task_seconds =
        metrics::histogram("scheduler.task.seconds");
    Json lat = Json::object();
    lat["count"] = task_seconds.count();
    lat["sum"] = task_seconds.sum();
    lat["mean"] = task_seconds.count() > 0
                      ? task_seconds.sum() /
                            double(task_seconds.count())
                      : 0.0;
    m["taskSeconds"] = std::move(lat);
    out["metrics"] = std::move(m);
    if (procPool)
        out["workerPool"] = procPool->summary();
    return out;
}

void
TaskQueue::attachWorkerPool(std::shared_ptr<WorkerPool> wp)
{
    procPool = std::move(wp);
}

} // namespace g5::scheduler
