#include "scheduler/task_queue.hh"

#include "base/logging.hh"
#include "base/wallclock.hh"

namespace g5::scheduler
{

const char *
taskStateName(TaskState s)
{
    switch (s) {
      case TaskState::Pending:
        return "PENDING";
      case TaskState::Running:
        return "RUNNING";
      case TaskState::Success:
        return "SUCCESS";
      case TaskState::Failure:
        return "FAILURE";
      case TaskState::Timeout:
        return "TIMEOUT";
    }
    return "UNKNOWN";
}

void
CancelToken::arm(double seconds)
{
    deadline = seconds > 0 ? monotonicSeconds() + seconds : 0;
}

bool
CancelToken::expired() const
{
    if (cancelled.load())
        return true;
    return deadline > 0 && monotonicSeconds() > deadline;
}

void
CancelToken::checkpoint() const
{
    if (expired())
        throw TaskTimeout("task exceeded its timeout");
}

TaskFuture::TaskFuture(std::string name, TaskFn fn, double timeout_s)
    : taskName(std::move(name)), fn(std::move(fn)),
      timeoutSeconds(timeout_s)
{}

void
TaskFuture::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [this] {
        return st != TaskState::Pending && st != TaskState::Running;
    });
}

TaskState
TaskFuture::state() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return st;
}

Json
TaskFuture::result()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return payload;
}

std::string
TaskFuture::error()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return errMsg;
}

double
TaskFuture::wallSeconds()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return wallSecs;
}

void
TaskFuture::execute()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        st = TaskState::Running;
    }
    token.arm(timeoutSeconds);
    double start = monotonicSeconds();

    TaskState final_state;
    Json final_payload;
    std::string final_err;
    try {
        final_payload = fn(token);
        final_state = TaskState::Success;
    } catch (const TaskTimeout &e) {
        final_state = TaskState::Timeout;
        final_err = e.what();
    } catch (const std::exception &e) {
        final_state = TaskState::Failure;
        final_err = e.what();
    } catch (...) {
        final_state = TaskState::Failure;
        final_err = "unknown exception";
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        st = final_state;
        payload = std::move(final_payload);
        errMsg = std::move(final_err);
        wallSecs = monotonicSeconds() - start;
    }
    cv.notify_all();
}

TaskQueue::TaskQueue(unsigned workers, Backend backend)
    : backend(backend)
{
    if (backend == Backend::Threaded) {
        if (workers == 0)
            fatal("TaskQueue: Threaded backend needs >= 1 worker");
        for (unsigned i = 0; i < workers; ++i)
            threads.emplace_back([this] { workerLoop(); });
    }
}

TaskQueue::~TaskQueue()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        shuttingDown = true;
    }
    cv.notify_all();
    for (auto &t : threads)
        t.join();
}

TaskFuturePtr
TaskQueue::applyAsync(const std::string &name, TaskFn fn, double timeout_s)
{
    auto fut = std::make_shared<TaskFuture>(name, std::move(fn), timeout_s);
    if (backend == Backend::Inline) {
        {
            std::lock_guard<std::mutex> lock(mtx);
            all.push_back(fut);
        }
        fut->execute();
        return fut;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (shuttingDown)
            fatal("TaskQueue: applyAsync after shutdown");
        pending.push_back(fut);
        all.push_back(fut);
    }
    cv.notify_one();
    return fut;
}

void
TaskQueue::workerLoop()
{
    for (;;) {
        TaskFuturePtr task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock,
                    [this] { return shuttingDown || !pending.empty(); });
            if (pending.empty()) {
                if (shuttingDown)
                    return;
                continue;
            }
            task = pending.front();
            pending.pop_front();
            ++running;
        }
        task->execute();
        {
            std::lock_guard<std::mutex> lock(mtx);
            --running;
        }
        cv.notify_all();
    }
}

void
TaskQueue::waitAll()
{
    if (backend == Backend::Inline)
        return; // inline tasks finished at submit time
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [this] { return pending.empty() && running == 0; });
}

Json
TaskQueue::summary() const
{
    std::lock_guard<std::mutex> lock(mtx);
    int counts[5] = {0, 0, 0, 0, 0};
    for (const auto &t : all)
        ++counts[int(t->state())];
    Json out = Json::object();
    out["PENDING"] = counts[0];
    out["RUNNING"] = counts[1];
    out["SUCCESS"] = counts[2];
    out["FAILURE"] = counts[3];
    out["TIMEOUT"] = counts[4];
    out["total"] = std::int64_t(all.size());
    return out;
}

} // namespace g5::scheduler
