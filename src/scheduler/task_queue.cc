#include "scheduler/task_queue.hh"

#include "base/logging.hh"
#include "base/wallclock.hh"

namespace g5::scheduler
{

const char *
taskStateName(TaskState s)
{
    switch (s) {
      case TaskState::Pending:
        return "PENDING";
      case TaskState::Running:
        return "RUNNING";
      case TaskState::Success:
        return "SUCCESS";
      case TaskState::Failure:
        return "FAILURE";
      case TaskState::Timeout:
        return "TIMEOUT";
    }
    return "UNKNOWN";
}

void
CancelToken::arm(double seconds)
{
    deadline = seconds > 0 ? monotonicSeconds() + seconds : 0;
}

bool
CancelToken::expired() const
{
    if (cancelled.load())
        return true;
    return deadline > 0 && monotonicSeconds() > deadline;
}

void
CancelToken::checkpoint() const
{
    if (expired())
        throw TaskTimeout("task exceeded its timeout");
}

TaskFuture::TaskFuture(std::string name, TaskFn fn, double timeout_s)
    : taskName(std::move(name)), fn(std::move(fn)),
      timeoutSeconds(timeout_s)
{}

void
TaskFuture::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [this] {
        return st != TaskState::Pending && st != TaskState::Running;
    });
}

TaskState
TaskFuture::state() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return st;
}

Json
TaskFuture::result()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return payload;
}

std::string
TaskFuture::error()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return errMsg;
}

double
TaskFuture::wallSeconds()
{
    wait();
    std::lock_guard<std::mutex> lock(mtx);
    return wallSecs;
}

void
TaskFuture::execute()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        st = TaskState::Running;
    }
    if (transitionHook)
        transitionHook(TaskState::Pending, TaskState::Running);
    token.arm(timeoutSeconds);
    double start = monotonicSeconds();

    TaskState final_state;
    Json final_payload;
    std::string final_err;
    try {
        final_payload = fn(token);
        final_state = TaskState::Success;
    } catch (const TaskTimeout &e) {
        final_state = TaskState::Timeout;
        final_err = e.what();
    } catch (const std::exception &e) {
        final_state = TaskState::Failure;
        final_err = e.what();
    } catch (...) {
        final_state = TaskState::Failure;
        final_err = "unknown exception";
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        st = final_state;
        payload = std::move(final_payload);
        errMsg = std::move(final_err);
        wallSecs = monotonicSeconds() - start;
    }
    if (transitionHook)
        transitionHook(TaskState::Running, final_state);
    cv.notify_all();
}

unsigned
TaskQueue::defaultWorkerCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

TaskQueue::TaskQueue(unsigned workers, Backend backend)
    : backend(backend)
{
    if (backend == Backend::Threaded) {
        if (workers == 0)
            workers = defaultWorkerCount();
        for (unsigned i = 0; i < workers; ++i)
            threads.emplace_back([this] { workerLoop(); });
    }
}

TaskQueue::~TaskQueue()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        shuttingDown = true;
    }
    cv.notify_all();
    for (auto &t : threads)
        t.join();
}

TaskFuturePtr
TaskQueue::makeFuture(std::string name, TaskFn fn, double timeout_s)
{
    auto fut = std::make_shared<TaskFuture>(std::move(name),
                                            std::move(fn), timeout_s);
    fut->transitionHook = [this](TaskState from, TaskState to) {
        --stateCounts[int(from)];
        ++stateCounts[int(to)];
    };
    ++stateCounts[int(TaskState::Pending)];
    ++totalTasks;
    return fut;
}

TaskFuturePtr
TaskQueue::applyAsync(const std::string &name, TaskFn fn, double timeout_s)
{
    auto fut = makeFuture(name, std::move(fn), timeout_s);
    if (backend == Backend::Inline) {
        fut->execute();
        return fut;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (shuttingDown)
            fatal("TaskQueue: applyAsync after shutdown");
        pending.push_back(fut);
    }
    cv.notify_one();
    return fut;
}

std::vector<TaskFuturePtr>
TaskQueue::map(std::vector<TaskSpec> specs)
{
    std::vector<TaskFuturePtr> futs;
    futs.reserve(specs.size());
    for (auto &spec : specs)
        futs.push_back(makeFuture(std::move(spec.name),
                                  std::move(spec.fn),
                                  spec.timeoutSeconds));
    if (backend == Backend::Inline) {
        for (auto &fut : futs)
            fut->execute();
        return futs;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (shuttingDown)
            fatal("TaskQueue: map after shutdown");
        pending.insert(pending.end(), futs.begin(), futs.end());
    }
    // One wake-up for the whole batch instead of one per task.
    cv.notify_all();
    return futs;
}

void
TaskQueue::workerLoop()
{
    for (;;) {
        TaskFuturePtr task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock,
                    [this] { return shuttingDown || !pending.empty(); });
            if (pending.empty()) {
                if (shuttingDown)
                    return;
                continue;
            }
            task = pending.front();
            pending.pop_front();
            ++running;
        }
        task->execute();
        {
            std::lock_guard<std::mutex> lock(mtx);
            --running;
        }
        cv.notify_all();
    }
}

void
TaskQueue::waitAll()
{
    if (backend == Backend::Inline)
        return; // inline tasks finished at submit time
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [this] { return pending.empty() && running == 0; });
}

Json
TaskQueue::summary() const
{
    Json out = Json::object();
    out["PENDING"] = stateCounts[int(TaskState::Pending)].load();
    out["RUNNING"] = stateCounts[int(TaskState::Running)].load();
    out["SUCCESS"] = stateCounts[int(TaskState::Success)].load();
    out["FAILURE"] = stateCounts[int(TaskState::Failure)].load();
    out["TIMEOUT"] = stateCounts[int(TaskState::Timeout)].load();
    out["total"] = totalTasks.load();
    return out;
}

} // namespace g5::scheduler
