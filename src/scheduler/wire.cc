#include "scheduler/wire.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/metrics.hh"
#include "base/wallclock.hh"

namespace g5::scheduler
{

namespace
{

constexpr std::size_t headerBytes = 4;
/** Defensive bound: no single scheduler message approaches this. */
constexpr std::size_t maxFrameBytes = 256u * 1024u * 1024u;

metrics::Counter &
ipcBytes()
{
    static metrics::Counter &c = metrics::counter("scheduler.ipc.bytes");
    return c;
}

} // anonymous namespace

void
prewarmWireMetrics()
{
    ipcBytes();
}

void
WireConn::close()
{
    if (rfd >= 0)
        ::close(rfd);
    if (wfd >= 0 && wfd != rfd)
        ::close(wfd);
    rfd = wfd = -1;
    rbuf.clear();
}

bool
WireConn::send(const Json &msg)
{
    if (wfd < 0)
        return false;

    // Serialize straight into the frame buffer through the sink
    // interface; the 4-byte header is backpatched once the length is
    // known.
    struct BufSink : JsonSink
    {
        std::string buf;
        void write(const char *data, std::size_t len) override
        {
            buf.append(data, len);
        }
    } sink;
    sink.buf.assign(headerBytes, '\0');
    msg.dumpTo(sink);
    std::size_t payload = sink.buf.size() - headerBytes;
    std::uint32_t len = std::uint32_t(payload);
    sink.buf[0] = char(len & 0xff);
    sink.buf[1] = char((len >> 8) & 0xff);
    sink.buf[2] = char((len >> 16) & 0xff);
    sink.buf[3] = char((len >> 24) & 0xff);

    const char *p = sink.buf.data();
    std::size_t left = sink.buf.size();
    while (left > 0) {
        // MSG_NOSIGNAL: a peer SIGKILLed mid-send must surface as an
        // error return, never a process-fatal SIGPIPE.
        ssize_t n = ::send(wfd, p, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= std::size_t(n);
    }
    ipcBytes().inc(std::int64_t(sink.buf.size()));
    return true;
}

bool
WireConn::parseFrame(Json &out)
{
    if (rbuf.size() < headerBytes)
        return false;
    const unsigned char *h =
        reinterpret_cast<const unsigned char *>(rbuf.data());
    std::size_t len = std::size_t(h[0]) | (std::size_t(h[1]) << 8) |
                      (std::size_t(h[2]) << 16) |
                      (std::size_t(h[3]) << 24);
    if (len > maxFrameBytes)
        return false; // corrupt stream; recv() reports Closed below
    if (rbuf.size() < headerBytes + len)
        return false;
    out = Json::parse(
        std::string_view(rbuf.data() + headerBytes, len));
    rbuf.erase(0, headerBytes + len);
    return true;
}

WireRecv
WireConn::recv(Json &out, double timeout_s)
{
    if (rfd < 0)
        return WireRecv::Closed;

    // A frame may already be fully buffered from a previous read.
    try {
        if (parseFrame(out))
            return WireRecv::Message;
    } catch (const std::exception &) {
        return WireRecv::Closed; // unparseable payload: corrupt stream
    }

    double deadline =
        timeout_s >= 0 ? monotonicSeconds() + timeout_s : -1;
    for (;;) {
        int wait_ms;
        if (deadline < 0) {
            wait_ms = -1;
        } else {
            double left = deadline - monotonicSeconds();
            wait_ms = left > 0 ? int(left * 1000.0) + 1 : 0;
        }

        struct pollfd pfd;
        pfd.fd = rfd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        int pr = ::poll(&pfd, 1, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return WireRecv::Closed;
        }
        if (pr == 0)
            return WireRecv::Timeout;
        if (pfd.revents & (POLLERR | POLLNVAL))
            return WireRecv::Closed;

        char buf[16 * 1024];
        ssize_t n = ::read(rfd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            return WireRecv::Closed;
        }
        if (n == 0)
            return WireRecv::Closed; // EOF: every write end is gone
        rbuf.append(buf, std::size_t(n));
        ipcBytes().inc(std::int64_t(n));
        try {
            if (parseFrame(out))
                return WireRecv::Message;
        } catch (const std::exception &) {
            return WireRecv::Closed;
        }
        // Partial frame: loop; the deadline bounds the total wait.
        if (deadline >= 0 && monotonicSeconds() >= deadline)
            return WireRecv::Timeout;
    }
}

} // namespace g5::scheduler
