#include "scheduler/worker_pool.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/faultinject.hh"
#include "base/logging.hh"
#include "base/metrics.hh"
#include "base/wallclock.hh"

namespace g5::scheduler
{

namespace
{

// ---------------------------------------------------------------------
// Job registry. Populated before the pool forks; the children inherit a
// copy-on-write snapshot and read it single-threaded, so the child-side
// lookup deliberately takes no lock (the parent-side mutex could have
// been held by another thread at fork time, and a copied locked mutex
// never unlocks).
// ---------------------------------------------------------------------

std::mutex &
jobMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, WorkerJobFn> &
jobs()
{
    static auto *m = new std::map<std::string, WorkerJobFn>();
    return *m;
}

WorkerJobFn
lookupJobInChild(const std::string &kind)
{
    auto it = jobs().find(kind);
    return it == jobs().end() ? WorkerJobFn() : it->second;
}

// ---------------------------------------------------------------------
// Process-wide registry of parent-side socket fds. Every child closes
// the fds of every *other* worker at birth; otherwise a respawned
// sibling would keep a dead worker's socketpair open and the parent
// would never see EOF for it.
// ---------------------------------------------------------------------

std::mutex &
fdMutex()
{
    static std::mutex m;
    return m;
}

std::vector<int> &
fdRegistry()
{
    static auto *v = new std::vector<int>();
    return *v;
}

void
registerPoolFd(int fd)
{
    std::lock_guard<std::mutex> lock(fdMutex());
    fdRegistry().push_back(fd);
}

void
unregisterPoolFd(int fd)
{
    std::lock_guard<std::mutex> lock(fdMutex());
    auto &v = fdRegistry();
    v.erase(std::remove(v.begin(), v.end(), fd), v.end());
}

std::vector<int>
snapshotPoolFds()
{
    std::lock_guard<std::mutex> lock(fdMutex());
    return fdRegistry();
}

// Metric handles, resolved before the first fork (WorkerPool ctor) so
// the child's increments are pure relaxed-atomic stores on its COW copy
// and never touch the registry lock.
metrics::Counter &
spawnedCounter()
{
    static metrics::Counter &c =
        metrics::counter("scheduler.workers.spawned");
    return c;
}

metrics::Counter &
lostCounter()
{
    static metrics::Counter &c = metrics::counter("scheduler.workers.lost");
    return c;
}

metrics::Counter &
respawnedCounter()
{
    static metrics::Counter &c =
        metrics::counter("scheduler.workers.respawned");
    return c;
}

metrics::Counter &
expiriesCounter()
{
    static metrics::Counter &c =
        metrics::counter("scheduler.lease.expiries");
    return c;
}

metrics::Counter &
staleCounter()
{
    static metrics::Counter &c =
        metrics::counter("scheduler.lease.staleResults");
    return c;
}

std::string
describeExit(int status)
{
    if (WIFEXITED(status))
        return "exit status " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "signal " + std::to_string(WTERMSIG(status));
    return "status " + std::to_string(status);
}

// ---------------------------------------------------------------------
// Child side. Single-threaded forever: heartbeats piggyback on the
// CancelToken::checkpoint polls the job body already makes (the sim
// event loop polls every pollInterval events), so a hung body stops
// heartbeating without any helper thread — which also keeps fork legal
// under TSan. The only exits are _exit: the parent's atexit state must
// never run twice.
// ---------------------------------------------------------------------

[[noreturn]] void
workerMain(int fd)
{
    WireConn conn(fd);
    for (;;) {
        Json msg;
        if (conn.recv(msg, -1) != WireRecv::Message)
            _exit(0); // EOF: the parent is gone or shutting down
        std::string op = msg.getString("op", "");
        if (op == "exit")
            _exit(0);
        if (op != "task")
            continue;

        std::int64_t lease = msg.getInt("lease", 0);
        std::string kind = msg.getString("kind", "");
        double budget = msg.getDouble("budgetSeconds", 0.0);
        double hbEvery = msg.getDouble("heartbeatSeconds", 0.5);
        // Heartbeat loss is injected by the *parent* at dispatch time
        // (fault registry locks are not fork-safe); the child just
        // honors the verdict by going silent.
        bool mute = msg.getBool("suppressHeartbeats", false);

        CancelToken token;
        token.arm(budget);
        double lastHb = monotonicSeconds();
        CancelToken::setThreadCheckpointHook([&] {
            if (mute)
                return;
            double now = monotonicSeconds();
            if (now - lastHb < hbEvery)
                return;
            lastHb = now;
            Json hb = Json::object();
            hb["op"] = "hb";
            hb["lease"] = lease;
            if (!conn.send(hb))
                _exit(0); // parent gone: nothing left to work for
        });
        // Hard watchdog for bodies that never poll their token: SIGALRM
        // (default disposition) kills this process locally, instead of
        // the parent having to wait out lease expiry plus kill grace.
        if (budget > 0)
            ::alarm(unsigned(budget) + 2);

        Json reply = Json::object();
        reply["op"] = "result";
        reply["lease"] = lease;
        try {
            WorkerJobFn fn = lookupJobInChild(kind);
            if (!fn)
                throw std::runtime_error(
                    "no worker job registered for kind '" + kind + "'");
            reply["value"] =
                fn(msg.contains("spec") ? msg.at("spec") : Json(), token);
            reply["ok"] = true;
        } catch (const TaskTimeout &e) {
            reply["ok"] = false;
            reply["errorKind"] = "timeout";
            reply["error"] = std::string(e.what());
        } catch (const std::exception &e) {
            reply["ok"] = false;
            reply["errorKind"] = "error";
            reply["error"] = std::string(e.what());
        } catch (...) {
            reply["ok"] = false;
            reply["errorKind"] = "error";
            reply["error"] = std::string("unknown exception in worker job");
        }
        ::alarm(0);
        CancelToken::setThreadCheckpointHook(nullptr);
        if (!conn.send(reply))
            _exit(0);
    }
}

} // anonymous namespace

void
registerWorkerJob(const std::string &kind, WorkerJobFn fn)
{
    std::lock_guard<std::mutex> lock(jobMutex());
    jobs()[kind] = std::move(fn);
}

bool
workerJobRegistered(const std::string &kind)
{
    std::lock_guard<std::mutex> lock(jobMutex());
    return jobs().count(kind) > 0;
}

// ---------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------

struct WorkerPool::Slot
{
    enum class State { Dead, Idle, Busy, Fenced };

    State state = State::Dead;
    int pid = -1;
    WireConn conn;
    /** The fencing token of the active (Busy) or retired (Fenced) lease. */
    std::uint64_t lease = 0;
    double fencedAt = 0;
    bool killSent = false;
    std::string fenceReason;
};

struct WorkerPool::Impl
{
    mutable std::mutex mtx;
    std::condition_variable cv;
    std::vector<std::unique_ptr<Slot>> slots;
    unsigned requested = 0;
    std::uint64_t nextLease = 0;
    double leaseS = 5.0;
    double killGraceS = 5.0;
    bool killGraceCustom = false;
    bool stopping = false;
    std::thread monitor;

    std::atomic<std::int64_t> spawned{0};
    std::atomic<std::int64_t> lost{0};
    std::atomic<std::int64_t> respawned{0};
    std::atomic<std::int64_t> expiries{0};
    std::atomic<std::int64_t> stale{0};

    /** Fork one worker into @p s. Caller holds mtx. */
    bool spawnSlot(Slot &s);

    /** Reclaim a slot's parent-side resources. Caller holds mtx. */
    void closeSlot(Slot &s);

    /**
     * Retire @p lease: a Busy slot becomes Fenced and its conn passes
     * to the monitor thread, so any result the worker still delivers
     * is drained there and rejected — the double-commit guard.
     */
    void fence(Slot *s, std::uint64_t lease, std::string reason);

    /** Return a slot whose lease committed cleanly to service. */
    void release(Slot *s, std::uint64_t lease);
};

bool
WorkerPool::Impl::spawnSlot(Slot &s)
{
    if (fault::shouldFire("worker.spawn")) {
        warn("worker_pool: injected spawn failure (worker.spawn)");
        return false;
    }
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        warn("worker_pool: socketpair failed: " +
             std::string(std::strerror(errno)));
        return false;
    }
    std::vector<int> inherited = snapshotPoolFds();
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        warn("worker_pool: fork failed: " +
             std::string(std::strerror(errno)));
        return false;
    }
    if (pid == 0) {
        // Child. Drop every other worker's parent-side descriptor so
        // that an EOF on a socketpair always means its worker is gone.
        ::close(sv[0]);
        for (int fd : inherited)
            ::close(fd);
        // The fault registry crossed the fork with the parent's
        // "worker.*" points still armed; make them parent-only here so
        // a pool-level fault spec cannot double-fire in its own
        // children (an atomic flag — the registry mutex is not
        // fork-safe to take this early).
        fault::markWorkerProcess();
        workerMain(sv[1]); // never returns
    }
    ::close(sv[1]);
    registerPoolFd(sv[0]);
    s.pid = int(pid);
    s.conn = WireConn(sv[0]);
    s.state = Slot::State::Idle;
    s.lease = 0;
    s.killSent = false;
    s.fenceReason.clear();
    spawned.fetch_add(1, std::memory_order_relaxed);
    spawnedCounter().inc(1);
    return true;
}

void
WorkerPool::Impl::closeSlot(Slot &s)
{
    if (s.conn.readFd() >= 0)
        unregisterPoolFd(s.conn.readFd());
    s.conn.close();
    s.pid = -1;
    s.state = Slot::State::Dead;
    s.lease = 0;
    s.killSent = false;
}

void
WorkerPool::Impl::fence(Slot *s, std::uint64_t lease, std::string reason)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (s->state == Slot::State::Busy && s->lease == lease) {
        s->state = Slot::State::Fenced;
        s->fencedAt = monotonicSeconds();
        s->killSent = false;
        s->fenceReason = std::move(reason);
    }
    cv.notify_all();
}

void
WorkerPool::Impl::release(Slot *s, std::uint64_t lease)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (s->state == Slot::State::Busy && s->lease == lease) {
        s->state = Slot::State::Idle;
        s->lease = 0;
    }
    cv.notify_all();
}

unsigned
WorkerPool::envWorkerCount()
{
    const char *v = std::getenv("G5_WORKERS");
    if (v == nullptr)
        return 0;
    std::string s(v);
    if (s.empty() || s == "auto")
        return defaultWorkerCount();
    try {
        std::size_t pos = 0;
        unsigned long n = std::stoul(s, &pos);
        if (pos != s.size())
            throw std::invalid_argument(s);
        return unsigned(std::min<unsigned long>(n, 1024));
    } catch (const std::exception &) {
        warn("G5_WORKERS: cannot parse '" + s +
             "' (want a count, \"auto\", or 0); process pool disabled");
        return 0;
    }
}

double
WorkerPool::envLeaseSeconds()
{
    const char *v = std::getenv("G5_LEASE_MS");
    if (v == nullptr || *v == '\0')
        return 5.0;
    try {
        std::size_t pos = 0;
        double ms = std::stod(v, &pos);
        if (pos != std::strlen(v) || !(ms > 0))
            throw std::invalid_argument(v);
        return ms / 1000.0;
    } catch (const std::exception &) {
        warn("G5_LEASE_MS: cannot parse '" + std::string(v) +
             "' (want milliseconds > 0); using the 5000 ms default");
        return 5.0;
    }
}

unsigned
WorkerPool::defaultWorkerCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 2;
}

WorkerPool::WorkerPool(unsigned workers, double lease_s)
    : impl(std::make_shared<Impl>())
{
    // Resolve every metric handle now: after the fork the children can
    // only touch pre-initialized relaxed atomics, never the registry.
    prewarmWireMetrics();
    spawnedCounter();
    lostCounter();
    respawnedCounter();
    expiriesCounter();
    staleCounter();

    if (workers == 0)
        workers = defaultWorkerCount();
    impl->requested = workers;
    impl->leaseS = lease_s > 0 ? lease_s : envLeaseSeconds();
    impl->killGraceS = impl->leaseS;

    unsigned live = 0;
    {
        std::lock_guard<std::mutex> lock(impl->mtx);
        for (unsigned i = 0; i < workers; ++i) {
            impl->slots.push_back(std::make_unique<Slot>());
            if (impl->spawnSlot(*impl->slots.back()))
                ++live;
        }
    }
    if (live > 0)
        impl->monitor = std::thread(&WorkerPool::monitorLoop, impl);
    if (live < workers)
        warn("worker_pool: spawned " + std::to_string(live) + " of " +
             std::to_string(workers) + " requested workers");
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(impl->mtx);
        impl->stopping = true;
    }
    impl->cv.notify_all();
    if (impl->monitor.joinable())
        impl->monitor.join();

    std::lock_guard<std::mutex> lock(impl->mtx);
    for (auto &sp : impl->slots) {
        Slot &s = *sp;
        if (s.pid < 0)
            continue;
        if (s.state == Slot::State::Busy) {
            // A dispatcher still owns this conn (it can only be mid
            // shutdown unwind); don't touch the fds — just make sure
            // the child dies and let the dispatcher see EOF.
            ::kill(s.pid, SIGKILL);
            int status = 0;
            ::waitpid(s.pid, &status, 0);
            s.pid = -1;
            continue;
        }
        Json bye = Json::object();
        bye["op"] = "exit";
        s.conn.send(bye);
        if (s.conn.readFd() >= 0)
            unregisterPoolFd(s.conn.readFd());
        s.conn.close(); // EOF doubles as the exit signal
    }
    // Bounded reap: orderly exit gets two seconds, stragglers are
    // SIGKILLed — a poisoned worker cannot hang process shutdown.
    double deadline = monotonicSeconds() + 2.0;
    for (auto &sp : impl->slots) {
        Slot &s = *sp;
        while (s.pid >= 0) {
            int status = 0;
            pid_t r = ::waitpid(s.pid, &status, WNOHANG);
            if (r != 0) {
                s.pid = -1;
                break;
            }
            if (monotonicSeconds() >= deadline) {
                ::kill(s.pid, SIGKILL);
                ::waitpid(s.pid, &status, 0);
                s.pid = -1;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        s.state = Slot::State::Dead;
    }
}

bool
WorkerPool::available() const
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    if (impl->stopping)
        return false;
    for (const auto &sp : impl->slots)
        if (sp->pid >= 0)
            return true;
    return false;
}

unsigned
WorkerPool::workerCount() const
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    unsigned n = 0;
    for (const auto &sp : impl->slots)
        if (sp->pid >= 0)
            ++n;
    return n;
}

std::vector<int>
WorkerPool::workerPids() const
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    std::vector<int> pids;
    for (const auto &sp : impl->slots)
        if (sp->pid >= 0)
            pids.push_back(sp->pid);
    return pids;
}

double
WorkerPool::leaseSeconds() const
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    return impl->leaseS;
}

void
WorkerPool::setLeaseSeconds(double s)
{
    if (!(s > 0))
        return;
    std::lock_guard<std::mutex> lock(impl->mtx);
    impl->leaseS = s;
    if (!impl->killGraceCustom)
        impl->killGraceS = s;
}

void
WorkerPool::setFenceKillGrace(double s)
{
    if (!(s >= 0))
        return;
    std::lock_guard<std::mutex> lock(impl->mtx);
    impl->killGraceS = s;
    impl->killGraceCustom = true;
}

Json
WorkerPool::execute(const std::string &kind, const Json &spec,
                    CancelToken *token)
{
    std::shared_ptr<Impl> ip = impl;
    Slot *slot = nullptr;
    std::uint64_t lease = 0;
    double leaseS = 0;
    int pid = -1;
    {
        std::unique_lock<std::mutex> lock(ip->mtx);
        ip->cv.wait(lock, [&] {
            if (ip->stopping)
                return true;
            slot = nullptr;
            bool anyLive = false;
            for (auto &sp : ip->slots) {
                if (sp->pid >= 0)
                    anyLive = true;
                if (sp->state == Slot::State::Idle) {
                    slot = sp.get();
                    break;
                }
            }
            return slot != nullptr || !anyLive;
        });
        if (ip->stopping || slot == nullptr)
            throw WorkerPoolUnavailable(
                ip->stopping ? "worker pool is shutting down"
                             : "worker pool has no live workers");
        lease = ++ip->nextLease;
        slot->state = Slot::State::Busy;
        slot->lease = lease;
        leaseS = ip->leaseS;
        pid = slot->pid;
    }

    // From here this thread owns slot->conn until it commits (release)
    // or retires (fence) the lease; the monitor never touches Busy
    // slots, so the conn has a single owner at every instant.
    Json msg = Json::object();
    msg["op"] = "task";
    msg["lease"] = std::int64_t(lease);
    msg["kind"] = kind;
    msg["spec"] = spec;
    double budget = 0;
    if (token != nullptr && token->deadlineAt() > 0)
        budget = std::max(token->deadlineAt() - monotonicSeconds(), 0.01);
    msg["budgetSeconds"] = budget;
    msg["heartbeatSeconds"] = std::max(leaseS / 4.0, 0.002);
    msg["suppressHeartbeats"] = fault::shouldFire("worker.heartbeat");

    if (!slot->conn.send(msg)) {
        ip->fence(slot, lease, "sending the task failed");
        throw WorkerLost("worker pid " + std::to_string(pid) +
                         " went away before accepting lease " +
                         std::to_string(lease));
    }

    double hbDeadline = monotonicSeconds() + leaseS;
    for (;;) {
        if (token != nullptr && token->expired()) {
            // Our own deadline (or cancelAll) beat the worker: retire
            // the lease first so its eventual result cannot commit.
            ip->fence(slot, lease, "task deadline passed in-flight");
            token->checkpoint(); // throws TaskTimeout
        }
        double wait = hbDeadline - monotonicSeconds();
        if (token != nullptr && token->deadlineAt() > 0)
            wait = std::min(wait,
                            token->deadlineAt() - monotonicSeconds());
        try {
            fault::checkpoint("worker.recv");
        } catch (const InjectedFault &e) {
            ip->fence(slot, lease, e.what());
            throw WorkerLost(std::string(e.what()) + " (lease " +
                             std::to_string(lease) + " fenced)");
        }
        Json in;
        WireRecv r = slot->conn.recv(in, std::max(wait, 0.0));
        if (r == WireRecv::Closed) {
            ip->fence(slot, lease, "worker died mid-lease");
            throw WorkerLost("worker pid " + std::to_string(pid) +
                             " died holding lease " +
                             std::to_string(lease));
        }
        if (r == WireRecv::Message) {
            std::string op = in.getString("op", "");
            std::uint64_t mlease = std::uint64_t(in.getInt("lease", 0));
            if (op == "hb" && mlease == lease) {
                hbDeadline = monotonicSeconds() + leaseS;
                continue;
            }
            if (op == "result" && mlease == lease) {
                try {
                    fault::checkpoint("worker.commit");
                } catch (const InjectedFault &e) {
                    ip->fence(slot, lease, e.what());
                    throw WorkerLost(std::string(e.what()) + " (lease " +
                                     std::to_string(lease) + " fenced)");
                }
                ip->release(slot, lease);
                if (in.getBool("ok", false))
                    return in.contains("value") ? in.at("value") : Json();
                std::string err =
                    in.getString("error", "worker job failed");
                if (in.getString("errorKind", "") == "timeout")
                    throw TaskTimeout(err);
                throw std::runtime_error(err);
            }
            continue; // frame for a retired lease: ignore
        }
        // Timeout tick: only terminal when the heartbeat lease really
        // lapsed (the wait may have been bounded by the token instead).
        if (monotonicSeconds() >= hbDeadline) {
            ip->expiries.fetch_add(1, std::memory_order_relaxed);
            expiriesCounter().inc(1);
            ip->fence(slot, lease, "lease expired without a heartbeat");
            throw WorkerLost(
                "lease " + std::to_string(lease) + " on worker pid " +
                std::to_string(pid) + " expired without a heartbeat");
        }
    }
}

void
WorkerPool::monitorLoop(std::shared_ptr<Impl> ip)
{
    std::unique_lock<std::mutex> lock(ip->mtx);
    while (!ip->stopping) {
        ip->cv.wait_for(lock, std::chrono::milliseconds(20));
        if (ip->stopping)
            break;
        double now = monotonicSeconds();
        for (auto &sp : ip->slots) {
            Slot &s = *sp;
            if (s.state == Slot::State::Busy)
                continue; // dispatcher owns the conn and the lease

            if (s.pid >= 0) {
                int status = 0;
                pid_t r = ::waitpid(s.pid, &status, WNOHANG);
                if (r != 0) {
                    ip->lost.fetch_add(1, std::memory_order_relaxed);
                    lostCounter().inc(1);
                    std::string why =
                        r == s.pid ? describeExit(status)
                                   : "waitpid: " +
                                         std::string(std::strerror(errno));
                    warn("worker_pool: worker pid " +
                         std::to_string(s.pid) + " lost (" + why +
                         (s.state == Slot::State::Fenced
                              ? "; fenced: " + s.fenceReason
                              : std::string()) +
                         "); respawning");
                    ip->closeSlot(s);
                    if (ip->spawnSlot(s)) {
                        ip->respawned.fetch_add(
                            1, std::memory_order_relaxed);
                        respawnedCounter().inc(1);
                    }
                    ip->cv.notify_all();
                    continue;
                }
            }

            if (s.state == Slot::State::Fenced) {
                // The fence drain: a late result from a retired lease
                // is rejected here — the worker can never double-commit
                // past the dispatcher that already gave up on it.
                for (;;) {
                    Json in;
                    if (s.conn.recv(in, 0) != WireRecv::Message)
                        break;
                    if (in.getString("op", "") == "result") {
                        ip->stale.fetch_add(1, std::memory_order_relaxed);
                        staleCounter().inc(1);
                        warn("worker_pool: rejected stale result for "
                             "fenced lease " +
                             std::to_string(in.getInt("lease", 0)) +
                             " from worker pid " + std::to_string(s.pid) +
                             " (" + s.fenceReason + ")");
                        // It answered: alive and idle again. Reuse it.
                        s.state = Slot::State::Idle;
                        s.lease = 0;
                        ip->cv.notify_all();
                        break;
                    }
                    // Late heartbeats cannot resurrect a retired lease.
                }
                if (s.state == Slot::State::Fenced && !s.killSent &&
                    now - s.fencedAt >= ip->killGraceS) {
                    ::kill(s.pid, SIGKILL); // reaped on a later pass
                    s.killSent = true;
                }
            } else if (s.state == Slot::State::Dead) {
                // A slot whose spawn failed earlier: keep trying to
                // restore capacity.
                if (ip->spawnSlot(s)) {
                    ip->respawned.fetch_add(1, std::memory_order_relaxed);
                    respawnedCounter().inc(1);
                    ip->cv.notify_all();
                }
            }
        }
    }
}

Json
WorkerPool::summary() const
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    unsigned live = 0;
    for (const auto &sp : impl->slots)
        if (sp->pid >= 0)
            ++live;
    Json out = Json::object();
    out["requested"] = std::int64_t(impl->requested);
    out["live"] = std::int64_t(live);
    out["spawned"] = impl->spawned.load(std::memory_order_relaxed);
    out["lost"] = impl->lost.load(std::memory_order_relaxed);
    out["respawned"] = impl->respawned.load(std::memory_order_relaxed);
    out["leaseSeconds"] = impl->leaseS;
    out["leaseExpiries"] = impl->expiries.load(std::memory_order_relaxed);
    out["staleResults"] = impl->stale.load(std::memory_order_relaxed);
    out["ipcBytes"] = metrics::counter("scheduler.ipc.bytes").value();
    return out;
}

} // namespace g5::scheduler
