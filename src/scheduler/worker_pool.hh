/**
 * @file
 * A multi-process worker cluster with lease/heartbeat crash recovery —
 * the step from "Celery-shaped thread pool" to "Celery": one wild
 * pointer (or SIGKILL) in a simulator task costs one worker process,
 * never the sweep.
 *
 * The parent forks N worker processes (G5_WORKERS; 0 falls back to the
 * in-process pool, "auto" saturates the host) connected by socketpairs
 * speaking the framed protocol in wire.hh. Task bodies cannot cross a
 * process boundary, so work is described by a registered *job kind*
 * (registerWorkerJob) plus a JSON spec; the art layer ships run specs
 * as content-addressed blob references rather than inline payloads.
 *
 * Crash tolerance is built on leases with fencing tokens:
 *
 *  - every dispatched task carries a fresh, monotonically increasing
 *    lease token and a heartbeat deadline (G5_LEASE_MS). The worker
 *    heartbeats cooperatively — piggybacked on CancelToken::checkpoint
 *    polls, so a worker that stops polling (hung, livelocked, dead)
 *    also stops heartbeating, which is exactly the signal we want;
 *  - the dispatching thread waits no longer than the live deadline.
 *    When the lease expires silently the lease is *fenced* — its token
 *    is retired, so a stale worker that wakes up later cannot commit —
 *    and the dispatcher unwinds with WorkerLost, a transient fault the
 *    scheduler's RetryPolicy re-runs like any other host trouble;
 *  - the monitor thread owns fenced workers: a late result is drained,
 *    rejected (scheduler.lease.staleResults) and logged, after which
 *    the healthy-but-slow worker returns to service; a worker still
 *    silent after the kill grace is SIGKILLed; a dead worker is reaped
 *    and a replacement forked (scheduler.workers.respawned).
 *
 * Deadlines propagate across the boundary: the parent sends the task's
 * remaining budget, the worker arms its own CancelToken (so the body
 * unwinds locally with TaskTimeout) and a SIGALRM hard watchdog (so a
 * body that never polls kills the child locally instead of waiting for
 * lease expiry + SIGKILL from the parent).
 *
 * Workers are forked, not exec'd: fork the pool before spinning up
 * worker *threads* (Tasks does this), and keep job handlers free of
 * parent-process shared state — a handler sees a copy-on-write snapshot
 * of the parent at fork time, and anything it writes is invisible to
 * the parent except the JSON result it returns. Results are committed
 * by the parent, which is what makes the fencing token meaningful.
 */

#ifndef G5_SCHEDULER_WORKER_POOL_HH
#define G5_SCHEDULER_WORKER_POOL_HH

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/json.hh"
#include "scheduler/task_queue.hh"
#include "scheduler/wire.hh"

namespace g5::scheduler
{

/**
 * Thrown by WorkerPool::execute when the worker executing the task was
 * lost: its lease expired without a heartbeat, its process died, or
 * the transport failed. Transient by definition — the task itself may
 * be fine — so RetryPolicy::transientFaults re-runs it.
 */
class WorkerLost : public std::runtime_error
{
  public:
    explicit WorkerLost(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Thrown by WorkerPool::execute when no worker process can serve the
 * request at all (pool disabled, every spawn failed, or shutdown).
 * Callers degrade to in-process execution.
 */
class WorkerPoolUnavailable : public std::runtime_error
{
  public:
    explicit WorkerPoolUnavailable(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * A worker-process job handler: receives the job spec and the worker's
 * own CancelToken (armed with the budget that crossed the wire).
 * Handlers run in the forked child; see the fork caveats above.
 */
using WorkerJobFn = std::function<Json(const Json &spec, CancelToken &)>;

/**
 * Register a job kind in the process-wide registry. Must happen before
 * the pool forks its workers (children inherit the registry at fork).
 * Re-registering a kind replaces the handler.
 */
void registerWorkerJob(const std::string &kind, WorkerJobFn fn);

/** @return true when @p kind has a registered handler. */
bool workerJobRegistered(const std::string &kind);

class WorkerPool
{
  public:
    /**
     * Fork the worker cluster.
     * @param workers  process count; 0 = one per hardware thread.
     * @param lease_s  heartbeat lease in seconds; 0 = G5_LEASE_MS or
     *                 the 5 s default.
     */
    explicit WorkerPool(unsigned workers = 0, double lease_s = 0);

    /** Shut down: exit messages, bounded wait, SIGKILL stragglers. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Worker count requested through the environment: G5_WORKERS unset
     * or "0" disables the process pool (in-process fallback), "auto"
     * (or empty) saturates the host, N forks N workers.
     */
    static unsigned envWorkerCount();

    /** Lease from G5_LEASE_MS (milliseconds); 5000 when unset. */
    static double envLeaseSeconds();

    /** One worker per hardware thread (the workers==0 default). */
    static unsigned defaultWorkerCount();

    /** @return true when at least one worker process is serviceable. */
    bool available() const;

    /** Live (spawned and not yet reaped) worker process count. */
    unsigned workerCount() const;

    /** PIDs of the live workers (tests SIGKILL these). */
    std::vector<int> workerPids() const;

    double leaseSeconds() const;
    void setLeaseSeconds(double s);

    /**
     * How long the monitor lets a fenced (lease-expired but alive)
     * worker keep running before SIGKILLing it. Defaults to the lease.
     * Tests raise it to observe the stale-result rejection path.
     */
    void setFenceKillGrace(double s);

    /**
     * Dispatch one job and block until its result, heartbeat-extended
     * lease expiry, or the caller's own deadline.
     *
     * @throws WorkerLost            lease expired / worker died
     *                               (transient; retry).
     * @throws WorkerPoolUnavailable no worker can serve (degrade to
     *                               local execution).
     * @throws TaskTimeout           @p token expired while waiting (the
     *                               lease is fenced first).
     * @throws std::runtime_error    the job itself failed in the worker
     *                               (same taxonomy as local execution).
     */
    Json execute(const std::string &kind, const Json &spec,
                 CancelToken *token = nullptr);

    /** Pool-level counters (spawned/lost/respawned/expiries/stale). */
    Json summary() const;

  private:
    struct Slot;
    struct Impl;

    static void monitorLoop(std::shared_ptr<Impl> impl);

    std::shared_ptr<Impl> impl;
};

} // namespace g5::scheduler

#endif // G5_SCHEDULER_WORKER_POOL_HH
