/**
 * @file
 * The 29 GPU workloads of Table IV (use-case 3), as KernelDesc
 * launches for the GCN3-style GPU model.
 *
 * Groups, with the paper's inputs:
 *  - HIP samples:   2dshfl, dynamic_shared, inline_asm, MatrixTranspose,
 *                    sharedMemory, shfl, stream, unroll
 *  - HeteroSync:    SpinMutexEBO, FAMutex, SleepMutex + *Uniq variants,
 *                    LFTreeBarrUniq, LFTreeBarrUniqLocalExch
 *                    (10 Ld/St per thread per CS, 8 WGs/CU, 2 iters)
 *  - DNNMark:       fwd/bwd bypass, bn, composed_model, pool, softmax
 *  - Proxy apps:    HACC (forceTreeTest), LULESH (1 iter), PENNANT (noh)
 *
 * Descriptor shapes follow each application's published behaviour:
 * problem sizes are scaled down uniformly (DESIGN.md's substitution
 * rule) but the *relative* structure — how much work exists versus the
 * GPU's occupancy limits, sync intensity, locality — is preserved,
 * because that is what drives Fig 9.
 */

#ifndef G5_WORKLOADS_GPU_APPS_HH
#define G5_WORKLOADS_GPU_APPS_HH

#include <string>
#include <vector>

#include "sim/gpu/gpu.hh"

namespace g5::workloads
{

/** A Table IV entry: the kernel plus its printed input-size string. */
struct GpuAppEntry
{
    sim::gpu::KernelDesc kernel;
    std::string group;      ///< "hip-samples", "heterosync", ...
    std::string inputSize;  ///< the Table IV input column
};

/** All 29 applications, in Table IV order. */
const std::vector<GpuAppEntry> &gpuApps();

/** Look up by name; throws FatalError when unknown. */
const GpuAppEntry &gpuApp(const std::string &name);

} // namespace g5::workloads

#endif // G5_WORKLOADS_GPU_APPS_HH
