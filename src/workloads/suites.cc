#include "workloads/suites.hh"

#include "base/logging.hh"

namespace g5::workloads
{

const std::vector<ParsecAppSpec> &
npbSuite()
{
    // NAS Parallel Benchmarks: dense numeric kernels, heavy barrier
    // synchronization, regular access with large working sets for the
    // memory-bound members (cg, mg, ft, is).
    static const std::vector<ParsecAppSpec> suite = {
        // name  serial items  inst mem  wsKB  loc  lock barr fp
        {"bt.S", 0.010, 9000, 180, 10, 2048, 0.80, 0, 8, true},
        {"cg.S", 0.015, 8000,  80, 18, 8192, 0.40, 0, 10, true},
        {"ep.S", 0.002, 12000, 240, 3,  128, 0.95, 0, 1, true},
        {"ft.S", 0.020, 8000, 120, 14, 8192, 0.55, 0, 6, true},
        {"is.S", 0.010, 9000,  50, 16, 4096, 0.35, 0, 4, false},
        {"lu.S", 0.020, 9000, 150, 12, 2048, 0.75, 0, 12, true},
        {"mg.S", 0.015, 8000, 100, 15, 8192, 0.50, 0, 8, true},
        {"sp.S", 0.015, 9000, 160, 11, 2048, 0.78, 0, 10, true},
    };
    return suite;
}

const std::vector<ParsecAppSpec> &
gapbsSuite()
{
    // GAP Benchmark Suite: irregular graph kernels, pointer-chasing
    // access (low locality), little lock traffic, few barriers per
    // super-step.
    static const std::vector<ParsecAppSpec> suite = {
        // name  serial items  inst mem  wsKB  loc  lock barr fp
        {"bfs",  0.020, 10000, 40, 16, 8192, 0.25, 0, 6, false},
        {"sssp", 0.020, 9000,  60, 16, 8192, 0.25, 16, 6, false},
        {"pr",   0.010, 10000, 70, 14, 8192, 0.35, 0, 8, true},
        {"cc",   0.015, 9000,  50, 15, 8192, 0.28, 0, 6, false},
        {"bc",   0.025, 8000,  80, 16, 8192, 0.30, 0, 8, true},
        {"tc",   0.010, 8000, 110, 12, 4096, 0.45, 0, 2, false},
    };
    return suite;
}

const ParsecAppSpec &
suiteApp(const std::vector<ParsecAppSpec> &suite, const std::string &name)
{
    for (const auto &app : suite)
        if (app.name == name)
            return app;
    fatal("unknown suite application '" + name + "'");
}

} // namespace g5::workloads
