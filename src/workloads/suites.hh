/**
 * @file
 * Additional full-system benchmark suites from the Table I catalog:
 * the NAS Parallel Benchmarks (npb) and the GAP Benchmark Suite
 * (gapbs).
 *
 * Both reuse the synthetic-application machinery of the PARSEC
 * generator (an application = parallel structure + working set +
 * compute/memory mix, compiled to SimISA by an OS profile's toolchain)
 * with suite-appropriate characteristics: NPB kernels are barrier-
 * synchronized dense numeric loops; GAPBS kernels are irregular,
 * memory-latency-bound graph traversals.
 */

#ifndef G5_WORKLOADS_SUITES_HH
#define G5_WORKLOADS_SUITES_HH

#include "workloads/parsec.hh"

namespace g5::workloads
{

/** The eight NPB kernels/pseudo-apps (class S scaled). */
const std::vector<ParsecAppSpec> &npbSuite();

/** The six GAPBS graph kernels. */
const std::vector<ParsecAppSpec> &gapbsSuite();

/** Look up by name across a given suite; throws FatalError on junk. */
const ParsecAppSpec &suiteApp(const std::vector<ParsecAppSpec> &suite,
                              const std::string &name);

} // namespace g5::workloads

#endif // G5_WORKLOADS_SUITES_HH
