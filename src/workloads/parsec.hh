/**
 * @file
 * The PARSEC-like benchmark suite of use-case 1, generated as SimISA
 * binaries by a synthetic "compiler".
 *
 * The paper's Fig 6/7 effect is an artifact of the *software stack*
 * baked into the disk image: Ubuntu 20.04 ships GCC 9.3 and a newer
 * runtime, Ubuntu 18.04 ships GCC 7.4. We reproduce the mechanism, not
 * the numbers: a CompilerProfile changes the emitted instruction stream
 * (more instructions under the newer compiler, but better memory
 * layout), and an OsProfile changes the runtime's synchronization
 * behaviour (adaptive spinning before futex sleeps). The binaries land
 * on the disk image, so the OS difference travels with the image —
 * exactly as in the paper.
 *
 * Each application is characterized by its parallel structure (Amdahl
 * serial fraction, barrier phases, lock frequency), working-set size,
 * and compute/memory mix; the ten applications of Table II get
 * distinct, documented profiles.
 */

#ifndef G5_WORKLOADS_PARSEC_HH
#define G5_WORKLOADS_PARSEC_HH

#include <string>
#include <vector>

#include "sim/isa/program.hh"

namespace g5::workloads
{

/** A synthetic compiler: how source becomes SimISA. */
struct CompilerProfile
{
    std::string name;        ///< e.g. "gcc-7.4"
    double instMultiplier;   ///< dynamic instruction scale vs baseline
    unsigned unrollFactor;   ///< loop unrolling (fewer branches, more ILP)
    double layoutLocality;   ///< extra sequential-access fraction
    unsigned spillOps;       ///< register spills: stack traffic per item
};

/** A userland: compiler + runtime behaviour. */
struct OsProfile
{
    std::string name;        ///< "ubuntu-18.04"
    std::string release;     ///< "18.04"
    std::string kernel;      ///< the paired kernel version
    CompilerProfile compiler;
    /** Spin iterations before a lock/barrier waiter futex-sleeps. */
    unsigned adaptiveSpin;
};

/** Ubuntu 18.04 LTS: GCC 7.4, kernel 4.15.18, eager-sleep runtime. */
OsProfile ubuntu1804();

/** Ubuntu 20.04 LTS: GCC 9.3, kernel 5.4.51, adaptive-spin runtime. */
OsProfile ubuntu2004();

/** Static characteristics of one PARSEC application (simmedium). */
struct ParsecAppSpec
{
    std::string name;
    double serialFraction;    ///< work done single-threaded
    std::uint64_t workItems;  ///< parallel work units
    unsigned instPerItem;     ///< baseline ALU ops per item
    unsigned memPerItem;      ///< memory ops per item
    unsigned workingSetKB;    ///< per-thread working set
    double locality;          ///< baseline sequential-access fraction
    unsigned lockEveryItems;  ///< items between lock acquisitions (0 = none)
    unsigned barrierPhases;   ///< barrier-delimited phases
    bool fpHeavy;             ///< dominant op class
};

/** The ten applications of Table II (x264/facesim/canneal excluded,
 *  as in the paper — they crash outside the simulator too). */
const std::vector<ParsecAppSpec> &parsecSuite();

/** Look up an app by name; throws FatalError when unknown. */
const ParsecAppSpec &parsecApp(const std::string &name);

/**
 * "Compile" @p app for @p os: emit the SimISA binary whose main thread
 * marks the ROI with m5 work-begin/end, spawns nthreads-1 workers
 * (nthreads arrives at runtime in r1), runs the parallel phases with
 * ticket locks and futex barriers, and exits.
 */
sim::isa::ProgramPtr compileParsecApp(const ParsecAppSpec &app,
                                      const OsProfile &os);

} // namespace g5::workloads

#endif // G5_WORKLOADS_PARSEC_HH
