#include "workloads/gpu_apps.hh"

#include "base/logging.hh"

namespace g5::workloads
{

using sim::gpu::KernelDesc;
using sim::gpu::MutexKind;

namespace
{

KernelDesc
kernel(const std::string &name, unsigned wgs, unsigned waves_per_wg,
       unsigned iters, unsigned valu, unsigned vmem, unsigned lds,
       unsigned salu, unsigned barriers, double l1_loc, double l2_loc,
       unsigned vgprs = 256)
{
    KernelDesc k;
    k.name = name;
    k.numWorkgroups = wgs;
    k.wavesPerWg = waves_per_wg;
    k.iterations = iters;
    k.valuPerIter = valu;
    k.vmemPerIter = vmem;
    k.ldsOpsPerIter = lds;
    k.saluPerIter = salu;
    k.barriersPerIter = barriers;
    k.l1Locality = l1_loc;
    k.l2Locality = l2_loc;
    k.vgprsPerWave = vgprs;
    return k;
}

KernelDesc
mutexKernel(const std::string &name, MutexKind kind, bool uniq)
{
    // HeteroSync shape: 8 WGs/CU x 4 CUs, 10 Ld/St per thread per CS,
    // 2 iterations. Global variants use one lock; Uniq variants give
    // each workgroup its own lock (contention only inside the WG).
    KernelDesc k;
    k.name = name;
    k.mutexKind = kind;
    k.iterations = 2;
    k.csPerIter = 4;
    k.csMemOps = 10;
    k.valuPerIter = 4;
    k.l1Locality = 0.3;
    k.l2Locality = 0.6;
    k.vgprsPerWave = 64;
    k.sgprsPerWave = 64;
    k.numWorkgroups = 32;
    k.wavesPerWg = 1;
    if (uniq) {
        // The "Uniq" variants give each workgroup its own mutex, but
        // HeteroSync allocates the mutex array contiguously, so the
        // per-WG locks false-share cache lines: contention is reduced,
        // not eliminated. Modeled as lighter traffic on the shared
        // lock lines.
        k.csPerIter = 2;
        k.csMemOps = 6;
    }
    return k;
}

std::vector<GpuAppEntry>
buildApps()
{
    std::vector<GpuAppEntry> apps;
    auto add = [&](KernelDesc k, const std::string &group,
                   const std::string &input) {
        apps.push_back(GpuAppEntry{std::move(k), group, input});
    };

    // --- HIP samples ---
    add(kernel("2dshfl", 1, 1, 4, 10, 2, 0, 2, 0, 0.8, 0.9, 64),
        "hip-samples", "4x4");
    add(kernel("dynamic_shared", 1, 4, 8, 8, 2, 8, 2, 1, 0.8, 0.9, 128),
        "hip-samples", "16x16");
    add(kernel("inline_asm", 256, 4, 2, 24, 2, 0, 4, 0, 0.75, 0.8, 512),
        "hip-samples", "1024x1024");
    add(kernel("MatrixTranspose", 128, 4, 2, 6, 8, 0, 2, 0, 0.45, 0.6,
               640),
        "hip-samples", "1024x1024");
    add(kernel("sharedMemory", 8, 4, 2, 20, 3, 10, 2, 1, 0.7, 0.8, 512),
        "hip-samples", "64x64");
    add(kernel("shfl", 1, 1, 4, 10, 2, 0, 2, 0, 0.8, 0.9, 64),
        "hip-samples", "4x4");
    add(kernel("stream", 64, 4, 4, 4, 8, 0, 2, 0, 0.40, 0.55, 640),
        "hip-samples", "32x32");
    add(kernel("unroll", 1, 2, 4, 16, 2, 0, 2, 0, 0.8, 0.9, 96),
        "hip-samples", "4x4");

    // --- HeteroSync ---
    const char *hs_input = "10 Ld/St/thr/CS, 8 WGs/CU, 2 iters";
    add(mutexKernel("SpinMutexEBO", MutexKind::SpinEbo, false),
        "heterosync", hs_input);
    add(mutexKernel("FAMutex", MutexKind::FetchAdd, false),
        "heterosync", hs_input);
    add(mutexKernel("SleepMutex", MutexKind::Sleep, false),
        "heterosync", hs_input);
    add(mutexKernel("SpinMutexEBOUniq", MutexKind::SpinEbo, true),
        "heterosync", hs_input);
    add(mutexKernel("FAMutexUniq", MutexKind::FetchAdd, true),
        "heterosync", hs_input);
    add(mutexKernel("SleepMutexUniq", MutexKind::Sleep, true),
        "heterosync", hs_input);
    {
        // The tree barriers synchronize the whole grid through atomic
        // exchange chains: globally contended, like the mutexes.
        KernelDesc k = mutexKernel("LFTreeBarrUniq", MutexKind::SpinEbo,
                                   false);
        k.csPerIter = 8;
        k.csMemOps = 6;
        k.valuPerIter = 6;
        add(std::move(k), "heterosync",
            "10 Ld/St/thr/barrier, 8 WGs/CU, 2 iters");
    }
    {
        KernelDesc k = mutexKernel("LFTreeBarrUniqLocalExch",
                                   MutexKind::SpinEbo, false);
        k.csPerIter = 8;
        k.csMemOps = 4;      // the local-exchange variant moves less
        k.ldsOpsPerIter = 8; // global data, more LDS traffic
        k.valuPerIter = 6;
        add(std::move(k), "heterosync",
            "10 Ld/St/thr/barrier, 8 WGs/CU, 2 iters");
    }

    // --- DNNMark ---
    add(kernel("bwd_bypass", 48, 4, 2, 10, 4, 0, 2, 0, 0.85, 0.8, 1024),
        "dnnmark", "NCHW = 100, 1000, 1, 1");
    add(kernel("bwd_bn", 48, 4, 2, 20, 6, 0, 2, 2, 0.8, 0.75, 1024),
        "dnnmark", "NCHW = 100, 1000, 1, 1");
    add(kernel("bwd_composed_model", 3, 2, 2, 12, 4, 0, 2, 1, 0.7, 0.8),
        "dnnmark", "NCHW = 32, 32, 3, 1");
    add(kernel("bwd_pool", 192, 4, 2, 3, 12, 0, 1, 0, 0.85, 0.25),
        "dnnmark", "NCHW = 100, 3, 256, 256");
    add(kernel("bwd_softmax", 48, 4, 2, 50, 5, 0, 2, 1, 0.65, 0.7, 1024),
        "dnnmark", "NCHW = 100, 1000, 1, 1");
    add(kernel("fwd_bypass", 48, 4, 2, 10, 4, 0, 2, 0, 0.85, 0.8, 1024),
        "dnnmark", "NCHW = 100, 1000, 1, 1");
    add(kernel("fwd_bn", 48, 4, 2, 20, 6, 0, 2, 2, 0.8, 0.75, 1024),
        "dnnmark", "NCHW = 100, 1000, 1, 1");
    add(kernel("fwd_composed_model", 3, 2, 2, 12, 4, 0, 2, 1, 0.7, 0.8),
        "dnnmark", "NCHW = 32, 32, 3, 1");
    add(kernel("fwd_pool", 192, 4, 2, 3, 12, 0, 1, 0, 0.85, 0.25),
        "dnnmark", "NCHW = 100, 3, 256, 256");
    add(kernel("fwd_softmax", 48, 4, 2, 50, 5, 0, 2, 1, 0.65, 0.7, 1024),
        "dnnmark", "NCHW = 100, 1000, 1, 1");

    // --- DOE proxy applications ---
    add(kernel("HACC", 4, 4, 3, 20, 4, 0, 4, 1, 0.7, 0.8),
        "proxy-apps", "(forceTreeTest) 0.5 0.1 64 0.1 100 N 12 rcb");
    add(kernel("LULESH", 4, 4, 2, 16, 6, 0, 4, 2, 0.65, 0.75),
        "proxy-apps", "1 iteration");
    add(kernel("PENNANT", 96, 4, 2, 14, 6, 0, 4, 1, 0.6, 0.7, 800),
        "proxy-apps", "noh");

    return apps;
}

} // anonymous namespace

const std::vector<GpuAppEntry> &
gpuApps()
{
    static const std::vector<GpuAppEntry> apps = buildApps();
    return apps;
}

const GpuAppEntry &
gpuApp(const std::string &name)
{
    for (const auto &app : gpuApps())
        if (app.kernel.name == name)
            return app;
    fatal("unknown GPU application '" + name + "'");
}

} // namespace g5::workloads
