#include "workloads/parsec.hh"

#include <cmath>

#include "base/logging.hh"
#include "sim/fs/guest_abi.hh"
#include "sim/isa/builder.hh"

namespace g5::workloads
{

using sim::isa::ProgramBuilder;
using sim::isa::ProgramPtr;
using namespace sim::fs; // syscall/m5 numbers

OsProfile
ubuntu1804()
{
    return OsProfile{
        "ubuntu-18.04",
        "18.04",
        "4.15.18",
        // GCC 7.4: fewer dynamic instructions, but poorer data layout
        // (no interprocedural layout optimization) and more register
        // spills around the hot loops.
        CompilerProfile{"gcc-7.4", 1.00, 2, 0.00, 6},
        4, // the older runtime futex-sleeps almost immediately
    };
}

OsProfile
ubuntu2004()
{
    return OsProfile{
        "ubuntu-20.04",
        "20.04",
        "5.4.51",
        // GCC 9.3: more aggressive unrolling/vectorized prologues emit
        // more dynamic instructions, but data layout improves markedly
        // and spills mostly disappear.
        CompilerProfile{"gcc-9.3", 1.12, 4, 0.10, 1},
        64, // adaptive mutex/barrier spinning before sleeping
    };
}

const std::vector<ParsecAppSpec> &
parsecSuite()
{
    // The ten Table II applications. Shapes follow each program's
    // published characterization (Bienia'11): serial fraction, sync
    // style, working set, and compute/memory balance.
    static const std::vector<ParsecAppSpec> suite = {
        // name          serial  items  inst mem  wsKB  loc  lock barr fp
        {"blackscholes", 0.010, 16384, 180,  6,   512, 0.85,   0,  1, true},
        {"bodytrack",    0.050,  9000, 140, 10,  1024, 0.75,  64,  6, true},
        {"dedup",        0.080, 12000,  90, 14,  4096, 0.55,  16,  1, false},
        {"ferret",       0.040, 10000, 160, 12,  2048, 0.70,  32,  2, true},
        {"fluidanimate", 0.020, 12000, 110, 12,  1024, 0.72, 128,  8, true},
        {"freqmine",     0.060, 14000, 100, 16,  8192, 0.50,   0,  2, false},
        {"raytrace",     0.030, 10000, 200,  8,  2048, 0.80,   0,  1, true},
        {"streamcluster",0.015, 16000,  70, 18,  8192, 0.45,   0, 12, false},
        {"swaptions",    0.005, 12000, 220,  5,   256, 0.88,   0,  1, true},
        {"vips",         0.045, 11000, 120, 11,  2048, 0.68,  64,  3, false},
    };
    return suite;
}

const ParsecAppSpec &
parsecApp(const std::string &name)
{
    for (const auto &app : parsecSuite())
        if (app.name == name)
            return app;
    fatal("unknown PARSEC application '" + name + "'");
}

namespace
{

// Guest address map of the generated process.
constexpr std::int64_t ctrlBase = 0x5000'0000;
constexpr std::int64_t ctrlNthreads = ctrlBase + 0;
constexpr std::int64_t ctrlTicket = ctrlBase + 64;   // own blocks: no
constexpr std::int64_t ctrlServing = ctrlBase + 128; // false sharing
constexpr std::int64_t ctrlBarCount = ctrlBase + 192;
constexpr std::int64_t ctrlBarGen = ctrlBase + 256;
constexpr std::int64_t ctrlDone = ctrlBase + 320;
constexpr std::int64_t sharedBase = 0x6000'0000;  // lock-protected data
constexpr std::int64_t dataBase = 0x7000'0000;    // per-thread arrays

// Register conventions inside generated code.
constexpr int rZero = 9;
constexpr int rTid = 4;
constexpr int rN = 5;
constexpr int rItems = 6;
constexpr int rItem = 7;
constexpr int rSeqPtr = 8;
constexpr int rLcg = 20;
constexpr int rMask = 21;
constexpr int rPhase = 22;
constexpr int rBase = 26;   ///< this thread's array base address

/** Emit `count` ALU ops rotated over `unroll` accumulator chains. */
void
emitCompute(ProgramBuilder &pb, unsigned count, unsigned unroll, bool fp)
{
    // Accumulators r10..r10+unroll-1 (unroll <= 8).
    unsigned chains = std::min(unroll, 8u);
    for (unsigned i = 0; i < count; ++i) {
        int acc = int(10 + (i % chains));
        switch (i % 4) {
          case 0:
            if (fp)
                pb.fmul(acc, acc, rLcg);
            else
                pb.mul(acc, acc, rLcg);
            break;
          case 1:
            pb.addi(acc, acc, 0x9e37);
            break;
          case 2:
            if (fp)
                pb.fadd(acc, acc, rItem);
            else
                pb.xor_(acc, acc, rItem);
            break;
          case 3:
            pb.add(acc, acc, rTid);
            break;
        }
    }
}

/** Emit the data-region setup: rBase = this thread's array, rSeqPtr =
 *  walk offset, rMask = working-set byte mask (power of two - 8). */
void
emitDataSetup(ProgramBuilder &pb, const ParsecAppSpec &app)
{
    std::int64_t ws_bytes = std::int64_t(app.workingSetKB) * 1024;
    std::int64_t mask = 1;
    while (mask * 2 <= ws_bytes)
        mask *= 2;
    pb.movi(rMask, mask - 8);
    pb.movi(rBase, dataBase);
    pb.movi(14, 1 << 21); // 2 MiB per-thread array stride
    pb.mul(14, rTid, 14);
    pb.add(rBase, rBase, 14);
    pb.movi(rSeqPtr, 0);
    pb.movi(10, 1);
    pb.movi(11, 2);
    pb.movi(12, 3);
    pb.movi(13, 5);
}

/** Emit the per-item memory accesses: a sequential walk for the local
 *  fraction and LCG-scattered reads across the working set otherwise. */
void
emitMemOps(ProgramBuilder &pb, const ParsecAppSpec &app,
           double seq_fraction, unsigned spill_ops)
{
    // Register spills: repeated traffic to the same stack slot (hits
    // L1 after the first touch, but each access still pays latency on
    // a timing CPU and occupies issue slots everywhere).
    for (unsigned i = 0; i < spill_ops; ++i) {
        if (i % 2 == 0)
            pb.st(rBase, -64, 10);
        else
            pb.ld(11, rBase, -64);
    }

    unsigned seq_ops =
        unsigned(std::lround(app.memPerItem * seq_fraction));
    if (seq_ops > app.memPerItem)
        seq_ops = app.memPerItem;
    unsigned rnd_ops = app.memPerItem - seq_ops;

    // Sequential: consecutive words — 8 per 64B block hit in L1.
    if (seq_ops > 0) {
        pb.add(18, rBase, rSeqPtr);
        for (unsigned i = 0; i < seq_ops; ++i) {
            if (i % 3 == 2)
                pb.st(18, std::int64_t(i) * 8, 10);
            else
                pb.ld(11, 18, std::int64_t(i) * 8);
        }
        pb.addi(rSeqPtr, rSeqPtr, std::int64_t(seq_ops) * 8);
        pb.and_(rSeqPtr, rSeqPtr, rMask);
    }

    // Scattered: LCG over the working set (capacity misses when the
    // working set exceeds the cache).
    for (unsigned i = 0; i < rnd_ops; ++i) {
        pb.muli(rLcg, rLcg, 6364136223846793005LL);
        pb.addi(rLcg, rLcg, 1442695040888963407LL);
        pb.and_(15, rLcg, rMask);
        pb.add(16, rBase, 15);
        if (i % 4 == 3)
            pb.st(16, 0, 10);
        else
            pb.ld(11, 16, 0);
    }
}

/** Emit a ticket-lock acquire/critical-section/release sequence. */
void
emitLockedSection(ProgramBuilder &pb, const OsProfile &os)
{
    // ticket = fetch_add(ticketCounter, 1)
    pb.movi(14, ctrlTicket);
    pb.movi(15, 1);
    pb.amo(24, 14, 0, 15);

    auto spin = pb.newLabel();
    auto acquired = pb.newLabel();
    pb.bind(spin);
    pb.movi(14, ctrlServing);
    pb.ld(16, 14, 0);
    pb.beq(16, 24, acquired);

    // Adaptive spinning (runtime-dependent) before futex-sleeping.
    pb.movi(23, std::int64_t(os.adaptiveSpin));
    auto spin_body = pb.newLabel();
    auto spin_done = pb.newLabel();
    pb.bind(spin_body);
    pb.beq(23, rZero, spin_done);
    pb.pause();
    pb.ld(16, 14, 0);
    pb.beq(16, 24, acquired);
    pb.addi(23, 23, -1);
    pb.jmp(spin_body);
    pb.bind(spin_done);

    pb.movi(1, ctrlServing);
    pb.mov(2, 16);
    pb.syscall(SYS_FUTEX_WAIT);
    pb.jmp(spin);

    pb.bind(acquired);
    // Critical section: touch contended shared blocks.
    pb.movi(14, sharedBase);
    pb.st(14, 0, 24);
    pb.ld(16, 14, 64);
    pb.st(14, 128, 16);
    pb.st(14, 192, 24);
    // Release: serving++ and wake waiters.
    pb.movi(14, ctrlServing);
    pb.movi(15, 1);
    pb.amo(16, 14, 0, 15);
    pb.movi(1, ctrlServing);
    pb.movi(2, 64);
    pb.syscall(SYS_FUTEX_WAKE);
}

/** Emit a sense-reversing futex barrier across all nthreads. */
void
emitBarrier(ProgramBuilder &pb, const OsProfile &os)
{
    auto not_last = pb.newLabel();
    auto done = pb.newLabel();

    pb.movi(14, ctrlBarGen);
    pb.ld(17, 14, 0);              // my generation
    pb.movi(14, ctrlBarCount);
    pb.movi(15, 1);
    pb.amo(18, 14, 0, 15);         // old count
    pb.addi(18, 18, 1);
    pb.blt(18, rN, not_last);

    // Last arriver: reset the count, bump the generation, wake all.
    pb.st(14, 0, rZero);
    pb.movi(14, ctrlBarGen);
    pb.movi(15, 1);
    pb.amo(16, 14, 0, 15);
    pb.movi(1, ctrlBarGen);
    pb.movi(2, 64);
    pb.syscall(SYS_FUTEX_WAKE);
    pb.jmp(done);

    pb.bind(not_last);
    auto wait_loop = pb.newLabel();
    pb.bind(wait_loop);
    pb.movi(14, ctrlBarGen);
    pb.ld(19, 14, 0);
    pb.bne(19, 17, done);          // generation advanced

    pb.movi(23, std::int64_t(os.adaptiveSpin));
    auto spin_body = pb.newLabel();
    auto spin_out = pb.newLabel();
    pb.bind(spin_body);
    pb.beq(23, rZero, spin_out);
    pb.pause();
    pb.ld(19, 14, 0);
    pb.bne(19, 17, done);
    pb.addi(23, 23, -1);
    pb.jmp(spin_body);
    pb.bind(spin_out);

    pb.movi(1, ctrlBarGen);
    pb.mov(2, 17);
    pb.syscall(SYS_FUTEX_WAIT);
    pb.jmp(wait_loop);

    pb.bind(done);
}

/** Emit the parallel worker body (main inlines it too, as tid 0). */
void
emitWorkerBody(ProgramBuilder &pb, const ParsecAppSpec &app,
               const OsProfile &os, std::uint64_t parallel_items,
               unsigned inst_per_item)
{
    double seq_fraction =
        std::min(0.98, app.locality + os.compiler.layoutLocality);

    // Per-thread setup.
    pb.movi(rLcg, 0x243F6A8885A308D3LL);
    pb.add(rLcg, rLcg, rTid);
    emitDataSetup(pb, app);

    // items per thread = parallel_items / nthreads
    pb.movi(rItems, std::int64_t(parallel_items));
    pb.div(rItems, rItems, rN);

    // phases
    pb.movi(rPhase, std::int64_t(app.barrierPhases));
    auto phase_loop = pb.newLabel();
    auto phase_done = pb.newLabel();
    pb.bind(phase_loop);
    pb.beq(rPhase, rZero, phase_done);

    // items per phase = items / phases
    pb.movi(14, std::int64_t(app.barrierPhases));
    pb.div(rItem, rItems, 14);
    auto item_loop = pb.newLabel();
    auto item_done = pb.newLabel();
    pb.bind(item_loop);
    pb.beq(rItem, rZero, item_done);

    emitCompute(pb, inst_per_item, os.compiler.unrollFactor,
                app.fpHeavy);
    emitMemOps(pb, app, seq_fraction, os.compiler.spillOps);

    if (app.lockEveryItems > 0) {
        // Every Nth item acquires the global lock (N a power of two).
        auto skip_lock = pb.newLabel();
        pb.movi(14, std::int64_t(app.lockEveryItems - 1));
        pb.and_(15, rItem, 14);
        pb.bne(15, rZero, skip_lock);
        emitLockedSection(pb, os);
        pb.bind(skip_lock);
    }

    pb.addi(rItem, rItem, -1);
    pb.jmp(item_loop);
    pb.bind(item_done);

    emitBarrier(pb, os);
    pb.addi(rPhase, rPhase, -1);
    pb.jmp(phase_loop);
    pb.bind(phase_done);
}

} // anonymous namespace

ProgramPtr
compileParsecApp(const ParsecAppSpec &app, const OsProfile &os)
{
    ProgramBuilder pb("parsec-" + app.name + "-" + os.name);
    pb.movi(rZero, 0);

    unsigned inst_per_item = unsigned(
        std::lround(app.instPerItem * os.compiler.instMultiplier));
    auto serial_items =
        std::uint64_t(double(app.workItems) * app.serialFraction);
    std::uint64_t parallel_items = app.workItems - serial_items;

    auto worker_entry = pb.newLabel();
    auto main_start = pb.newLabel();
    pb.jmp(main_start);

    // ---- worker thread: r1 = tid ----
    pb.bind(worker_entry);
    pb.mov(rTid, 1);
    pb.movi(14, ctrlNthreads);
    pb.ld(rN, 14, 0);
    emitWorkerBody(pb, app, os, parallel_items, inst_per_item);
    pb.movi(14, ctrlDone);
    pb.movi(15, 1);
    pb.amo(16, 14, 0, 15);
    pb.movi(1, ctrlDone);
    pb.movi(2, 64);
    pb.syscall(SYS_FUTEX_WAKE);
    pb.movi(1, 0);
    pb.syscall(SYS_EXIT);

    // ---- main thread: r1 = nthreads ----
    pb.bind(main_start);
    pb.mov(rN, 1);
    pb.movi(14, ctrlNthreads);
    pb.st(14, 0, rN);
    pb.movi(1, pb.str(app.name + ": starting (simmedium, " +
                      os.compiler.name + ")"));
    pb.syscall(SYS_WRITE);
    pb.m5op(M5_WORK_BEGIN);

    // Spawn workers 1..n-1.
    pb.movi(25, 1);
    auto spawn_loop = pb.newLabel();
    auto spawn_done = pb.newLabel();
    pb.bind(spawn_loop);
    pb.bge(25, rN, spawn_done);
    pb.moviLabel(1, worker_entry);
    pb.mov(2, 25);
    pb.syscall(SYS_SPAWN);
    pb.addi(25, 25, 1);
    pb.jmp(spawn_loop);
    pb.bind(spawn_done);

    // Serial (Amdahl) portion runs on the main thread.
    pb.movi(rTid, 0);
    if (serial_items > 0) {
        pb.movi(rLcg, 0x13198A2E03707344LL);
        emitDataSetup(pb, app);
        pb.movi(rItem, std::int64_t(serial_items));
        auto serial_loop = pb.newLabel();
        auto serial_done = pb.newLabel();
        pb.bind(serial_loop);
        pb.beq(rItem, rZero, serial_done);
        emitCompute(pb, inst_per_item, os.compiler.unrollFactor,
                    app.fpHeavy);
        emitMemOps(pb, app,
                   std::min(0.98,
                            app.locality + os.compiler.layoutLocality),
                   os.compiler.spillOps);
        pb.addi(rItem, rItem, -1);
        pb.jmp(serial_loop);
        pb.bind(serial_done);
    }

    // Main participates as tid 0.
    emitWorkerBody(pb, app, os, parallel_items, inst_per_item);

    // Wait for the workers.
    pb.movi(14, ctrlDone);
    auto join_loop = pb.newLabel();
    auto join_done = pb.newLabel();
    pb.bind(join_loop);
    pb.ld(16, 14, 0);
    pb.addi(17, rN, -1);
    pb.bge(16, 17, join_done);
    pb.movi(1, ctrlDone);
    pb.mov(2, 16);
    pb.syscall(SYS_FUTEX_WAIT);
    pb.jmp(join_loop);
    pb.bind(join_done);

    pb.m5op(M5_WORK_END);
    pb.movi(1, pb.str(app.name + ": ROI complete"));
    pb.syscall(SYS_WRITE);
    pb.movi(1, 0);
    pb.syscall(SYS_EXIT);

    return pb.finish();
}

} // namespace g5::workloads
