#include "resources/packer.hh"

namespace g5::resources
{

PackerBuilder::PackerBuilder(std::string template_name)
    : templateName(std::move(template_name))
{
    osInfo = Json::object();
}

PackerBuilder &
PackerBuilder::baseOs(const std::string &name, const std::string &release,
                      const std::string &kernel,
                      const std::string &compiler)
{
    osInfo["name"] = name;
    osInfo["release"] = release;
    osInfo["kernel"] = kernel;
    osInfo["compiler"] = compiler;
    return *this;
}

PackerBuilder &
PackerBuilder::provision(const std::string &step_name, Step step)
{
    steps.emplace_back(step_name, std::move(step));
    return *this;
}

PackerBuilder &
PackerBuilder::file(const std::string &path, const std::string &contents)
{
    return provision("file: " + path,
                     [path, contents](sim::fs::DiskImage &img) {
                         img.addDataFile(path, contents);
                     });
}

sim::fs::DiskImagePtr
PackerBuilder::build() const
{
    auto img = std::make_shared<sim::fs::DiskImage>();
    img->setOsInfo(osInfo);
    img->addProvenance("packer template: " + templateName);
    for (const auto &step : steps) {
        step.second(*img);
        img->addProvenance(step.first);
    }
    return img;
}

Json
PackerBuilder::templateJson() const
{
    Json j = Json::object();
    j["template"] = templateName;
    j["os"] = osInfo;
    Json names = Json::array();
    for (const auto &step : steps)
        names.push(step.first);
    j["provisioners"] = std::move(names);
    return j;
}

} // namespace g5::resources
