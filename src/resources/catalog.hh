/**
 * @file
 * The g5-resources catalog — the Table I inventory of known-good
 * simulation inputs, with the metadata the paper's resource listing
 * carries (name, type, description) plus the machinery to materialize
 * each resource as concrete files (disk images, kernel binaries, run
 * configurations).
 *
 * Proprietary suites (SPEC CPU 2006/2017) follow the paper's policy:
 * the catalog carries the build scripts, but materializing the disk
 * image requires the caller to present a licensed source (simulated by
 * a licence token), otherwise materialization refuses.
 */

#ifndef G5_RESOURCES_CATALOG_HH
#define G5_RESOURCES_CATALOG_HH

#include <optional>
#include <string>
#include <vector>

#include "base/json.hh"
#include "sim/fs/disk_image.hh"

namespace g5::resources
{

/** Resource classes from Table I. */
enum class ResourceType {
    Benchmark,
    BenchmarkTest,  ///< "Benchmark / Test" (boot-exit)
    Test,
    Kernel,
    Application,
    Environment,
};

const char *resourceTypeName(ResourceType t);

/** One catalog row (a Table I entry). */
struct ResourceEntry
{
    std::string name;
    ResourceType type;
    std::string description;
    /** The gem5 variant it targets ("", or "GCN3_X86"). */
    std::string variant;
    /** True when licensing forbids shipping pre-built images. */
    bool requiresLicense = false;

    Json toJson() const;
};

/** The full Table I catalog (16 entries, in table order). */
const std::vector<ResourceEntry> &catalog();

/** Look up an entry by name; nullptr when unknown. */
const ResourceEntry *findResource(const std::string &name);

/**
 * Materializers: build the actual artifact bytes for the resources the
 * use cases consume. Each returns deterministic content, so artifact
 * hashes are stable.
 */

/** Build the boot-exit disk image (use-case 2). */
sim::fs::DiskImagePtr buildBootExitImage();

/**
 * Build the hack-back disk image: a checkpoint is taken right after
 * boot, then the guest executes a host-provided script (program index
 * 0 on the image). Restore the checkpoint against an image built with
 * a different @p host_script to run new work without re-booting.
 * @param host_script the script to install; nullptr installs a default
 *        "hello from hack-back" script.
 */
sim::fs::DiskImagePtr
buildHackBackImage(sim::isa::ProgramPtr host_script = nullptr);

/**
 * Build a PARSEC disk image for the given Ubuntu release ("18.04" or
 * "20.04") — benchmarks compiled with that release's toolchain
 * (use-case 1).
 */
sim::fs::DiskImagePtr buildParsecImage(const std::string &ubuntu_release);

/** Build the NPB disk image (class S, Ubuntu 18.04 toolchain). */
sim::fs::DiskImagePtr buildNpbImage();

/** Build the GAPBS disk image (Ubuntu 18.04 toolchain). */
sim::fs::DiskImagePtr buildGapbsImage();

/**
 * Build a SPEC CPU disk image ("2006" or "2017").
 * @param license_iso a caller-provided licensed source token; pass
 *        std::nullopt to observe the licensing refusal.
 * @throws FatalError when no licence token is supplied.
 */
sim::fs::DiskImagePtr buildSpecImage(const std::string &year,
                                     std::optional<std::string> license_iso);

/** The linux-kernel resource: supported version strings. */
const std::vector<std::string> &supportedKernels();

} // namespace g5::resources

#endif // G5_RESOURCES_CATALOG_HH
