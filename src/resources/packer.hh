/**
 * @file
 * PackerBuilder — the Packer substitute: scripted, reproducible disk
 * image builds.
 *
 * A build is a named template plus an ordered list of provisioning
 * steps; running it produces an S5DK DiskImage whose provenance section
 * records every step, so anyone holding the template can regenerate a
 * bit-identical image (the role Packer scripts play in gem5-resources).
 */

#ifndef G5_RESOURCES_PACKER_HH
#define G5_RESOURCES_PACKER_HH

#include <functional>
#include <string>
#include <vector>

#include "base/json.hh"
#include "sim/fs/disk_image.hh"

namespace g5::resources
{

class PackerBuilder
{
  public:
    using Step = std::function<void(sim::fs::DiskImage &)>;

    explicit PackerBuilder(std::string template_name);

    /** Set the base OS the image installs ("ubuntu", "18.04", ...). */
    PackerBuilder &baseOs(const std::string &name,
                          const std::string &release,
                          const std::string &kernel,
                          const std::string &compiler);

    /** Add a named provisioning step (an "inline shell" equivalent). */
    PackerBuilder &provision(const std::string &step_name, Step step);

    /** Add a plain file (a "file provisioner"). */
    PackerBuilder &file(const std::string &path,
                        const std::string &contents);

    /** Run the template. May be called repeatedly; deterministic. */
    sim::fs::DiskImagePtr build() const;

    /** The template itself, as JSON (the "Packer script"). */
    Json templateJson() const;

  private:
    std::string templateName;
    Json osInfo;
    std::vector<std::pair<std::string, Step>> steps;
};

} // namespace g5::resources

#endif // G5_RESOURCES_PACKER_HH
