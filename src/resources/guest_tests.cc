#include "resources/guest_tests.hh"

#include "resources/packer.hh"
#include "sim/fs/guest_abi.hh"
#include "sim/isa/builder.hh"

namespace g5::resources
{

using sim::isa::ProgramBuilder;
using sim::isa::ProgramPtr;
using namespace sim::fs;

namespace
{

/**
 * Check helper: compare r10 against an expected constant; on mismatch
 * fail the run with the check's ordinal as the exit code.
 */
class TestWriter
{
  public:
    explicit TestWriter(const std::string &name)
        : pb(name)
    {
        pb.movi(9, 0);
    }

    ProgramBuilder pb;

    void
    expect(std::int64_t expected)
    {
        ++checkNo;
        auto pass = pb.newLabel();
        pb.movi(11, expected);
        pb.beq(10, 11, pass);
        pb.movi(1, checkNo);
        pb.m5op(M5_FAIL);
        pb.halt();
        pb.bind(pass);
    }

    ProgramPtr
    finish(const std::string &pass_msg)
    {
        pb.movi(1, pb.str(pass_msg));
        pb.syscall(SYS_WRITE);
        pb.m5op(M5_EXIT);
        pb.halt();
        return pb.finish();
    }

  private:
    int checkNo = 0;
};

ProgramPtr
asmtestAlu()
{
    TestWriter t("asmtest-alu");
    auto &pb = t.pb;

    pb.movi(2, 1000);
    pb.movi(3, 37);
    pb.add(10, 2, 3);
    t.expect(1037);
    pb.sub(10, 2, 3);
    t.expect(963);
    pb.mul(10, 2, 3);
    t.expect(37000);
    pb.div(10, 2, 3);
    t.expect(27);
    pb.div(10, 2, 9); // divide by zero yields 0 by ISA definition
    t.expect(0);
    pb.movi(2, 0b110101);
    pb.movi(3, 0b011110);
    pb.and_(10, 2, 3);
    t.expect(0b010100);
    pb.or_(10, 2, 3);
    t.expect(0b111111);
    pb.xor_(10, 2, 3);
    t.expect(0b101011);
    pb.movi(2, -1);
    pb.movi(3, 62);
    pb.shr(10, 2, 3); // logical shift of all-ones
    t.expect(3);
    pb.movi(2, 5);
    pb.movi(3, 3);
    pb.shl(10, 2, 3);
    t.expect(40);
    pb.movi(2, -9);
    pb.addi(10, 2, 4);
    t.expect(-5);
    pb.muli(10, 2, -3);
    t.expect(27);
    return t.finish("asmtest-alu: all checks passed");
}

ProgramPtr
asmtestBranch()
{
    TestWriter t("asmtest-branch");
    auto &pb = t.pb;

    // Counted loop: sum 1..100 == 5050.
    pb.movi(2, 100);
    pb.movi(10, 0);
    auto loop = pb.newLabel();
    auto done = pb.newLabel();
    pb.bind(loop);
    pb.beq(2, 9, done);
    pb.add(10, 10, 2);
    pb.addi(2, 2, -1);
    pb.jmp(loop);
    pb.bind(done);
    t.expect(5050);

    // Signed comparisons around zero.
    pb.movi(2, -1);
    pb.movi(3, 1);
    pb.movi(10, 0);
    auto not_taken = pb.newLabel();
    pb.bge(2, 3, not_taken); // -1 >= 1 must NOT branch
    pb.movi(10, 7);
    pb.bind(not_taken);
    t.expect(7);

    pb.movi(10, 0);
    auto taken = pb.newLabel();
    auto after = pb.newLabel();
    pb.blt(2, 3, taken); // -1 < 1 must branch
    pb.jmp(after);
    pb.bind(taken);
    pb.movi(10, 13);
    pb.bind(after);
    t.expect(13);
    return t.finish("asmtest-branch: all checks passed");
}

ProgramPtr
asmtestMem()
{
    TestWriter t("asmtest-mem");
    auto &pb = t.pb;
    constexpr std::int64_t base = 0x20000;

    pb.movi(2, base);
    pb.movi(3, 1234);
    pb.st(2, 0, 3);
    pb.ld(10, 2, 0);
    t.expect(1234);

    // Aliasing through different base+offset pairs.
    pb.movi(4, base - 64);
    pb.ld(10, 4, 64);
    t.expect(1234);

    // Store/load different offsets stay independent.
    pb.movi(3, 77);
    pb.st(2, 8, 3);
    pb.ld(10, 2, 0);
    t.expect(1234);
    pb.ld(10, 2, 8);
    t.expect(77);

    // Atomic fetch-add returns the OLD value and applies the delta.
    pb.movi(3, 10);
    pb.amo(10, 2, 0, 3);
    t.expect(1234);
    pb.ld(10, 2, 0);
    t.expect(1244);
    // Negative delta.
    pb.movi(3, -244);
    pb.amo(10, 2, 0, 3);
    t.expect(1244);
    pb.ld(10, 2, 0);
    t.expect(1000);
    return t.finish("asmtest-mem: all checks passed");
}

ProgramPtr
insttestShift()
{
    TestWriter t("insttest-shift");
    auto &pb = t.pb;
    // Shift-amount masking (mod 64).
    pb.movi(2, 1);
    pb.movi(3, 64); // 64 & 63 == 0
    pb.shl(10, 2, 3);
    t.expect(1);
    pb.movi(3, 65); // 65 & 63 == 1
    pb.shl(10, 2, 3);
    t.expect(2);
    pb.movi(2, std::int64_t(0x8000000000000000ULL));
    pb.movi(3, 63);
    pb.shr(10, 2, 3);
    t.expect(1);
    return t.finish("insttest-shift: all checks passed");
}

ProgramPtr
simpleM5ops()
{
    TestWriter t("simple-m5ops");
    auto &pb = t.pb;
    pb.m5op(M5_RESET_STATS);
    pb.m5op(M5_WORK_BEGIN);
    pb.movi(2, 1000);
    auto loop = pb.newLabel();
    auto done = pb.newLabel();
    pb.bind(loop);
    pb.beq(2, 9, done);
    pb.addi(2, 2, -1);
    pb.jmp(loop);
    pb.bind(done);
    pb.m5op(M5_WORK_END);
    pb.movi(10, 1);
    t.expect(1); // the ops must not disturb architectural state
    return t.finish("simple: m5ops exercised");
}

ProgramPtr
squareTest()
{
    TestWriter t("square");
    auto &pb = t.pb;
    constexpr std::int64_t in = 0x30000, out = 0x40000;

    // Fill in[i] = i, compute out[i] = i*i, then checksum.
    pb.movi(2, 64); // n
    pb.movi(4, in);
    pb.movi(5, out);
    pb.movi(6, 0); // i
    auto fill = pb.newLabel();
    auto fill_done = pb.newLabel();
    pb.bind(fill);
    pb.bge(6, 2, fill_done);
    pb.muli(7, 6, 8);
    pb.add(8, 4, 7);
    pb.st(8, 0, 6);
    pb.addi(6, 6, 1);
    pb.jmp(fill);
    pb.bind(fill_done);

    pb.movi(6, 0);
    auto sq = pb.newLabel();
    auto sq_done = pb.newLabel();
    pb.bind(sq);
    pb.bge(6, 2, sq_done);
    pb.muli(7, 6, 8);
    pb.add(8, 4, 7);
    pb.ld(12, 8, 0);
    pb.mul(12, 12, 12);
    pb.add(8, 5, 7);
    pb.st(8, 0, 12);
    pb.addi(6, 6, 1);
    pb.jmp(sq);
    pb.bind(sq_done);

    pb.movi(6, 0);
    pb.movi(10, 0);
    auto sum = pb.newLabel();
    auto sum_done = pb.newLabel();
    pb.bind(sum);
    pb.bge(6, 2, sum_done);
    pb.muli(7, 6, 8);
    pb.add(8, 5, 7);
    pb.ld(12, 8, 0);
    pb.add(10, 10, 12);
    pb.addi(6, 6, 1);
    pb.jmp(sum);
    pb.bind(sum_done);
    // sum of squares 0..63 = 63*64*127/6 = 85344
    t.expect(85344);
    return t.finish("square: vector squared correctly");
}

ProgramPtr
riscvTestsTorture()
{
    TestWriter t("riscv-tests-torture");
    auto &pb = t.pb;
    // An LCG iterated 10k times has a known final value; any mis-
    // executed instruction anywhere in the chain changes it.
    pb.movi(2, 12345);
    pb.movi(3, 10000);
    auto loop = pb.newLabel();
    auto done = pb.newLabel();
    pb.bind(loop);
    pb.beq(3, 9, done);
    pb.muli(2, 2, 1103515245);
    pb.addi(2, 2, 12345);
    pb.movi(4, 0x7fffffff);
    pb.and_(2, 2, 4);
    pb.addi(3, 3, -1);
    pb.jmp(loop);
    pb.bind(done);
    pb.mov(10, 2);
    t.expect(1387838121); // precomputed reference value
    return t.finish("riscv-tests: torture chain matched");
}

} // anonymous namespace

const std::vector<std::pair<std::string, ProgramPtr>> &
guestTestPrograms()
{
    static const std::vector<std::pair<std::string, ProgramPtr>> tests =
        {
            {"asmtest-alu", asmtestAlu()},
            {"asmtest-branch", asmtestBranch()},
            {"asmtest-mem", asmtestMem()},
            {"insttest-shift", insttestShift()},
            {"simple-m5ops", simpleM5ops()},
            {"square", squareTest()},
            {"riscv-tests-torture", riscvTestsTorture()},
        };
    return tests;
}

sim::fs::DiskImagePtr
buildGem5TestsImage()
{
    PackerBuilder pb("gem5-tests.json");
    pb.baseOs("ubuntu", "18.04", "4.15.18", "gcc-7.4");
    for (const auto &test : guestTestPrograms()) {
        pb.provision("install " + test.first,
                     [test](sim::fs::DiskImage &img) {
                         img.addProgram("/tests/" + test.first,
                                        test.second);
                     });
    }
    return pb.build();
}

} // namespace g5::resources
