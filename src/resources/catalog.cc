#include "resources/catalog.hh"

#include "base/logging.hh"
#include "resources/packer.hh"
#include "sim/fs/guest_abi.hh"
#include "sim/isa/builder.hh"
#include "sim/fs/known_issues.hh"
#include "workloads/parsec.hh"
#include "workloads/suites.hh"

namespace g5::resources
{

const char *
resourceTypeName(ResourceType t)
{
    switch (t) {
      case ResourceType::Benchmark:
        return "Benchmark";
      case ResourceType::BenchmarkTest:
        return "Benchmark / Test";
      case ResourceType::Test:
        return "Test";
      case ResourceType::Kernel:
        return "Kernel";
      case ResourceType::Application:
        return "Application";
      case ResourceType::Environment:
        return "Environment";
    }
    return "?";
}

Json
ResourceEntry::toJson() const
{
    Json j = Json::object();
    j["name"] = name;
    j["type"] = resourceTypeName(type);
    j["description"] = description;
    if (!variant.empty())
        j["variant"] = variant;
    j["requiresLicense"] = requiresLicense;
    return j;
}

const std::vector<ResourceEntry> &
catalog()
{
    using RT = ResourceType;
    static const std::vector<ResourceEntry> entries = {
        {"boot-exit", RT::BenchmarkTest,
         "Scripts and binaries capable of completing and exiting the "
         "booting process of a Linux kernel with an Ubuntu 18.04 Server "
         "user-land in full-system mode; serves as the FS-mode test "
         "suite.",
         "", false},
        {"gapbs", RT::Benchmark,
         "Scripts, binaries, and documentation for running the GAP "
         "Benchmark Suite in full-system mode.",
         "", false},
        {"hack-back", RT::Benchmark,
         "Creates a checkpoint after boot and then executes a "
         "host-provided script inside full-system simulation.",
         "", false},
        {"linux-kernel", RT::Kernel,
         "Kernel configurations and documentation for compiling Linux "
         "kernels known to boot in the simulator.",
         "", false},
        {"npb", RT::Benchmark,
         "Scripts, binaries, and documentation for running the NAS "
         "Parallel Benchmarks in full-system mode.",
         "", false},
        {"parsec", RT::Benchmark,
         "Scripts, binaries, and documentation for running the PARSEC "
         "benchmark suite with a Linux kernel and Ubuntu user-land in "
         "full-system mode.",
         "", false},
        {"riscv-fs", RT::Test,
         "Scripts and documentation to build a RISC-V bbl + kernel "
         "payload and disk image for full-system simulation.",
         "", false},
        {"spec-2006", RT::Benchmark,
         "Scripts for running SPEC CPU 2006 in full-system mode. "
         "Licensing forbids distributing pre-made disk images.",
         "", true},
        {"spec-2017", RT::Benchmark,
         "Scripts for running SPEC CPU 2017 in full-system mode. "
         "Licensing forbids distributing pre-made disk images.",
         "", true},
        {"GCN-docker", RT::Environment,
         "A container image with ROCm 1.6 and GCC 5.4 for building and "
         "running GPU applications on the simulated GCN3 GPU.",
         "GCN3_X86", false},
        {"HeteroSync", RT::Benchmark,
         "A benchmark suite for fine-grained synchronization on "
         "tightly-coupled GPUs.",
         "GCN3_X86", false},
        {"DNNMark", RT::Benchmark,
         "A benchmark framework characterizing primitive deep neural "
         "network workloads.",
         "GCN3_X86", false},
        {"halo-finder", RT::Application,
         "Part of the HACC code base; GPU-accelerated halo finding.",
         "GCN3_X86", false},
        {"Pennant", RT::Application,
         "An unstructured-mesh GPU mini-app for advanced architecture "
         "research.",
         "GCN3_X86", false},
        {"LULESH", RT::Application,
         "A DOE proxy application for hydrodynamics modeling.",
         "GCN3_X86", false},
        {"hip-samples", RT::Application,
         "Applications introducing GPU programming concepts usable in "
         "ROCm HIP.",
         "GCN3_X86", false},
        {"gem5-tests", RT::Test,
         "asmtest (RISC-V), insttest (SPARC), riscv-tests, simple "
         "(m5ops / semi-hosting), and square (AMD GPU) test binaries.",
         "", false},
    };
    return entries;
}

const ResourceEntry *
findResource(const std::string &name)
{
    for (const auto &entry : catalog())
        if (entry.name == name)
            return &entry;
    return nullptr;
}

sim::fs::DiskImagePtr
buildBootExitImage()
{
    PackerBuilder pb("boot-exit.json");
    pb.baseOs("ubuntu", "18.04", "4.15.18", "gcc-7.4")
        .file("/etc/os-release",
              "NAME=\"Ubuntu\"\nVERSION=\"18.04 LTS\"\n")
        .file("/root/README",
              "boot-exit: boots the kernel and exits via an m5 op; no "
              "benchmark payload.")
        .file("/sbin/m5-exit.sh", "#!/bin/sh\nm5 exit\n");
    return pb.build();
}

sim::fs::DiskImagePtr
buildHackBackImage(sim::isa::ProgramPtr host_script)
{
    if (!host_script) {
        sim::isa::ProgramBuilder pb("hack_back_default.sh");
        pb.movi(1, pb.str("hack-back: hello from the host script"));
        pb.syscall(sim::fs::SYS_WRITE);
        pb.movi(1, 0);
        pb.syscall(sim::fs::SYS_EXIT);
        host_script = pb.finish();
    }

    PackerBuilder pb("hack-back.json");
    pb.baseOs("ubuntu", "18.04", "4.15.18", "gcc-7.4")
        .file("/etc/os-release",
              "NAME=\"Ubuntu\"\nVERSION=\"18.04 LTS\"\n")
        .file("/root/README",
              "hack-back: checkpoints after boot, then executes the "
              "script the host placed at /root/hack_back.sh.")
        .provision("install host script",
                   [host_script](sim::fs::DiskImage &img) {
                       img.addProgram("/root/hack_back.sh",
                                      host_script);
                   });
    return pb.build();
}

sim::fs::DiskImagePtr
buildParsecImage(const std::string &ubuntu_release)
{
    workloads::OsProfile os;
    if (ubuntu_release == "18.04")
        os = workloads::ubuntu1804();
    else if (ubuntu_release == "20.04")
        os = workloads::ubuntu2004();
    else
        fatal("buildParsecImage: unsupported Ubuntu release '" +
              ubuntu_release + "'");

    PackerBuilder pb("parsec/parsec-" + ubuntu_release + ".json");
    pb.baseOs("ubuntu", os.release, os.kernel, os.compiler.name)
        .file("/etc/os-release", "NAME=\"Ubuntu\"\nVERSION=\"" +
                                     os.release + " LTS\"\n")
        .file("/parsec/README",
              "PARSEC 3.0 built from source with " + os.compiler.name +
                  "; inputs: simmedium.");

    // "Compile and install" every suite application with the release's
    // toolchain — the step gem5-resources performs inside Packer.
    for (const auto &app : workloads::parsecSuite()) {
        pb.provision(
            "build " + app.name + " with " + os.compiler.name,
            [app, os](sim::fs::DiskImage &img) {
                img.addProgram("/parsec/bin/" + app.name,
                               workloads::compileParsecApp(app, os));
            });
    }
    return pb.build();
}

namespace
{

sim::fs::DiskImagePtr
buildSuiteImage(const std::string &suite_name,
                const std::vector<workloads::ParsecAppSpec> &suite,
                const std::string &bin_dir)
{
    workloads::OsProfile os = workloads::ubuntu1804();
    PackerBuilder pb(suite_name + "/" + suite_name + ".json");
    pb.baseOs("ubuntu", os.release, os.kernel, os.compiler.name)
        .file("/etc/os-release",
              "NAME=\"Ubuntu\"\nVERSION=\"18.04 LTS\"\n")
        .file(bin_dir + "/README",
              suite_name + " built from source with " +
                  os.compiler.name + ".");
    for (const auto &app : suite) {
        pb.provision("build " + app.name + " with " + os.compiler.name,
                     [app, os, bin_dir](sim::fs::DiskImage &img) {
                         img.addProgram(
                             bin_dir + "/" + app.name,
                             workloads::compileParsecApp(app, os));
                     });
    }
    return pb.build();
}

} // anonymous namespace

sim::fs::DiskImagePtr
buildNpbImage()
{
    return buildSuiteImage("npb", workloads::npbSuite(), "/npb/bin");
}

sim::fs::DiskImagePtr
buildGapbsImage()
{
    return buildSuiteImage("gapbs", workloads::gapbsSuite(),
                           "/gapbs/bin");
}

sim::fs::DiskImagePtr
buildSpecImage(const std::string &year,
               std::optional<std::string> license_iso)
{
    if (year != "2006" && year != "2017")
        fatal("buildSpecImage: unknown SPEC CPU year '" + year + "'");
    if (!license_iso || license_iso->empty()) {
        fatal("spec-" + year +
              ": licensing forbids pre-made disk images; provide your "
              "licensed SPEC .iso to build one locally");
    }

    PackerBuilder pb("spec-" + year + "/spec.json");
    pb.baseOs("ubuntu", "18.04", "4.15.18", "gcc-7.4")
        .file("/spec/iso-source", *license_iso)
        .file("/spec/README",
              "SPEC CPU " + year + " installed from user-provided ISO.");
    // A representative subset stands in for the licensed binaries.
    for (const auto &app : workloads::parsecSuite()) {
        pb.provision("install spec surrogate " + app.name,
                     [app](sim::fs::DiskImage &img) {
                         img.addProgram(
                             "/spec/bin/" + app.name,
                             workloads::compileParsecApp(
                                 app, workloads::ubuntu1804()));
                     });
        break; // one surrogate binary is enough to make the image real
    }
    return pb.build();
}

const std::vector<std::string> &
supportedKernels()
{
    static const std::vector<std::string> kernels = [] {
        std::vector<std::string> v = sim::fs::fig8Kernels();
        v.push_back("4.15.18"); // Ubuntu 18.04 (use-case 1)
        v.push_back("5.4.51");  // Ubuntu 20.04 (use-case 1)
        return v;
    }();
    return kernels;
}

} // namespace g5::resources
