/**
 * @file
 * The gem5-tests resource: self-checking guest programs, the analogue
 * of gem5-resources' asmtest / insttest / riscv-tests / simple /
 * square binaries.
 *
 * Each program verifies a slice of the ISA or the m5-op interface from
 * *inside* the guest: it computes results, compares them against
 * expectations baked in at "compile" time, and signals a mismatch with
 * an m5 fail op (non-zero exit code). Running them across every CPU
 * model is how the simulator validates that timing models never change
 * architectural behaviour.
 */

#ifndef G5_RESOURCES_GUEST_TESTS_HH
#define G5_RESOURCES_GUEST_TESTS_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/fs/disk_image.hh"
#include "sim/isa/program.hh"

namespace g5::resources
{

/** All guest self-tests: (name, program). */
const std::vector<std::pair<std::string, sim::isa::ProgramPtr>> &
guestTestPrograms();

/** Build the gem5-tests disk image (one binary per test). */
sim::fs::DiskImagePtr buildGem5TestsImage();

} // namespace g5::resources

#endif // G5_RESOURCES_GUEST_TESTS_HH
