/**
 * @file
 * A miniature statistics framework in the spirit of gem5's Stats package.
 *
 * Components own Scalar counters registered in a StatGroup tree rooted at
 * the System. The tree renders either as gem5-flavoured stats.txt lines
 * ("name  value  # description") or as a JSON object for the database.
 */

#ifndef G5_SIM_STATS_HH
#define G5_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/json.hh"

namespace g5::sim
{

/** A named scalar statistic (double-valued counter). */
class Scalar
{
  public:
    Scalar() = default;

    double value() const { return val; }
    void set(double v) { val = v; }
    void inc(double delta = 1.0) { val += delta; }

    Scalar &operator++() { val += 1.0; return *this; }
    Scalar &operator+=(double d) { val += d; return *this; }

  private:
    double val = 0.0;
};

/** A node in the stats tree: named scalars plus named children. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "");

    const std::string &name() const { return groupName; }

    /** Register a scalar owned by the caller. Names must be unique. */
    void addStat(const std::string &name, Scalar *stat,
                 const std::string &desc = "");

    /** Register a child group owned by the caller. */
    void addChild(StatGroup *child);

    /** Render the subtree as "path value # desc" lines. */
    std::string dumpText(const std::string &prefix = "") const;

    /** Render the subtree as nested JSON. */
    Json dumpJson() const;

    /** Look up a stat by dotted path ("cpu0.numInsts"); nullptr if none. */
    const Scalar *find(const std::string &dotted_path) const;

    /** Zero every scalar in the subtree (m5 resetstats semantics). */
    void reset();

  private:
    struct Entry
    {
        Scalar *stat;
        std::string desc;
    };

    std::string groupName;
    std::map<std::string, Entry> stats;
    std::vector<StatGroup *> children;
};

} // namespace g5::sim

#endif // G5_SIM_STATS_HH
