/**
 * @file
 * FsSystem — the full-system assembly: given an FsConfig (what a gem5
 * run script receives as parameters), build the System — CPUs, memory
 * system, guest OS, kernel, disk — install any known-issue defect of
 * the simulated simulator version, and run to completion.
 *
 * This is the "gem5 binary + run script" of the reproduction: the art
 * layer invokes it through SimulatorLauncher.
 */

#ifndef G5_SIM_FS_FS_SYSTEM_HH
#define G5_SIM_FS_FS_SYSTEM_HH

#include <memory>
#include <string>

#include "sim/cpu/base_cpu.hh"
#include "sim/cpu/error_inject.hh"
#include "sim/fs/checkpoint.hh"
#include "sim/fs/disk_image.hh"
#include "sim/fs/guest_os.hh"
#include "sim/fs/kernel.hh"
#include "sim/system.hh"

namespace g5::scheduler
{
class CancelToken;
} // namespace g5::scheduler

namespace g5::sim::fs
{

/** Everything needed to specify one full-system run (one data point). */
struct FsConfig
{
    CpuType cpuType = CpuType::TimingSimple;
    unsigned numCpus = 1;

    /** "classic", "MI_example", or "MESI_Two_Level". */
    std::string memSystem = "classic";

    /** Kernel version ("vmlinux" is generated from its spec). */
    std::string kernelVersion = "5.4.49";

    BootType bootType = BootType::KernelOnly;

    /** Mounted disk image (may be null when no workload runs). */
    DiskImagePtr disk;

    /** Program on the disk image init execs after boot; "" = none. */
    std::string initProgramPath;
    std::int64_t initArg = 0;

    /** Quiesce for a checkpoint between boot and workload (hack-back). */
    bool checkpointAfterBoot = false;

    /**
     * Suppress the hack-back console markers around the checkpoint op
     * (boot-prefix tier): the m5 op becomes the boot's only extra
     * instruction, which the tier deducts from the saved counters so a
     * restored run's console and instruction census are byte-identical
     * to a straight run's.
     */
    bool quietCheckpoint = false;

    /** Simulate the bug census of this gem5 version ("" = bug-free). */
    std::string simVersion = "20.1.0.4";

    /**
     * SE mode (gem5art's createSERun): run this binary directly on the
     * bare OS services, with no kernel boot. The run ends when the
     * last guest thread exits (or on an m5 exit).
     */
    isa::ProgramPtr seProgram;
    std::int64_t seArg = 0;

    /**
     * Guest-level error injection plan (disabled by default). Kept OUT
     * of signature() deliberately: a checker replay — the same config
     * without the flip — must share the main run's System RNG seed, or
     * the two runs would diverge for reasons other than the flip and
     * the "masked" census class could never occur.
     */
    ErrorInjectConfig errInject;

    /**
     * Compute an MD5 digest of the final architectural state (thread
     * registers + physical memory) into SimResult::archMd5 — the
     * checker-replay comparison point.
     */
    bool archDigest = false;

    /** A one-line signature (also the determinism seed). */
    std::string signature() const;
};

/** The outcome of one full-system simulation. */
struct SimResult
{
    std::string exitCause;
    int exitCode = 0;
    bool limitReached = false;

    Tick simTicks = 0;
    Tick workBeginTick = 0;
    Tick workEndTick = 0;
    std::uint64_t totalInsts = 0;

    std::string consoleText;
    Json stats;
    /** gem5-style stats.txt rendering of the stats tree. */
    std::string statsText;

    /** Architectural-state digest ("" unless FsConfig::archDigest). */
    std::string archMd5;
    /** The injection record (null unless a flip was configured). */
    Json errInject;

    /** @return true for a clean m5-exit with code 0. */
    bool success() const;

    /** @return ROI duration (workEnd - workBegin), or simTicks. */
    Tick roiTicks() const;

    Json toJson() const;
};

class FsSystem
{
  public:
    /**
     * Build the system; throws FatalError for unsupported
     * configurations (the paper's "unsupported" cells in Fig 8).
     */
    explicit FsSystem(const FsConfig &cfg);

    /**
     * Restore a system from a checkpoint taken by checkpoint(). The
     * configuration may differ in CPU/memory model (the whole point of
     * checkpoints: boot once with kvm, measure with a detailed model)
     * but must use the same disk image contents.
     */
    FsSystem(const FsConfig &cfg, const Json &checkpoint);

    /**
     * Restore from an in-memory binary checkpoint (see checkpoint.hh).
     * Like the JSON overload the CPU/memory model may differ from the
     * checkpointing system's, and additionally the restored system
     * adopts the checkpoint's physical pages copy-on-write: N systems
     * restored from one checkpoint share every untouched page, so a
     * forked sweep pays memory only for what each variant writes.
     */
    FsSystem(const FsConfig &cfg, const Checkpoint &ckpt);

    ~FsSystem();

    /**
     * Serialize guest state (threads + physical memory). Valid after
     * the run stopped at a quiescent point — typically the guest's
     * m5 checkpoint op ("checkpoint" exit cause), as the hack-back
     * resource does right after boot.
     */
    Json checkpoint() const;

    /**
     * Take a binary checkpoint (the s5ckpt2 in-memory form). Same
     * quiescence requirement as checkpoint(); additionally exports the
     * physical pages as shared copy-on-write references (CPU
     * page-pointer caches are flushed first), so taking a checkpoint
     * is O(pages) bookkeeping, not a memory copy.
     */
    CheckpointPtr takeCheckpoint();

    /**
     * Boot and run until m5-exit, failure, or @p max_ticks.
     * @param token optional cooperative timeout from the scheduler.
     *
     * PanicError/SimulatorCrash propagate to the caller — they are the
     * simulated simulator aborting, which the art layer records as a
     * failed run.
     */
    SimResult run(Tick max_ticks = maxTick,
                  scheduler::CancelToken *token = nullptr);

    System &system() { return *sys; }
    GuestOs &os() { return *guestOs; }
    const FsConfig &config() const { return cfg; }

  private:
    /** Assemble memory system, CPUs, OS, and defect model. */
    void buildHardware();

    FsConfig cfg;
    std::unique_ptr<System> sys;
    std::unique_ptr<GuestOs> guestOs;
};

} // namespace g5::sim::fs

#endif // G5_SIM_FS_FS_SYSTEM_HH
