#include "sim/fs/kernel.hh"

#include <filesystem>

#include "base/logging.hh"
#include "base/str.hh"
#include "sim/fs/guest_abi.hh"
#include "sim/isa/builder.hh"

namespace g5::sim::fs
{

const char *
bootTypeName(BootType t)
{
    return t == BootType::KernelOnly ? "init" : "systemd";
}

BootType
bootTypeFromName(const std::string &name)
{
    if (name == "init" || name == "kernel")
        return BootType::KernelOnly;
    if (name == "systemd" || name == "multi-user")
        return BootType::Systemd;
    fatal("unknown boot type '" + name + "'");
}

KernelSpec
KernelSpec::forVersion(const std::string &version)
{
    auto parts = split(version, '.');
    if (parts.size() != 3)
        fatal("KernelSpec: version must be MAJOR.MINOR.PATCH, got '" +
              version + "'");

    KernelSpec spec;
    spec.version = version;
    try {
        spec.major = std::stoi(parts[0]);
        spec.minor = std::stoi(parts[1]);
        spec.patch = std::stoi(parts[2]);
    } catch (const std::exception &) {
        fatal("KernelSpec: non-numeric version '" + version + "'");
    }
    if (spec.major < 2 || spec.major > 6)
        fatal("KernelSpec: implausible kernel major version in '" +
              version + "'");

    // Version code, e.g. 4.19 -> 4019. Newer kernels boot more code.
    int code = spec.major * 1000 + spec.minor;

    spec.decompressIters = 20'000 + std::uint64_t(code - 4000) * 25;
    spec.pageInitWords = 32'768;
    spec.driverProbes = 40 + unsigned(code - 4000) / 8;
    spec.rootfsWords = 64 * 1024;
    spec.bootServices = code >= 5000 ? 18u : 12u;

    // Post-4.14 kernels carry Meltdown/Spectre mitigations: syscalls
    // cost more. Newer schedulers wake futex waiters faster.
    spec.syscallOverhead = code >= 4014 ? 2500 : 1500;
    spec.wakeLatency = code >= 5000 ? 2500 : 4000;

    return spec;
}

Json
KernelSpec::toJson() const
{
    Json j = Json::object();
    j["kind"] = "vmlinux";
    j["version"] = version;
    j["decompressIters"] = decompressIters;
    j["pageInitWords"] = pageInitWords;
    j["driverProbes"] = std::int64_t(driverProbes);
    j["rootfsWords"] = rootfsWords;
    j["bootServices"] = std::int64_t(bootServices);
    j["syscallOverhead"] = syscallOverhead;
    j["wakeLatency"] = wakeLatency;
    return j;
}

KernelSpec
KernelSpec::fromJson(const Json &j)
{
    if (j.getString("kind") != "vmlinux")
        fatal("KernelSpec: not a vmlinux descriptor");
    KernelSpec spec = forVersion(j.getString("version"));
    // Allow stored knobs to override the derived defaults (a "custom
    // kernel config"), while version-derived values are the norm.
    spec.decompressIters =
        std::uint64_t(j.getInt("decompressIters",
                               std::int64_t(spec.decompressIters)));
    spec.pageInitWords = std::uint64_t(
        j.getInt("pageInitWords", std::int64_t(spec.pageInitWords)));
    spec.driverProbes = unsigned(
        j.getInt("driverProbes", std::int64_t(spec.driverProbes)));
    spec.rootfsWords = std::uint64_t(
        j.getInt("rootfsWords", std::int64_t(spec.rootfsWords)));
    spec.bootServices = unsigned(
        j.getInt("bootServices", std::int64_t(spec.bootServices)));
    spec.syscallOverhead = Tick(
        j.getInt("syscallOverhead", std::int64_t(spec.syscallOverhead)));
    spec.wakeLatency =
        Tick(j.getInt("wakeLatency", std::int64_t(spec.wakeLatency)));
    return spec;
}

void
KernelSpec::save(const std::string &host_path) const
{
    std::filesystem::path p(host_path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::FILE *f = std::fopen(host_path.c_str(), "wb");
    if (!f)
        fatal("KernelSpec: cannot write '" + host_path + "'");
    std::string text = toJson().dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

KernelSpec
KernelSpec::load(const std::string &host_path)
{
    std::FILE *f = std::fopen(host_path.c_str(), "rb");
    if (!f)
        fatal("KernelSpec: cannot read '" + host_path + "'");
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return fromJson(Json::parse(text));
}

isa::ProgramPtr
buildBootProgram(const KernelSpec &kernel, BootType boot,
                 unsigned num_cpus, int init_program_index,
                 std::int64_t init_arg, bool checkpoint_after_boot,
                 bool quiet_checkpoint)
{
    using isa::ProgramBuilder;

    ProgramBuilder pb("vmlinux-" + kernel.version);

    // Register conventions inside generated code:
    //   r1..r3  syscall args, r9 zero, r10..r19 locals.
    constexpr int zero = 9;
    pb.movi(zero, 0);

    auto console = [&](const std::string &line) {
        pb.movi(1, pb.str(line));
        pb.syscall(SYS_WRITE);
    };

    console("Booting Linux version " + kernel.version +
            " (gcc built) SMP");

    // Phase 1: decompress/early-init — pure compute.
    pb.movi(10, std::int64_t(kernel.decompressIters));
    pb.movi(11, 0x9e3779b9);
    auto decompress_loop = pb.newLabel();
    pb.bind(decompress_loop);
    pb.muli(11, 11, 1664525);
    pb.addi(11, 11, 1013904223);
    pb.addi(10, 10, -1);
    pb.bne(10, zero, decompress_loop);

    console("smp: Bringing up secondary CPUs ... (" +
            std::to_string(num_cpus) + " total)");

    // Phase 2: page/struct-page init — streaming stores.
    pb.movi(12, std::int64_t(kernelScratchBase));
    pb.movi(10, std::int64_t(kernel.pageInitWords / 8)); // 1 store / 64B
    auto page_loop = pb.newLabel();
    pb.bind(page_loop);
    pb.st(12, 0, 11);
    pb.addi(12, 12, 64);
    pb.addi(10, 10, -1);
    pb.bne(10, zero, page_loop);

    // Phase 3: driver probes — device register reads.
    pb.movi(13, std::int64_t(diskMmioBase));
    pb.movi(10, std::int64_t(kernel.driverProbes));
    auto probe_loop = pb.newLabel();
    pb.bind(probe_loop);
    pb.iord(14, 13, 0);
    pb.addi(13, 13, 8);
    pb.addi(10, 10, -1);
    pb.bne(10, zero, probe_loop);

    console("scsi 0:0:0:0: Direct-Access  QEMU HARDDISK");

    // Phase 4: mount root — bulk disk reads.
    pb.movi(1, std::int64_t(kernel.rootfsWords / 4));
    pb.syscall(SYS_READ_DISK);
    pb.movi(1, std::int64_t(kernel.rootfsWords / 4));
    pb.syscall(SYS_READ_DISK);
    console("EXT4-fs (sda1): mounted filesystem with ordered data mode");
    console("Freeing unused kernel memory");
    console("Run /sbin/init as init process");

    auto jump_past_service = pb.newLabel();
    auto service_entry = pb.newLabel();
    unsigned services = 0;

    if (boot == BootType::Systemd) {
        // Spawn runlevel-5 services; they fan out across CPUs.
        services = kernel.bootServices + num_cpus;
        pb.jmp(jump_past_service);

        // --- service body: arg arrives in r1 ---
        pb.bind(service_entry);
        pb.mov(15, 1);                  // service id
        pb.movi(10, 4000);              // per-service compute
        auto svc_loop = pb.newLabel();
        pb.bind(svc_loop);
        pb.muli(11, 11, 22695477);
        pb.addi(11, 11, 1);
        pb.addi(10, 10, -1);
        pb.bne(10, zero, svc_loop);
        pb.movi(1, 512);                // read a unit file
        pb.syscall(SYS_READ_DISK);
        pb.movi(16, std::int64_t(svcCounterAddr));
        pb.movi(17, 1);
        pb.amo(18, 16, 0, 17);          // done_count++
        pb.movi(1, std::int64_t(svcCounterAddr));
        pb.movi(2, 64);
        pb.syscall(SYS_FUTEX_WAKE);
        pb.movi(1, 0);
        pb.syscall(SYS_EXIT);
        // --- end service body ---

        pb.bind(jump_past_service);
        pb.movi(14, 0); // service index
        pb.movi(19, std::int64_t(services));
        auto spawn_loop = pb.newLabel();
        pb.bind(spawn_loop);
        pb.moviLabel(1, service_entry);
        pb.syscall(SYS_SPAWN);
        pb.addi(14, 14, 1);
        pb.blt(14, 19, spawn_loop);

        // Wait for all services: futex on the done counter.
        pb.movi(16, std::int64_t(svcCounterAddr));
        auto wait_loop = pb.newLabel();
        auto wait_done = pb.newLabel();
        pb.bind(wait_loop);
        pb.ld(18, 16, 0);
        pb.bge(18, 19, wait_done);
        pb.movi(1, std::int64_t(svcCounterAddr));
        pb.mov(2, 18);
        pb.syscall(SYS_FUTEX_WAIT);
        pb.jmp(wait_loop);
        pb.bind(wait_done);
        console("systemd[1]: Reached target Multi-User System.");
        console("login: (runlevel 5)");
    }

    if (checkpoint_after_boot) {
        // hack-back: quiesce right after boot so the host can save a
        // checkpoint; on restore, execution continues from here. The
        // quiet variant (boot-prefix tier) leaves no console trace: the
        // m5 op is the only extra instruction, and the tier deducts it
        // from the saved counters so restored runs census-match
        // straight ones.
        if (!quiet_checkpoint)
            console("hack-back: taking post-boot checkpoint");
        pb.m5op(M5_CHECKPOINT);
        if (!quiet_checkpoint)
            console("hack-back: running host-provided script");
    }

    if (init_program_index >= 0) {
        console("init: starting workload");
        pb.movi(1, init_program_index);
        pb.movi(2, init_arg);
        pb.syscall(SYS_EXEC);
        pb.mov(1, 1); // tid already in r1
        pb.syscall(SYS_JOIN);
        console("init: workload complete");
    }

    console("m5: exiting simulation");
    pb.m5op(M5_EXIT);
    pb.halt();

    return pb.finish();
}

} // namespace g5::sim::fs
