#include "sim/fs/fs_system.hh"

#include "base/logging.hh"
#include "base/md5.hh"
#include "base/metrics.hh"
#include "sim/cpu/fast_cpu.hh"
#include "sim/cpu/o3_cpu.hh"
#include "sim/cpu/simple_cpus.hh"
#include "sim/fs/known_issues.hh"
#include "sim/mem/classic.hh"
#include "sim/ruby/ruby.hh"

namespace g5::sim::fs
{

std::string
FsConfig::signature() const
{
    std::string sig = std::string(cpuTypeName(cpuType)) + "/" +
                      std::to_string(numCpus) + "cpu/" + memSystem +
                      "/" + kernelVersion + "/" +
                      bootTypeName(bootType) + "/" +
                      (initProgramPath.empty() ? "-" : initProgramPath) +
                      "/arg" + std::to_string(initArg) + "/gem5-" +
                      simVersion;
    if (seProgram)
        sig += "/se:" + seProgram->name() + "/arg" +
               std::to_string(seArg);
    return sig;
}

bool
SimResult::success() const
{
    return exitCause == "m5_exit instruction encountered" &&
           exitCode == 0;
}

Tick
SimResult::roiTicks() const
{
    if (workEndTick > workBeginTick && workBeginTick > 0)
        return workEndTick - workBeginTick;
    return simTicks;
}

Json
SimResult::toJson() const
{
    Json j = Json::object();
    j["exitCause"] = exitCause;
    j["exitCode"] = exitCode;
    j["limitReached"] = limitReached;
    j["simTicks"] = simTicks;
    j["workBeginTick"] = workBeginTick;
    j["workEndTick"] = workEndTick;
    j["totalInsts"] = totalInsts;
    j["success"] = success();
    j["stats"] = stats;
    if (!archMd5.empty())
        j["archMd5"] = archMd5;
    if (!errInject.isNull())
        j["errInject"] = errInject;
    return j;
}

namespace
{

/**
 * MD5 of the guest's final architectural state: every thread's
 * registers/pc/status/exitCode (tid order) plus the sparse memory
 * serialization. Byte-stable — two runs that end in identical guest
 * state produce identical digests regardless of CPU model.
 */
std::string
archStateMd5(GuestOs &os, System &sys)
{
    Md5Stream h;
    Json threads = Json::array();
    for (std::size_t tid = 0; tid < os.numThreads(); ++tid) {
        isa::ThreadContext *tc = os.thread(int(tid));
        if (!tc)
            continue;
        Json t = Json::object();
        t["tid"] = std::int64_t(tc->tid);
        Json regs = Json::array();
        for (std::int64_t r : tc->regs)
            regs.push(r);
        t["regs"] = std::move(regs);
        t["pc"] = std::int64_t(tc->pc);
        t["status"] = std::int64_t(tc->status);
        t["exitCode"] = tc->exitCode;
        threads.push(std::move(t));
    }
    Json state = Json::object();
    state["threads"] = std::move(threads);
    state["memory"] = sys.physmem.toJson();
    h.update(state);
    return h.final();
}

} // anonymous namespace

void
FsSystem::buildHardware()
{
    if (cfg.numCpus == 0)
        fatal("FsSystem: need at least one CPU");

    sys = std::make_unique<System>(hashString(cfg.signature()));

    // --- memory system ---
    if (cfg.memSystem == "classic") {
        mem::ClassicConfig mc;
        mc.numCpus = cfg.numCpus;
        sys->memSystem =
            std::make_unique<mem::ClassicMem>(sys->eventq, mc);
    } else {
        ruby::RubyConfig rc;
        rc.protocol = ruby::protocolFromName(cfg.memSystem);
        rc.numCpus = cfg.numCpus;
        sys->memSystem =
            std::make_unique<ruby::RubyMem>(sys->eventq, rc);
    }

    // --- support matrix (the "unsupported" cells of Fig 8) ---
    bool timing_mode = cfg.cpuType == CpuType::TimingSimple ||
                       cfg.cpuType == CpuType::O3;
    if (timing_mode && cfg.numCpus > 1 &&
        !sys->memSystem->supportsMultipleTimingCpus()) {
        fatal(std::string(cpuTypeName(cfg.cpuType)) +
              " cannot handle more than one core with the classic "
              "memory system in full-system mode");
    }

    // --- CPUs (AtomicSimpleCpu itself rejects Ruby) ---
    for (unsigned i = 0; i < cfg.numCpus; ++i) {
        std::unique_ptr<BaseCpu> cpu;
        switch (cfg.cpuType) {
          case CpuType::Kvm:
            cpu = std::make_unique<KvmCpu>(*sys, int(i));
            break;
          case CpuType::AtomicSimple:
            cpu = std::make_unique<AtomicSimpleCpu>(*sys, int(i));
            break;
          case CpuType::TimingSimple:
            cpu = std::make_unique<TimingSimpleCpu>(*sys, int(i));
            break;
          case CpuType::O3:
            cpu = std::make_unique<O3Cpu>(*sys, int(i));
            break;
          case CpuType::Fast:
            cpu = std::make_unique<FastCpu>(*sys, int(i));
            break;
        }
        sys->rootStats.addChild(&cpu->statGroup());
        sys->cpus.push_back(std::move(cpu));
    }
    sys->rootStats.addChild(&sys->memSystem->statGroup());

    // --- guest OS + kernel ---
    KernelSpec kernel = KernelSpec::forVersion(cfg.kernelVersion);
    guestOs = std::make_unique<GuestOs>(*sys, kernel, cfg.disk);
    sys->os = guestOs.get();
    sys->rootStats.addChild(&guestOs->statGroup());

    // COW safety: when a shared (checkpointed/forked) page is about to
    // be privatized, drop any raw page pointers CPU models may cache.
    sys->physmem.setCowCallback([this] {
        for (auto &cpu : sys->cpus)
            cpu->flushPageCache();
    });

    // --- guest error injection (DESIGN.md §14) ---
    if (cfg.errInject.enabled()) {
        // Only the models that replay CPU 0's commit stream at exact
        // instruction boundaries can honor the injection contract.
        if (cfg.cpuType != CpuType::AtomicSimple &&
            cfg.cpuType != CpuType::Fast) {
            fatal("error injection is not supported with " +
                  std::string(cpuTypeName(cfg.cpuType)) +
                  " (want AtomicSimpleCPU or fastCPU)");
        }
        sys->errInject = std::make_unique<ErrorInjector>(cfg.errInject);
    }

    // --- known issues of the simulated simulator version ---
    sys->defect = knownIssueFor(cfg);
    if (sys->defect.kind == DefectPlan::Kind::Deadlock) {
        auto *rubymem =
            dynamic_cast<ruby::RubyMem *>(sys->memSystem.get());
        if (!rubymem)
            panic("Deadlock defect assigned to a non-Ruby config");
        // Drop a response once boot is deep into page-init traffic.
        rubymem->armDroppedResponse(1000);
    }
}

FsSystem::FsSystem(const FsConfig &cfg)
    : cfg(cfg)
{
    buildHardware();

    // --- workload: SE program, or a full boot ---
    if (cfg.seProgram) {
        guestOs->startProgram(cfg.seProgram, cfg.seArg);
    } else {
        int init_idx = -1;
        if (!cfg.initProgramPath.empty()) {
            if (!cfg.disk)
                fatal("FsSystem: initProgramPath set but no disk image");
            init_idx = cfg.disk->programIndex(cfg.initProgramPath);
            if (init_idx < 0)
                fatal("FsSystem: program '" + cfg.initProgramPath +
                      "' not on the disk image");
        }
        guestOs->startBoot(cfg.bootType, init_idx, cfg.initArg,
                           cfg.checkpointAfterBoot,
                           cfg.quietCheckpoint);
    }

    for (auto &cpu : sys->cpus)
        cpu->start();
}

FsSystem::FsSystem(const FsConfig &cfg, const Json &checkpoint)
    : cfg(cfg)
{
    if (checkpoint.getString("format") != "s5ckpt1")
        fatal("FsSystem: not a sim5 checkpoint");

    buildHardware();
    guestOs->restoreState(checkpoint.at("os"));
    sys->physmem.restore(checkpoint.at("memory"));

    for (auto &cpu : sys->cpus)
        cpu->start();
}

FsSystem::FsSystem(const FsConfig &cfg, const Checkpoint &ckpt)
    : cfg(cfg)
{
    buildHardware();
    guestOs->restoreState(ckpt.osState);
    guestOs->restoreDeviceState(ckpt.deviceState);

    // CPU counters: entry i preloads CPU i; counts from checkpointed
    // CPUs beyond our core count fold into CPU 0, so instruction
    // totals survive a core-count change.
    if (ckpt.cpuState.isArray()) {
        const auto &saved = ckpt.cpuState.asArray();
        for (std::size_t i = 0;
             i < sys->cpus.size() && i < saved.size(); ++i)
            sys->cpus[i]->restoreState(saved[i]);
        for (std::size_t i = sys->cpus.size(); i < saved.size(); ++i)
            sys->cpus[0]->numInsts += double(saved[i].getInt("insts"));
    }

    // Warm caches carry over only within the same protocol; a restore
    // onto a different memory system starts cold (always safe — the
    // checkpoint is functional state, cache contents are a timing
    // hint).
    if (ckpt.memSysState.isObject() &&
        ckpt.memSysState.getString("protocol") ==
            sys->memSystem->protocolName())
        sys->memSystem->restoreState(ckpt.memSysState);

    sys->physmem.adoptPages(ckpt.pages);

    for (auto &cpu : sys->cpus)
        cpu->start();
}

Json
FsSystem::checkpoint() const
{
    Json ckpt = Json::object();
    ckpt["format"] = "s5ckpt1";
    ckpt["configSignature"] = cfg.signature();
    ckpt["os"] = guestOs->saveState();
    ckpt["memory"] = sys->physmem.toJson();
    return ckpt;
}

CheckpointPtr
FsSystem::takeCheckpoint()
{
    auto ckpt = std::make_shared<Checkpoint>();
    ckpt->configSignature = cfg.signature();
    ckpt->simTicks = sys->curTick();
    ckpt->osState = guestOs->saveState(); // throws unless quiescent
    ckpt->deviceState = guestOs->saveDeviceState();

    Json cpu_state = Json::array();
    for (auto &cpu : sys->cpus)
        cpu_state.push(cpu->saveState());
    ckpt->cpuState = std::move(cpu_state);

    ckpt->memSysState = sys->memSystem->saveState();

    // Share the pages copy-on-write: flush any cached raw pointers
    // first so a later COW break cannot strand one.
    for (auto &cpu : sys->cpus)
        cpu->flushPageCache();
    ckpt->pages = sys->physmem.exportPages();
    return ckpt;
}

FsSystem::~FsSystem() = default;

SimResult
FsSystem::run(Tick max_ticks, scheduler::CancelToken *token)
{
    const std::uint64_t sched0 = sys->eventq.numEventsScheduled();
    const std::uint64_t fired0 = sys->eventq.numEventsRun();

    ExitEvent exit_ev = sys->eventq.run(max_ticks, token);

    // Event-core observability: per-run deltas keep the hot loop free
    // of atomics while the counters still aggregate across a sweep.
    metrics::counter("sim.eventq.scheduled")
        .inc(std::int64_t(sys->eventq.numEventsScheduled() - sched0));
    metrics::counter("sim.eventq.fired")
        .inc(std::int64_t(sys->eventq.numEventsRun() - fired0));

    SimResult result;
    result.exitCause = exit_ev.cause;
    result.exitCode = exit_ev.code;
    result.limitReached = exit_ev.limitReached;
    result.simTicks = sys->curTick();
    result.workBeginTick = guestOs->workBeginTick;
    result.workEndTick = guestOs->workEndTick;
    result.consoleText = guestOs->terminal.text();

    std::uint64_t insts = 0;
    for (auto &cpu : sys->cpus) {
        insts += std::uint64_t(cpu->numInsts.value());
        // Close out utilization accounting: busy = total - idle.
        cpu->finalizeIdle(result.simTicks);
        double idle = cpu->idleTicks.value();
        cpu->busyTicks.set(double(result.simTicks) > idle
                               ? double(result.simTicks) - idle
                               : 0.0);
    }
    result.totalInsts = insts;
    if (cfg.archDigest)
        result.archMd5 = archStateMd5(*guestOs, *sys);
    if (sys->errInject)
        result.errInject = sys->errInject->describe();
    result.stats = sys->rootStats.dumpJson();
    result.statsText = sys->rootStats.dumpText();
    return result;
}

} // namespace g5::sim::fs
