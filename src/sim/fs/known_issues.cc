#include "sim/fs/known_issues.hh"

#include <algorithm>

#include "sim/fs/fs_system.hh"

namespace g5::sim::fs
{

const std::vector<std::string> &
fig8Kernels()
{
    static const std::vector<std::string> kernels = {
        "4.4.186", "4.9.186", "4.14.134", "4.19.83", "5.4.49",
    };
    return kernels;
}

namespace
{

bool
kernelIn(const FsConfig &cfg, std::initializer_list<const char *> list)
{
    return std::any_of(list.begin(), list.end(), [&](const char *v) {
        return cfg.kernelVersion == v;
    });
}

bool
coresIn(const FsConfig &cfg, std::initializer_list<unsigned> list)
{
    return std::any_of(list.begin(), list.end(),
                       [&](unsigned c) { return cfg.numCpus == c; });
}

DefectPlan
plan(DefectPlan::Kind kind, const std::string &detail)
{
    DefectPlan p;
    p.kind = kind;
    p.detail = detail;
    return p;
}

} // anonymous namespace

DefectPlan
knownIssueFor(const FsConfig &cfg)
{
    // The census belongs to one specific simulated version.
    if (cfg.simVersion != buggedSimVersion)
        return {};
    // Only the O3CPU is implicated (Fig 8); the other models either
    // work or are rejected as unsupported before a defect could apply.
    if (cfg.cpuType != CpuType::O3)
        return {};

    const bool systemd = cfg.bootType == BootType::Systemd;

    if (cfg.memSystem == "classic") {
        // Single core only (multi-core classic+O3 is unsupported).
        // The LSQ replay segfault (GEM5-782) reproduces with the newest
        // kernel's early-boot pattern.
        if (cfg.kernelVersion == "5.4.49" && !systemd) {
            return plan(DefectPlan::Kind::HostSegfault,
                        "O3CPU LSQ replay on classic memory [GEM5-782]");
        }
        return {};
    }

    if (cfg.memSystem == "MI_example") {
        // Protocol deadlock: blocking directory loses a forwarded-ack
        // race with many outstanding O3 requests on 8 cores + old
        // kernels' boot-time page-init storm.
        if (coresIn(cfg, {8}) && kernelIn(cfg, {"4.4.186", "4.9.186"})) {
            return plan(DefectPlan::Kind::Deadlock,
                        "MI_example directory ack race under O3");
        }
        // Guest kernel panics: speculative-replay corruption visible to
        // old kernels' boot-time SMP bring-up.
        if (coresIn(cfg, {2, 4}) &&
            kernelIn(cfg, {"4.4.186", "4.9.186"})) {
            return plan(DefectPlan::Kind::KernelPanic,
                        "Attempted to kill init! exitcode=0x00000009");
        }
        if (cfg.numCpus == 8 && cfg.kernelVersion == "4.14.134" &&
            systemd) {
            return plan(DefectPlan::Kind::KernelPanic,
                        "Attempted to kill init! exitcode=0x00000009");
        }
        // Simulator segfaults with the newest kernel under load.
        if (cfg.kernelVersion == "5.4.49" && coresIn(cfg, {2, 4}) &&
            systemd) {
            return plan(DefectPlan::Kind::HostSegfault,
                        "O3CPU LSQ replay under MI_example [GEM5-782]");
        }
        // Runs that never finish (issue-replay livelock).
        if (cfg.kernelVersion == "4.19.83" && coresIn(cfg, {2, 4, 8})) {
            return plan(DefectPlan::Kind::Livelock,
                        "O3 issue-replay storm; no forward progress");
        }
        if (cfg.kernelVersion == "4.14.134" && coresIn(cfg, {2, 4})) {
            return plan(DefectPlan::Kind::Livelock,
                        "O3 issue-replay storm; no forward progress");
        }
        return {};
    }

    if (cfg.memSystem == "MESI_Two_Level") {
        if (kernelIn(cfg, {"4.4.186", "4.9.186", "4.14.134"}) &&
            coresIn(cfg, {2, 4, 8})) {
            return plan(DefectPlan::Kind::KernelPanic,
                        "Attempted to kill init! exitcode=0x00000009");
        }
        if (cfg.kernelVersion == "5.4.49") {
            return plan(DefectPlan::Kind::HostSegfault,
                        "O3CPU LSQ replay under MESI_Two_Level "
                        "[GEM5-782]");
        }
        if (cfg.kernelVersion == "4.19.83" && coresIn(cfg, {2, 4, 8})) {
            return plan(DefectPlan::Kind::Livelock,
                        "O3 issue-replay storm; no forward progress");
        }
        return {};
    }

    return {};
}

} // namespace g5::sim::fs
