#include "sim/fs/checkpoint.hh"

#include <cstring>

#include "base/logging.hh"
#include "base/md5.hh"

namespace g5::sim::fs
{

namespace
{

constexpr char magic[8] = {'s', '5', 'c', 'k', 'p', 't', '2', '\n'};

enum SectionTag : std::uint8_t {
    TagEnd = 0,
    TagMeta = 1,
    TagCpu = 2,
    TagOs = 3,
    TagDevices = 4,
    TagMemSys = 5,
    TagMemory = 6,
};

bool
isZeroPage(const mem::PhysMem::Page &page)
{
    for (std::int64_t w : page)
        if (w != 0)
            return false;
    return true;
}

/** Append-and-hash sink: every byte that reaches the image also
 *  reaches the digest, so the trailer falls out of serialization. */
class HashingSink
{
  public:
    void bytes(const void *data, std::size_t len)
    {
        out.append(static_cast<const char *>(data), len);
        md5.update(data, len);
    }

    void u8(std::uint8_t v) { bytes(&v, 1); }

    void u64(std::uint64_t v)
    {
        std::uint8_t buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = std::uint8_t(v >> (8 * i));
        bytes(buf, 8);
    }

    void i64(std::int64_t v) { u64(std::uint64_t(v)); }

    void section(std::uint8_t tag, const std::string &payload)
    {
        u8(tag);
        u64(payload.size());
        bytes(payload.data(), payload.size());
    }

    std::string out;
    Md5Stream md5;
};

/** Bounds-checked little-endian reader over the raw image. */
class Reader
{
  public:
    explicit Reader(const std::string &bytes) : data(bytes) {}

    std::size_t pos = 0;

    void need(std::size_t n, const char *what) const
    {
        if (pos + n > data.size())
            fatal(std::string("checkpoint: truncated image (while "
                              "reading ") +
                  what + ")");
    }

    std::uint8_t u8(const char *what)
    {
        need(1, what);
        return std::uint8_t(data[pos++]);
    }

    std::uint64_t u64(const char *what)
    {
        need(8, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(data[pos + i])) << (8 * i);
        pos += 8;
        return v;
    }

    std::int64_t i64(const char *what)
    {
        return std::int64_t(u64(what));
    }

    std::string str(std::size_t n, const char *what)
    {
        need(n, what);
        std::string s = data.substr(pos, n);
        pos += n;
        return s;
    }

    const std::string &data;
};

Json
parseSection(const std::string &payload, const char *what)
{
    try {
        return Json::parse(payload);
    } catch (const std::exception &e) {
        fatal(std::string("checkpoint: corrupt ") + what +
              " section: " + e.what());
    }
}

} // anonymous namespace

std::size_t
Checkpoint::memoryBytes() const
{
    std::size_t n = 0;
    for (const auto &kv : pages)
        if (kv.second && !isZeroPage(*kv.second))
            ++n;
    return 8 + n * (8 + mem::PhysMem::wordsPerPage * 8);
}

std::string
Checkpoint::serialize(std::string *hex_md5) const
{
    HashingSink sink;
    sink.bytes(magic, sizeof(magic));

    Json meta = Json::object();
    meta["format"] = "s5ckpt2";
    meta["configSignature"] = configSignature;
    meta["simTicks"] = simTicks;
    sink.section(TagMeta, meta.dump());
    sink.section(TagCpu, cpuState.dump());
    sink.section(TagOs, osState.dump());
    sink.section(TagDevices, deviceState.dump());
    sink.section(TagMemSys, memSysState.dump());

    // Raw non-zero pages: u64 count, then (u64 pageNo, 512 LE words)
    // each. The map is sorted, so the image is deterministic and equal
    // content hashes mean equal checkpoints.
    sink.u8(TagMemory);
    sink.u64(memoryBytes());
    std::uint64_t count = 0;
    for (const auto &kv : pages)
        if (kv.second && !isZeroPage(*kv.second))
            ++count;
    sink.u64(count);
    for (const auto &kv : pages) {
        if (!kv.second || isZeroPage(*kv.second))
            continue;
        sink.u64(kv.first);
        for (std::int64_t w : *kv.second)
            sink.i64(w);
    }

    sink.u8(TagEnd);
    sink.u64(0);

    auto digest = sink.md5.finalBytes();
    std::string image = std::move(sink.out);
    image.append(reinterpret_cast<const char *>(digest.data()),
                 digest.size());
    if (hex_md5) {
        static const char hex[] = "0123456789abcdef";
        hex_md5->clear();
        for (std::uint8_t b : digest) {
            hex_md5->push_back(hex[b >> 4]);
            hex_md5->push_back(hex[b & 0xf]);
        }
    }
    return image;
}

std::shared_ptr<Checkpoint>
Checkpoint::deserialize(const std::string &bytes)
{
    Reader rd(bytes);
    rd.need(sizeof(magic), "magic");
    if (std::memcmp(bytes.data(), magic, sizeof(magic)) != 0)
        fatal("checkpoint: not an s5ckpt2 image (bad magic)");
    rd.pos = sizeof(magic);

    auto ckpt = std::make_shared<Checkpoint>();
    bool saw_end = false;
    while (!saw_end) {
        std::uint8_t tag = rd.u8("section tag");
        std::uint64_t len = rd.u64("section length");
        switch (tag) {
          case TagEnd:
            if (len != 0)
                fatal("checkpoint: corrupt end marker");
            saw_end = true;
            break;
          case TagMeta: {
            Json meta = parseSection(rd.str(len, "meta"), "meta");
            if (meta.getString("format") != "s5ckpt2")
                fatal("checkpoint: not a sim5 checkpoint");
            ckpt->configSignature = meta.getString("configSignature");
            ckpt->simTicks = Tick(meta.getInt("simTicks"));
            break;
          }
          case TagCpu:
            ckpt->cpuState = parseSection(rd.str(len, "cpu"), "cpu");
            break;
          case TagOs:
            ckpt->osState = parseSection(rd.str(len, "os"), "os");
            break;
          case TagDevices:
            ckpt->deviceState =
                parseSection(rd.str(len, "devices"), "devices");
            break;
          case TagMemSys:
            ckpt->memSysState =
                parseSection(rd.str(len, "memsys"), "memsys");
            break;
          case TagMemory: {
            std::size_t end = rd.pos + len;
            rd.need(len, "memory section");
            std::uint64_t count = rd.u64("page count");
            constexpr std::size_t page_bytes =
                8 + mem::PhysMem::wordsPerPage * 8;
            if (len != 8 + count * page_bytes)
                fatal("checkpoint: memory section length does not "
                      "match its page count");
            for (std::uint64_t i = 0; i < count; ++i) {
                Addr page_no = Addr(rd.u64("page number"));
                auto page = std::make_shared<mem::PhysMem::Page>();
                for (std::size_t w = 0;
                     w < mem::PhysMem::wordsPerPage; ++w)
                    (*page)[w] = rd.i64("page words");
                if (!ckpt->pages.emplace(page_no, std::move(page))
                         .second)
                    fatal("checkpoint: duplicate memory page");
            }
            if (rd.pos != end)
                fatal("checkpoint: memory section length mismatch");
            break;
          }
          default:
            // Unknown section from a newer writer: skip the payload
            // (the length prefix makes this safe), keep loading.
            rd.need(len, "unknown section");
            rd.pos += len;
            break;
        }
    }

    // Everything after the end marker is the 16-byte digest trailer.
    std::size_t body_len = rd.pos;
    rd.need(16, "digest trailer");
    if (bytes.size() != body_len + 16)
        fatal("checkpoint: trailing garbage after digest trailer");

    Md5 md5;
    md5.update(bytes.data(), body_len);
    auto digest = md5.digest();
    if (std::memcmp(digest.data(), bytes.data() + body_len, 16) != 0)
        fatal("checkpoint: digest mismatch (corrupt image)");

    return ckpt;
}

} // namespace g5::sim::fs
