/**
 * @file
 * The Linux-kernel model: a KernelSpec ("vmlinux") describes one kernel
 * version and derives the boot workload sim5 executes for it.
 *
 * The spec serializes to JSON so kernel binaries are first-class,
 * hashable artifacts (gem5-resources' linux-kernel resource). Version-
 * dependent parameters are derived mechanistically: newer kernels carry
 * more boot code and driver probes, pay higher syscall overhead (
 * post-4.14 mitigations) but schedule wakeups faster.
 */

#ifndef G5_SIM_FS_KERNEL_HH
#define G5_SIM_FS_KERNEL_HH

#include <string>

#include "base/json.hh"
#include "base/types.hh"
#include "sim/isa/program.hh"

namespace g5::sim::fs
{

/** Boot modes of the paper's Fig 8. */
enum class BootType {
    KernelOnly,  ///< boot the kernel, start init, exit
    Systemd,     ///< boot to runlevel 5 (multi-user) before exiting
};

/** @return "init" or "systemd" (the boot-exit resource's names). */
const char *bootTypeName(BootType t);

/** Parse a boot-type name; throws FatalError on junk. */
BootType bootTypeFromName(const std::string &name);

struct KernelSpec
{
    std::string version;       ///< e.g. "5.4.49"
    int major = 0;
    int minor = 0;
    int patch = 0;

    // Derived boot-workload knobs (see forVersion()).
    std::uint64_t decompressIters = 0;
    std::uint64_t pageInitWords = 0;
    unsigned driverProbes = 0;
    std::uint64_t rootfsWords = 0;
    unsigned bootServices = 0;

    /** Kernel-time cost charged per syscall, in ticks. */
    Tick syscallOverhead = 0;
    /** Futex wake-to-run latency, in ticks. */
    Tick wakeLatency = 0;

    /** Build the spec for a version string; throws FatalError on junk. */
    static KernelSpec forVersion(const std::string &version);

    Json toJson() const;
    static KernelSpec fromJson(const Json &j);

    /** Write the "vmlinux binary" to a host file. */
    void save(const std::string &host_path) const;
    static KernelSpec load(const std::string &host_path);
};

/**
 * Emit the boot program for @p kernel.
 *
 * @param boot                boot mode.
 * @param num_cpus            CPUs in the system (services fan out).
 * @param init_program_index  SYS_EXEC index of the workload binary the
 *                            init process should run; -1 for none
 *                            (boot-exit behaviour).
 * @param init_arg            argument passed to the workload (r1).
 * @param checkpoint_after_boot insert an m5 checkpoint op between the
 *                            end of boot and the workload (the
 *                            hack-back resource's behaviour).
 * @param quiet_checkpoint    emit only the m5 op, without the hack-back
 *                            console markers. Used by the transparent
 *                            boot-prefix tier, where a restored run's
 *                            console must be byte-identical to a
 *                            straight run's.
 */
isa::ProgramPtr buildBootProgram(const KernelSpec &kernel, BootType boot,
                                 unsigned num_cpus,
                                 int init_program_index = -1,
                                 std::int64_t init_arg = 0,
                                 bool checkpoint_after_boot = false,
                                 bool quiet_checkpoint = false);

/** Guest addresses used by generated boot code. */
constexpr Addr kernelScratchBase = 0x4000'0000;
constexpr Addr svcCounterAddr = 0x4100'0000;

} // namespace g5::sim::fs

#endif // G5_SIM_FS_KERNEL_HH
