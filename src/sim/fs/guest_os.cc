#include "sim/fs/guest_os.hh"

#include <map>
#include <set>
#include <vector>

#include "base/logging.hh"
#include "sim/fs/guest_abi.hh"
#include "sim/trace.hh"

namespace g5::sim::fs
{

using isa::ThreadContext;

GuestOs::GuestOs(System &sys, KernelSpec kernel, DiskImagePtr disk_image)
    : sys(sys), kernel(std::move(kernel)),
      diskImage(std::move(disk_image)), stats("os")
{
    stats.addStat("numSyscalls", &numSyscallsServed, "syscalls serviced");
    stats.addStat("threadsSpawned", &numThreadsSpawned,
                  "guest threads created");
    stats.addStat("futexWaits", &numFutexWaits, "futex wait syscalls");
    stats.addStat("futexWakes", &numFutexWakes, "futex wake syscalls");
    stats.addStat("diskReadTicks", &numDiskReadTicks,
                  "ticks charged for disk reads");
    stats.addStat("timerTicks", &numTimerTicks, "OS timer interrupts");
    stats.addStat("terminalBytes", &terminal.bytesWritten,
                  "console bytes written");
    stats.addStat("diskReads", &disk.reads, "disk read requests");
    stats.addStat("diskWordsRead", &disk.wordsRead, "disk words read");
}

ThreadContext *
GuestOs::createThread(isa::ProgramPtr prog, std::uint64_t entry,
                      std::int64_t arg)
{
    int tid = int(threads.size());
    threads.push_back(std::make_unique<ThreadContext>(tid, std::move(prog)));
    ThreadContext *tc = threads.back().get();
    tc->pc = entry;
    tc->regs[1] = arg;
    ++numThreadsSpawned;
    ++liveThreadCount;
    DTRACE("Exec", sys.curTick(), "thread %d created: %s @ pc %llu",
           tid, tc->prog->name().c_str(), (unsigned long long)entry);
    return tc;
}

void
GuestOs::makeRunnable(ThreadContext *tc)
{
    tc->status = ThreadContext::Status::Runnable;
    runQueue.push_back(tc);
    sys.kickIdleCpus();
}

void
GuestOs::startBoot(BootType boot, int init_program_index,
                   std::int64_t init_arg, bool checkpoint_after_boot,
                   bool quiet_checkpoint)
{
    unsigned num_cpus = unsigned(sys.cpus.size());
    auto prog = buildBootProgram(kernel, boot, num_cpus,
                                 init_program_index, init_arg,
                                 checkpoint_after_boot,
                                 quiet_checkpoint);
    ThreadContext *tc = createThread(std::move(prog), 0, 0);
    makeRunnable(tc);
    scheduleTimer();
}

ThreadContext *
GuestOs::startProgram(isa::ProgramPtr prog, std::int64_t arg)
{
    ThreadContext *tc = createThread(std::move(prog), 0, arg);
    makeRunnable(tc);
    if (!timerRunning)
        scheduleTimer();
    return tc;
}

void
GuestOs::scheduleTimer()
{
    timerRunning = true;
    sys.eventq.schedule(sys.curTick() + timerPeriod, [this] {
        ++numTimerTicks;
        scheduleTimer();
    });
}

ThreadContext *
GuestOs::pickNext(int cpu_id)
{
    (void)cpu_id;
    if (runQueue.empty())
        return nullptr;
    ThreadContext *tc = runQueue.front();
    runQueue.pop_front();
    return tc;
}

bool
GuestOs::hasRunnable() const
{
    return !runQueue.empty();
}

void
GuestOs::requeue(ThreadContext *tc)
{
    runQueue.push_back(tc);
}

void
GuestOs::finishThread(ThreadContext &tc, std::int64_t code)
{
    tc.status = ThreadContext::Status::Finished;
    tc.exitCode = code;
    DTRACE("Exec", sys.curTick(), "thread %d exited with code %lld",
           tc.tid, (long long)code);
    auto it = joinWaiters.find(tc.tid);
    if (it != joinWaiters.end()) {
        for (ThreadContext *waiter : it->second)
            makeRunnable(waiter);
        joinWaiters.erase(it);
    }
    if (liveThreadCount > 0)
        --liveThreadCount;
    // SE-style completion: when the last guest thread exits without an
    // explicit m5 exit, the simulation is done (gem5's "exiting with
    // last active thread context").
    if (liveThreadCount == 0 && !sys.eventq.exitPending()) {
        sys.eventq.exitSimLoop(
            "exiting with last active thread context", int(code));
    }
}

void
GuestOs::maybeFireDefect()
{
    if (defectFired || sys.defect.kind == DefectPlan::Kind::None)
        return;
    if (syscallsSeen < defectTriggerSyscalls)
        return;

    switch (sys.defect.kind) {
      case DefectPlan::Kind::KernelPanic:
        defectFired = true;
        terminal.writeLine("BUG: unable to handle kernel NULL pointer "
                           "dereference at 0000000000000000");
        terminal.writeLine("Kernel panic - not syncing: " +
                           (sys.defect.detail.empty()
                                ? std::string("Fatal exception")
                                : sys.defect.detail));
        sys.eventq.exitSimLoop("guest kernel panicked", 2);
        break;
      case DefectPlan::Kind::HostSegfault:
        defectFired = true;
        throw SimulatorCrash(
            "Segmentation fault (core dumped) — " +
            (sys.defect.detail.empty() ? std::string("O3CPU LSQ")
                                       : sys.defect.detail));
      case DefectPlan::Kind::Livelock: {
        // The boot thread stops making forward progress: model the O3
        // replay storm by blocking it on a futex channel nothing ever
        // wakes. The OS timer keeps simulated time flowing, so the run
        // ends only at the caller's tick limit (a scheduler timeout).
        defectFired = true;
        break;
      }
      case DefectPlan::Kind::Deadlock:
      case DefectPlan::Kind::None:
        break; // deadlocks are modelled inside the Ruby memory system
    }
}

Tick
GuestOs::syscall(ThreadContext &tc, std::int64_t code, int cpu_id)
{
    ++numSyscallsServed;
    ++syscallsSeen;
    DTRACE("Syscall", sys.curTick(),
           "tid %d on cpu%d: syscall %lld (r1=%lld r2=%lld)", tc.tid,
           cpu_id, (long long)code, (long long)tc.regs[1],
           (long long)tc.regs[2]);
    maybeFireDefect();

    Tick cost = kernel.syscallOverhead;

    if (defectFired && sys.defect.kind == DefectPlan::Kind::Livelock) {
        // Every kernel entry replays forever; the thread never returns.
        tc.status = ThreadContext::Status::Blocked;
        tc.waitAddr = ~Addr(0);
        return cost;
    }

    auto &r = tc.regs;
    switch (code) {
      case SYS_WRITE: {
        std::size_t idx = std::size_t(r[1]);
        if (idx >= tc.prog->strings.size())
            fatal("guest: SYS_WRITE with bad string index");
        terminal.writeLine(tc.prog->strings[idx]);
        cost += 50'000; // UART is slow
        break;
      }
      case SYS_EXIT:
        finishThread(tc, r[1]);
        break;
      case SYS_SPAWN: {
        std::uint64_t entry = std::uint64_t(r[1]);
        if (entry >= tc.prog->size())
            fatal("guest: SYS_SPAWN entry out of range");
        ThreadContext *child = createThread(tc.prog, entry, r[2]);
        makeRunnable(child);
        r[1] = child->tid;
        cost += 20'000; // clone() isn't free
        break;
      }
      case SYS_FUTEX_WAIT: {
        ++numFutexWaits;
        Addr addr = Addr(r[1]);
        std::int64_t expected = r[2];
        if (sys.physmem.read(addr) != expected) {
            r[1] = 1; // EAGAIN: value changed, don't sleep
        } else {
            tc.status = ThreadContext::Status::Blocked;
            tc.waitAddr = addr;
            futexWaiters[addr].push_back(&tc);
            r[1] = 0;
        }
        break;
      }
      case SYS_FUTEX_WAKE: {
        ++numFutexWakes;
        Addr addr = Addr(r[1]);
        std::int64_t max_wake = r[2];
        std::int64_t woken = 0;
        auto it = futexWaiters.find(addr);
        if (it != futexWaiters.end()) {
            while (woken < max_wake && !it->second.empty()) {
                ThreadContext *waiter = it->second.front();
                it->second.pop_front();
                waiter->waitAddr = 0;
                ++woken;
                // Wake-to-run latency depends on the kernel's scheduler.
                sys.eventq.schedule(sys.curTick() + kernel.wakeLatency,
                                    [this, waiter] {
                                        makeRunnable(waiter);
                                    });
            }
            if (it->second.empty())
                futexWaiters.erase(it);
        }
        r[1] = woken;
        break;
      }
      case SYS_YIELD:
        if (hasRunnable()) {
            tc.status = ThreadContext::Status::Runnable;
            runQueue.push_back(&tc);
        }
        break;
      case SYS_NANOSLEEP: {
        Tick ns = Tick(r[1] < 0 ? 0 : r[1]);
        tc.status = ThreadContext::Status::Blocked;
        ThreadContext *tcp = &tc;
        sys.eventq.schedule(sys.curTick() + ns * 1000,
                            [this, tcp] { makeRunnable(tcp); });
        break;
      }
      case SYS_GETCPU:
        r[1] = cpu_id;
        break;
      case SYS_GETTID:
        r[1] = tc.tid;
        break;
      case SYS_EXEC: {
        if (!diskImage)
            fatal("guest: SYS_EXEC with no disk image mounted");
        isa::ProgramPtr prog = diskImage->programAt(int(r[1]));
        // Loading the binary costs a disk read of its size.
        Tick load = disk.readLatency(prog->size());
        numDiskReadTicks += double(load);
        cost += load;
        ThreadContext *child = createThread(std::move(prog), 0, r[2]);
        makeRunnable(child);
        r[1] = child->tid;
        break;
      }
      case SYS_READ_DISK: {
        // The thread genuinely blocks on the device and is woken by
        // the completion interrupt.
        std::uint64_t words = std::uint64_t(r[1] < 0 ? 0 : r[1]);
        Tick lat = disk.readLatency(words);
        numDiskReadTicks += double(lat);
        tc.status = ThreadContext::Status::Blocked;
        ThreadContext *tcp = &tc;
        sys.eventq.schedule(sys.curTick() + lat,
                            [this, tcp] { makeRunnable(tcp); });
        break;
      }
      case SYS_JOIN: {
        int tid = int(r[1]);
        ThreadContext *target = thread(tid);
        if (!target)
            fatal("guest: SYS_JOIN on unknown tid");
        if (target->status != ThreadContext::Status::Finished) {
            tc.status = ThreadContext::Status::Blocked;
            joinWaiters[tid].push_back(&tc);
        }
        break;
      }
      default:
        fatal(csprintf("guest: unknown syscall %lld", (long long)code));
    }

    return cost;
}

void
GuestOs::m5op(ThreadContext &tc, std::int64_t func)
{
    switch (func) {
      case M5_EXIT:
        sys.eventq.exitSimLoop("m5_exit instruction encountered", 0);
        break;
      case M5_FAIL:
        sys.eventq.exitSimLoop("m5_fail instruction encountered",
                               int(tc.regs[1]));
        break;
      case M5_WORK_BEGIN:
        workBeginTick = sys.curTick();
        break;
      case M5_WORK_END:
        workEndTick = sys.curTick();
        break;
      case M5_RESET_STATS:
        // Zero the whole stats tree, exactly like gem5's m5 resetstats
        // (workloads call it at the ROI boundary).
        sys.rootStats.reset();
        break;
      case M5_CHECKPOINT:
        // Stop the loop so the host can serialize state (hack-back).
        sys.eventq.exitSimLoop("checkpoint", 0);
        break;
      default:
        fatal(csprintf("guest: unknown m5 op %lld", (long long)func));
    }
}

std::pair<std::int64_t, Tick>
GuestOs::ioRead(Addr addr)
{
    if (addr >= diskMmioBase && addr < diskMmioBase + mmioWindow) {
        // Device register: status word + probe latency.
        return {1, disk.probeLatency()};
    }
    if (addr >= terminalMmioBase && addr < terminalMmioBase + mmioWindow)
        return {0, 100'000};
    fatal(csprintf("guest: I/O read from unmapped address %#llx",
                   (unsigned long long)addr));
}

Tick
GuestOs::ioWrite(Addr addr, std::int64_t value)
{
    (void)value;
    if (addr >= terminalMmioBase && addr < terminalMmioBase + mmioWindow)
        return 100'000;
    if (addr >= diskMmioBase && addr < diskMmioBase + mmioWindow)
        return disk.probeLatency();
    fatal(csprintf("guest: I/O write to unmapped address %#llx",
                   (unsigned long long)addr));
}

void
GuestOs::threadHalted(ThreadContext &tc)
{
    finishThread(tc, 0);
}

ThreadContext *
GuestOs::thread(int tid)
{
    if (tid < 0 || std::size_t(tid) >= threads.size())
        return nullptr;
    return threads[std::size_t(tid)].get();
}

Json
GuestOs::saveState() const
{
    // Which threads are blocked on joins (as opposed to futexes)?
    std::set<int> join_blocked;
    for (const auto &kv : joinWaiters)
        for (const ThreadContext *tc : kv.second)
            join_blocked.insert(tc->tid);

    Json out = Json::object();
    // Spawned threads share the boot program object; serialize each
    // distinct program once and let threads reference it by index —
    // a 20-thread post-boot checkpoint carries one program, not 20
    // copies, and the restore parses it once.
    Json progs = Json::array();
    std::map<const isa::Program *, std::int64_t> prog_index;
    Json tjson = Json::array();
    for (const auto &tptr : threads) {
        const ThreadContext &tc = *tptr;
        std::string status;
        switch (tc.status) {
          case ThreadContext::Status::Running:
          case ThreadContext::Status::Runnable:
            status = "runnable";
            break;
          case ThreadContext::Status::Finished:
            status = "finished";
            break;
          case ThreadContext::Status::Blocked:
            if (tc.waitAddr != 0 && tc.waitAddr != ~Addr(0)) {
                status = "blocked-futex";
            } else if (join_blocked.count(tc.tid)) {
                status = "blocked-join";
            } else {
                fatal(csprintf(
                    "checkpoint: thread %d is blocked on a host-side "
                    "event (timer/disk); checkpoints require a "
                    "quiescent point",
                    tc.tid));
            }
            break;
        }
        Json t = Json::object();
        t["tid"] = tc.tid;
        t["pc"] = tc.pc;
        t["status"] = status;
        t["waitAddr"] = tc.waitAddr;
        t["exitCode"] = tc.exitCode;
        t["numInsts"] = tc.numInsts;
        Json regs = Json::array();
        for (int i = 0; i < isa::numRegs; ++i)
            regs.push(tc.regs[i]);
        t["regs"] = std::move(regs);
        auto found = prog_index.find(tc.prog.get());
        if (found == prog_index.end()) {
            found = prog_index
                        .emplace(tc.prog.get(),
                                 std::int64_t(prog_index.size()))
                        .first;
            progs.push(tc.prog->toJson());
        }
        t["programRef"] = found->second;
        tjson.push(std::move(t));
    }
    out["programs"] = std::move(progs);
    out["threads"] = std::move(tjson);

    Json rq = Json::array();
    for (const ThreadContext *tc : runQueue)
        rq.push(tc->tid);
    out["runQueue"] = std::move(rq);

    Json joins = Json::array();
    for (const auto &kv : joinWaiters) {
        Json entry = Json::object();
        entry["target"] = kv.first;
        Json waiters = Json::array();
        for (const ThreadContext *tc : kv.second)
            waiters.push(tc->tid);
        entry["waiters"] = std::move(waiters);
        joins.push(std::move(entry));
    }
    out["joinWaiters"] = std::move(joins);

    // Futex queues rebuild from each thread's waitAddr, preserving
    // per-address FIFO order.
    Json futexes = Json::array();
    for (const auto &kv : futexWaiters) {
        Json entry = Json::object();
        entry["addr"] = kv.first;
        Json waiters = Json::array();
        for (const ThreadContext *tc : kv.second)
            waiters.push(tc->tid);
        entry["waiters"] = std::move(waiters);
        futexes.push(std::move(entry));
    }
    out["futexWaiters"] = std::move(futexes);

    out["workBeginTick"] = workBeginTick;
    out["workEndTick"] = workEndTick;
    return out;
}

void
GuestOs::restoreState(const Json &state)
{
    if (!threads.empty())
        fatal("GuestOs::restoreState: OS already has threads");

    std::vector<isa::ProgramPtr> prog_table;
    if (const Json *progs = state.find("programs"))
        for (const auto &pj : progs->asArray())
            prog_table.push_back(isa::Program::fromJson(pj));

    for (const auto &t : state.at("threads").asArray()) {
        isa::ProgramPtr prog;
        if (const Json *ref = t.find("programRef")) {
            std::size_t idx = std::size_t(ref->asInt());
            if (idx >= prog_table.size())
                fatal("GuestOs::restoreState: bad program reference");
            // Threads sharing a program at save time share it again on
            // restore, exactly like live SYS_SPAWN.
            prog = prog_table[idx];
        } else {
            // Tolerate the older per-thread inline form.
            prog = isa::Program::fromJson(t.at("program"));
        }
        ThreadContext *tc =
            createThread(std::move(prog), std::uint64_t(t.getInt("pc")),
                         0);
        const auto &regs = t.at("regs").asArray();
        for (int i = 0; i < isa::numRegs && i < int(regs.size()); ++i)
            tc->regs[i] = regs[std::size_t(i)].asInt();
        tc->waitAddr = Addr(t.getInt("waitAddr"));
        tc->exitCode = t.getInt("exitCode");
        tc->numInsts = std::uint64_t(t.getInt("numInsts"));
        std::string status = t.getString("status");
        if (status == "finished") {
            tc->status = ThreadContext::Status::Finished;
            if (liveThreadCount > 0)
                --liveThreadCount;
        } else if (status == "runnable") {
            tc->status = ThreadContext::Status::Runnable;
        } else {
            tc->status = ThreadContext::Status::Blocked;
        }
    }

    std::set<int> queued;
    for (const auto &tid : state.at("runQueue").asArray()) {
        queued.insert(int(tid.asInt()));
        runQueue.push_back(thread(int(tid.asInt())));
    }
    // A thread that was Running on a CPU at the checkpoint is runnable
    // but absent from the saved queue: schedule it first.
    for (const auto &tptr : threads) {
        if (tptr->status == ThreadContext::Status::Runnable &&
            !queued.count(tptr->tid)) {
            runQueue.push_front(tptr.get());
        }
    }

    for (const auto &entry : state.at("futexWaiters").asArray()) {
        Addr addr = Addr(entry.getInt("addr"));
        for (const auto &tid : entry.at("waiters").asArray())
            futexWaiters[addr].push_back(thread(int(tid.asInt())));
    }
    for (const auto &entry : state.at("joinWaiters").asArray()) {
        int target = int(entry.getInt("target"));
        for (const auto &tid : entry.at("waiters").asArray())
            joinWaiters[target].push_back(thread(int(tid.asInt())));
    }

    workBeginTick = Tick(state.getInt("workBeginTick"));
    workEndTick = Tick(state.getInt("workEndTick"));

    scheduleTimer();
    sys.kickIdleCpus();
}

Json
GuestOs::saveDeviceState() const
{
    Json out = Json::object();
    Json lines = Json::array();
    for (const auto &line : terminal.allLines())
        lines.push(line);
    out["terminal"] = std::move(lines);
    out["syscallsSeen"] = std::int64_t(syscallsSeen);
    return out;
}

void
GuestOs::restoreDeviceState(const Json &state)
{
    if (!state.isObject())
        return;
    if (const Json *lines = state.find("terminal"))
        for (const auto &line : lines->asArray())
            terminal.writeLine(line.asString());
    syscallsSeen = std::uint64_t(state.getInt("syscallsSeen"));
}

} // namespace g5::sim::fs
