/**
 * @file
 * The S5DK disk-image format — the unit Packer builds, gem5art hashes,
 * and sim5 FS mode boots from.
 *
 * An image is a JSON container:
 *
 *   {
 *     "format": "S5DK1",
 *     "os": { "name": "ubuntu", "release": "20.04",
 *             "kernel": "5.4.51", "compiler": "gcc-9.3", ... },
 *     "files": {
 *        "/bin/blackscholes": {"kind": "program", "program": {...}},
 *        "/etc/os-release":   {"kind": "data", "text": "..."}
 *     },
 *     "provenance": [ ...packer build steps... ]
 *   }
 *
 * Programs (SimISA binaries) are addressable both by path and by a
 * stable integer index (sorted path order) — the index is what
 * SYS_EXEC uses at runtime.
 */

#ifndef G5_SIM_FS_DISK_IMAGE_HH
#define G5_SIM_FS_DISK_IMAGE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/json.hh"
#include "sim/isa/program.hh"

namespace g5::sim::fs
{

class DiskImage
{
  public:
    DiskImage();

    /** Set the userland/OS descriptor (name, release, compiler, ...). */
    void setOsInfo(Json os_info);
    const Json &osInfo() const { return image.at("os"); }

    /** Install a SimISA binary at @p path. */
    void addProgram(const std::string &path, const isa::ProgramPtr &prog);

    /** Install a plain data file at @p path. */
    void addDataFile(const std::string &path, const std::string &text);

    /** Record a provenance entry (Packer build step). */
    void addProvenance(const std::string &step);

    /** @return true when @p path exists. */
    bool hasFile(const std::string &path) const;

    /** @return sorted program paths; position = SYS_EXEC index. */
    std::vector<std::string> programPaths() const;

    /** Resolve a program path to its SYS_EXEC index; -1 when absent. */
    int programIndex(const std::string &path) const;

    /** Load the program at @p index; throws FatalError out of range. */
    isa::ProgramPtr programAt(int index) const;

    /** Load the program at @p path; throws FatalError when absent. */
    isa::ProgramPtr programByPath(const std::string &path) const;

    /** Total image size in bytes of serialized JSON (for accounting). */
    std::size_t sizeBytes() const { return serialize().size(); }

    /** Serialize the whole image (deterministic). */
    std::string serialize() const;

    /** Write to a host file. */
    void save(const std::string &host_path) const;

    /** Parse from serialized text; throws FatalError on bad format. */
    static std::shared_ptr<DiskImage> deserialize(const std::string &text);

    /** Read from a host file. */
    static std::shared_ptr<DiskImage> load(const std::string &host_path);

    /** Access the raw manifest (tests, provenance inspection). */
    const Json &manifest() const { return image; }

  private:
    Json image;
};

using DiskImagePtr = std::shared_ptr<DiskImage>;

} // namespace g5::sim::fs

#endif // G5_SIM_FS_DISK_IMAGE_HH
