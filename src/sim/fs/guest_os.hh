/**
 * @file
 * GuestOs — the miniature operating system of sim5 full-system mode.
 *
 * It owns every guest software thread, schedules them onto CPUs through
 * a global run queue (round-robin with instruction-quantum preemption,
 * driven from BaseCpu), and services the guest ABI: console writes,
 * thread spawn/join/exit, futexes with version-dependent wake latency,
 * sleeping, disk reads, and exec of binaries from the mounted S5DK disk
 * image. m5 pseudo-ops (exit / work begin / work end) terminate the
 * simulation and timestamp the region of interest.
 *
 * A periodic timer interrupt keeps the event queue alive while all CPUs
 * idle — exactly why a hung guest shows up as "simulate() limit
 * reached" rather than a drained queue, matching how a hung gem5 run
 * shows up as a scheduler timeout in the paper's Fig 8.
 */

#ifndef G5_SIM_FS_GUEST_OS_HH
#define G5_SIM_FS_GUEST_OS_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "sim/fs/devices.hh"
#include "sim/fs/disk_image.hh"
#include "sim/fs/kernel.hh"
#include "sim/system.hh"

namespace g5::sim::fs
{

class GuestOs : public OsCallbacks
{
  public:
    /**
     * @param sys    the owning system (os pointer is wired by caller).
     * @param kernel the booted kernel's spec (syscall/wake costs).
     * @param disk   mounted disk image; may be nullptr for bare runs.
     */
    GuestOs(System &sys, KernelSpec kernel, DiskImagePtr disk);

    /** Console device. */
    Terminal terminal;
    /** Disk device (latency model; contents come from the image). */
    DiskDevice disk;

    /**
     * Create the boot thread from the kernel's generated boot program
     * and start the OS timer. CPUs are started separately.
     */
    void startBoot(BootType boot, int init_program_index = -1,
                   std::int64_t init_arg = 0,
                   bool checkpoint_after_boot = false,
                   bool quiet_checkpoint = false);

    /** Start an arbitrary program as a thread (tests, SE-style runs). */
    isa::ThreadContext *startProgram(isa::ProgramPtr prog,
                                     std::int64_t arg = 0);

    // --- OsCallbacks ---
    isa::ThreadContext *pickNext(int cpu_id) override;
    bool hasRunnable() const override;
    void requeue(isa::ThreadContext *tc) override;
    Tick syscall(isa::ThreadContext &tc, std::int64_t code,
                 int cpu_id) override;
    void m5op(isa::ThreadContext &tc, std::int64_t func) override;
    std::pair<std::int64_t, Tick> ioRead(Addr addr) override;
    Tick ioWrite(Addr addr, std::int64_t value) override;
    void threadHalted(isa::ThreadContext &tc) override;

    /** Region-of-interest timestamps (0 when never marked). */
    Tick workBeginTick = 0;
    Tick workEndTick = 0;

    /** @return total threads ever created. */
    std::size_t numThreads() const { return threads.size(); }

    /** @return the thread with @p tid, or nullptr. */
    isa::ThreadContext *thread(int tid);

    /** @return threads created minus threads finished. */
    std::size_t liveThreads() const { return liveThreadCount; }

    /**
     * Serialize guest software state (threads, registers, futex and
     * join queues, run-queue order) for a checkpoint. Requires
     * quiescence: every thread Runnable, futex/join-blocked, or
     * Finished — a thread sleeping on a timer or disk interrupt has
     * host-side events that cannot be serialized (the same restriction
     * gem5 places on checkpoint points).
     * @throws FatalError when the system is not quiescent.
     */
    Json saveState() const;

    /**
     * Rebuild guest software state from saveState() output and start
     * the OS timer. The GuestOs must be freshly constructed.
     */
    void restoreState(const Json &state);

    /**
     * Serialize device-side state the legacy s5ckpt1 format never
     * carried: the console backlog (so a restored run's terminal reads
     * like the straight run's) and the OS syscall counter (so
     * version-defect arming points survive a restore).
     */
    Json saveDeviceState() const;

    /** Restore saveDeviceState() output; tolerates null (s5ckpt1). */
    void restoreDeviceState(const Json &state);

    StatGroup &statGroup() { return stats; }

    // Statistics (public for tests).
    Scalar numSyscallsServed, numThreadsSpawned, numFutexWaits,
        numFutexWakes, numDiskReadTicks, numTimerTicks;

  private:
    isa::ThreadContext *createThread(isa::ProgramPtr prog,
                                     std::uint64_t entry,
                                     std::int64_t arg);
    void makeRunnable(isa::ThreadContext *tc);
    void finishThread(isa::ThreadContext &tc, std::int64_t code);
    void scheduleTimer();
    void maybeFireDefect();

    System &sys;
    KernelSpec kernel;
    DiskImagePtr diskImage;

    std::vector<std::unique_ptr<isa::ThreadContext>> threads;
    std::deque<isa::ThreadContext *> runQueue;
    std::map<Addr, std::deque<isa::ThreadContext *>> futexWaiters;
    std::map<int, std::vector<isa::ThreadContext *>> joinWaiters;

    std::uint64_t syscallsSeen = 0;
    std::size_t liveThreadCount = 0;
    bool defectFired = false;
    bool timerRunning = false;

    /** Syscalls before a configured defect manifests (mid-boot). */
    static constexpr std::uint64_t defectTriggerSyscalls = 5;
    /** OS timer interrupt period (1 ms). */
    static constexpr Tick timerPeriod = 1'000'000'000;

    StatGroup stats;
};

} // namespace g5::sim::fs

#endif // G5_SIM_FS_GUEST_OS_HH
