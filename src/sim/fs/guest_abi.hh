/**
 * @file
 * The guest/kernel ABI of sim5 full-system mode: syscall numbers, m5
 * pseudo-op functions, and device MMIO windows.
 *
 * Calling convention: the syscall code is the instruction immediate,
 * arguments travel in r1..r3, and the result returns in r1.
 */

#ifndef G5_SIM_FS_GUEST_ABI_HH
#define G5_SIM_FS_GUEST_ABI_HH

#include <cstdint>

#include "base/types.hh"

namespace g5::sim::fs
{

/** Syscall numbers. */
enum Sys : std::int64_t {
    SYS_WRITE = 1,       ///< r1 = string-table index -> console
    SYS_EXIT = 2,        ///< r1 = exit code; thread terminates
    SYS_SPAWN = 3,       ///< r1 = entry pc, r2 = arg; ret tid
    SYS_FUTEX_WAIT = 4,  ///< r1 = addr, r2 = expected; 0 = slept
    SYS_FUTEX_WAKE = 5,  ///< r1 = addr, r2 = max; ret woken count
    SYS_YIELD = 6,
    SYS_NANOSLEEP = 7,   ///< r1 = nanoseconds
    SYS_GETCPU = 8,      ///< ret cpu id
    SYS_GETTID = 9,      ///< ret tid
    SYS_EXEC = 10,       ///< r1 = disk program index, r2 = arg; ret tid
    SYS_READ_DISK = 11,  ///< r1 = 64-bit words to read (latency charge)
    SYS_JOIN = 12,       ///< r1 = tid; block until it finishes
};

/** m5 pseudo-op functions (subset of gem5's m5ops). */
enum M5Func : std::int64_t {
    M5_EXIT = 1,         ///< end the simulation
    M5_FAIL = 2,         ///< end the simulation with failure (code in r1)
    M5_WORK_BEGIN = 3,   ///< mark region-of-interest start
    M5_WORK_END = 4,     ///< mark region-of-interest end
    M5_RESET_STATS = 5,  ///< timestamp a stats reset
    M5_CHECKPOINT = 6,   ///< stop so the host can take a checkpoint
};

/** Device MMIO windows for IoRd/IoWr. */
constexpr Addr terminalMmioBase = 0x1000'0000;
constexpr Addr diskMmioBase = 0x2000'0000;
constexpr Addr mmioWindow = 0x1000'0000;

} // namespace g5::sim::fs

#endif // G5_SIM_FS_GUEST_ABI_HH
