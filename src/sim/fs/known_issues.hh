/**
 * @file
 * The modeled bug census of the simulated simulator version.
 *
 * The paper's Fig 8 is, in essence, a census of gem5 v20.1.0.4's
 * full-system bugs: which CPU x memory x kernel x core-count x boot-type
 * combinations boot, and how the rest fail (27 guest kernel panics, 11
 * simulator segfaults — tracked as GEM5-782 —, 4 MI_example protocol
 * deadlocks, and 16 runs that never finish). sim5 does not share gem5's
 * code, so those bugs are frozen here as data: knownIssueFor() maps a
 * configuration to the defect it exhibits, and the simulator expresses
 * each defect through a real failure mechanism (see DefectPlan).
 *
 * Only the O3CPU is affected; the kvm/atomic/timing models are stable in
 * every *supported* configuration, and unsupported configurations
 * (classic + multiple timing-mode CPUs, atomic + Ruby) are rejected at
 * configuration time, exactly as Fig 8 reports.
 */

#ifndef G5_SIM_FS_KNOWN_ISSUES_HH
#define G5_SIM_FS_KNOWN_ISSUES_HH

#include <string>
#include <vector>

#include "sim/system.hh"

namespace g5::sim::fs
{

struct FsConfig; // fs_system.hh

/** The five LTS kernels of the paper's Fig 8 sweep. */
const std::vector<std::string> &fig8Kernels();

/** The simulated simulator version carrying the census. */
constexpr const char *buggedSimVersion = "20.1.0.4";

/**
 * @return the defect @p cfg exhibits under the simulated version, or a
 * None plan when it boots cleanly.
 */
DefectPlan knownIssueFor(const FsConfig &cfg);

} // namespace g5::sim::fs

#endif // G5_SIM_FS_KNOWN_ISSUES_HH
