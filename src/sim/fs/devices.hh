/**
 * @file
 * Peripheral models for full-system simulation: a console terminal and
 * a latency-modelled disk.
 */

#ifndef G5_SIM_FS_DEVICES_HH
#define G5_SIM_FS_DEVICES_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/stats.hh"

namespace g5::sim::fs
{

/** The guest's serial console; collects everything the guest prints. */
class Terminal
{
  public:
    /** Append a full line of console output. */
    void writeLine(const std::string &line);

    /** @return all output as one newline-joined string. */
    std::string text() const;

    /** @return the number of lines printed. */
    std::size_t numLines() const { return lines.size(); }

    /** @return true when any line contains @p needle. */
    bool contains(const std::string &needle) const;

    /** All lines printed so far (checkpoint serialization). */
    const std::vector<std::string> &allLines() const { return lines; }

    Scalar bytesWritten;

  private:
    std::vector<std::string> lines;
};

/** A simple disk with fixed seek latency and per-word streaming cost. */
class DiskDevice
{
  public:
    /** Latency to read @p words 64-bit words (one request). */
    Tick readLatency(std::uint64_t words);

    /** Device register read latency (driver probing). */
    Tick probeLatency() const { return 1'000'000; } // 1 us

    Scalar reads, wordsRead;

  private:
    static constexpr Tick seekTicks = 50'000'000;   // 50 us
    static constexpr Tick perWordTicks = 20;        // ~400 MB/s
};

} // namespace g5::sim::fs

#endif // G5_SIM_FS_DEVICES_HH
