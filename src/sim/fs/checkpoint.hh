/**
 * @file
 * Checkpoint — the in-memory snapshot of a quiescent full-system run
 * and its compact binary serialization (format "s5ckpt2").
 *
 * A Checkpoint holds the guest-visible state sections FsSystem exports
 * (CPU architectural state, guest-OS/thread state, device state, the
 * memory system's cache state) as JSON documents, plus the raw non-zero
 * physical-memory pages as shared references. Keeping the pages shared
 * is what makes forked restore cheap: N systems restored from one
 * checkpoint adopt the same pages and copy-on-write only what they
 * touch.
 *
 * On-disk layout (all integers little-endian):
 *
 *     "s5ckpt2\n"                                   8-byte magic
 *     { u8 tag, u64 length, payload[length] }...    tagged sections
 *     { u8 0,   u64 0 }                             end marker
 *     md5[16]                                       digest trailer
 *
 * Section tags: 1 = meta JSON (format, configSignature, simTicks),
 * 2 = CPU state JSON, 3 = OS state JSON, 4 = device state JSON,
 * 5 = memory-system state JSON, 6 = raw memory pages
 * (u64 page count, then per page: u64 page number + 512 LE words).
 * Unknown tags are skipped (forward compatibility); the trailer is the
 * MD5 of every preceding byte and is accumulated while serializing
 * (Md5Stream), so the checkpoint's content hash falls out of the
 * writer for free. The loader re-hashes on read and rejects truncated
 * or corrupt images with FatalError.
 */

#ifndef G5_SIM_FS_CHECKPOINT_HH
#define G5_SIM_FS_CHECKPOINT_HH

#include <map>
#include <memory>
#include <string>

#include "base/json.hh"
#include "base/types.hh"
#include "sim/mem/physmem.hh"

namespace g5::sim::fs
{

struct Checkpoint
{
    /** FsConfig::signature() of the system that took the snapshot. */
    std::string configSignature;

    /** Simulated tick at which the snapshot was taken. */
    Tick simTicks = 0;

    /** Per-CPU architectural state (array, one entry per CPU). */
    Json cpuState;

    /** GuestOs::saveState() output (threads, queues, ROI marks). */
    Json osState;

    /** Device state (terminal backlog, OS syscall counter). */
    Json deviceState;

    /** MemSystem::saveState() output (cache arrays); null when the
     *  memory system has no checkpointable state. */
    Json memSysState;

    /** Non-zero physical pages, shared copy-on-write with live
     *  systems. Sorted so serialization is deterministic. */
    std::map<Addr, mem::PhysMem::PagePtr> pages;

    /**
     * Serialize to the s5ckpt2 binary format. Every byte streams
     * through an Md5Stream; when @p hex_md5 is non-null it receives
     * the 32-char content hash (equal to the trailer digest).
     */
    std::string serialize(std::string *hex_md5 = nullptr) const;

    /**
     * Parse an s5ckpt2 image. Validates the magic, every section
     * length, and the MD5 trailer; throws FatalError on truncated or
     * corrupt input (the tolerant-loader contract: reject cleanly,
     * never crash or half-restore).
     */
    static std::shared_ptr<Checkpoint>
    deserialize(const std::string &bytes);

    /** @return total payload bytes of the memory section. */
    std::size_t memoryBytes() const;
};

using CheckpointPtr = std::shared_ptr<const Checkpoint>;

} // namespace g5::sim::fs

#endif // G5_SIM_FS_CHECKPOINT_HH
