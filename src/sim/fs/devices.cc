#include "sim/fs/devices.hh"

#include "base/str.hh"

namespace g5::sim::fs
{

void
Terminal::writeLine(const std::string &line)
{
    lines.push_back(line);
    bytesWritten += double(line.size() + 1);
}

std::string
Terminal::text() const
{
    return join(lines, "\n");
}

bool
Terminal::contains(const std::string &needle) const
{
    for (const auto &line : lines)
        if (line.find(needle) != std::string::npos)
            return true;
    return false;
}

Tick
DiskDevice::readLatency(std::uint64_t words)
{
    ++reads;
    wordsRead += double(words);
    return seekTicks + words * perWordTicks;
}

} // namespace g5::sim::fs
