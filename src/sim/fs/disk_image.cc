#include "sim/fs/disk_image.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace g5::sim::fs
{

DiskImage::DiskImage()
{
    image = Json::object();
    image["format"] = "S5DK1";
    image["os"] = Json::object();
    image["files"] = Json::object();
    image["provenance"] = Json::array();
}

void
DiskImage::setOsInfo(Json os_info)
{
    image["os"] = std::move(os_info);
}

void
DiskImage::addProgram(const std::string &path, const isa::ProgramPtr &prog)
{
    Json entry = Json::object();
    entry["kind"] = "program";
    entry["program"] = prog->toJson();
    image["files"][path] = std::move(entry);
}

void
DiskImage::addDataFile(const std::string &path, const std::string &text)
{
    Json entry = Json::object();
    entry["kind"] = "data";
    entry["text"] = text;
    image["files"][path] = std::move(entry);
}

void
DiskImage::addProvenance(const std::string &step)
{
    image["provenance"].push(step);
}

bool
DiskImage::hasFile(const std::string &path) const
{
    return image.at("files").contains(path);
}

std::vector<std::string>
DiskImage::programPaths() const
{
    std::vector<std::string> out;
    for (const auto &kv : image.at("files").asObject()) {
        if (kv.second.getString("kind") == "program")
            out.push_back(kv.first); // map iteration is already sorted
    }
    return out;
}

int
DiskImage::programIndex(const std::string &path) const
{
    auto paths = programPaths();
    for (std::size_t i = 0; i < paths.size(); ++i)
        if (paths[i] == path)
            return int(i);
    return -1;
}

isa::ProgramPtr
DiskImage::programAt(int index) const
{
    auto paths = programPaths();
    if (index < 0 || std::size_t(index) >= paths.size())
        fatal(csprintf("DiskImage: program index %d out of range", index));
    return programByPath(paths[std::size_t(index)]);
}

isa::ProgramPtr
DiskImage::programByPath(const std::string &path) const
{
    if (!hasFile(path))
        fatal("DiskImage: no file '" + path + "'");
    const Json &entry = image.at("files").at(path);
    if (entry.getString("kind") != "program")
        fatal("DiskImage: '" + path + "' is not a program");
    return isa::Program::fromJson(entry.at("program"));
}

std::string
DiskImage::serialize() const
{
    return image.dump();
}

void
DiskImage::save(const std::string &host_path) const
{
    std::filesystem::path p(host_path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::ofstream out(host_path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("DiskImage: cannot write '" + host_path + "'");
    std::string text = serialize();
    out.write(text.data(), std::streamsize(text.size()));
}

std::shared_ptr<DiskImage>
DiskImage::deserialize(const std::string &text)
{
    Json parsed;
    try {
        parsed = Json::parse(text);
    } catch (const JsonError &e) {
        fatal(std::string("DiskImage: not a valid image: ") + e.what());
    }
    if (parsed.getString("format") != "S5DK1")
        fatal("DiskImage: unsupported format '" +
              parsed.getString("format") + "'");
    auto img = std::make_shared<DiskImage>();
    img->image = std::move(parsed);
    return img;
}

std::shared_ptr<DiskImage>
DiskImage::load(const std::string &host_path)
{
    std::ifstream in(host_path, std::ios::binary);
    if (!in)
        fatal("DiskImage: cannot read '" + host_path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return deserialize(ss.str());
}

} // namespace g5::sim::fs
