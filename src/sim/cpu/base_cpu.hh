/**
 * @file
 * BaseCpu — shared machinery for all sim5 CPU models: thread
 * acquisition from the OS scheduler, idle accounting, quantum-based
 * preemption, and the common stats every model reports.
 *
 * A CPU owns one hardware thread slot. The guest OS multiplexes software
 * ThreadContexts onto it: the CPU asks pickNext() when it has nothing to
 * run, goes idle when the OS has nothing, and is kick()ed when work
 * appears.
 */

#ifndef G5_SIM_CPU_BASE_CPU_HH
#define G5_SIM_CPU_BASE_CPU_HH

#include <string>

#include "base/json.hh"
#include "sim/isa/exec.hh"
#include "sim/system.hh"

namespace g5::sim
{

/** The CPU models of Fig 8, plus the batched fast-forward model. */
enum class CpuType { Kvm, AtomicSimple, TimingSimple, O3, Fast };

/** @return the Fig 8 display name ("kvmCPU", "AtomicSimpleCPU", ...). */
const char *cpuTypeName(CpuType t);

/** Parse a display name; throws FatalError on junk. */
CpuType cpuTypeFromName(const std::string &name);

class BaseCpu
{
  public:
    BaseCpu(System &sys, int cpu_id);
    virtual ~BaseCpu();

    BaseCpu(const BaseCpu &) = delete;
    BaseCpu &operator=(const BaseCpu &) = delete;

    /** @return the model's display name. */
    virtual std::string typeName() const = 0;

    /** Schedule the first tick (called once by the system builder). */
    void start();

    /** Wake an idle CPU because the OS has runnable work. */
    void kick();

    /** @return the context currently on this CPU (may be nullptr). */
    isa::ThreadContext *context() { return tc; }

    int cpuId() const { return id; }

    /** Close the current idle period (end-of-simulation accounting). */
    void finalizeIdle(Tick now);

    /**
     * Drop any cached raw PhysMem page pointers. Called before pages
     * are exported to a checkpoint (so a later COW break cannot leave
     * a stale pointer) and whenever a shared page is privatized. Most
     * models read through PhysMem on every access and need no action.
     */
    virtual void flushPageCache() {}

    /**
     * Serialize this CPU's architectural counters for a checkpoint.
     * Models are interchangeable across save/restore (boot with the
     * fast CPU, measure with a detailed one), so only model-agnostic
     * state is exported.
     */
    virtual Json saveState() const;

    /** Preload counters from saveState() output (possibly from a
     *  different model). */
    virtual void restoreState(const Json &state);

    StatGroup &statGroup() { return stats; }

    // Common statistics (public so tests can read them directly).
    Scalar numInsts;        ///< committed instructions
    Scalar numSyscalls;     ///< syscalls serviced
    Scalar numMemRefs;      ///< data memory references issued
    Scalar busyTicks;       ///< ticks with a thread resident
    Scalar idleTicks;       ///< ticks spent idle
    Scalar contextSwitches; ///< thread switch count

  protected:
    /** Model-specific work; rescheduled via scheduleTick(). */
    virtual void tick() = 0;

    /** Schedule the next tick() @p delay ticks from now. */
    void scheduleTick(Tick delay);

    /**
     * Ensure a thread is resident, consulting the OS when needed.
     * Handles idle accounting. @return true when tc is valid.
     */
    bool acquireThread();

    /** Release the current thread slot (blocked/finished/preempted). */
    void releaseThread();

    /**
     * Quantum bookkeeping: call once per committed instruction.
     * @param allow_preempt false when the instruction must not be
     *        preempted at this point (its side effects are still
     *        pending, e.g. a syscall about to be serviced).
     * @return true when the OS preempted the current thread (the model
     * must stop executing it this tick).
     */
    bool chargeInstruction(bool allow_preempt = true);

    /** Process a non-memory StepInfo (syscall/m5/io/halt).
     *  @return extra latency in ticks; sets @p lost_thread when the
     *  current thread left the CPU. */
    Tick handleSpecial(const isa::StepInfo &info, bool &lost_thread);

    System &sys;
    const int id;
    const Tick period;

    isa::ThreadContext *tc = nullptr;
    bool tickPending = false;
    bool idle = true;
    Tick idleSince = 0;

    /** Instructions after which a runnable waiter forces preemption. */
    std::uint64_t quantumInsts = 20'000;
    std::uint64_t sliceInsts = 0;

  private:
    StatGroup stats;
};

} // namespace g5::sim

#endif // G5_SIM_CPU_BASE_CPU_HH
