/**
 * @file
 * Batched fast-forward execution (DESIGN.md §10).
 *
 * BatchedCpu is an execution engine shared by the fast-forward models:
 * it interprets straight-line SimISA directly out of the program's
 * instruction array in tight batches, touching the event queue only
 * once per batch instead of once per instruction. Architectural
 * semantics mirror isa::step() exactly (same register effects, same
 * panics); what differs is purely the host cost per simulated
 * instruction:
 *
 *  - no StepInfo is materialized for ALU/branch/memory work;
 *  - dispatch is threaded (computed goto): every handler ends with its
 *    own indirect jump, so the host branch predictor learns per-opcode
 *    successor patterns instead of sharing one switch site;
 *  - loads and stores go through a one-page read/write cache straight
 *    into PhysMem's backing words (pages are node-stable, so cached
 *    pointers stay valid for a whole batch);
 *  - per-instruction quantum accounting collapses into segments sized
 *    to hit the quantum boundary exactly (between kernel entries
 *    nothing can change the OS run queue, so the per-instruction check
 *    is equivalent).
 *
 * A batch runs until a timing-relevant boundary: budget exhausted,
 * quantum expiry with a runnable waiter, a kernel entry that blocks or
 * halts the thread, a device access (FastCpu only), or a requested
 * simulation exit. Exit reasons are published as sim.fastpath.*
 * metrics.
 *
 * Timing is a policy argument so models with different charging rules
 * share one interpreter:
 *
 *  - FlatBatchTiming: a flat per-instruction charge and no memory
 *    model — the kvm fast-forward analogue.
 *  - AtomicBatchTiming: ALU latency classes plus atomic-mode memory
 *    latency from the MemSystem — cycle-identical to AtomicSimpleCpu,
 *    so fast/atomic runs agree on final tick counts as well as
 *    architectural state.
 */

#ifndef G5_SIM_CPU_FAST_CPU_HH
#define G5_SIM_CPU_FAST_CPU_HH

#include <array>

#include "base/logging.hh"
#include "base/metrics.hh"
#include "sim/cpu/base_cpu.hh"
#include "sim/mem/mem_system.hh"

namespace g5::sim
{

/** Why a fast-path batch handed control back to the event loop. */
enum class BatchExit : unsigned
{
    BatchFull,   ///< instruction budget exhausted
    Preempt,     ///< quantum expired with a runnable waiter
    Blocked,     ///< thread blocked or exited inside the kernel
    Halt,        ///< thread executed Halt
    Mmio,        ///< device access forced a resync (FastCpu only)
    ExitPending, ///< an m5 op requested simulation exit
    NumReasons,
};

/** @return the metric suffix for @p reason ("batch_full", ...). */
const char *batchExitName(BatchExit reason);

/** Flat per-instruction charge, no memory model (kvm fast-forward). */
struct FlatBatchTiming
{
    Tick perInst;

    Tick instTicks(isa::Op) const { return perInst; }
    Tick memTicks(Addr, bool) const { return 0; }
};

/** ALU latency classes + atomic-mode memory latency (FastCpu). */
struct AtomicBatchTiming
{
    mem::MemSystem *memSys = nullptr;
    int cpu = 0;
    /** period * opLatency(op), precomputed per opcode. The extra slot
     *  keeps a junk NumOps opcode in bounds until the decoder panics. */
    std::array<Tick, std::size_t(isa::Op::NumOps) + 1> instCost{};

    Tick instTicks(isa::Op op) const
    {
        return instCost[std::size_t(op)];
    }

    Tick memTicks(Addr addr, bool write) const
    {
        return memSys->atomicAccess(cpu, addr, write);
    }
};

/** Shared batched interpreter; see the file comment. */
class BatchedCpu : public BaseCpu
{
  public:
    BatchedCpu(System &sys, int cpu_id);

  protected:
    struct BatchResult
    {
        Tick spent = 0;
        std::uint64_t insts = 0;
        BatchExit reason = BatchExit::BatchFull;
    };

    /**
     * Execute up to @p max_insts instructions of the resident thread.
     * @param timing charging policy (FlatBatchTiming/AtomicBatchTiming)
     * @param exit_on_io end the batch after a device access so the
     *        model resynchronizes with the event queue at MMIO
     *        boundaries.
     */
    template <typename Timing>
    BatchResult runBatch(std::uint64_t max_insts, const Timing &timing,
                         bool exit_on_io);

    /** Publish sim.fastpath.* metrics for a finished batch. */
    void recordBatch(const BatchResult &res);

  private:
    metrics::Counter &fpInsts;
    metrics::Histogram &fpBatchSize;
    std::array<metrics::Counter *,
               std::size_t(BatchExit::NumReasons)> fpExits{};
};

/**
 * The fast-forward CPU model: batched execution with atomic-latency
 * memory. Selectable as "fast" wherever a CPU type is configured, for
 * fast-forwarding boot/warmup phases while keeping tick counts (and
 * all architectural state) identical to AtomicSimpleCPU.
 */
class FastCpu : public BatchedCpu
{
  public:
    FastCpu(System &sys, int cpu_id);

    std::string typeName() const override { return "fastCPU"; }

    /**
     * Per-event instruction budget. Large by default: boundaries, not
     * the budget, usually end a batch. Equivalence tests shrink it to
     * AtomicSimpleCpu's batch size so event boundaries line up and the
     * two models agree on final tick counts exactly.
     */
    std::uint64_t batchInsts = 65'536;

  protected:
    void tick() override;

  private:
    AtomicBatchTiming timing;
};

/**
 * Fetch/decode/dispatch step of the threaded interpreter. Order
 * matters: the budget and code-bounds checks must precede the charge
 * so a segment boundary never half-executes an instruction.
 */
#define G5_FAST_DISPATCH()                                              \
    do {                                                                \
        if (n >= budget)                                                \
            goto segmentEnd;                                            \
        if (pc >= codeSize) [[unlikely]]                                \
            goto outOfCode;                                             \
        inst = code + pc;                                               \
        next_pc = pc + 1;                                               \
        spent += timing.instTicks(inst->op);                            \
        goto *dispatch[unsigned(inst->op)];                             \
    } while (0)

/** Commit the current instruction and dispatch the next one. */
#define G5_FAST_NEXT()                                                  \
    do {                                                                \
        pc = next_pc;                                                   \
        ++n;                                                            \
        G5_FAST_DISPATCH();                                             \
    } while (0)

template <typename Timing>
BatchedCpu::BatchResult
BatchedCpu::runBatch(std::uint64_t max_insts, const Timing &timing,
                     bool exit_on_io)
{
    using isa::Op;
    using isa::StepKind;

    // Handler table in Op enumerator order; the trailing entry keeps a
    // junk NumOps opcode dispatching to the canonical panic.
    static const void *dispatch[] = {
        &&opNop,  &&opHalt, &&opAdd,  &&opSub,  &&opMul,  &&opDiv,
        &&opAnd,  &&opOr,   &&opXor,  &&opShl,  &&opShr,  &&opMovi,
        &&opMov,  &&opAddi, &&opMuli, &&opFadd, &&opFmul, &&opFdiv,
        &&opLd,   &&opSt,   &&opAmo,  &&opBeq,  &&opBne,  &&opBlt,
        &&opBge,  &&opJmp,  &&opSyscall, &&opM5Op, &&opIoRd, &&opIoWr,
        &&opPause, &&opBad,
    };
    static_assert(std::size_t(Op::NumOps) + 1 ==
                      sizeof(dispatch) / sizeof(dispatch[0]),
                  "dispatch table out of sync with isa::Op");

    const isa::Inst *code = tc->prog->code.data();
    std::uint64_t codeSize = tc->prog->code.size();
    std::int64_t *const r = tc->regs;
    std::uint64_t pc = tc->pc;

    Tick spent = 0;
    std::uint64_t executed = 0; // committed this batch
    std::uint64_t n = 0;        // committed since the last commit()
    std::uint64_t memRefs = 0;

    // One-page read/write caches for the direct memory path. A write
    // that creates the read-cached page must refresh the read slot
    // (reads never allocate, so the read cache can hold nullptr).
    constexpr Addr noPage = ~Addr(0);
    Addr readPage = noPage, writePage = noPage;
    const std::int64_t *readWords = nullptr;
    std::int64_t *writeWords = nullptr;

    const isa::Inst *inst = nullptr;
    std::uint64_t next_pc = 0;
    std::uint64_t budget = 0;
    bool preemptAtEnd = false;

    auto commit = [&] {
        tc->pc = pc;
        if (n) {
            numInsts += double(n);
            tc->numInsts += n;
            sliceInsts += n;
            executed += n;
            n = 0;
        }
        if (memRefs) {
            numMemRefs += double(memRefs);
            memRefs = 0;
        }
    };

    for (;;) {
        budget = max_insts - executed;
        if (budget == 0)
            return BatchResult{spent, executed, BatchExit::BatchFull};
        // Preemption: between kernel entries nothing can change the OS
        // run queue, so the per-instruction quantum check reduces to a
        // segment sized to hit the quantum boundary exactly.
        preemptAtEnd = false;
        if (sys.os && sys.os->hasRunnable()) {
            const std::uint64_t toQuantum =
                sliceInsts < quantumInsts ? quantumInsts - sliceInsts : 1;
            if (toQuantum <= budget) {
                budget = toQuantum;
                preemptAtEnd = true;
            }
        }

        G5_FAST_DISPATCH();

      opNop:
      opPause:
        G5_FAST_NEXT();

      opAdd:
        r[inst->rd] = isa::wrapAdd(r[inst->rs], r[inst->rt]);
        G5_FAST_NEXT();
      opSub:
        r[inst->rd] = isa::wrapSub(r[inst->rs], r[inst->rt]);
        G5_FAST_NEXT();
      opMul:
        r[inst->rd] = isa::wrapMul(r[inst->rs], r[inst->rt]);
        G5_FAST_NEXT();
      opDiv:
        r[inst->rd] = isa::wrapDiv(r[inst->rs], r[inst->rt]);
        G5_FAST_NEXT();
      opAnd:
        r[inst->rd] = r[inst->rs] & r[inst->rt];
        G5_FAST_NEXT();
      opOr:
        r[inst->rd] = r[inst->rs] | r[inst->rt];
        G5_FAST_NEXT();
      opXor:
        r[inst->rd] = r[inst->rs] ^ r[inst->rt];
        G5_FAST_NEXT();
      opShl:
        r[inst->rd] = std::int64_t(std::uint64_t(r[inst->rs])
                                   << (r[inst->rt] & 63));
        G5_FAST_NEXT();
      opShr:
        r[inst->rd] = std::int64_t(std::uint64_t(r[inst->rs]) >>
                                   (r[inst->rt] & 63));
        G5_FAST_NEXT();
      opMovi:
        r[inst->rd] = inst->imm;
        G5_FAST_NEXT();
      opMov:
        r[inst->rd] = r[inst->rs];
        G5_FAST_NEXT();
      opAddi:
        r[inst->rd] = isa::wrapAdd(r[inst->rs], inst->imm);
        G5_FAST_NEXT();
      opMuli:
        r[inst->rd] = isa::wrapMul(r[inst->rs], inst->imm);
        G5_FAST_NEXT();
      opFadd:
        r[inst->rd] = isa::wrapAdd(r[inst->rs], r[inst->rt]);
        G5_FAST_NEXT();
      opFmul:
        r[inst->rd] = isa::wrapMul(r[inst->rs], r[inst->rt]);
        G5_FAST_NEXT();
      opFdiv:
        r[inst->rd] = isa::wrapDiv(r[inst->rs], r[inst->rt]);
        G5_FAST_NEXT();

      opLd: {
        const Addr addr = Addr(isa::wrapAdd(r[inst->rs], inst->imm));
        ++memRefs;
        spent += timing.memTicks(addr, false);
        if (inst->rd >= isa::numRegs) [[unlikely]] {
            pc = next_pc;
            commit();
            panic("isa::completeLoad: bad destination register");
        }
        const Addr page = mem::PhysMem::pageNumber(addr);
        if (page != readPage) {
            readWords = sys.physmem.pageWords(addr);
            readPage = page;
        }
        r[inst->rd] =
            readWords ? readWords[mem::PhysMem::wordIndex(addr)] : 0;
        G5_FAST_NEXT();
      }
      opSt: {
        const Addr addr = Addr(isa::wrapAdd(r[inst->rs], inst->imm));
        ++memRefs;
        spent += timing.memTicks(addr, true);
        const Addr page = mem::PhysMem::pageNumber(addr);
        if (page != writePage) {
            writeWords = sys.physmem.pageWordsForWrite(addr);
            writePage = page;
            if (page == readPage)
                readWords = writeWords;
        }
        writeWords[mem::PhysMem::wordIndex(addr)] = r[inst->rt];
        G5_FAST_NEXT();
      }
      opAmo: {
        const Addr addr = Addr(isa::wrapAdd(r[inst->rs], inst->imm));
        ++memRefs;
        spent += timing.memTicks(addr, true);
        if (inst->rd >= isa::numRegs) [[unlikely]] {
            pc = next_pc;
            commit();
            panic("isa::completeLoad: bad destination register");
        }
        const Addr page = mem::PhysMem::pageNumber(addr);
        if (page != writePage) {
            writeWords = sys.physmem.pageWordsForWrite(addr);
            writePage = page;
            if (page == readPage)
                readWords = writeWords;
        }
        std::int64_t &word = writeWords[mem::PhysMem::wordIndex(addr)];
        const std::int64_t old = word;
        // Capture r[rt] before writing rd (rd==rt is legal).
        word = isa::wrapAdd(old, r[inst->rt]);
        r[inst->rd] = old;
        G5_FAST_NEXT();
      }

      opBeq:
        if (r[inst->rs] == r[inst->rt])
            next_pc = std::uint64_t(inst->imm);
        G5_FAST_NEXT();
      opBne:
        if (r[inst->rs] != r[inst->rt])
            next_pc = std::uint64_t(inst->imm);
        G5_FAST_NEXT();
      opBlt:
        if (r[inst->rs] < r[inst->rt])
            next_pc = std::uint64_t(inst->imm);
        G5_FAST_NEXT();
      opBge:
        if (r[inst->rs] >= r[inst->rt])
            next_pc = std::uint64_t(inst->imm);
        G5_FAST_NEXT();
      opJmp:
        next_pc = std::uint64_t(inst->imm);
        G5_FAST_NEXT();

      opSyscall:
      opM5Op:
      opIoRd:
      opIoWr:
      opHalt: {
        // Kernel entry: commit the batch so the OS sees architectural
        // state exactly as the per-instruction models present it.
        pc = next_pc;
        ++n;
        commit();
        isa::StepInfo info;
        info.op = inst->op;
        switch (inst->op) {
          case Op::Syscall:
            info.kind = StepKind::Syscall;
            info.code = inst->imm;
            break;
          case Op::M5Op:
            info.kind = StepKind::M5Op;
            info.code = inst->imm;
            break;
          case Op::IoRd:
            info.kind = StepKind::IoRead;
            info.addr = Addr(isa::wrapAdd(r[inst->rs], inst->imm));
            info.rd = inst->rd;
            break;
          case Op::IoWr:
            info.kind = StepKind::IoWrite;
            info.addr = Addr(isa::wrapAdd(r[inst->rs], inst->imm));
            info.value = r[inst->rt];
            break;
          default:
            info.kind = StepKind::Halt;
            break;
        }
        bool lost = false;
        spent += handleSpecial(info, lost);
        if (lost) {
            return BatchResult{spent, executed,
                               info.kind == StepKind::Halt
                                   ? BatchExit::Halt
                                   : BatchExit::Blocked};
        }
        if (sys.eventq.exitPending())
            return BatchResult{spent, executed, BatchExit::ExitPending};
        if (exit_on_io && (info.kind == StepKind::IoRead ||
                           info.kind == StepKind::IoWrite))
            return BatchResult{spent, executed, BatchExit::Mmio};
        // The kernel may have touched the thread or woken waiters:
        // resynchronize and resize the segment.
        pc = tc->pc;
        code = tc->prog->code.data();
        codeSize = tc->prog->code.size();
        continue;
      }

      opBad:
        commit();
        panic("isa::step: invalid opcode");

      outOfCode:
        commit();
        (void)tc->prog->fetch(pc); // canonical fetch panic (throws)

      segmentEnd:
        commit();
        if (preemptAtEnd && sys.os && sys.os->hasRunnable()) {
            tc->status = isa::ThreadContext::Status::Runnable;
            sys.os->requeue(tc);
            releaseThread();
            return BatchResult{spent, executed, BatchExit::Preempt};
        }
    }
}

#undef G5_FAST_DISPATCH
#undef G5_FAST_NEXT

} // namespace g5::sim

#endif // G5_SIM_CPU_FAST_CPU_HH
