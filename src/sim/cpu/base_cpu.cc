#include "sim/cpu/base_cpu.hh"

#include "base/logging.hh"
#include "sim/trace.hh"

namespace g5::sim
{

const char *
cpuTypeName(CpuType t)
{
    switch (t) {
      case CpuType::Kvm:
        return "kvmCPU";
      case CpuType::AtomicSimple:
        return "AtomicSimpleCPU";
      case CpuType::TimingSimple:
        return "TimingSimpleCPU";
      case CpuType::O3:
        return "O3CPU";
      case CpuType::Fast:
        return "fastCPU";
    }
    return "?";
}

CpuType
cpuTypeFromName(const std::string &name)
{
    if (name == "kvm" || name == "kvmCPU")
        return CpuType::Kvm;
    if (name == "atomic" || name == "AtomicSimpleCPU")
        return CpuType::AtomicSimple;
    if (name == "timing" || name == "TimingSimpleCPU")
        return CpuType::TimingSimple;
    if (name == "o3" || name == "O3CPU")
        return CpuType::O3;
    if (name == "fast" || name == "fastCPU")
        return CpuType::Fast;
    fatal("unknown CPU type '" + name + "'");
}

BaseCpu::BaseCpu(System &sys, int cpu_id)
    : sys(sys), id(cpu_id), period(sys.cpuPeriod),
      stats(csprintf("cpu%d", cpu_id))
{
    stats.addStat("numInsts", &numInsts, "committed instructions");
    stats.addStat("numSyscalls", &numSyscalls, "syscalls serviced");
    stats.addStat("numMemRefs", &numMemRefs, "data memory references");
    stats.addStat("busyTicks", &busyTicks, "ticks with a thread resident");
    stats.addStat("idleTicks", &idleTicks, "ticks spent idle");
    stats.addStat("contextSwitches", &contextSwitches,
                  "software thread switches");
}

BaseCpu::~BaseCpu() = default;

void
BaseCpu::start()
{
    idleSince = sys.curTick();
    kick();
}

void
BaseCpu::kick()
{
    // Only an idle CPU needs a kick: one with a resident thread is
    // either mid-tick or waiting on a memory response and will
    // reschedule itself.
    if (tickPending || tc)
        return;
    tickPending = true;
    sys.eventq.schedule(sys.curTick(), [this] {
        tickPending = false;
        tick();
    }, EventQueue::cpuTickPri);
}

void
BaseCpu::finalizeIdle(Tick now)
{
    if (idle) {
        idleTicks += double(now - idleSince);
        idleSince = now;
    }
}

Json
BaseCpu::saveState() const
{
    Json out = Json::object();
    out["type"] = typeName();
    out["insts"] = std::int64_t(numInsts.value());
    out["syscalls"] = std::int64_t(numSyscalls.value());
    out["memRefs"] = std::int64_t(numMemRefs.value());
    out["contextSwitches"] = std::int64_t(contextSwitches.value());
    return out;
}

void
BaseCpu::restoreState(const Json &state)
{
    numInsts.set(double(state.getInt("insts")));
    numSyscalls.set(double(state.getInt("syscalls")));
    numMemRefs.set(double(state.getInt("memRefs")));
    contextSwitches.set(double(state.getInt("contextSwitches")));
}

void
BaseCpu::scheduleTick(Tick delay)
{
    if (tickPending)
        panic("BaseCpu: tick already scheduled");
    tickPending = true;
    sys.eventq.schedule(sys.curTick() + delay, [this] {
        tickPending = false;
        tick();
    }, EventQueue::cpuTickPri);
}

bool
BaseCpu::acquireThread()
{
    if (tc)
        return true;
    if (!sys.os)
        return false;
    tc = sys.os->pickNext(id);
    if (!tc) {
        if (!idle) {
            idle = true;
            idleSince = sys.curTick();
        }
        return false;
    }
    if (idle) {
        idleTicks += double(sys.curTick() - idleSince);
        idle = false;
    }
    tc->status = isa::ThreadContext::Status::Running;
    tc->cpuId = id;
    sliceInsts = 0;
    ++contextSwitches;
    DTRACE("Cpu", sys.curTick(), "cpu%d: switching to thread %d", id,
           tc->tid);
    return true;
}

void
BaseCpu::releaseThread()
{
    tc = nullptr;
    sliceInsts = 0;
}

bool
BaseCpu::chargeInstruction(bool allow_preempt)
{
    ++numInsts;
    ++tc->numInsts;
    ++sliceInsts;
    if (allow_preempt && sliceInsts >= quantumInsts && sys.os &&
        sys.os->hasRunnable()) {
        // Timeslice expired with waiters: preempt.
        tc->status = isa::ThreadContext::Status::Runnable;
        sys.os->requeue(tc);
        releaseThread();
        return true;
    }
    return false;
}

Tick
BaseCpu::handleSpecial(const isa::StepInfo &info, bool &lost_thread)
{
    lost_thread = false;
    Tick extra = 0;

    switch (info.kind) {
      case isa::StepKind::Syscall: {
        ++numSyscalls;
        extra = sys.os->syscall(*tc, info.code, id);
        if (tc->status != isa::ThreadContext::Status::Running) {
            // Blocked or finished inside the kernel.
            releaseThread();
            lost_thread = true;
        }
        break;
      }
      case isa::StepKind::M5Op:
        sys.os->m5op(*tc, info.code);
        break;
      case isa::StepKind::IoRead: {
        auto [value, latency] = sys.os->ioRead(info.addr);
        isa::completeLoad(*tc, info.rd, value);
        extra = latency;
        break;
      }
      case isa::StepKind::IoWrite:
        extra = sys.os->ioWrite(info.addr, info.value);
        break;
      case isa::StepKind::Halt:
        tc->status = isa::ThreadContext::Status::Finished;
        sys.os->threadHalted(*tc);
        releaseThread();
        lost_thread = true;
        break;
      default:
        panic("BaseCpu::handleSpecial: not a special StepInfo");
    }
    return extra;
}

} // namespace g5::sim
