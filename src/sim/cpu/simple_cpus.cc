#include "sim/cpu/simple_cpus.hh"

#include "base/logging.hh"
#include "sim/cpu/error_inject.hh"

namespace g5::sim
{

using isa::StepInfo;
using isa::StepKind;

KvmCpu::KvmCpu(System &sys, int cpu_id)
    : BatchedCpu(sys, cpu_id)
{}

void
KvmCpu::tick()
{
    if (!acquireThread())
        return; // idle until kicked

    // Functional memory, flat per-instruction charge: the KVM fast
    // path, run through the shared batched interpreter. Device access
    // does not end a batch (matching the classic per-instruction loop).
    BatchResult res = runBatch(batchInsts, FlatBatchTiming{ticksPerInst},
                               /*exit_on_io=*/false);
    recordBatch(res);
    scheduleTick(res.spent ? res.spent : period);
}

AtomicSimpleCpu::AtomicSimpleCpu(System &sys, int cpu_id)
    : BaseCpu(sys, cpu_id)
{
    if (!sys.memSystem->supportsAtomicCpu()) {
        fatal("AtomicSimpleCPU is not supported with the " +
              sys.memSystem->protocolName() +
              " (Ruby) memory system in this version");
    }
}

void
AtomicSimpleCpu::tick()
{
    if (!acquireThread())
        return;

    Tick spent = 0;
    for (std::uint64_t n = 0; n < batchInsts; ++n) {
        // Guest error injection: the flip lands before the
        // (atInst + 1)-th commit — the same boundary the batched
        // models clamp their budget to.
        if (sys.errInject &&
            sys.errInject->instsUntil(
                id, std::uint64_t(numInsts.value())) == 0)
            sys.errInject->inject(sys, tc);

        StepInfo info = isa::step(*tc);
        spent += period * info.latency;

        if (info.kind == StepKind::Done) {
            if (chargeInstruction())
                break;
            continue;
        }

        if (info.kind == StepKind::Load || info.kind == StepKind::Store ||
            info.kind == StepKind::Amo) {
            ++numMemRefs;
            bool write = info.kind != StepKind::Load;
            spent += sys.memSystem->atomicAccess(id, info.addr, write);
            if (info.kind == StepKind::Load) {
                isa::completeLoad(*tc, info.rd,
                                  sys.physmem.read(info.addr));
            } else if (info.kind == StepKind::Store) {
                sys.physmem.write(info.addr, info.value);
            } else {
                isa::completeLoad(
                    *tc, info.rd, sys.physmem.amoAdd(info.addr,
                                                     info.value));
            }
            if (chargeInstruction())
                break;
            continue;
        }

        chargeInstruction(false);
        bool lost = false;
        spent += handleSpecial(info, lost);
        if (lost || sys.eventq.exitPending())
            break;
    }

    scheduleTick(spent ? spent : period);
}

TimingSimpleCpu::TimingSimpleCpu(System &sys, int cpu_id)
    : BaseCpu(sys, cpu_id)
{}

void
TimingSimpleCpu::tick()
{
    if (waitingForMem)
        panic("TimingSimpleCpu: tick while waiting for memory");
    if (!acquireThread())
        return;

    Tick spent = 0;
    for (std::uint64_t n = 0; n < 5000; ++n) {
        StepInfo info = isa::step(*tc);

        if (info.kind == StepKind::Done) {
            spent += period * info.latency;
            if (chargeInstruction())
                break;
            continue;
        }

        if (info.kind == StepKind::Load || info.kind == StepKind::Store ||
            info.kind == StepKind::Amo) {
            ++numMemRefs;
            chargeInstruction(false); // commit happens at response
            spent += period; // issue cycle
            pendingMem = info;
            waitingForMem = true;
            bool write = info.kind != StepKind::Load;
            // The request leaves the CPU once the preceding ALU work has
            // drained (spent ticks from now).
            sys.eventq.schedule(
                sys.curTick() + spent,
                [this, write] {
                    sys.memSystem->access(id, pendingMem.addr, write,
                                          [this] { completeAccess(); });
                },
                EventQueue::cpuTickPri);
            return;
        }

        chargeInstruction(false);
        bool lost = false;
        spent += period + handleSpecial(info, lost);
        if (lost || sys.eventq.exitPending())
            break;
    }

    scheduleTick(spent ? spent : period);
}

void
TimingSimpleCpu::completeAccess()
{
    if (!waitingForMem)
        panic("TimingSimpleCpu: spurious memory response");
    waitingForMem = false;

    switch (pendingMem.kind) {
      case StepKind::Load:
        isa::completeLoad(*tc, pendingMem.rd,
                          sys.physmem.read(pendingMem.addr));
        break;
      case StepKind::Store:
        sys.physmem.write(pendingMem.addr, pendingMem.value);
        break;
      case StepKind::Amo:
        isa::completeLoad(
            *tc, pendingMem.rd,
            sys.physmem.amoAdd(pendingMem.addr, pendingMem.value));
        break;
      default:
        panic("TimingSimpleCpu: bad pending access kind");
    }

    scheduleTick(period);
}

} // namespace g5::sim
