#include "sim/cpu/error_inject.hh"

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"
#include "sim/isa/thread.hh"
#include "sim/system.hh"

namespace g5::sim
{

namespace
{

/** Domain separators so the register and word picks draw from
 *  independent streams of the same seed. */
constexpr std::uint64_t regPickSalt = 0xE11E'0001;
constexpr std::uint64_t memPickSalt = 0xE11E'0002;

} // anonymous namespace

ErrorInjectConfig
ErrorInjectConfig::parse(const std::string &spec)
{
    ErrorInjectConfig cfg;
    if (spec.empty())
        return cfg;
    auto parts = split(spec, ':');
    if (parts.size() < 2 || parts.size() > 4)
        fatal("err_inject: want target:bit[:atInst[:seed]], got '" +
              spec + "'");
    std::string target = trim(parts[0]);
    if (target == "reg")
        cfg.target = Target::Reg;
    else if (target == "mem")
        cfg.target = Target::Mem;
    else
        fatal("err_inject: unknown target '" + target +
              "' (want reg or mem)");
    try {
        cfg.bit = unsigned(std::stoul(trim(parts[1])));
        if (parts.size() > 2)
            cfg.atInst = std::stoull(trim(parts[2]));
        if (parts.size() > 3)
            cfg.seed = std::stoull(trim(parts[3]));
    } catch (const std::exception &) {
        fatal("err_inject: cannot parse '" + spec + "'");
    }
    if (cfg.bit > 63)
        fatal("err_inject: bit must be 0..63, got " +
              std::to_string(cfg.bit));
    return cfg;
}

std::string
ErrorInjectConfig::toSpec() const
{
    if (!enabled())
        return "";
    return std::string(target == Target::Reg ? "reg" : "mem") + ":" +
           std::to_string(bit) + ":" + std::to_string(atInst) + ":" +
           std::to_string(seed);
}

std::uint64_t
ErrorInjector::instsUntil(int cpu_id, std::uint64_t committed) const
{
    // CPU 0 is the injection site: its commit stream is the one both
    // CPU models replay identically, so the boundary is well-defined.
    if (!cfg.enabled() || injected || cpu_id != 0)
        return never;
    return committed >= cfg.atInst ? 0 : cfg.atInst - committed;
}

void
ErrorInjector::inject(System &sys, isa::ThreadContext *tc)
{
    injected = true;
    record = Json::object();
    record["target"] = cfg.target == ErrorInjectConfig::Target::Reg
                           ? "reg"
                           : "mem";
    record["bit"] = std::int64_t(cfg.bit);
    record["atInst"] = std::int64_t(cfg.atInst);
    record["seed"] = std::int64_t(cfg.seed);
    record["tick"] = sys.curTick();

    const std::int64_t mask = std::int64_t(std::uint64_t(1) << cfg.bit);

    if (cfg.target == ErrorInjectConfig::Target::Reg) {
        if (!tc) {
            // No resident thread at the boundary: nothing to corrupt.
            record["skipped"] = "no resident thread";
            return;
        }
        std::uint64_t pick_state = hashCombine(cfg.seed, regPickSalt);
        unsigned idx = unsigned(splitmix64(pick_state) % isa::numRegs);
        std::int64_t before = tc->regs[idx];
        tc->regs[idx] = before ^ mask;
        record["tid"] = std::int64_t(tc->tid);
        record["reg"] = std::int64_t(idx);
        record["before"] = before;
        record["after"] = tc->regs[idx];
        return;
    }

    // Mem: pick a word among the touched pages. Writing through the
    // normal PhysMem path keeps COW sharing and page-cache invalidation
    // honest (the injector is just another writer).
    Addr addr = 0;
    std::uint64_t pick_state = hashCombine(cfg.seed, memPickSalt);
    if (!sys.physmem.pickWord(splitmix64(pick_state), addr)) {
        record["skipped"] = "no touched memory";
        return;
    }
    std::int64_t before = sys.physmem.read(addr);
    sys.physmem.write(addr, before ^ mask);
    record["addr"] = std::int64_t(addr);
    record["before"] = before;
    record["after"] = before ^ mask;
}

} // namespace g5::sim
