/**
 * @file
 * The three simple CPU models of Fig 8:
 *
 *  - KvmCpu: executes guest code functionally at a nominal "host" rate,
 *    bypassing the memory system entirely (gem5's KVM CPU uses host
 *    hardware; the analogue here is zero-fidelity, maximum-speed
 *    execution). Works with every memory system. Runs on the batched
 *    interpreter of fast_cpu.hh with a flat timing policy.
 *
 *  - AtomicSimpleCpu: one instruction per cycle with atomic-mode memory
 *    latencies folded in. Requires a memory system that supports atomic
 *    accesses (the classic system; Ruby rejects it, as in v20.1.0.4).
 *
 *  - TimingSimpleCpu: blocks on every data access, resuming when the
 *    memory system's response event fires.
 *
 * All three batch ALU work inside a single event to keep host cost per
 * simulated instruction low; batches break at memory ops, syscalls,
 * branch quanta, and preemption points.
 */

#ifndef G5_SIM_CPU_SIMPLE_CPUS_HH
#define G5_SIM_CPU_SIMPLE_CPUS_HH

#include "sim/cpu/base_cpu.hh"
#include "sim/cpu/fast_cpu.hh"

namespace g5::sim
{

class KvmCpu : public BatchedCpu
{
  public:
    KvmCpu(System &sys, int cpu_id);

    std::string typeName() const override { return "kvmCPU"; }

    /** Ticks charged per instruction (default ~0.3 ns: "host speed"). */
    Tick ticksPerInst = 300;

  protected:
    void tick() override;

  private:
    static constexpr std::uint64_t batchInsts = 20'000;
};

class AtomicSimpleCpu : public BaseCpu
{
  public:
    AtomicSimpleCpu(System &sys, int cpu_id);

    std::string typeName() const override { return "AtomicSimpleCPU"; }

  protected:
    void tick() override;

  private:
    static constexpr std::uint64_t batchInsts = 5'000;
};

class TimingSimpleCpu : public BaseCpu
{
  public:
    TimingSimpleCpu(System &sys, int cpu_id);

    std::string typeName() const override { return "TimingSimpleCPU"; }

  protected:
    void tick() override;

  private:
    /** Complete an outstanding load/store/amo response. */
    void completeAccess();

    bool waitingForMem = false;
    isa::StepInfo pendingMem;
};

} // namespace g5::sim

#endif // G5_SIM_CPU_SIMPLE_CPUS_HH
