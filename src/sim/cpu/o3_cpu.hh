/**
 * @file
 * O3Cpu — a detailed-timing out-of-order CPU model.
 *
 * Rather than simulating a full pipeline structurally, the model keeps a
 * register scoreboard of ready times and issues instructions from the
 * in-order stream as their operands become ready, up to issueWidth per
 * cycle — i.e. it computes the dataflow-limited schedule an OoO core
 * with a large window would achieve. Memory operations overlap up to
 * maxOutstandingLoads in flight (the LSQ), with cache behaviour and
 * coherence effects supplied by the memory system's protocol machinery.
 * Conditional branches mispredict with a fixed probability and charge a
 * pipeline-flush penalty; syscalls and other serializing operations
 * drain the scoreboard.
 *
 * The model therefore rewards ILP and MLP in guest code — which is what
 * distinguishes the OS/compiler profiles of use-case 1 — while
 * remaining fast enough to boot hundreds of kernels for Fig 8.
 */

#ifndef G5_SIM_CPU_O3_CPU_HH
#define G5_SIM_CPU_O3_CPU_HH

#include <deque>

#include "sim/cpu/base_cpu.hh"

namespace g5::sim
{

class O3Cpu : public BaseCpu
{
  public:
    O3Cpu(System &sys, int cpu_id);

    std::string typeName() const override { return "O3CPU"; }

    // Microarchitectural parameters (tunable before start()).
    unsigned issueWidth = 4;
    unsigned maxOutstandingLoads = 8;
    unsigned mispredictPenalty = 12;   ///< cycles
    double mispredictRate = 0.04;      ///< per conditional branch

    Scalar numBranches, numMispredicts, numLoadsOverlapped;

  protected:
    void tick() override;

  private:
    /** Largest operand-ready time for the next instruction. */
    Tick operandsReadyAt(const isa::Inst &inst) const;

    /** Serialize: all in-flight results complete. */
    Tick drainTime() const;

    void resetScoreboard(Tick at);

    Tick regReadyAt[isa::numRegs] = {};
    std::deque<Tick> inflightLoads;

    static constexpr std::uint64_t batchInsts = 2'000;
};

} // namespace g5::sim

#endif // G5_SIM_CPU_O3_CPU_HH
