/**
 * @file
 * Guest-level architectural error injection (DESIGN.md §14).
 *
 * An ErrorInjector flips exactly one bit of guest architectural state —
 * an integer register of the resident thread, or one word of touched
 * physical memory — immediately before CPU 0 commits its
 * (atInst + 1)-th dynamic instruction. Everything about the flip is a
 * pure function of the ErrorInjectConfig: the register / memory word is
 * drawn from the seed, so a run is reproduced bit-identically by
 * re-running the same (target, bit, atInst, seed) tuple.
 *
 * Both per-instruction and batched CPU models honor the same boundary:
 * AtomicSimpleCpu checks before every step, and FastCpu clamps its
 * batch budget so a batch ends exactly at the injection instruction —
 * the flip lands at the same dynamic instruction count in either model,
 * which is what makes a fast-CPU error run checkable against an atomic
 * replay (and vice versa).
 *
 * The checker replay is simply the same configuration without the
 * err_inject parameter: the art layer (art/errstudy.hh) pairs each main
 * run with its checker and classifies the divergence of their final
 * architectural MD5 digests into the Fig 10 census classes — detected,
 * silent corruption, masked, crashed.
 */

#ifndef G5_SIM_CPU_ERROR_INJECT_HH
#define G5_SIM_CPU_ERROR_INJECT_HH

#include <cstdint>
#include <limits>
#include <string>

#include "base/json.hh"
#include "base/types.hh"

namespace g5::sim
{

class System;

namespace isa
{
class ThreadContext;
} // namespace isa

/** One planned bit flip; value-semantic, fully determines the flip. */
struct ErrorInjectConfig
{
    enum class Target { None, Reg, Mem };

    Target target = Target::None;
    /** Which bit of the 64-bit word flips. */
    unsigned bit = 0;
    /** Flip lands before CPU 0 commits instruction number atInst + 1. */
    std::uint64_t atInst = 0;
    /** Seeds the register / memory-word pick. */
    std::uint64_t seed = 0;

    bool enabled() const { return target != Target::None; }

    /**
     * Parse a "reg:<bit>[:<atInst>[:<seed>]]" or
     * "mem:<bit>[:<atInst>[:<seed>]]" spec (the err_inject run param /
     * G5_ERRINJ syntax). "" parses to a disabled config; anything else
     * malformed throws FatalError.
     */
    static ErrorInjectConfig parse(const std::string &spec);

    /** The canonical spec string parse() accepts ("" when disabled). */
    std::string toSpec() const;
};

/**
 * Runtime state of one flip: owned by the System, consulted by CPU
 * models at instruction boundaries. Single-shot — after inject() runs
 * once, instsUntil() reports "never" forever.
 */
class ErrorInjector
{
  public:
    /** instsUntil() result meaning "no injection will happen here". */
    static constexpr std::uint64_t never =
        std::numeric_limits<std::uint64_t>::max();

    explicit ErrorInjector(const ErrorInjectConfig &cfg) : cfg(cfg) {}

    const ErrorInjectConfig &config() const { return cfg; }

    bool done() const { return injected; }

    /**
     * Committed instructions @p cpu_id may still execute before the
     * flip is due: 0 means "inject now, before the next commit";
     * `never` means this CPU will not inject (wrong CPU, disabled, or
     * already done). Batched models clamp their budget to this value so
     * the batch ends exactly at the injection boundary.
     */
    std::uint64_t instsUntil(int cpu_id, std::uint64_t committed) const;

    /**
     * Perform the flip on @p sys / the resident thread @p tc. Records a
     * describe() document (target word, before/after values, tick) and
     * marks the injector done. A Mem target with no touched pages
     * records the skip and flips nothing.
     */
    void inject(System &sys, isa::ThreadContext *tc);

    /** The injection record (null until inject() ran). */
    Json describe() const { return record; }

  private:
    ErrorInjectConfig cfg;
    bool injected = false;
    Json record;
};

} // namespace g5::sim

#endif // G5_SIM_CPU_ERROR_INJECT_HH
