#include "sim/cpu/fast_cpu.hh"

#include <algorithm>
#include <string>

#include "sim/cpu/error_inject.hh"

namespace g5::sim
{

const char *
batchExitName(BatchExit reason)
{
    switch (reason) {
      case BatchExit::BatchFull:
        return "batch_full";
      case BatchExit::Preempt:
        return "preempt";
      case BatchExit::Blocked:
        return "blocked";
      case BatchExit::Halt:
        return "halt";
      case BatchExit::Mmio:
        return "mmio";
      case BatchExit::ExitPending:
        return "exit";
      case BatchExit::NumReasons:
        break;
    }
    return "?";
}

BatchedCpu::BatchedCpu(System &sys, int cpu_id)
    : BaseCpu(sys, cpu_id),
      fpInsts(metrics::counter("sim.fastpath.insts")),
      fpBatchSize(metrics::histogram(
          "sim.fastpath.batchInsts",
          {1.0, 64.0, 512.0, 4096.0, 20000.0, 65536.0}))
{
    for (std::size_t i = 0; i < fpExits.size(); ++i) {
        fpExits[i] = &metrics::counter(
            std::string("sim.fastpath.exits.") +
            batchExitName(BatchExit(i)));
    }
}

void
BatchedCpu::recordBatch(const BatchResult &res)
{
    fpInsts.inc(std::int64_t(res.insts));
    fpBatchSize.observe(double(res.insts));
    fpExits[std::size_t(res.reason)]->inc();
}

FastCpu::FastCpu(System &sys, int cpu_id)
    : BatchedCpu(sys, cpu_id)
{
    if (!sys.memSystem->supportsAtomicCpu()) {
        fatal("fastCPU is not supported with the " +
              sys.memSystem->protocolName() +
              " (Ruby) memory system in this version");
    }
    timing.memSys = sys.memSystem.get();
    timing.cpu = id;
    for (std::size_t op = 0; op < timing.instCost.size(); ++op)
        timing.instCost[op] = period * isa::opLatency(isa::Op(op));
}

void
FastCpu::tick()
{
    if (!acquireThread())
        return;

    // Guest error injection: inject when due, otherwise clamp the
    // batch budget so the batch ends exactly at the injection boundary
    // — the flip then lands at the same dynamic instruction count the
    // per-instruction models see.
    std::uint64_t budget = batchInsts;
    if (sys.errInject) {
        std::uint64_t until = sys.errInject->instsUntil(
            id, std::uint64_t(numInsts.value()));
        if (until == 0) {
            sys.errInject->inject(sys, tc);
        } else {
            budget = std::min(budget, until);
        }
    }

    BatchResult res = runBatch(budget, timing, /*exit_on_io=*/true);
    recordBatch(res);
    scheduleTick(res.spent ? res.spent : period);
}

} // namespace g5::sim
