#include "sim/cpu/o3_cpu.hh"

#include <algorithm>

#include "base/logging.hh"

namespace g5::sim
{

using isa::StepInfo;
using isa::StepKind;

O3Cpu::O3Cpu(System &sys, int cpu_id)
    : BaseCpu(sys, cpu_id)
{
    statGroup().addStat("numBranches", &numBranches,
                        "conditional branches executed");
    statGroup().addStat("numMispredicts", &numMispredicts,
                        "branches mispredicted");
    statGroup().addStat("loadsOverlapped", &numLoadsOverlapped,
                        "loads issued while others were in flight");
}

Tick
O3Cpu::operandsReadyAt(const isa::Inst &inst) const
{
    isa::RegInfo regs = isa::regInfo(inst);
    Tick ready = 0;
    if (regs.src1 >= 0)
        ready = std::max(ready, regReadyAt[regs.src1]);
    if (regs.src2 >= 0)
        ready = std::max(ready, regReadyAt[regs.src2]);
    return ready;
}

Tick
O3Cpu::drainTime() const
{
    Tick t = 0;
    for (Tick r : regReadyAt)
        t = std::max(t, r);
    for (Tick r : inflightLoads)
        t = std::max(t, r);
    return t;
}

void
O3Cpu::resetScoreboard(Tick at)
{
    for (auto &r : regReadyAt)
        r = at;
    inflightLoads.clear();
}

void
O3Cpu::tick()
{
    if (!acquireThread())
        return;

    const Tick start = sys.curTick();
    Tick cur = start;            // issue-stage clock
    unsigned issued_this_cycle = 0;
    resetScoreboard(start);

    auto advance_issue = [&](Tick ready) {
        if (ready > cur) {
            cur = ready;
            issued_this_cycle = 0;
        }
        if (++issued_this_cycle >= issueWidth) {
            cur += period;
            issued_this_cycle = 0;
        }
    };

    Tick end = start;
    for (std::uint64_t n = 0; n < batchInsts; ++n) {
        const isa::Inst &inst = tc->fetch(); // peek for dependencies
        isa::RegInfo regs = isa::regInfo(inst);
        Tick ready = std::max(cur, operandsReadyAt(inst));

        StepInfo info = isa::step(*tc);

        if (info.kind == StepKind::Done) {
            Tick completion = ready + period * info.latency;
            if (regs.dst >= 0)
                regReadyAt[regs.dst] = completion;
            end = std::max(end, completion);

            if (info.isBranch) {
                ++numBranches;
                if (info.branchTaken &&
                    sys.rng.chance(mispredictRate)) {
                    ++numMispredicts;
                    cur = completion + period * mispredictPenalty;
                    issued_this_cycle = 0;
                } else {
                    advance_issue(ready);
                }
            } else {
                advance_issue(ready);
            }
            if (chargeInstruction())
                break;
            continue;
        }

        if (info.kind == StepKind::Load || info.kind == StepKind::Store ||
            info.kind == StepKind::Amo) {
            ++numMemRefs;

            // LSQ: cap outstanding loads; amo is serializing-ish but
            // still overlaps with independent work.
            while (inflightLoads.size() >= maxOutstandingLoads) {
                ready = std::max(ready, inflightLoads.front());
                inflightLoads.pop_front();
            }
            if (!inflightLoads.empty())
                ++numLoadsOverlapped;

            bool write = info.kind != StepKind::Load;
            Tick lat = sys.memSystem->atomicAccess(id, info.addr, write);
            Tick completion = ready + period + lat;

            // Functional effect commits now (event order = commit order).
            if (info.kind == StepKind::Load) {
                isa::completeLoad(*tc, info.rd,
                                  sys.physmem.read(info.addr));
            } else if (info.kind == StepKind::Store) {
                sys.physmem.write(info.addr, info.value);
            } else {
                isa::completeLoad(
                    *tc, info.rd,
                    sys.physmem.amoAdd(info.addr, info.value));
                // Atomics serialize the memory pipeline.
                cur = std::max(cur, completion);
            }

            if (regs.dst >= 0)
                regReadyAt[regs.dst] = completion;
            inflightLoads.push_back(completion);
            end = std::max(end, completion);
            advance_issue(ready);
            if (chargeInstruction())
                break;
            continue;
        }

        // Serializing instruction: drain, then service.
        Tick drained = std::max(ready, drainTime());
        cur = drained;
        issued_this_cycle = 0;
        end = std::max(end, cur);

        chargeInstruction(false);
        bool lost = false;
        Tick extra = handleSpecial(info, lost);
        cur += period + extra;
        end = std::max(end, cur);
        if (lost || sys.eventq.exitPending())
            break;
        resetScoreboard(cur);
    }

    Tick spent = std::max(end, cur) - start;
    scheduleTick(spent ? spent : period);
}

} // namespace g5::sim
