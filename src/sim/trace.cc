#include "sim/trace.hh"

#include <cstdio>
#include <set>

#include "base/logging.hh"

namespace g5::sim::trace
{

namespace
{

std::set<std::string> liveFlags;
bool captureMode = false;
std::string buffer;

} // anonymous namespace

void
enable(const std::string &flag)
{
    liveFlags.insert(flag);
}

void
disable(const std::string &flag)
{
    if (flag == "All")
        liveFlags.clear();
    else
        liveFlags.erase(flag);
}

bool
enabled(const std::string &flag)
{
    if (liveFlags.empty())
        return false;
    return liveFlags.count(flag) > 0 || liveFlags.count("All") > 0;
}

void
captureToBuffer(bool capture)
{
    captureMode = capture;
}

std::string
takeCaptured()
{
    std::string out;
    out.swap(buffer);
    return out;
}

void
emit(Tick when, const std::string &flag, const std::string &msg)
{
    std::string line = csprintf("%12llu: %s: %s\n",
                                (unsigned long long)when, flag.c_str(),
                                msg.c_str());
    if (captureMode)
        buffer += line;
    else
        std::fputs(line.c_str(), stderr);
}

} // namespace g5::sim::trace
