#include "sim/trace.hh"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <vector>

#include "base/logging.hh"
#include "base/tracing.hh"

namespace g5::sim::trace
{

namespace
{

/**
 * The enabled-flag set. liveCount mirrors live.size() so enabled()'s
 * fast path — nothing enabled, the common case — is one relaxed
 * atomic load with no lock and no allocation. The transparent
 * comparator lets string_view probes hit without constructing a
 * std::string.
 */
struct FlagSet
{
    std::shared_mutex mtx;
    std::set<std::string, std::less<>> live;
    std::atomic<int> liveCount{0};
};

FlagSet &
flagSet()
{
    static FlagSet *f = new FlagSet();
    return *f;
}

std::atomic<bool> captureMode{false};

/**
 * A thread's private capture buffer: emits append under its (otherwise
 * uncontended) mutex; takeCaptured() drains every registered buffer.
 * The registry holds shared_ptrs so a worker thread exiting mid-sweep
 * leaves its captured lines reachable until drained.
 */
struct CaptureBuf
{
    std::mutex mtx;
    std::string text;
};

struct CaptureRegistry
{
    std::mutex mtx;
    std::vector<std::shared_ptr<CaptureBuf>> bufs;
};

CaptureRegistry &
captureRegistry()
{
    static CaptureRegistry *r = new CaptureRegistry();
    return *r;
}

CaptureBuf &
myCaptureBuf()
{
    thread_local std::shared_ptr<CaptureBuf> buf = [] {
        auto b = std::make_shared<CaptureBuf>();
        CaptureRegistry &r = captureRegistry();
        std::lock_guard<std::mutex> lock(r.mtx);
        r.bufs.push_back(b);
        return b;
    }();
    return *buf;
}

} // anonymous namespace

void
enable(std::string_view flag)
{
    FlagSet &f = flagSet();
    std::unique_lock<std::shared_mutex> lock(f.mtx);
    f.live.emplace(flag);
    f.liveCount.store(int(f.live.size()), std::memory_order_release);
}

void
disable(std::string_view flag)
{
    FlagSet &f = flagSet();
    std::unique_lock<std::shared_mutex> lock(f.mtx);
    if (flag == "All") {
        f.live.clear();
    } else {
        auto it = f.live.find(flag);
        if (it != f.live.end())
            f.live.erase(it);
    }
    f.liveCount.store(int(f.live.size()), std::memory_order_release);
}

bool
enabled(std::string_view flag)
{
    FlagSet &f = flagSet();
    // Disabled-path cost is this single load: no lock, no allocation.
    if (f.liveCount.load(std::memory_order_acquire) == 0)
        return false;
    std::shared_lock<std::shared_mutex> lock(f.mtx);
    return f.live.count(flag) > 0 ||
           f.live.count(std::string_view("All")) > 0;
}

void
captureToBuffer(bool capture)
{
    captureMode.store(capture, std::memory_order_seq_cst);
}

std::string
takeCaptured()
{
    CaptureRegistry &r = captureRegistry();
    std::lock_guard<std::mutex> lock(r.mtx);
    std::string out;
    for (const auto &buf : r.bufs) {
        std::lock_guard<std::mutex> bl(buf->mtx);
        out += buf->text;
        buf->text.clear();
    }
    return out;
}

void
emit(Tick when, std::string_view flag, const std::string &msg)
{
    std::string line = csprintf("%12llu: %.*s: %s\n",
                                (unsigned long long)when,
                                int(flag.size()), flag.data(),
                                msg.c_str());
    // Mirror onto the experiment timeline when one is being recorded.
    if (tracing::enabled()) {
        Json args = Json::object();
        args["line"] = msg;
        args["tick"] = when;
        tracing::instant(flag, "dtrace", std::move(args));
    }
    if (captureMode.load(std::memory_order_seq_cst)) {
        CaptureBuf &buf = myCaptureBuf();
        std::lock_guard<std::mutex> lock(buf.mtx);
        buf.text += line;
    } else {
        std::fputs(line.c_str(), stderr);
    }
}

} // namespace g5::sim::trace
