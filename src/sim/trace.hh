/**
 * @file
 * Flag-gated execution tracing — the analogue of gem5's DPRINTF /
 * --debug-flags machinery.
 *
 * Components emit through DTRACE(flag, eq, fmt, ...); nothing is
 * formatted unless the flag is enabled, so tracing is free in normal
 * runs: the disabled path is one relaxed atomic load and never
 * allocates (flags are passed as std::string_view). Output lines
 * follow gem5's "tick: Flag: message" shape and go either to stderr
 * or to in-memory capture buffers (tests use the latter).
 *
 * Thread safety: sweep workers simulate concurrently by default, so
 * every piece of state here is synchronized. The flag set sits behind
 * a reader-writer lock with an atomic emptiness fast path; capture
 * buffers are per-thread (the same pattern as base/tracing's span
 * recorder) and merged on takeCaptured(). When a chrome-trace
 * recording is active (see base/tracing.hh), every emitted line is
 * mirrored into it as an instant event, so DTRACE activity lands on
 * the experiment timeline.
 *
 * Capture drain ordering: lines emitted happens-before a
 * captureToBuffer(false) call are never lost — stopping capture does
 * not clear the buffers, and takeCaptured() drains every thread's
 * buffer (including those of exited threads). Lines raced with the
 * stop itself land either in the capture buffers or on stderr,
 * whichever mode their emit observed.
 *
 * Flags in use: "Syscall" (guest OS services), "Exec" (thread
 * lifecycle), "Ruby" (coherence protocol events), "Cpu" (context
 * switches).
 */

#ifndef G5_SIM_TRACE_HH
#define G5_SIM_TRACE_HH

#include <string>
#include <string_view>

#include "base/logging.hh" // csprintf, used by the DTRACE macro
#include "base/types.hh"

namespace g5::sim::trace
{

/** Enable one flag, or "All". */
void enable(std::string_view flag);

/** Disable one flag, or "All" to clear everything. */
void disable(std::string_view flag);

/** @return true when @p flag (or All) is enabled. Never allocates. */
bool enabled(std::string_view flag);

/** Route output into the in-memory buffers instead of stderr. */
void captureToBuffer(bool capture);

/**
 * Drain and concatenate every thread's capture buffer (per-thread
 * line order preserved; threads merge in registration order).
 */
std::string takeCaptured();

/** Emit one trace line (call through the DTRACE macro). */
void emit(Tick when, std::string_view flag, const std::string &msg);

} // namespace g5::sim::trace

/**
 * Trace with lazy formatting: evaluates the message only when the flag
 * is live. @p eq_tick is the current tick expression.
 */
#define DTRACE(flag, eq_tick, ...)                                     \
    do {                                                               \
        if (::g5::sim::trace::enabled(flag)) {                         \
            ::g5::sim::trace::emit((eq_tick), (flag),                  \
                                   ::g5::csprintf(__VA_ARGS__));       \
        }                                                              \
    } while (0)

#endif // G5_SIM_TRACE_HH
