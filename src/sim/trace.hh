/**
 * @file
 * Flag-gated execution tracing — the analogue of gem5's DPRINTF /
 * --debug-flags machinery.
 *
 * Components emit through DTRACE(flag, eq, fmt, ...); nothing is
 * formatted unless the flag is enabled, so tracing is free in normal
 * runs. Output lines follow gem5's "tick: Flag: message" shape and go
 * either to stderr or to an in-memory capture buffer (tests use the
 * latter).
 *
 * Flags in use: "Syscall" (guest OS services), "Exec" (thread
 * lifecycle), "Ruby" (coherence protocol events), "Cpu" (context
 * switches).
 */

#ifndef G5_SIM_TRACE_HH
#define G5_SIM_TRACE_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace g5::sim::trace
{

/** Enable one flag, or "All". */
void enable(const std::string &flag);

/** Disable one flag, or "All" to clear everything. */
void disable(const std::string &flag);

/** @return true when @p flag (or All) is enabled. */
bool enabled(const std::string &flag);

/** Route output into the in-memory buffer instead of stderr. */
void captureToBuffer(bool capture);

/** @return and clear the capture buffer. */
std::string takeCaptured();

/** Emit one trace line (call through the DTRACE macro). */
void emit(Tick when, const std::string &flag, const std::string &msg);

} // namespace g5::sim::trace

/**
 * Trace with lazy formatting: evaluates the message only when the flag
 * is live. @p eq_tick is the current tick expression.
 */
#define DTRACE(flag, eq_tick, ...)                                     \
    do {                                                               \
        if (::g5::sim::trace::enabled(flag)) {                         \
            ::g5::sim::trace::emit((eq_tick), (flag),                  \
                                   ::g5::csprintf(__VA_ARGS__));       \
        }                                                              \
    } while (0)

#endif // G5_SIM_TRACE_HH
