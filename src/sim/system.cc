#include "sim/system.hh"

#include "sim/cpu/base_cpu.hh"
#include "sim/cpu/error_inject.hh"

namespace g5::sim
{

System::System(std::uint64_t seed)
    : rootStats("system"), rng(seed)
{}

System::~System() = default;

void
System::kickIdleCpus()
{
    for (auto &cpu : cpus)
        cpu->kick();
}

} // namespace g5::sim
