/**
 * @file
 * SimISA execution semantics, shared by every CPU model.
 *
 * step() performs the register-file and control-flow effects of the
 * instruction at tc.pc and reports what else the instruction needs from
 * the machine (a memory access, a syscall, an m5 op, device I/O...). The
 * CPU model then supplies timing and performs the access, committing
 * loaded data via completeLoad(). This split keeps architectural
 * semantics in exactly one place while letting each CPU model impose its
 * own timing.
 */

#ifndef G5_SIM_ISA_EXEC_HH
#define G5_SIM_ISA_EXEC_HH

#include "base/types.hh"
#include "sim/isa/thread.hh"

namespace g5::sim::isa
{

/** What the instruction at hand requires beyond register effects. */
enum class StepKind {
    Done,       ///< fully executed (ALU/branch/nop/pause)
    Load,       ///< needs a memory read into rd
    Store,      ///< needs a memory write
    Amo,        ///< needs an atomic fetch-add (read+write)
    Syscall,    ///< OS service; code in info.code
    M5Op,       ///< m5 pseudo-op; func in info.code
    IoRead,     ///< device read into rd
    IoWrite,    ///< device write
    Halt,       ///< thread terminates
};

struct StepInfo
{
    StepKind kind = StepKind::Done;
    Op op = Op::Nop;

    /** Effective address for Load/Store/Amo/Io*. */
    Addr addr = 0;
    /** Destination register for Load/Amo/IoRead. */
    int rd = 0;
    /** Value to store (Store/IoWrite) or to add (Amo). */
    std::int64_t value = 0;
    /** Syscall code or m5 function. */
    std::int64_t code = 0;

    /** True for taken/not-taken conditional branches and jumps. */
    bool isBranch = false;
    /** True when a conditional branch was taken. */
    bool branchTaken = false;
    /** Execute latency class, in cycles. */
    unsigned latency = 1;
};

/**
 * Guest integer arithmetic wraps modulo 2^64, like every real ISA.
 * Signed overflow is undefined behaviour in C++, so the interpreters do
 * the math on unsigned values and convert back (two's-complement, exact
 * in C++20). Division guards the two trapping cases: /0 yields 0 and
 * INT64_MIN / -1 wraps to INT64_MIN.
 */
constexpr std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return std::int64_t(std::uint64_t(a) + std::uint64_t(b));
}

constexpr std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return std::int64_t(std::uint64_t(a) - std::uint64_t(b));
}

constexpr std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return std::int64_t(std::uint64_t(a) * std::uint64_t(b));
}

constexpr std::int64_t
wrapDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (b == -1)
        return wrapSub(0, a);
    return a / b;
}

/**
 * Execute the instruction at tc.pc (register + pc effects) and return
 * what else it needs. Retired-instruction accounting belongs to the CPU
 * model (BaseCpu::chargeInstruction). Must not be called on a Finished
 * thread.
 */
StepInfo step(ThreadContext &tc);

/** Commit data returned by the memory system for a Load/Amo/IoRead. */
void completeLoad(ThreadContext &tc, int rd, std::int64_t data);

} // namespace g5::sim::isa

#endif // G5_SIM_ISA_EXEC_HH
