/**
 * @file
 * ThreadContext — the architectural state of one guest software thread.
 *
 * Contexts are owned by the guest OS model and multiplexed onto CPU
 * models by its scheduler, exactly as software threads map onto harts.
 */

#ifndef G5_SIM_ISA_THREAD_HH
#define G5_SIM_ISA_THREAD_HH

#include <cstdint>

#include "base/types.hh"
#include "sim/isa/program.hh"

namespace g5::sim::isa
{

class ThreadContext
{
  public:
    enum class Status {
        Runnable,   ///< ready, waiting for a CPU
        Running,    ///< currently on a CPU
        Blocked,    ///< waiting (futex / sleep / I/O)
        Finished,   ///< halted or exited
    };

    ThreadContext(int tid, ProgramPtr prog)
        : tid(tid), prog(std::move(prog))
    {
        for (auto &r : regs)
            r = 0;
    }

    /** Guest thread id. */
    const int tid;

    /** Integer register file. */
    std::int64_t regs[numRegs];

    /** Program counter (instruction index). */
    std::uint64_t pc = 0;

    /** The binary this thread executes. */
    ProgramPtr prog;

    Status status = Status::Runnable;

    /** CPU currently (or last) hosting this context; -1 = none. */
    int cpuId = -1;

    /** Retired instruction count. */
    std::uint64_t numInsts = 0;

    /** Futex wait channel while Blocked on a futex; 0 otherwise. */
    Addr waitAddr = 0;

    /** Exit code once Finished. */
    std::int64_t exitCode = 0;

    /** Fetch the instruction at the current pc. */
    const Inst &fetch() const { return prog->fetch(pc); }
};

} // namespace g5::sim::isa

#endif // G5_SIM_ISA_THREAD_HH
