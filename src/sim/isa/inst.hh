/**
 * @file
 * SimISA — the small RISC-like instruction set executed by sim5 CPUs.
 *
 * Instructions are kept in decoded form (there is no binary encoding to
 * decode; "compilation" in this ecosystem means generating decoded
 * instruction vectors). The set is deliberately minimal but sufficient
 * for full-system behaviour: ALU/FP work, loads/stores, an atomic
 * fetch-add (the building block for locks and barriers), branches,
 * syscalls into the guest OS, device I/O, and gem5-style m5 pseudo-ops.
 */

#ifndef G5_SIM_ISA_INST_HH
#define G5_SIM_ISA_INST_HH

#include <cstdint>

namespace g5::sim::isa
{

/** Number of integer registers per thread context. */
constexpr int numRegs = 32;

enum class Op : std::uint8_t {
    Nop,
    Halt,       ///< terminate the owning thread

    // Integer ALU
    Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr,
    Movi,       ///< rd = imm
    Mov,        ///< rd = rs
    Addi,       ///< rd = rs + imm
    Muli,       ///< rd = rs * imm

    // Floating-point latency classes (values carried in int regs)
    Fadd, Fmul, Fdiv,

    // Memory (effective address = regs[rs] + imm, 8-byte granularity)
    Ld,         ///< rd = mem[rs + imm]
    St,         ///< mem[rs + imm] = rt
    Amo,        ///< rd = mem[rs + imm]; mem[rs + imm] += rt (atomic)

    // Control flow (absolute instruction-index targets in imm)
    Beq, Bne, Blt, Bge,
    Jmp,

    // System
    Syscall,    ///< code = imm; args r1..r3; result in r1
    M5Op,       ///< m5 pseudo-op, func = imm (exit/workbegin/workend/fail)
    IoRd,       ///< rd = device[rs + imm]
    IoWr,       ///< device[rs + imm] = rt
    Pause,      ///< spin-wait hint

    NumOps
};

/** @return a short mnemonic for tracing. */
const char *opName(Op op);

/** @return true for Ld/St/Amo. */
bool isMemOp(Op op);

/** @return true for Beq/Bne/Blt/Bge/Jmp. */
bool isControlOp(Op op);

/** @return the ALU latency class in cycles for a non-memory op. */
unsigned opLatency(Op op);

/** A decoded SimISA instruction. */
struct Inst
{
    Op op = Op::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::int64_t imm = 0;
};

/** Dataflow ports of an instruction (-1 = unused), for OoO models. */
struct RegInfo
{
    int dst = -1;
    int src1 = -1;
    int src2 = -1;
};

/** @return which registers @p inst reads and writes. */
RegInfo regInfo(const Inst &inst);

} // namespace g5::sim::isa

#endif // G5_SIM_ISA_INST_HH
