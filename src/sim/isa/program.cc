#include "sim/isa/program.hh"

#include "base/logging.hh"

namespace g5::sim::isa
{

const Inst &
Program::fetch(std::uint64_t pc) const
{
    if (pc >= code.size())
        panic(csprintf("program '%s': pc %llu past end (%zu insts)",
                       progName.c_str(), (unsigned long long)pc,
                       code.size()));
    return code[pc];
}

Json
Program::toJson() const
{
    Json j = Json::object();
    j["name"] = progName;
    Json code_rows = Json::array();
    for (const auto &inst : code) {
        Json row = Json::array();
        row.push(std::int64_t(inst.op));
        row.push(std::int64_t(inst.rd));
        row.push(std::int64_t(inst.rs));
        row.push(std::int64_t(inst.rt));
        row.push(inst.imm);
        code_rows.push(std::move(row));
    }
    j["code"] = std::move(code_rows);
    Json strs = Json::array();
    for (const auto &s : strings)
        strs.push(s);
    j["strings"] = std::move(strs);
    return j;
}

std::shared_ptr<Program>
Program::fromJson(const Json &j)
{
    auto prog = std::make_shared<Program>(j.getString("name"));
    if (!j.contains("code"))
        fatal("Program::fromJson: missing 'code'");
    for (const auto &row : j.at("code").asArray()) {
        if (!row.isArray() || row.size() != 5)
            fatal("Program::fromJson: malformed instruction row");
        Inst inst;
        std::int64_t opv = row.at(std::size_t(0)).asInt();
        if (opv < 0 || opv >= std::int64_t(Op::NumOps))
            fatal("Program::fromJson: bad opcode " + std::to_string(opv));
        inst.op = Op(opv);
        inst.rd = std::uint8_t(row.at(std::size_t(1)).asInt());
        inst.rs = std::uint8_t(row.at(std::size_t(2)).asInt());
        inst.rt = std::uint8_t(row.at(std::size_t(3)).asInt());
        inst.imm = row.at(std::size_t(4)).asInt();
        prog->code.push_back(inst);
    }
    if (j.contains("strings"))
        for (const auto &s : j.at("strings").asArray())
            prog->strings.push_back(s.asString());
    return prog;
}

} // namespace g5::sim::isa
