/**
 * @file
 * ProgramBuilder — an assembler-style API for constructing SimISA
 * programs with forward-referencing labels.
 *
 * Workload generators ("compilers") use this to emit benchmark binaries;
 * the fs layer uses it to emit kernel boot code.
 */

#ifndef G5_SIM_ISA_BUILDER_HH
#define G5_SIM_ISA_BUILDER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/isa/program.hh"

namespace g5::sim::isa
{

class ProgramBuilder
{
  public:
    /** An opaque label handle. */
    using Label = int;

    explicit ProgramBuilder(std::string name);

    /** Allocate a fresh (unbound) label. */
    Label newLabel();

    /** Bind @p l to the next emitted instruction. */
    void bind(Label l);

    /** Intern a console string; @return its string-table index. */
    std::int64_t str(const std::string &s);

    // --- instruction emitters (in ISA order) ---
    void nop();
    void halt();
    void add(int rd, int rs, int rt);
    void sub(int rd, int rs, int rt);
    void mul(int rd, int rs, int rt);
    void div(int rd, int rs, int rt);
    void and_(int rd, int rs, int rt);
    void or_(int rd, int rs, int rt);
    void xor_(int rd, int rs, int rt);
    void shl(int rd, int rs, int rt);
    void shr(int rd, int rs, int rt);
    void movi(int rd, std::int64_t imm);
    /** rd = the instruction index @p target resolves to (for SPAWN). */
    void moviLabel(int rd, Label target);
    void mov(int rd, int rs);
    void addi(int rd, int rs, std::int64_t imm);
    void muli(int rd, int rs, std::int64_t imm);
    void fadd(int rd, int rs, int rt);
    void fmul(int rd, int rs, int rt);
    void fdiv(int rd, int rs, int rt);
    void ld(int rd, int rs, std::int64_t imm);
    void st(int rs, std::int64_t imm, int rt);
    void amo(int rd, int rs, std::int64_t imm, int rt);
    void beq(int rs, int rt, Label target);
    void bne(int rs, int rt, Label target);
    void blt(int rs, int rt, Label target);
    void bge(int rs, int rt, Label target);
    void jmp(Label target);
    void syscall(std::int64_t code);
    void m5op(std::int64_t func);
    void iord(int rd, int rs, std::int64_t imm);
    void iowr(int rs, std::int64_t imm, int rt);
    void pause();

    /** Current instruction count (useful for size accounting). */
    std::size_t size() const { return prog->code.size(); }

    /**
     * Resolve all labels and return the finished, immutable program.
     * @throws FatalError when a referenced label was never bound.
     */
    ProgramPtr finish();

  private:
    void emit(Op op, int rd = 0, int rs = 0, int rt = 0,
              std::int64_t imm = 0);
    void emitBranch(Op op, int rs, int rt, Label target);

    std::shared_ptr<Program> prog;
    std::vector<std::int64_t> labelTargets;       // -1 = unbound
    std::vector<std::pair<std::size_t, Label>> fixups;
    std::map<std::string, std::int64_t> stringIds;
    bool finished = false;
};

} // namespace g5::sim::isa

#endif // G5_SIM_ISA_BUILDER_HH
