#include "sim/isa/inst.hh"

namespace g5::sim::isa
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Halt: return "halt";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Movi: return "movi";
      case Op::Mov: return "mov";
      case Op::Addi: return "addi";
      case Op::Muli: return "muli";
      case Op::Fadd: return "fadd";
      case Op::Fmul: return "fmul";
      case Op::Fdiv: return "fdiv";
      case Op::Ld: return "ld";
      case Op::St: return "st";
      case Op::Amo: return "amo";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Jmp: return "jmp";
      case Op::Syscall: return "syscall";
      case Op::M5Op: return "m5op";
      case Op::IoRd: return "iord";
      case Op::IoWr: return "iowr";
      case Op::Pause: return "pause";
      case Op::NumOps: break;
    }
    return "???";
}

bool
isMemOp(Op op)
{
    return op == Op::Ld || op == Op::St || op == Op::Amo;
}

bool
isControlOp(Op op)
{
    return op == Op::Beq || op == Op::Bne || op == Op::Blt ||
           op == Op::Bge || op == Op::Jmp;
}

unsigned
opLatency(Op op)
{
    switch (op) {
      case Op::Mul:
      case Op::Muli:
        return 3;
      case Op::Div:
        return 12;
      case Op::Fadd:
        return 2;
      case Op::Fmul:
        return 4;
      case Op::Fdiv:
        return 12;
      default:
        return 1;
    }
}

RegInfo
regInfo(const Inst &inst)
{
    RegInfo info;
    switch (inst.op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::And: case Op::Or: case Op::Xor: case Op::Shl:
      case Op::Shr: case Op::Fadd: case Op::Fmul: case Op::Fdiv:
        info.dst = inst.rd;
        info.src1 = inst.rs;
        info.src2 = inst.rt;
        break;
      case Op::Mov: case Op::Addi: case Op::Muli:
        info.dst = inst.rd;
        info.src1 = inst.rs;
        break;
      case Op::Movi:
        info.dst = inst.rd;
        break;
      case Op::Ld: case Op::IoRd:
        info.dst = inst.rd;
        info.src1 = inst.rs;
        break;
      case Op::St: case Op::IoWr:
        info.src1 = inst.rs;
        info.src2 = inst.rt;
        break;
      case Op::Amo:
        info.dst = inst.rd;
        info.src1 = inst.rs;
        info.src2 = inst.rt;
        break;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
        info.src1 = inst.rs;
        info.src2 = inst.rt;
        break;
      default:
        break;
    }
    return info;
}

} // namespace g5::sim::isa
