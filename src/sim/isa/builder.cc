#include "sim/isa/builder.hh"

#include "base/logging.hh"

namespace g5::sim::isa
{

ProgramBuilder::ProgramBuilder(std::string name)
    : prog(std::make_shared<Program>(std::move(name)))
{}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    labelTargets.push_back(-1);
    return Label(labelTargets.size() - 1);
}

void
ProgramBuilder::bind(Label l)
{
    if (l < 0 || std::size_t(l) >= labelTargets.size())
        panic("ProgramBuilder: bind of unknown label");
    if (labelTargets[l] != -1)
        panic("ProgramBuilder: label bound twice");
    labelTargets[l] = std::int64_t(prog->code.size());
}

std::int64_t
ProgramBuilder::str(const std::string &s)
{
    auto it = stringIds.find(s);
    if (it != stringIds.end())
        return it->second;
    std::int64_t id = std::int64_t(prog->strings.size());
    prog->strings.push_back(s);
    stringIds[s] = id;
    return id;
}

void
ProgramBuilder::emit(Op op, int rd, int rs, int rt, std::int64_t imm)
{
    if (finished)
        panic("ProgramBuilder: emit after finish()");
    if (rd < 0 || rd >= numRegs || rs < 0 || rs >= numRegs || rt < 0 ||
        rt >= numRegs) {
        fatal("ProgramBuilder: register index out of range");
    }
    prog->code.push_back(Inst{op, std::uint8_t(rd), std::uint8_t(rs),
                              std::uint8_t(rt), imm});
}

void
ProgramBuilder::emitBranch(Op op, int rs, int rt, Label target)
{
    fixups.emplace_back(prog->code.size(), target);
    emit(op, 0, rs, rt, 0);
}

void ProgramBuilder::nop() { emit(Op::Nop); }
void ProgramBuilder::halt() { emit(Op::Halt); }
void ProgramBuilder::add(int rd, int rs, int rt) { emit(Op::Add, rd, rs, rt); }
void ProgramBuilder::sub(int rd, int rs, int rt) { emit(Op::Sub, rd, rs, rt); }
void ProgramBuilder::mul(int rd, int rs, int rt) { emit(Op::Mul, rd, rs, rt); }
void ProgramBuilder::div(int rd, int rs, int rt) { emit(Op::Div, rd, rs, rt); }
void ProgramBuilder::and_(int rd, int rs, int rt) { emit(Op::And, rd, rs, rt); }
void ProgramBuilder::or_(int rd, int rs, int rt) { emit(Op::Or, rd, rs, rt); }
void ProgramBuilder::xor_(int rd, int rs, int rt) { emit(Op::Xor, rd, rs, rt); }
void ProgramBuilder::shl(int rd, int rs, int rt) { emit(Op::Shl, rd, rs, rt); }
void ProgramBuilder::shr(int rd, int rs, int rt) { emit(Op::Shr, rd, rs, rt); }
void ProgramBuilder::movi(int rd, std::int64_t imm) { emit(Op::Movi, rd, 0, 0, imm); }

void
ProgramBuilder::moviLabel(int rd, Label target)
{
    fixups.emplace_back(prog->code.size(), target);
    emit(Op::Movi, rd);
}
void ProgramBuilder::mov(int rd, int rs) { emit(Op::Mov, rd, rs); }
void ProgramBuilder::addi(int rd, int rs, std::int64_t imm) { emit(Op::Addi, rd, rs, 0, imm); }
void ProgramBuilder::muli(int rd, int rs, std::int64_t imm) { emit(Op::Muli, rd, rs, 0, imm); }
void ProgramBuilder::fadd(int rd, int rs, int rt) { emit(Op::Fadd, rd, rs, rt); }
void ProgramBuilder::fmul(int rd, int rs, int rt) { emit(Op::Fmul, rd, rs, rt); }
void ProgramBuilder::fdiv(int rd, int rs, int rt) { emit(Op::Fdiv, rd, rs, rt); }
void ProgramBuilder::ld(int rd, int rs, std::int64_t imm) { emit(Op::Ld, rd, rs, 0, imm); }
void ProgramBuilder::st(int rs, std::int64_t imm, int rt) { emit(Op::St, 0, rs, rt, imm); }

void
ProgramBuilder::amo(int rd, int rs, std::int64_t imm, int rt)
{
    emit(Op::Amo, rd, rs, rt, imm);
}

void ProgramBuilder::beq(int rs, int rt, Label t) { emitBranch(Op::Beq, rs, rt, t); }
void ProgramBuilder::bne(int rs, int rt, Label t) { emitBranch(Op::Bne, rs, rt, t); }
void ProgramBuilder::blt(int rs, int rt, Label t) { emitBranch(Op::Blt, rs, rt, t); }
void ProgramBuilder::bge(int rs, int rt, Label t) { emitBranch(Op::Bge, rs, rt, t); }
void ProgramBuilder::jmp(Label t) { emitBranch(Op::Jmp, 0, 0, t); }
void ProgramBuilder::syscall(std::int64_t code) { emit(Op::Syscall, 0, 0, 0, code); }
void ProgramBuilder::m5op(std::int64_t func) { emit(Op::M5Op, 0, 0, 0, func); }
void ProgramBuilder::iord(int rd, int rs, std::int64_t imm) { emit(Op::IoRd, rd, rs, 0, imm); }
void ProgramBuilder::iowr(int rs, std::int64_t imm, int rt) { emit(Op::IoWr, 0, rs, rt, imm); }
void ProgramBuilder::pause() { emit(Op::Pause); }

ProgramPtr
ProgramBuilder::finish()
{
    if (finished)
        panic("ProgramBuilder: finish() called twice");
    for (const auto &fixup : fixups) {
        std::int64_t target = labelTargets[fixup.second];
        if (target < 0)
            fatal("ProgramBuilder '" + prog->name() +
                  "': unbound label referenced");
        prog->code[fixup.first].imm = target;
    }
    finished = true;
    return prog;
}

} // namespace g5::sim::isa
