#include "sim/isa/exec.hh"

#include "base/logging.hh"

namespace g5::sim::isa
{

StepInfo
step(ThreadContext &tc)
{
    if (tc.status == ThreadContext::Status::Finished)
        panic("isa::step on a finished thread");

    const Inst &inst = tc.fetch();
    StepInfo info;
    info.op = inst.op;
    info.latency = opLatency(inst.op);

    auto &r = tc.regs;
    std::uint64_t next_pc = tc.pc + 1;

    switch (inst.op) {
      case Op::Nop:
      case Op::Pause:
        break;

      case Op::Halt:
        info.kind = StepKind::Halt;
        break;

      case Op::Add:
        r[inst.rd] = wrapAdd(r[inst.rs], r[inst.rt]);
        break;
      case Op::Sub:
        r[inst.rd] = wrapSub(r[inst.rs], r[inst.rt]);
        break;
      case Op::Mul:
        r[inst.rd] = wrapMul(r[inst.rs], r[inst.rt]);
        break;
      case Op::Div:
        r[inst.rd] = wrapDiv(r[inst.rs], r[inst.rt]);
        break;
      case Op::And:
        r[inst.rd] = r[inst.rs] & r[inst.rt];
        break;
      case Op::Or:
        r[inst.rd] = r[inst.rs] | r[inst.rt];
        break;
      case Op::Xor:
        r[inst.rd] = r[inst.rs] ^ r[inst.rt];
        break;
      case Op::Shl:
        r[inst.rd] = std::int64_t(std::uint64_t(r[inst.rs])
                                  << (r[inst.rt] & 63));
        break;
      case Op::Shr:
        r[inst.rd] = std::int64_t(std::uint64_t(r[inst.rs]) >>
                                  (r[inst.rt] & 63));
        break;
      case Op::Movi:
        r[inst.rd] = inst.imm;
        break;
      case Op::Mov:
        r[inst.rd] = r[inst.rs];
        break;
      case Op::Addi:
        r[inst.rd] = wrapAdd(r[inst.rs], inst.imm);
        break;
      case Op::Muli:
        r[inst.rd] = wrapMul(r[inst.rs], inst.imm);
        break;

      // FP latency classes; values modelled as fixed-point in int regs.
      case Op::Fadd:
        r[inst.rd] = wrapAdd(r[inst.rs], r[inst.rt]);
        break;
      case Op::Fmul:
        r[inst.rd] = wrapMul(r[inst.rs], r[inst.rt]);
        break;
      case Op::Fdiv:
        r[inst.rd] = wrapDiv(r[inst.rs], r[inst.rt]);
        break;

      case Op::Ld:
        info.kind = StepKind::Load;
        info.addr = Addr(wrapAdd(r[inst.rs], inst.imm));
        info.rd = inst.rd;
        break;
      case Op::St:
        info.kind = StepKind::Store;
        info.addr = Addr(wrapAdd(r[inst.rs], inst.imm));
        info.value = r[inst.rt];
        break;
      case Op::Amo:
        info.kind = StepKind::Amo;
        info.addr = Addr(wrapAdd(r[inst.rs], inst.imm));
        info.value = r[inst.rt];
        info.rd = inst.rd;
        break;

      case Op::Beq:
        info.isBranch = true;
        if (r[inst.rs] == r[inst.rt]) {
            info.branchTaken = true;
            next_pc = std::uint64_t(inst.imm);
        }
        break;
      case Op::Bne:
        info.isBranch = true;
        if (r[inst.rs] != r[inst.rt]) {
            info.branchTaken = true;
            next_pc = std::uint64_t(inst.imm);
        }
        break;
      case Op::Blt:
        info.isBranch = true;
        if (r[inst.rs] < r[inst.rt]) {
            info.branchTaken = true;
            next_pc = std::uint64_t(inst.imm);
        }
        break;
      case Op::Bge:
        info.isBranch = true;
        if (r[inst.rs] >= r[inst.rt]) {
            info.branchTaken = true;
            next_pc = std::uint64_t(inst.imm);
        }
        break;
      case Op::Jmp:
        info.isBranch = true;
        info.branchTaken = true;
        next_pc = std::uint64_t(inst.imm);
        break;

      case Op::Syscall:
        info.kind = StepKind::Syscall;
        info.code = inst.imm;
        break;
      case Op::M5Op:
        info.kind = StepKind::M5Op;
        info.code = inst.imm;
        break;
      case Op::IoRd:
        info.kind = StepKind::IoRead;
        info.addr = Addr(wrapAdd(r[inst.rs], inst.imm));
        info.rd = inst.rd;
        break;
      case Op::IoWr:
        info.kind = StepKind::IoWrite;
        info.addr = Addr(wrapAdd(r[inst.rs], inst.imm));
        info.value = r[inst.rt];
        break;

      case Op::NumOps:
        panic("isa::step: invalid opcode");
    }

    tc.pc = next_pc;
    return info;
}

void
completeLoad(ThreadContext &tc, int rd, std::int64_t data)
{
    if (rd < 0 || rd >= numRegs)
        panic("isa::completeLoad: bad destination register");
    tc.regs[rd] = data;
}

} // namespace g5::sim::isa
