/**
 * @file
 * A SimISA program: the unit stored in disk images and executed by
 * thread contexts.
 *
 * Programs carry a string table (console messages reference strings by
 * index — the moral equivalent of .rodata) and serialize to/from JSON so
 * they can live inside S5DK disk images and be content-hashed by the
 * artifact layer.
 */

#ifndef G5_SIM_ISA_PROGRAM_HH
#define G5_SIM_ISA_PROGRAM_HH

#include <memory>
#include <string>
#include <vector>

#include "base/json.hh"
#include "sim/isa/inst.hh"

namespace g5::sim::isa
{

class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : progName(std::move(name)) {}

    const std::string &name() const { return progName; }
    void setName(std::string n) { progName = std::move(n); }

    /** The instruction vector (mutated only by ProgramBuilder). */
    std::vector<Inst> code;

    /** Console strings referenced by SYS_WRITE. */
    std::vector<std::string> strings;

    std::size_t size() const { return code.size(); }

    /** Bounds-checked fetch; throws PanicError past the end. */
    const Inst &fetch(std::uint64_t pc) const;

    /** Serialize to a JSON object (code as [op,rd,rs,rt,imm] rows). */
    Json toJson() const;

    /** Rebuild from toJson() output; throws FatalError on bad input. */
    static std::shared_ptr<Program> fromJson(const Json &j);

  private:
    std::string progName;
};

using ProgramPtr = std::shared_ptr<const Program>;

} // namespace g5::sim::isa

#endif // G5_SIM_ISA_PROGRAM_HH
