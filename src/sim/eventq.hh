/**
 * @file
 * The discrete-event kernel of sim5.
 *
 * A single EventQueue per System orders callbacks by (tick, priority,
 * insertion sequence). The main loop (EventQueue::run) pops events until
 * an exit is signalled, the tick limit is reached, or the queue drains.
 * Cooperative cancellation (scheduler timeouts) is polled every
 * pollInterval events.
 */

#ifndef G5_SIM_EVENTQ_HH
#define G5_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/types.hh"

namespace g5::scheduler
{
class CancelToken;
} // namespace g5::scheduler

namespace g5::sim
{

/** Why the event loop stopped. */
struct ExitEvent
{
    /** Machine-readable cause, e.g. "m5_exit instruction encountered". */
    std::string cause;
    /** Exit code (0 = success). */
    int code = 0;
    /** True when the loop hit its tick limit instead of a real exit. */
    bool limitReached = false;
};

class EventQueue
{
  public:
    /** Standard priorities; lower runs first at equal ticks. */
    static constexpr int defaultPri = 0;
    static constexpr int cpuTickPri = 10;
    static constexpr int memRespPri = -10;

    EventQueue();

    /** @return current simulated time. */
    Tick curTick() const { return now; }

    /**
     * Schedule @p fn at absolute tick @p when (>= curTick).
     * @return an event id usable with deschedule().
     */
    std::uint64_t schedule(Tick when, std::function<void()> fn,
                           int priority = defaultPri);

    /** Cancel a scheduled event; harmless if already fired. */
    void deschedule(std::uint64_t event_id);

    /** @return true when no events remain. */
    bool empty() const { return liveEvents == 0; }

    /** @return number of pending (non-cancelled) events. */
    std::size_t size() const { return liveEvents; }

    /** Signal the event loop to stop after the current event. */
    void exitSimLoop(const std::string &cause, int code = 0);

    /** @return true when an exit was requested but not yet honoured
     *  (lets CPU batch loops stop executing past an m5 exit). */
    bool exitPending() const { return exitRequested; }

    /**
     * Run the loop.
     * @param max_tick  stop (limitReached) when time would pass this.
     * @param token     optional cooperative cancellation token.
     * @return the exit descriptor.
     */
    ExitEvent run(Tick max_tick = maxTick,
                  scheduler::CancelToken *token = nullptr);

    /** Total events executed (for perf accounting / tests). */
    std::uint64_t numEventsRun() const { return eventsRun; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    static constexpr std::uint64_t pollInterval = 4096;

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    /** Tombstoned event ids; entries are dropped lazily at pop time. */
    std::unordered_set<std::uint64_t> cancelled;
    Tick now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t eventsRun = 0;
    std::size_t liveEvents = 0;

    bool exitRequested = false;
    ExitEvent exitDesc;

    bool isCancelled(std::uint64_t seq);
};

} // namespace g5::sim

#endif // G5_SIM_EVENTQ_HH
