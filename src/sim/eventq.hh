/**
 * @file
 * The discrete-event kernel of sim5.
 *
 * A single EventQueue per System orders callbacks by (tick, priority,
 * insertion sequence). The main loop (EventQueue::run) pops events until
 * an exit is signalled, the tick limit is reached, or the queue drains.
 * Cooperative cancellation (scheduler timeouts) is polled every
 * pollInterval events.
 *
 * Internally the queue is a calendar queue specialized for the
 * near-monotonic tick pattern of a simulator:
 *
 *  - a ring of fixed-width buckets covers one "horizon" of simulated
 *    time; scheduling within the horizon is an append (amortized O(1)
 *    for the dominant same-tick / ascending pattern, a small sorted
 *    insert otherwise);
 *  - events beyond the horizon (timer wakeups, defect triggers) live in
 *    a small binary heap of keys and migrate into buckets as the
 *    calendar advances;
 *  - event records (callback + generation) live in a recycled slab; an
 *    event id encodes (slot, generation), so deschedule() is an O(1)
 *    in-place kill with no global tombstone set, and descheduling an
 *    already-fired id is a generation mismatch, not a memory leak;
 *  - callbacks are stored in EventFn, a small-function container with
 *    inline storage — scheduling an event never heap-allocates for the
 *    capture sizes CPU/memory models actually use.
 */

#ifndef G5_SIM_EVENTQ_HH
#define G5_SIM_EVENTQ_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace g5::scheduler
{
class CancelToken;
} // namespace g5::scheduler

namespace g5::sim
{

/** Why the event loop stopped. */
struct ExitEvent
{
    /** Machine-readable cause, e.g. "m5_exit instruction encountered". */
    std::string cause;
    /** Exit code (0 = success). */
    int code = 0;
    /** True when the loop hit its tick limit instead of a real exit. */
    bool limitReached = false;
};

/**
 * A move-only callable container with inline storage for small
 * captures. Replaces std::function on the event hot path: the typical
 * event capture ([this], [this, write], a moved std::function from the
 * memory system) fits the inline buffer, so schedule() performs no
 * heap allocation. Larger or alignment-exotic callables fall back to
 * the heap transparently.
 */
class EventFn
{
  public:
    EventFn() = default;

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (fitsInline<Fn>()) {
            new (buf) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<void **>(buf) = new Fn(std::forward<F>(f));
            ops = &heapOps<Fn>;
        }
    }

    /** Invoke; only valid when engaged. */
    void operator()() { ops->invoke(buf); }

    /**
     * Invoke, then destroy, through a single indirect call (the fire
     * hot path). The container is disengaged before the call, so the
     * callback sees an empty EventFn and the callable is destroyed
     * even if it throws.
     */
    void
    consume()
    {
        const Ops *o = ops;
        ops = nullptr;
        o->consume(buf);
    }

    explicit operator bool() const { return ops != nullptr; }

    void
    reset()
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

  private:
    static constexpr std::size_t inlineSize = 48;
    static constexpr std::size_t inlineAlign = 8;

    struct Ops
    {
        void (*invoke)(void *);
        void (*consume)(void *);
        /** Move-construct into @p dst from @p src and destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineSize && alignof(Fn) <= inlineAlign &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *p) {
            Fn *f = std::launder(reinterpret_cast<Fn *>(p));
            struct Guard
            {
                Fn *f;
                ~Guard() { f->~Fn(); }
            } g{f};
            (*f)();
        },
        [](void *dst, void *src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) { (**reinterpret_cast<Fn **>(p))(); },
        [](void *p) {
            Fn *f = *reinterpret_cast<Fn **>(p);
            struct Guard
            {
                Fn *f;
                ~Guard() { delete f; }
            } g{f};
            (*f)();
        },
        [](void *dst, void *src) {
            *reinterpret_cast<void **>(dst) =
                *reinterpret_cast<void **>(src);
        },
        [](void *p) { delete *reinterpret_cast<Fn **>(p); },
    };

    void
    moveFrom(EventFn &o) noexcept
    {
        ops = o.ops;
        if (ops) {
            ops->relocate(buf, o.buf);
            o.ops = nullptr;
        }
    }

    alignas(inlineAlign) unsigned char buf[inlineSize];
    const Ops *ops = nullptr;
};

class EventQueue
{
  public:
    /** Standard priorities; lower runs first at equal ticks. */
    static constexpr int defaultPri = 0;
    static constexpr int cpuTickPri = 10;
    static constexpr int memRespPri = -10;

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return current simulated time. */
    Tick curTick() const { return now; }

    /**
     * Schedule @p fn at absolute tick @p when (>= curTick).
     * @return an event id usable with deschedule().
     *
     * Inline on purpose: the callable is constructed directly into its
     * slab record (no EventFn hand-offs) and the common near-horizon
     * append stays in the caller's instruction stream. Cold branches
     * (past-tick panic, far heap, slab growth) are out of line.
     */
    template <typename F>
    std::uint64_t
    schedule(Tick when, F &&fn, int priority = defaultPri)
    {
        if (when < now) [[unlikely]]
            pastPanic(when);
        const std::uint32_t slot = allocSlot();
        Rec &r = rec(slot);
        r.fn.emplace(std::forward<F>(fn));
        r.live = true;
        Key k;
        k.when = when;
        k.seq = nextSeq++;
        k.priority = priority;
        k.slot = slot;
        k.gen = r.gen;
        ++liveEvents;
        if (when - ringStart() < horizon) [[likely]]
            insertNear(k);
        else
            pushFar(k);
        return (std::uint64_t(r.gen) << 32) | slot;
    }

    /** Cancel a scheduled event; harmless if already fired. */
    void deschedule(std::uint64_t event_id);

    /** @return true when no events remain. */
    bool empty() const { return liveEvents == 0; }

    /** @return number of pending (non-cancelled) events. */
    std::size_t size() const { return liveEvents; }

    /** Signal the event loop to stop after the current event. */
    void exitSimLoop(const std::string &cause, int code = 0);

    /** @return true when an exit was requested but not yet honoured
     *  (lets CPU batch loops stop executing past an m5 exit). */
    bool exitPending() const { return exitRequested; }

    /**
     * Run the loop.
     * @param max_tick  stop (limitReached) when time would pass this.
     * @param token     optional cooperative cancellation token.
     * @return the exit descriptor.
     */
    ExitEvent run(Tick max_tick = maxTick,
                  scheduler::CancelToken *token = nullptr);

    /** Total events executed (for perf accounting / tests). */
    std::uint64_t numEventsRun() const { return eventsRun; }

    /** Total schedule() calls (for perf accounting / metrics). */
    std::uint64_t numEventsScheduled() const { return nextSeq; }

    /**
     * Approximate resident bytes of queue bookkeeping: record slab,
     * bucket arrays, far heap, free list. Deschedule-heavy workloads
     * must stay bounded (regression-tested), unlike the former global
     * tombstone set which grew without limit.
     */
    std::size_t footprintBytes() const;

  private:
    /**
     * Sort/lookup key for a pending event. The callback itself lives
     * in the slab; keys are small PODs that are cheap to shift during
     * sorted inserts and heap sifts.
     */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::int32_t priority;
        std::uint32_t slot;
        std::uint32_t gen;

        bool
        operator<(const Key &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (priority != o.priority)
                return priority < o.priority;
            return seq < o.seq;
        }
    };

    /**
     * Slab record: the callback plus its reuse generation. gen/live
     * lead so the stale check and the EventFn share one cache line
     * (the whole Rec is exactly 64 bytes).
     */
    struct Rec
    {
        std::uint32_t gen = 0;
        bool live = false;
        EventFn fn;
    };

    /** Bucket width: 2^bucketBits ticks per calendar day. */
    static constexpr unsigned bucketBits = 12;
    static constexpr unsigned numBuckets = 256; // must be a power of 2
    static constexpr Tick bucketWidth = Tick(1) << bucketBits;
    static constexpr Tick horizon = bucketWidth * numBuckets;
    static constexpr std::uint64_t pollInterval = 4096;
    /** Slab chunk size: 2^chunkBits records per chunk. */
    static constexpr unsigned chunkBits = 8;
    static constexpr std::uint32_t chunkSize = 1u << chunkBits;

    Tick ringStart() const { return Tick(curDay) << bucketBits; }
    static std::uint64_t dayOf(Tick when) { return when >> bucketBits; }
    static unsigned indexOf(std::uint64_t day)
    {
        return unsigned(day) & (numBuckets - 1);
    }

    /**
     * Slab records live in fixed chunks, never reallocated, so a Rec
     * address stays valid across schedules — letting run() invoke the
     * callback in place even when it schedules new events.
     */
    Rec &
    rec(std::uint32_t slot)
    {
        return slabChunks[slot >> chunkBits][slot & (chunkSize - 1)];
    }

    const Rec &
    rec(std::uint32_t slot) const
    {
        return slabChunks[slot >> chunkBits][slot & (chunkSize - 1)];
    }

    bool
    stale(const Key &k) const
    {
        const Rec &r = rec(k.slot);
        return r.gen != k.gen || !r.live;
    }

    std::uint32_t
    allocSlot()
    {
        if (!freeSlots.empty()) [[likely]] {
            const std::uint32_t slot = freeSlots.back();
            freeSlots.pop_back();
            return slot;
        }
        if ((slabSize & (chunkSize - 1)) == 0)
            addSlabChunk();
        return slabSize++;
    }

    void
    freeSlot(std::uint32_t slot)
    {
        Rec &r = rec(slot);
        r.fn.reset();
        r.live = false;
        ++r.gen; // invalidates any outstanding ids / resident keys
        freeSlots.push_back(slot);
    }

    void
    insertNear(const Key &k)
    {
        const std::uint64_t day = dayOf(k.when);
        const unsigned idx = indexOf(day);
        std::vector<Key> &b = buckets[idx];
        if (b.empty()) {
            // A day starts: hand the shared spare storage to this
            // bucket so one warm allocation travels around the ring
            // instead of every bucket growing (and freeing) its own.
            if (b.capacity() == 0 && spareStorage.capacity() != 0)
                b.swap(spareStorage);
            b.push_back(k);
        } else if (!(k < b.back())) [[likely]] {
            b.push_back(k); // dominant ascending / same-tick pattern
        } else {
            insertNearSlow(b, k, day);
        }
        ++residentKeys;
        occupied[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    [[noreturn]] void pastPanic(Tick when) const;
    void addSlabChunk();
    void pushFar(const Key &k);
    void insertNearSlow(std::vector<Key> &b, const Key &k,
                        std::uint64_t day);
    void maybePurge();
    void dropFarStale();
    /** Move far events now inside the horizon into their buckets. */
    void migrateFar();
    /** Jump the calendar to @p day and pull far events in range. */
    void advanceToDay(std::uint64_t day);
    /** Sweep every bucket and the far heap, dropping stale keys. */
    void purgeDeadKeys();

    void
    clearOccupied(unsigned idx)
    {
        occupied[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }

    /** @return offset in [1, numBuckets) of the next occupied bucket
     *  after the current one, or 0 when none. */
    unsigned nextOccupiedOffset() const;

    /**
     * Locate the next event to fire without advancing the calendar:
     * drains dead keys out of the current bucket, then peeks the next
     * occupied bucket / the far heap. @return nullptr when drained.
     * On success *advance_day holds the day to commit before firing.
     */
    const Key *peekNext(std::uint64_t *advance_day);

    std::vector<Key> buckets[numBuckets];
    std::uint64_t occupied[numBuckets / 64] = {};
    /** Beyond-horizon events, a min-heap of keys (std::*_heap). */
    std::vector<Key> far;
    /** Warm storage recycled from drained buckets (see insertNear). */
    std::vector<Key> spareStorage;
    std::vector<std::unique_ptr<Rec[]>> slabChunks;
    std::uint32_t slabSize = 0;
    std::vector<std::uint32_t> freeSlots;

    Tick now = 0;
    std::uint64_t curDay = 0;
    /** Dead prefix length of the current day's bucket. */
    std::size_t drainPos = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t eventsRun = 0;
    std::size_t liveEvents = 0;
    /**
     * Keys physically present in buckets + far. Every live event owns
     * exactly one resident key, so residentKeys - liveEvents is the
     * stale-key count that drives the purge sweep.
     */
    std::size_t residentKeys = 0;

    bool exitRequested = false;
    ExitEvent exitDesc;
};

} // namespace g5::sim

#endif // G5_SIM_EVENTQ_HH
