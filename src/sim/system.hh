/**
 * @file
 * System — the container every sim5 simulation hangs off: the event
 * queue, functional memory, the memory system, the CPUs, statistics,
 * and the OS callback interface CPUs use for syscalls, m5 ops and I/O.
 *
 * The full-system builder (sim/fs/fs_system.hh) assembles a System from
 * an FsConfig; unit tests assemble smaller ones by hand.
 */

#ifndef G5_SIM_SYSTEM_HH
#define G5_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "sim/eventq.hh"
#include "sim/isa/thread.hh"
#include "sim/mem/mem_system.hh"
#include "sim/mem/physmem.hh"
#include "sim/stats.hh"

namespace g5::sim
{

class BaseCpu;
class ErrorInjector;

/**
 * Services the guest OS provides to CPU models. Implemented by
 * fs::GuestOs; unit tests may provide lighter stand-ins.
 */
class OsCallbacks
{
  public:
    virtual ~OsCallbacks() = default;

    /** Pop the next runnable thread for @p cpu_id; nullptr = idle. */
    virtual isa::ThreadContext *pickNext(int cpu_id) = 0;

    /** @return true when some thread waits for a CPU. */
    virtual bool hasRunnable() const = 0;

    /** Return a preempted (still runnable) thread to the run queue. */
    virtual void requeue(isa::ThreadContext *tc) = 0;

    /**
     * Service a syscall; may change tc.status (block/finish).
     * @return the kernel-time cost in ticks.
     */
    virtual Tick syscall(isa::ThreadContext &tc, std::int64_t code,
                         int cpu_id) = 0;

    /** Service an m5 pseudo-op (may exit the simulation). */
    virtual void m5op(isa::ThreadContext &tc, std::int64_t func) = 0;

    /** Device read: @return (value, latency). */
    virtual std::pair<std::int64_t, Tick> ioRead(Addr addr) = 0;

    /** Device write: @return latency. */
    virtual Tick ioWrite(Addr addr, std::int64_t value) = 0;

    /** A thread executed Halt. */
    virtual void threadHalted(isa::ThreadContext &tc) = 0;
};

/**
 * A modeled defect of the simulated simulator version (see DESIGN.md:
 * the Fig 8 bug census of gem5 v20.1.0.4 is frozen as data and expressed
 * through real failure mechanisms).
 */
struct DefectPlan
{
    enum class Kind {
        None,
        KernelPanic,    ///< guest kernel panics at triggerTick
        HostSegfault,   ///< simulator "segfaults" (SimulatorCrash thrown)
        Deadlock,       ///< Ruby drops an ack; watchdog trips
        Livelock,       ///< O3 replay storm; run never finishes
    };

    Kind kind = Kind::None;
    /** When the defect manifests. */
    Tick triggerTick = 0;
    /** Free-form detail recorded in the failure message. */
    std::string detail;
};

class System
{
  public:
    explicit System(std::uint64_t seed = 1);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    EventQueue eventq;
    mem::PhysMem physmem;
    std::unique_ptr<mem::MemSystem> memSystem;
    std::vector<std::unique_ptr<BaseCpu>> cpus;

    /** Root statistics group ("system"). */
    StatGroup rootStats;

    /** Seeded per-system RNG. */
    Rng rng;

    /** CPU clock period in ticks (default 500 = 2 GHz). */
    Tick cpuPeriod = 500;

    /** OS services; owned by the fs layer (or a test). */
    OsCallbacks *os = nullptr;

    /** Active defect model (None by default). */
    DefectPlan defect;

    /**
     * Guest-level error injection (sim/cpu/error_inject.hh); nullptr
     * when no flip is planned. CPU models consult it at instruction
     * boundaries.
     */
    std::unique_ptr<ErrorInjector> errInject;

    /** Convenience: current tick. */
    Tick curTick() const { return eventq.curTick(); }

    /** Kick every idle CPU (the OS calls this when work appears). */
    void kickIdleCpus();
};

} // namespace g5::sim

#endif // G5_SIM_SYSTEM_HH
