/**
 * @file
 * A single-channel DRAM timing model in the spirit of gem5's
 * DDR3_1600_8x8: a fixed access latency (tRCD+tCL+tBURST-ish, folded
 * into one number) plus bandwidth-limited service — one 64-byte burst
 * per minimum inter-access gap, with queueing when the channel is busy.
 */

#ifndef G5_SIM_MEM_DRAM_HH
#define G5_SIM_MEM_DRAM_HH

#include "base/types.hh"
#include "sim/stats.hh"

namespace g5::sim::mem
{

struct DramConfig
{
    /** Device latency per access (row activate + CAS), ticks. */
    Tick accessLatency = 45'000;            ///< 45 ns
    /** Minimum gap between bursts — 64 B at 12.8 GB/s. */
    Tick burstGap = 5'000;                  ///< 5 ns
};

class Dram
{
  public:
    explicit Dram(const DramConfig &cfg) : cfg(cfg) {}

    /**
     * Compute the service latency of a burst issued at @p now, advancing
     * the channel's busy window (so later requests queue behind it).
     */
    Tick serviceLatency(Tick now, bool write);

    Scalar reads, writes, totalQueueTicks;

  private:
    DramConfig cfg;
    Tick busyUntil = 0;
};

} // namespace g5::sim::mem

#endif // G5_SIM_MEM_DRAM_HH
