/**
 * @file
 * A set-associative tag array with LRU replacement, shared by the
 * classic caches and the Ruby cache controllers (which add coherence
 * state on top via the per-line state field).
 */

#ifndef G5_SIM_MEM_CACHE_ARRAY_HH
#define G5_SIM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "base/json.hh"
#include "base/types.hh"

namespace g5::sim::mem
{

class CacheArray
{
  public:
    /** Cache block size in bytes (fixed across sim5, like gem5). */
    static constexpr unsigned blockBytes = 64;

    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        int state = 0;          ///< protocol-defined; 0 for classic
        std::uint64_t lastUse = 0;
    };

    /**
     * @param size_bytes  total capacity.
     * @param assoc       ways per set.
     */
    CacheArray(std::size_t size_bytes, unsigned assoc);

    /** @return the block-aligned address of @p addr. */
    static Addr blockAlign(Addr addr) { return addr & ~Addr(blockBytes - 1); }

    /** @return pointer to the valid line holding @p addr, or nullptr. */
    Line *lookup(Addr addr);

    /**
     * Choose a victim way in @p addr's set (invalid first, else LRU).
     * The caller inspects/handles the victim, then calls fill().
     */
    Line *victim(Addr addr);

    /** Install @p addr into @p line (must come from victim()). */
    void fill(Line *line, Addr addr, int state = 0);

    /** Refresh LRU on a hit. */
    void touch(Line *line);

    /** Invalidate the line holding @p addr if present. */
    void invalidate(Addr addr);

    unsigned numSets() const { return sets; }
    unsigned associativity() const { return ways; }

    /** @return the number of valid lines (warm-state accounting). */
    std::size_t numValidLines() const;

    /**
     * Serialize the tag state (valid lines + LRU clock) so restored
     * systems start with the caches as warm as they were at the
     * checkpoint: [sets, ways, useCounter, [[idx,tag,state,lastUse]..]].
     */
    Json saveState() const;

    /**
     * Restore saveState() output. Throws FatalError when the geometry
     * or any line index is out of range (corrupt checkpoint).
     */
    void restoreState(const Json &state);

  private:
    std::size_t setIndex(Addr addr) const;

    unsigned sets;
    unsigned ways;
    std::vector<Line> lines;
    std::uint64_t useCounter = 0;
};

} // namespace g5::sim::mem

#endif // G5_SIM_MEM_CACHE_ARRAY_HH
