/**
 * @file
 * Sparse functional physical memory.
 *
 * sim5 separates function from timing: data always lives here and is
 * read/written at commit time by CPU models, while the MemSystem models
 * only latency and coherence permissions. Because the event loop is
 * single-threaded, commit order equals event order, which makes Amo
 * naturally atomic.
 *
 * Pages are reference-counted so checkpoints and forked restores share
 * them copy-on-write: exportPages() hands out shared references,
 * adoptPages() installs them, and the first write to a shared page
 * clones it (notifying the registered COW callback so CPU page-pointer
 * caches can invalidate). A page that is not shared never moves, so the
 * fast-path pointer caches keep their node-stability guarantee within
 * a run.
 *
 * Granularity is 8 bytes (one SimISA word); addresses are rounded down.
 */

#ifndef G5_SIM_MEM_PHYSMEM_HH
#define G5_SIM_MEM_PHYSMEM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "base/json.hh"
#include "base/types.hh"

namespace g5::sim::mem
{

class PhysMem
{
  public:
    /** Words per backing page (4 KiB pages). */
    static constexpr std::size_t wordsPerPage = 512;

    /** One backing page; shared between forked systems until written. */
    using Page = std::array<std::int64_t, wordsPerPage>;
    using PagePtr = std::shared_ptr<Page>;

    /** Read the word containing @p addr (zero when never written). */
    std::int64_t read(Addr addr) const;

    /** Write the word containing @p addr. */
    void write(Addr addr, std::int64_t value);

    /** Atomic fetch-add; @return the old value. */
    std::int64_t amoAdd(Addr addr, std::int64_t delta);

    /** @return the number of touched pages (footprint accounting). */
    std::size_t numPages() const { return pages.size(); }

    /**
     * Raw words of the page containing @p addr, or nullptr when the
     * page was never written. Never allocates, so footprint accounting
     * matches read(). The pointer stays valid until restore()/
     * adoptPages() replace the contents or a COW break relocates the
     * page — breaks only happen after exportPages() shared it, and
     * always invoke the COW callback first.
     */
    const std::int64_t *pageWords(Addr addr) const
    {
        auto it = pages.find(pageOf(addr));
        return it == pages.end() ? nullptr : it->second->data();
    }

    /** Raw words of the page containing @p addr, allocating (and
     *  privatizing a shared page) on demand. */
    std::int64_t *pageWordsForWrite(Addr addr)
    {
        return pageFor(addr).data();
    }

    /** @return the word index of @p addr within its page. */
    static std::size_t wordIndex(Addr addr) { return wordOf(addr); }

    /** @return the page number of @p addr (for page-cache tags). */
    static Addr pageNumber(Addr addr) { return pageOf(addr); }

    /**
     * Deterministically map @p pick onto one touched word: pages are
     * walked in page-number order and @p pick reduced modulo the total
     * touched-word count, so equal picks hit equal addresses whenever
     * the touched-page set matches (error injection's memory-target
     * draw). @return false (addr untouched) when no page exists yet.
     */
    bool pickWord(std::uint64_t pick, Addr &addr) const;

    /**
     * Snapshot the current contents as shared page references, sorted
     * by page number (deterministic serialization order). O(pages) and
     * copies no data: the caller and this memory now share every page,
     * and whoever writes first pays for the copy.
     */
    std::map<Addr, PagePtr> exportPages() const;

    /**
     * Replace the contents with shared references to @p snapshot.
     * Writes after adoption clone the touched page (COW). Must only be
     * called before any CPU cached page pointers, or after flushing
     * them.
     */
    void adoptPages(const std::map<Addr, PagePtr> &snapshot);

    /**
     * Invoked just before a shared page is cloned in place. Fork-aware
     * system builders point this at their CPUs' page-pointer-cache
     * flush so no stale pointer survives the relocation.
     */
    void setCowCallback(std::function<void()> cb)
    {
        cowCallback = std::move(cb);
    }

    /** @return pages currently shared with a checkpoint or fork. */
    std::size_t sharedPages() const;

    /** @return pages private to this memory (COW-broken or never
     *  shared) — the fork's own footprint. */
    std::size_t privatePages() const;

    /** @return shared pages privatized by a write so far. */
    std::uint64_t cowBreaks() const { return numCowBreaks; }

    /** Serialize non-zero words (checkpoint support). Deterministic. */
    Json toJson() const;

    /** Replace contents from toJson() output. */
    void restore(const Json &state);

  private:
    static Addr pageOf(Addr addr) { return addr >> 12; }
    static std::size_t wordOf(Addr addr) { return (addr >> 3) & 511; }

    Page &pageFor(Addr addr);

    std::unordered_map<Addr, PagePtr> pages;
    std::function<void()> cowCallback;
    std::uint64_t numCowBreaks = 0;
};

} // namespace g5::sim::mem

#endif // G5_SIM_MEM_PHYSMEM_HH
