/**
 * @file
 * Sparse functional physical memory.
 *
 * sim5 separates function from timing: data always lives here and is
 * read/written at commit time by CPU models, while the MemSystem models
 * only latency and coherence permissions. Because the event loop is
 * single-threaded, commit order equals event order, which makes Amo
 * naturally atomic.
 *
 * Granularity is 8 bytes (one SimISA word); addresses are rounded down.
 */

#ifndef G5_SIM_MEM_PHYSMEM_HH
#define G5_SIM_MEM_PHYSMEM_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "base/json.hh"
#include "base/types.hh"

namespace g5::sim::mem
{

class PhysMem
{
  public:
    /** Words per backing page (4 KiB pages). */
    static constexpr std::size_t wordsPerPage = 512;

    /** Read the word containing @p addr (zero when never written). */
    std::int64_t read(Addr addr) const;

    /** Write the word containing @p addr. */
    void write(Addr addr, std::int64_t value);

    /** Atomic fetch-add; @return the old value. */
    std::int64_t amoAdd(Addr addr, std::int64_t delta);

    /** @return the number of touched pages (footprint accounting). */
    std::size_t numPages() const { return pages.size(); }

    /**
     * Raw words of the page containing @p addr, or nullptr when the
     * page was never written. Never allocates, so footprint accounting
     * matches read(). Page storage is node-stable: the pointer stays
     * valid until restore() replaces the contents.
     */
    const std::int64_t *pageWords(Addr addr) const
    {
        auto it = pages.find(pageOf(addr));
        return it == pages.end() ? nullptr : it->second.data();
    }

    /** Raw words of the page containing @p addr, allocating on miss. */
    std::int64_t *pageWordsForWrite(Addr addr)
    {
        return pageFor(addr).data();
    }

    /** @return the word index of @p addr within its page. */
    static std::size_t wordIndex(Addr addr) { return wordOf(addr); }

    /** @return the page number of @p addr (for page-cache tags). */
    static Addr pageNumber(Addr addr) { return pageOf(addr); }

    /** Serialize non-zero words (checkpoint support). Deterministic. */
    Json toJson() const;

    /** Replace contents from toJson() output. */
    void restore(const Json &state);

  private:
    using Page = std::array<std::int64_t, wordsPerPage>;

    static Addr pageOf(Addr addr) { return addr >> 12; }
    static std::size_t wordOf(Addr addr) { return (addr >> 3) & 511; }

    Page &pageFor(Addr addr);

    std::unordered_map<Addr, Page> pages;
};

} // namespace g5::sim::mem

#endif // G5_SIM_MEM_PHYSMEM_HH
