#include "sim/mem/physmem.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "base/metrics.hh"

namespace g5::sim::mem
{

PhysMem::Page &
PhysMem::pageFor(Addr addr)
{
    PagePtr &slot = pages[pageOf(addr)];
    if (!slot) {
        slot = std::make_shared<Page>();
        slot->fill(0);
    } else if (slot.use_count() > 1) {
        // The page is shared with a checkpoint or a forked system:
        // privatize it before the write. Flush CPU page-pointer caches
        // first — the relocation invalidates any cached raw pointer.
        if (cowCallback)
            cowCallback();
        slot = std::make_shared<Page>(*slot);
        ++numCowBreaks;
        metrics::counter("sim.mem.cowBreaks").inc();
    }
    return *slot;
}

std::int64_t
PhysMem::read(Addr addr) const
{
    auto it = pages.find(pageOf(addr));
    if (it == pages.end())
        return 0;
    return (*it->second)[wordOf(addr)];
}

void
PhysMem::write(Addr addr, std::int64_t value)
{
    pageFor(addr)[wordOf(addr)] = value;
}

std::int64_t
PhysMem::amoAdd(Addr addr, std::int64_t delta)
{
    auto &word = pageFor(addr)[wordOf(addr)];
    std::int64_t old = word;
    // Guest arithmetic wraps modulo 2^64; keep the add well-defined.
    word = std::int64_t(std::uint64_t(old) + std::uint64_t(delta));
    return old;
}

bool
PhysMem::pickWord(std::uint64_t pick, Addr &addr) const
{
    if (pages.empty())
        return false;
    // Page-number order, like every other deterministic walk here: the
    // unordered_map's iteration order must never leak into the pick.
    std::vector<Addr> numbers;
    numbers.reserve(pages.size());
    for (const auto &kv : pages)
        numbers.push_back(kv.first);
    std::sort(numbers.begin(), numbers.end());
    std::uint64_t index = pick % (numbers.size() * wordsPerPage);
    Addr page = numbers[index / wordsPerPage];
    std::uint64_t word = index % wordsPerPage;
    addr = (page << 12) | Addr(word << 3);
    return true;
}

std::map<Addr, PhysMem::PagePtr>
PhysMem::exportPages() const
{
    std::map<Addr, PagePtr> out;
    for (const auto &kv : pages)
        out.emplace(kv.first, kv.second);
    return out;
}

void
PhysMem::adoptPages(const std::map<Addr, PagePtr> &snapshot)
{
    pages.clear();
    for (const auto &kv : snapshot)
        pages.emplace(kv.first, kv.second);
}

std::size_t
PhysMem::sharedPages() const
{
    std::size_t n = 0;
    for (const auto &kv : pages)
        if (kv.second.use_count() > 1)
            ++n;
    return n;
}

std::size_t
PhysMem::privatePages() const
{
    return pages.size() - sharedPages();
}

Json
PhysMem::toJson() const
{
    // Sorted pages, sparse non-zero words: [[pageAddr,[[idx,val]...]]]
    std::map<Addr, const Page *> sorted;
    for (const auto &kv : pages)
        sorted.emplace(kv.first, kv.second.get());

    Json out = Json::array();
    for (const auto &kv : sorted) {
        Json words = Json::array();
        for (std::size_t i = 0; i < wordsPerPage; ++i) {
            if ((*kv.second)[i] != 0) {
                Json pair = Json::array();
                pair.push(std::int64_t(i));
                pair.push((*kv.second)[i]);
                words.push(std::move(pair));
            }
        }
        if (words.size() == 0)
            continue;
        Json page = Json::array();
        page.push(std::int64_t(kv.first));
        page.push(std::move(words));
        out.push(std::move(page));
    }
    return out;
}

void
PhysMem::restore(const Json &state)
{
    pages.clear();
    if (!state.isArray())
        fatal("PhysMem::restore: malformed memory checkpoint");
    for (const auto &page : state.asArray()) {
        Addr page_addr = Addr(page.at(std::size_t(0)).asInt());
        PagePtr &slot = pages[page_addr];
        slot = std::make_shared<Page>();
        slot->fill(0);
        for (const auto &pair : page.at(std::size_t(1)).asArray()) {
            std::size_t idx =
                std::size_t(pair.at(std::size_t(0)).asInt());
            if (idx >= wordsPerPage)
                fatal("PhysMem::restore: word index out of range");
            (*slot)[idx] = pair.at(std::size_t(1)).asInt();
        }
    }
}

} // namespace g5::sim::mem
