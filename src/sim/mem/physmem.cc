#include "sim/mem/physmem.hh"

#include <map>

#include "base/logging.hh"

namespace g5::sim::mem
{

PhysMem::Page &
PhysMem::pageFor(Addr addr)
{
    auto it = pages.find(pageOf(addr));
    if (it == pages.end()) {
        it = pages.emplace(pageOf(addr), Page{}).first;
        it->second.fill(0);
    }
    return it->second;
}

std::int64_t
PhysMem::read(Addr addr) const
{
    auto it = pages.find(pageOf(addr));
    if (it == pages.end())
        return 0;
    return it->second[wordOf(addr)];
}

void
PhysMem::write(Addr addr, std::int64_t value)
{
    pageFor(addr)[wordOf(addr)] = value;
}

std::int64_t
PhysMem::amoAdd(Addr addr, std::int64_t delta)
{
    auto &word = pageFor(addr)[wordOf(addr)];
    std::int64_t old = word;
    // Guest arithmetic wraps modulo 2^64; keep the add well-defined.
    word = std::int64_t(std::uint64_t(old) + std::uint64_t(delta));
    return old;
}

Json
PhysMem::toJson() const
{
    // Sorted pages, sparse non-zero words: [[pageAddr,[[idx,val]...]]]
    std::map<Addr, const Page *> sorted;
    for (const auto &kv : pages)
        sorted.emplace(kv.first, &kv.second);

    Json out = Json::array();
    for (const auto &kv : sorted) {
        Json words = Json::array();
        for (std::size_t i = 0; i < wordsPerPage; ++i) {
            if ((*kv.second)[i] != 0) {
                Json pair = Json::array();
                pair.push(std::int64_t(i));
                pair.push((*kv.second)[i]);
                words.push(std::move(pair));
            }
        }
        if (words.size() == 0)
            continue;
        Json page = Json::array();
        page.push(std::int64_t(kv.first));
        page.push(std::move(words));
        out.push(std::move(page));
    }
    return out;
}

void
PhysMem::restore(const Json &state)
{
    pages.clear();
    if (!state.isArray())
        fatal("PhysMem::restore: malformed memory checkpoint");
    for (const auto &page : state.asArray()) {
        Addr page_addr = Addr(page.at(std::size_t(0)).asInt());
        Page &dst = pages.emplace(page_addr, Page{}).first->second;
        dst.fill(0);
        for (const auto &pair : page.at(std::size_t(1)).asArray()) {
            std::size_t idx =
                std::size_t(pair.at(std::size_t(0)).asInt());
            if (idx >= wordsPerPage)
                fatal("PhysMem::restore: word index out of range");
            dst[idx] = pair.at(std::size_t(1)).asInt();
        }
    }
}

} // namespace g5::sim::mem
