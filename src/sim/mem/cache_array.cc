#include "sim/mem/cache_array.hh"

#include "base/logging.hh"

namespace g5::sim::mem
{

namespace
{

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

CacheArray::CacheArray(std::size_t size_bytes, unsigned assoc)
    : ways(assoc)
{
    if (assoc == 0)
        fatal("CacheArray: associativity must be >= 1");
    std::size_t blocks = size_bytes / blockBytes;
    if (blocks == 0 || blocks % assoc != 0)
        fatal("CacheArray: size must be a multiple of assoc * 64B");
    sets = unsigned(blocks / assoc);
    if (!isPowerOfTwo(sets))
        fatal("CacheArray: number of sets must be a power of two");
    lines.resize(blocks);
}

std::size_t
CacheArray::setIndex(Addr addr) const
{
    return std::size_t((addr / blockBytes) & (sets - 1));
}

CacheArray::Line *
CacheArray::lookup(Addr addr)
{
    Addr tag = blockAlign(addr);
    std::size_t base = setIndex(addr) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::victim(Addr addr)
{
    std::size_t base = setIndex(addr) * ways;
    Line *lru = &lines[base];
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = lines[base + w];
        if (!line.valid)
            return &line;
        if (line.lastUse < lru->lastUse)
            lru = &line;
    }
    return lru;
}

void
CacheArray::fill(Line *line, Addr addr, int state)
{
    line->valid = true;
    line->tag = blockAlign(addr);
    line->state = state;
    line->lastUse = ++useCounter;
}

void
CacheArray::touch(Line *line)
{
    line->lastUse = ++useCounter;
}

void
CacheArray::invalidate(Addr addr)
{
    if (Line *line = lookup(addr))
        line->valid = false;
}

} // namespace g5::sim::mem
