#include "sim/mem/cache_array.hh"

#include "base/logging.hh"

namespace g5::sim::mem
{

namespace
{

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

CacheArray::CacheArray(std::size_t size_bytes, unsigned assoc)
    : ways(assoc)
{
    if (assoc == 0)
        fatal("CacheArray: associativity must be >= 1");
    std::size_t blocks = size_bytes / blockBytes;
    if (blocks == 0 || blocks % assoc != 0)
        fatal("CacheArray: size must be a multiple of assoc * 64B");
    sets = unsigned(blocks / assoc);
    if (!isPowerOfTwo(sets))
        fatal("CacheArray: number of sets must be a power of two");
    lines.resize(blocks);
}

std::size_t
CacheArray::setIndex(Addr addr) const
{
    return std::size_t((addr / blockBytes) & (sets - 1));
}

CacheArray::Line *
CacheArray::lookup(Addr addr)
{
    Addr tag = blockAlign(addr);
    std::size_t base = setIndex(addr) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::victim(Addr addr)
{
    std::size_t base = setIndex(addr) * ways;
    Line *lru = &lines[base];
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = lines[base + w];
        if (!line.valid)
            return &line;
        if (line.lastUse < lru->lastUse)
            lru = &line;
    }
    return lru;
}

void
CacheArray::fill(Line *line, Addr addr, int state)
{
    line->valid = true;
    line->tag = blockAlign(addr);
    line->state = state;
    line->lastUse = ++useCounter;
}

void
CacheArray::touch(Line *line)
{
    line->lastUse = ++useCounter;
}

void
CacheArray::invalidate(Addr addr)
{
    if (Line *line = lookup(addr))
        line->valid = false;
}

std::size_t
CacheArray::numValidLines() const
{
    std::size_t n = 0;
    for (const Line &line : lines)
        if (line.valid)
            ++n;
    return n;
}

Json
CacheArray::saveState() const
{
    Json out = Json::object();
    out["sets"] = std::int64_t(sets);
    out["ways"] = std::int64_t(ways);
    out["useCounter"] = std::int64_t(useCounter);
    // One flat [idx, tag, state, lastUse, idx, ...] array: restoring a
    // warm post-boot cache is on the checkpoint tier's critical path,
    // and a single flat array costs one JSON node per value instead of
    // one per value plus one per line.
    Json valid = Json::array();
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const Line &line = lines[i];
        if (!line.valid)
            continue;
        valid.push(std::int64_t(i));
        valid.push(std::int64_t(line.tag));
        valid.push(std::int64_t(line.state));
        valid.push(std::int64_t(line.lastUse));
    }
    out["lines"] = std::move(valid);
    return out;
}

void
CacheArray::restoreState(const Json &state)
{
    if (unsigned(state.getInt("sets")) != sets ||
        unsigned(state.getInt("ways")) != ways)
        fatal("CacheArray::restoreState: geometry mismatch");
    for (Line &line : lines)
        line = Line{};
    useCounter = std::uint64_t(state.getInt("useCounter"));
    const auto &flat = state.at("lines").asArray();
    if (flat.size() % 4 != 0)
        fatal("CacheArray::restoreState: malformed line array");
    for (std::size_t n = 0; n < flat.size(); n += 4) {
        std::size_t idx = std::size_t(flat[n].asInt());
        if (idx >= lines.size())
            fatal("CacheArray::restoreState: line index out of range");
        Line &line = lines[idx];
        line.valid = true;
        line.tag = Addr(flat[n + 1].asInt());
        line.state = int(flat[n + 2].asInt());
        line.lastUse = std::uint64_t(flat[n + 3].asInt());
    }
}

} // namespace g5::sim::mem
