#include "sim/mem/classic.hh"

#include "base/logging.hh"
#include "sim/eventq.hh"

namespace g5::sim::mem
{

ClassicMem::ClassicMem(EventQueue &eq, const ClassicConfig &cfg)
    : eventq(eq), cfg(cfg), dram(cfg.dram), stats("mem")
{
    if (cfg.numCpus == 0)
        fatal("ClassicMem: need at least one CPU");
    for (unsigned i = 0; i < cfg.numCpus; ++i) {
        l1s.push_back(
            std::make_unique<CacheArray>(cfg.l1SizeBytes, cfg.l1Assoc));
    }
    l2 = std::make_unique<CacheArray>(cfg.l2SizeBytes, cfg.l2Assoc);

    stats.addStat("l1_hits", &l1Hits, "L1 data cache hits (all CPUs)");
    stats.addStat("l1_misses", &l1Misses, "L1 data cache misses");
    stats.addStat("l2_hits", &l2Hits, "shared L2 hits");
    stats.addStat("l2_misses", &l2Misses, "shared L2 misses");
    stats.addStat("dram_reads", &dram.reads, "DRAM read bursts");
    stats.addStat("dram_writes", &dram.writes, "DRAM write bursts");
    stats.addStat("dram_queue_ticks", &dram.totalQueueTicks,
                  "ticks requests spent queued at the DRAM channel");
}

Tick
ClassicMem::lookupLatency(int cpu, Addr addr, bool write,
                          bool timing_mode)
{
    if (cpu < 0 || unsigned(cpu) >= l1s.size())
        panic("ClassicMem: access from unknown CPU");

    CacheArray &l1 = *l1s[cpu];
    if (auto *line = l1.lookup(addr)) {
        l1.touch(line);
        ++l1Hits;
        return cfg.l1Latency;
    }
    ++l1Misses;

    Tick latency = cfg.l1Latency + cfg.l2Latency;
    if (auto *line = l2->lookup(addr)) {
        l2->touch(line);
        ++l2Hits;
    } else {
        ++l2Misses;
        if (timing_mode) {
            latency += dram.serviceLatency(eventq.curTick(), write);
        } else {
            // Atomic mode: flat device latency, no channel contention.
            latency += cfg.dram.accessLatency;
            if (write)
                ++dram.writes;
            else
                ++dram.reads;
        }
        l2->fill(l2->victim(addr), addr);
    }

    l1.fill(l1.victim(addr), addr);
    return latency;
}

void
ClassicMem::access(int cpu, Addr addr, bool write, Callback done)
{
    Tick latency = lookupLatency(cpu, addr, write, true);
    eventq.schedule(eventq.curTick() + latency, std::move(done),
                    EventQueue::memRespPri);
}

Tick
ClassicMem::atomicAccess(int cpu, Addr addr, bool write)
{
    return lookupLatency(cpu, addr, write, false);
}

Json
ClassicMem::saveState() const
{
    Json out = Json::object();
    out["protocol"] = protocolName();
    Json l1_state = Json::array();
    for (const auto &l1 : l1s)
        l1_state.push(l1->saveState());
    out["l1s"] = std::move(l1_state);
    out["l2"] = l2->saveState();
    return out;
}

void
ClassicMem::restoreState(const Json &state)
{
    if (!state.isObject())
        return;
    if (state.getString("protocol") != protocolName())
        fatal("ClassicMem::restoreState: protocol mismatch");
    const auto &l1_state = state.at("l1s").asArray();
    // A checkpoint from a system with a different CPU count restores
    // only the L1s both sides have; extra restored L1s start cold.
    for (std::size_t i = 0; i < l1s.size() && i < l1_state.size(); ++i)
        l1s[i]->restoreState(l1_state[i]);
    l2->restoreState(state.at("l2"));
}

} // namespace g5::sim::mem
