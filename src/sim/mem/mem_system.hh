/**
 * @file
 * The timing interface between CPU models and a memory system.
 *
 * Two access modes mirror gem5:
 *  - timing: access() schedules a completion callback on the event queue
 *    (used by TimingSimpleCPU, O3CPU);
 *  - atomic: atomicAccess() returns the access latency immediately (used
 *    by AtomicSimpleCPU).
 *
 * Concrete implementations: ClassicMem (fast, no coherence fidelity) and
 * RubyMem (directory coherence with MI_example / MESI_Two_Level).
 * The capability predicates encode the gem5 v20.1.0.4 support matrix that
 * Fig 8 of the paper exercises.
 */

#ifndef G5_SIM_MEM_MEM_SYSTEM_HH
#define G5_SIM_MEM_MEM_SYSTEM_HH

#include <functional>
#include <string>

#include "base/json.hh"
#include "base/types.hh"
#include "sim/stats.hh"

namespace g5::sim
{
class EventQueue;
} // namespace g5::sim

namespace g5::sim::mem
{

class MemSystem
{
  public:
    using Callback = std::function<void()>;

    virtual ~MemSystem() = default;

    /** @return "classic", "MI_example" or "MESI_Two_Level". */
    virtual std::string protocolName() const = 0;

    /**
     * Timing-mode access from @p cpu for the block containing @p addr.
     * @p done runs on the event queue when the access completes.
     */
    virtual void access(int cpu, Addr addr, bool write, Callback done) = 0;

    /** Atomic-mode access: @return latency in ticks, effects immediate. */
    virtual Tick atomicAccess(int cpu, Addr addr, bool write) = 0;

    /** @return true when AtomicSimpleCPU may drive this system. */
    virtual bool supportsAtomicCpu() const = 0;

    /** @return true when >1 timing-mode CPU may drive this system. */
    virtual bool supportsMultipleTimingCpus() const = 0;

    /** Root of this memory system's statistics. */
    virtual StatGroup &statGroup() = 0;

    /**
     * Serialize checkpointable timing state (cache tag arrays) so a
     * restored run starts warm instead of cold. The default is null:
     * a quiescent checkpoint has no in-flight transactions, so a
     * memory system without persistent arrays has nothing to save
     * (RubyMem relies on this — its directory state rebuilds on
     * demand).
     */
    virtual Json saveState() const { return Json(); }

    /**
     * Restore saveState() output. Only called when the restoring
     * system runs the same protocol; the default ignores the state
     * (cold caches are always architecturally safe).
     */
    virtual void restoreState(const Json &state) { (void)state; }
};

} // namespace g5::sim::mem

#endif // G5_SIM_MEM_MEM_SYSTEM_HH
