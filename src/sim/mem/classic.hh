/**
 * @file
 * The classic memory system: per-CPU L1 data caches, a shared L2, and a
 * DDR3_1600_8x8-style DRAM channel behind them.
 *
 * Like gem5's classic system in FS mode circa v20.1.0.4 it is fast but
 * lacks coherence fidelity: caches track only tags, and multiple
 * timing-mode CPUs are unsupported (supportsMultipleTimingCpus() is
 * false — the configuration Fig 8 marks unsupported). Any number of
 * atomic-mode CPUs are fine.
 */

#ifndef G5_SIM_MEM_CLASSIC_HH
#define G5_SIM_MEM_CLASSIC_HH

#include <memory>
#include <vector>

#include "sim/mem/cache_array.hh"
#include "sim/mem/dram.hh"
#include "sim/mem/mem_system.hh"

namespace g5::sim::mem
{

struct ClassicConfig
{
    unsigned numCpus = 1;
    std::size_t l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 4;
    std::size_t l2SizeBytes = 1024 * 1024;
    unsigned l2Assoc = 8;
    Tick l1Latency = 1000;      ///< 1 ns
    Tick l2Latency = 8000;      ///< 8 ns
    DramConfig dram;
};

class ClassicMem : public MemSystem
{
  public:
    ClassicMem(EventQueue &eq, const ClassicConfig &cfg);

    std::string protocolName() const override { return "classic"; }

    void access(int cpu, Addr addr, bool write, Callback done) override;
    Tick atomicAccess(int cpu, Addr addr, bool write) override;

    bool supportsAtomicCpu() const override { return true; }
    bool supportsMultipleTimingCpus() const override { return false; }

    StatGroup &statGroup() override { return stats; }

    /** Warm-cache checkpointing: per-L1 + L2 tag arrays. */
    Json saveState() const override;
    void restoreState(const Json &state) override;

    // Exposed counters for tests.
    Scalar l1Hits, l1Misses, l2Hits, l2Misses;

  private:
    /**
     * Walk the hierarchy and return total latency for this access.
     * @param timing_mode true when driven by a timing CPU: only then
     *        does the DRAM channel model queueing — atomic mode charges
     *        flat latencies, like gem5's atomic mode, because the CPU's
     *        clock does not advance between batched accesses.
     */
    Tick lookupLatency(int cpu, Addr addr, bool write, bool timing_mode);

    EventQueue &eventq;
    ClassicConfig cfg;
    std::vector<std::unique_ptr<CacheArray>> l1s;
    std::unique_ptr<CacheArray> l2;
    Dram dram;
    StatGroup stats;
};

} // namespace g5::sim::mem

#endif // G5_SIM_MEM_CLASSIC_HH
