#include "sim/mem/dram.hh"

namespace g5::sim::mem
{

Tick
Dram::serviceLatency(Tick now, bool write)
{
    Tick start = now > busyUntil ? now : busyUntil;
    Tick queue_delay = start - now;
    busyUntil = start + cfg.burstGap;

    if (write)
        ++writes;
    else
        ++reads;
    totalQueueTicks += double(queue_delay);

    return queue_delay + cfg.accessLatency;
}

} // namespace g5::sim::mem
