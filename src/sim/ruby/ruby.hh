/**
 * @file
 * The Ruby-style memory system: detailed directory coherence with two
 * protocols, matching the options exercised by the paper's Fig 8.
 *
 *  - MI_example: the pedagogical two-state protocol. Every access —
 *    load or store — acquires the block in M, so read sharing causes
 *    continuous invalidation ping-pong. Slow but simple, exactly like
 *    gem5's MI_example.
 *
 *  - MESI_Two_Level: private L1s with MESI states over a shared,
 *    inclusive L2 that embeds the directory. Loads can share (S/E),
 *    stores upgrade, silent E->M.
 *
 * Protocol state machines run synchronously per access; latency is the
 * sum of modelled network hops, cache latencies, DRAM service time, and
 * directory queueing. Timing-mode accesses complete via an event;
 * atomic-mode CPUs are rejected (as in gem5 v20.1.0.4, AtomicSimpleCPU
 * cannot run on Ruby).
 *
 * A sequencer-style deadlock watchdog fires when an armed defect drops
 * a response message (the MI_example O3 deadlock of Fig 8): the access
 * never completes and, after deadlockThreshold ticks, the watchdog
 * raises "Possible Deadlock detected", aborting the simulation the way
 * a Ruby protocol deadlock aborts gem5.
 */

#ifndef G5_SIM_RUBY_RUBY_HH
#define G5_SIM_RUBY_RUBY_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/mem/cache_array.hh"
#include "sim/mem/dram.hh"
#include "sim/mem/mem_system.hh"

namespace g5::sim
{
class EventQueue;
} // namespace g5::sim

namespace g5::sim::ruby
{

enum class RubyProtocol { MIExample, MESITwoLevel };

/** @return the gem5 protocol name ("MI_example", "MESI_Two_Level"). */
const char *protocolName(RubyProtocol p);

/** Parse a protocol name; throws FatalError on junk. */
RubyProtocol protocolFromName(const std::string &name);

struct RubyConfig
{
    RubyProtocol protocol = RubyProtocol::MESITwoLevel;
    unsigned numCpus = 1;
    std::size_t l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 4;
    std::size_t l2SizeBytes = 1024 * 1024;
    unsigned l2Assoc = 8;
    Tick l1Latency = 1000;          ///< 1 ns
    Tick l2Latency = 8000;          ///< 8 ns
    Tick netHopLatency = 6000;      ///< 6 ns per network traversal
    Tick dirServiceGap = 2000;      ///< directory bank occupancy
    Tick deadlockThreshold = 100'000'000; ///< 100 us without a response
    mem::DramConfig dram;
};

class RubyMem : public mem::MemSystem
{
  public:
    RubyMem(EventQueue &eq, const RubyConfig &cfg);

    std::string protocolName() const override;

    void access(int cpu, Addr addr, bool write,
                Callback done) override;
    Tick atomicAccess(int cpu, Addr addr, bool write) override;

    bool supportsAtomicCpu() const override { return false; }
    bool supportsMultipleTimingCpus() const override { return true; }

    StatGroup &statGroup() override { return stats; }

    /**
     * Arm the modelled protocol defect: the @p nth next access's
     * response message is dropped, the requester hangs, and the
     * deadlock watchdog aborts the run.
     */
    void armDroppedResponse(std::uint64_t nth) { dropAt = accessCount + nth; }

    // Statistics (public for tests/benches).
    Scalar l1Hits, l1Misses, l2Hits, l2Misses, invalidationsSent,
        forwardsSent, writebacks, upgrades, dirQueueTicks, memFetches;

  private:
    /** L1 line states; MI uses only I/M. */
    enum LineState : int { I = 0, S = 1, E = 2, M = 3 };

    struct DirEntry
    {
        int owner = -1;              ///< L1 holding M/E; -1 none
        std::uint64_t sharers = 0;   ///< bitmask of L1s in S
    };

    /** Run the protocol for one access; @return total latency. */
    Tick serviceAccess(int cpu, Addr addr, bool write);

    Tick miAccess(int cpu, Addr block);
    Tick mesiAccess(int cpu, Addr block, bool write);

    /** Directory bank occupancy/queueing. */
    Tick dirQueueDelay();

    /** Evict the victim line (writeback accounting) and fill. */
    void fillL1(int cpu, Addr block, int state);

    DirEntry &dirEntry(Addr block);

    EventQueue &eventq;
    RubyConfig cfg;
    std::vector<std::unique_ptr<mem::CacheArray>> l1s;
    std::unique_ptr<mem::CacheArray> l2; // MESI only
    std::unordered_map<Addr, DirEntry> directory;
    mem::Dram dram;
    Tick dirBusyUntil = 0;

    std::uint64_t accessCount = 0;
    std::uint64_t dropAt = 0;   ///< 0 = defect unarmed
    bool deadlocked = false;

    StatGroup stats;
};

} // namespace g5::sim::ruby

#endif // G5_SIM_RUBY_RUBY_HH
