#include "sim/ruby/ruby.hh"

#include "base/logging.hh"
#include "sim/eventq.hh"
#include "sim/trace.hh"

namespace g5::sim::ruby
{

const char *
protocolName(RubyProtocol p)
{
    return p == RubyProtocol::MIExample ? "MI_example" : "MESI_Two_Level";
}

RubyProtocol
protocolFromName(const std::string &name)
{
    if (name == "MI_example" || name == "MI")
        return RubyProtocol::MIExample;
    if (name == "MESI_Two_Level" || name == "MESI")
        return RubyProtocol::MESITwoLevel;
    fatal("unknown Ruby protocol '" + name + "'");
}

RubyMem::RubyMem(EventQueue &eq, const RubyConfig &cfg)
    : eventq(eq), cfg(cfg), dram(cfg.dram), stats("ruby")
{
    if (cfg.numCpus == 0)
        fatal("RubyMem: need at least one CPU");
    if (cfg.numCpus > 64)
        fatal("RubyMem: sharer bitmask supports at most 64 CPUs");

    for (unsigned i = 0; i < cfg.numCpus; ++i) {
        l1s.push_back(
            std::make_unique<mem::CacheArray>(cfg.l1SizeBytes,
                                              cfg.l1Assoc));
    }
    if (cfg.protocol == RubyProtocol::MESITwoLevel) {
        l2 = std::make_unique<mem::CacheArray>(cfg.l2SizeBytes,
                                               cfg.l2Assoc);
    }

    stats.addStat("l1_hits", &l1Hits, "L1 hits (all controllers)");
    stats.addStat("l1_misses", &l1Misses, "L1 misses");
    stats.addStat("l2_hits", &l2Hits, "L2 hits (MESI only)");
    stats.addStat("l2_misses", &l2Misses, "L2 misses (MESI only)");
    stats.addStat("invalidations", &invalidationsSent,
                  "invalidation messages sent");
    stats.addStat("forwards", &forwardsSent,
                  "requests forwarded to owners");
    stats.addStat("writebacks", &writebacks, "owner writebacks");
    stats.addStat("upgrades", &upgrades, "S->M upgrade requests");
    stats.addStat("dir_queue_ticks", &dirQueueTicks,
                  "ticks queued at the directory");
    stats.addStat("mem_fetches", &memFetches, "directory DRAM fetches");
    stats.addStat("dram_reads", &dram.reads, "DRAM read bursts");
    stats.addStat("dram_writes", &dram.writes, "DRAM write bursts");
}

std::string
RubyMem::protocolName() const
{
    return ruby::protocolName(cfg.protocol);
}

RubyMem::DirEntry &
RubyMem::dirEntry(Addr block)
{
    return directory[block];
}

Tick
RubyMem::dirQueueDelay()
{
    Tick now = eventq.curTick();
    Tick start = now > dirBusyUntil ? now : dirBusyUntil;
    dirBusyUntil = start + cfg.dirServiceGap;
    Tick delay = start - now;
    dirQueueTicks += double(delay);
    return delay;
}

void
RubyMem::fillL1(int cpu, Addr block, int state)
{
    auto &l1 = *l1s[cpu];
    auto *victim = l1.victim(block);
    if (victim->valid && (victim->state == M || victim->state == E)) {
        // Evicting an owned line: writeback to the directory.
        ++writebacks;
        DirEntry &ventry = dirEntry(victim->tag);
        if (ventry.owner == cpu)
            ventry.owner = -1;
    } else if (victim->valid) {
        DirEntry &ventry = dirEntry(victim->tag);
        ventry.sharers &= ~(std::uint64_t(1) << cpu);
    }
    l1.fill(victim, block, state);
}

Tick
RubyMem::miAccess(int cpu, Addr block)
{
    // MI_example: both loads and stores need the block in M.
    auto &l1 = *l1s[cpu];
    if (auto *line = l1.lookup(block)) {
        if (line->state == M) {
            l1.touch(line);
            ++l1Hits;
            return cfg.l1Latency;
        }
    }
    ++l1Misses;

    // Request travels to the directory.
    Tick latency = cfg.l1Latency + cfg.netHopLatency + dirQueueDelay();
    DirEntry &entry = dirEntry(block);

    if (entry.owner >= 0 && entry.owner != cpu) {
        // Forward to the current owner; owner sends data + writeback.
        ++forwardsSent;
        ++writebacks;
        latency += 2 * cfg.netHopLatency;
        l1s[entry.owner]->invalidate(block);
        ++invalidationsSent;
    } else if (entry.owner != cpu) {
        // Directory fetches the block from memory.
        ++memFetches;
        latency += dram.serviceLatency(eventq.curTick(), false);
    }

    // Data message back to the requester.
    latency += cfg.netHopLatency;
    entry.owner = cpu;
    entry.sharers = 0;
    fillL1(cpu, block, M);
    return latency;
}

Tick
RubyMem::mesiAccess(int cpu, Addr block, bool write)
{
    auto &l1 = *l1s[cpu];
    auto *line = l1.lookup(block);

    if (line) {
        if (!write &&
            (line->state == S || line->state == E || line->state == M)) {
            l1.touch(line);
            ++l1Hits;
            return cfg.l1Latency;
        }
        if (write && (line->state == M || line->state == E)) {
            line->state = M; // silent E->M
            l1.touch(line);
            ++l1Hits;
            return cfg.l1Latency;
        }
        if (write && line->state == S) {
            // Upgrade: invalidate the other sharers via the directory.
            ++upgrades;
            ++l1Misses;
            Tick latency = cfg.l1Latency + cfg.netHopLatency +
                           dirQueueDelay() + cfg.l2Latency;
            DirEntry &entry = dirEntry(block);
            std::uint64_t others =
                entry.sharers & ~(std::uint64_t(1) << cpu);
            for (unsigned i = 0; i < cfg.numCpus; ++i) {
                if (others & (std::uint64_t(1) << i)) {
                    l1s[i]->invalidate(block);
                    ++invalidationsSent;
                }
            }
            if (others)
                latency += 2 * cfg.netHopLatency; // inv + ack round
            entry.sharers = std::uint64_t(1) << cpu;
            entry.owner = cpu;
            line->state = M;
            l1.touch(line);
            latency += cfg.netHopLatency;
            return latency;
        }
    }
    ++l1Misses;

    Tick latency = cfg.l1Latency + cfg.netHopLatency + dirQueueDelay() +
                   cfg.l2Latency;
    DirEntry &entry = dirEntry(block);

    // Snoop the current owner out if there is one.
    if (entry.owner >= 0 && entry.owner != cpu) {
        auto *owner_line = l1s[entry.owner]->lookup(block);
        if (owner_line &&
            (owner_line->state == M || owner_line->state == E)) {
            ++forwardsSent;
            ++writebacks;
            latency += 2 * cfg.netHopLatency;
            if (write) {
                l1s[entry.owner]->invalidate(block);
                ++invalidationsSent;
            } else {
                owner_line->state = S;
                entry.sharers |= std::uint64_t(1) << entry.owner;
            }
        }
        entry.owner = -1;
    }

    if (write) {
        // Invalidate every sharer.
        std::uint64_t others = entry.sharers & ~(std::uint64_t(1) << cpu);
        bool any = false;
        for (unsigned i = 0; i < cfg.numCpus; ++i) {
            if (others & (std::uint64_t(1) << i)) {
                l1s[i]->invalidate(block);
                ++invalidationsSent;
                any = true;
            }
        }
        if (any)
            latency += 2 * cfg.netHopLatency;
        entry.sharers = 0;
    }

    // Inclusive L2 lookup.
    if (l2->lookup(block)) {
        ++l2Hits;
        l2->touch(l2->lookup(block));
    } else {
        ++l2Misses;
        ++memFetches;
        latency += dram.serviceLatency(eventq.curTick(), write);
        l2->fill(l2->victim(block), block);
    }

    int new_state;
    if (write) {
        new_state = M;
        dirEntry(block).owner = cpu;
        dirEntry(block).sharers = std::uint64_t(1) << cpu;
    } else if (dirEntry(block).sharers == 0 &&
               dirEntry(block).owner < 0) {
        new_state = E;
        dirEntry(block).owner = cpu;
    } else {
        new_state = S;
        dirEntry(block).sharers |= std::uint64_t(1) << cpu;
    }
    fillL1(cpu, block, new_state);

    latency += cfg.netHopLatency; // data back to the requester
    return latency;
}

Tick
RubyMem::serviceAccess(int cpu, Addr addr, bool write)
{
    if (cpu < 0 || unsigned(cpu) >= cfg.numCpus)
        panic("RubyMem: access from unknown CPU");
    Addr block = mem::CacheArray::blockAlign(addr);
    Tick latency = cfg.protocol == RubyProtocol::MIExample
                       ? miAccess(cpu, block)
                       : mesiAccess(cpu, block, write);
    DTRACE("Ruby", eventq.curTick(),
           "cpu%d %s %#llx -> %llu ticks (%s)", cpu,
           write ? "ST" : "LD", (unsigned long long)block,
           (unsigned long long)latency, protocolName().c_str());
    return latency;
}

void
RubyMem::access(int cpu, Addr addr, bool write, Callback done)
{
    ++accessCount;
    if (deadlocked || (dropAt != 0 && accessCount >= dropAt)) {
        // The response message for this request is lost (modelled
        // protocol defect): the requester hangs; the sequencer watchdog
        // aborts the simulation after the threshold.
        if (!deadlocked) {
            deadlocked = true;
            eventq.schedule(
                eventq.curTick() + cfg.deadlockThreshold, [this, cpu] {
                    panic(csprintf(
                        "Possible Deadlock detected: sequencer cpu%d "
                        "has an outstanding request for %u ticks "
                        "(protocol %s)",
                        cpu, unsigned(cfg.deadlockThreshold),
                        protocolName().c_str()));
                });
        }
        return; // 'done' intentionally never scheduled
    }

    Tick latency = serviceAccess(cpu, addr, write);
    eventq.schedule(eventq.curTick() + latency, std::move(done),
                    EventQueue::memRespPri);
}

Tick
RubyMem::atomicAccess(int cpu, Addr addr, bool write)
{
    ++accessCount;
    if (deadlocked || (dropAt != 0 && accessCount >= dropAt)) {
        if (!deadlocked) {
            deadlocked = true;
            eventq.schedule(
                eventq.curTick() + cfg.deadlockThreshold, [this, cpu] {
                    panic(csprintf(
                        "Possible Deadlock detected: sequencer cpu%d "
                        "has an outstanding request for %u ticks "
                        "(protocol %s)",
                        cpu, unsigned(cfg.deadlockThreshold),
                        protocolName().c_str()));
                });
        }
        // The requester stalls for the full threshold; the watchdog
        // fires first.
        return cfg.deadlockThreshold * 2;
    }
    return serviceAccess(cpu, addr, write);
}

} // namespace g5::sim::ruby
