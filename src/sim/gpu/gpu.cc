#include "sim/gpu/gpu.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "base/logging.hh"
#include "base/random.hh"

namespace g5::sim::gpu
{

const char *
regAllocName(RegAllocPolicy p)
{
    return p == RegAllocPolicy::Simple ? "simple" : "dynamic";
}

RegAllocPolicy
regAllocFromName(const std::string &name)
{
    if (name == "simple")
        return RegAllocPolicy::Simple;
    if (name == "dynamic")
        return RegAllocPolicy::Dynamic;
    fatal("unknown register allocator '" + name + "'");
}

Json
KernelDesc::toJson() const
{
    Json j = Json::object();
    j["name"] = name;
    j["numWorkgroups"] = std::int64_t(numWorkgroups);
    j["wavesPerWg"] = std::int64_t(wavesPerWg);
    j["vgprsPerWave"] = std::int64_t(vgprsPerWave);
    j["sgprsPerWave"] = std::int64_t(sgprsPerWave);
    j["ldsPerWg"] = std::int64_t(ldsPerWg);
    j["iterations"] = std::int64_t(iterations);
    j["valuPerIter"] = std::int64_t(valuPerIter);
    j["saluPerIter"] = std::int64_t(saluPerIter);
    j["vmemPerIter"] = std::int64_t(vmemPerIter);
    j["ldsOpsPerIter"] = std::int64_t(ldsOpsPerIter);
    j["barriersPerIter"] = std::int64_t(barriersPerIter);
    j["mutexKind"] = std::int64_t(mutexKind);
    j["csPerIter"] = std::int64_t(csPerIter);
    j["csMemOps"] = std::int64_t(csMemOps);
    j["uniqueLockPerWg"] = uniqueLockPerWg;
    j["l1Locality"] = l1Locality;
    j["l2Locality"] = l2Locality;
    return j;
}

KernelDesc
KernelDesc::fromJson(const Json &j)
{
    KernelDesc k;
    k.name = j.getString("name");
    k.numWorkgroups = unsigned(j.getInt("numWorkgroups", 1));
    k.wavesPerWg = unsigned(j.getInt("wavesPerWg", 1));
    k.vgprsPerWave = unsigned(j.getInt("vgprsPerWave", 256));
    k.sgprsPerWave = unsigned(j.getInt("sgprsPerWave", 128));
    k.ldsPerWg = unsigned(j.getInt("ldsPerWg", 0));
    k.iterations = unsigned(j.getInt("iterations", 1));
    k.valuPerIter = unsigned(j.getInt("valuPerIter", 0));
    k.saluPerIter = unsigned(j.getInt("saluPerIter", 0));
    k.vmemPerIter = unsigned(j.getInt("vmemPerIter", 0));
    k.ldsOpsPerIter = unsigned(j.getInt("ldsOpsPerIter", 0));
    k.barriersPerIter = unsigned(j.getInt("barriersPerIter", 0));
    k.mutexKind = MutexKind(j.getInt("mutexKind", 0));
    k.csPerIter = unsigned(j.getInt("csPerIter", 0));
    k.csMemOps = unsigned(j.getInt("csMemOps", 0));
    k.uniqueLockPerWg = j.getBool("uniqueLockPerWg", false);
    k.l1Locality = j.getDouble("l1Locality", 0.5);
    k.l2Locality = j.getDouble("l2Locality", 0.7);
    return k;
}

Json
GpuRunResult::toJson() const
{
    Json j = Json::object();
    j["shaderCycles"] = shaderCycles;
    j["valuIssues"] = valuIssues;
    j["wastedIssueCycles"] = wastedIssueCycles;
    j["memRequests"] = memRequests;
    j["l1Hits"] = l1Hits;
    j["l2Hits"] = l2Hits;
    j["dramAccesses"] = dramAccesses;
    j["atomicRetries"] = atomicRetries;
    j["barrierWaits"] = barrierWaits;
    j["maxResidentWavesPerCu"] = maxResidentWavesPerCu;
    return j;
}

GpuModel::GpuModel(const GpuConfig &cfg, RegAllocPolicy policy)
    : cfg(cfg), policy(policy)
{
    if (cfg.numCus == 0 || cfg.simdPerCu == 0)
        fatal("GpuModel: need at least one CU and one SIMD");
}

unsigned
GpuModel::residentWaveLimit(const KernelDesc &kernel) const
{
    if (policy == RegAllocPolicy::Simple)
        return cfg.simdPerCu; // one wave per SIMD16 at a time

    unsigned by_slots = cfg.simdPerCu * cfg.maxWavesPerSimd;
    unsigned by_vgpr =
        kernel.vgprsPerWave ? cfg.vgprPerCu / kernel.vgprsPerWave
                            : by_slots;
    unsigned by_sgpr =
        kernel.sgprsPerWave ? cfg.sgprPerCu / kernel.sgprsPerWave
                            : by_slots;
    unsigned waves = std::min({by_slots, by_vgpr, by_sgpr});
    if (kernel.ldsPerWg) {
        unsigned wgs = cfg.ldsBytesPerCu / kernel.ldsPerWg;
        waves = std::min(waves, wgs * kernel.wavesPerWg);
    }
    return std::max(waves, 1u);
}

namespace
{

using Cycle = std::uint64_t;
constexpr Cycle never = std::numeric_limits<Cycle>::max();

/** What a wave does next. */
enum class Phase {
    CsAcquire, CsBody, CsRelease,
    Vmem, Valu, Lds, Salu, Barrier,
    NextIter, Done,
};

struct Wave
{
    unsigned wgId = 0;
    unsigned cuId = 0;
    unsigned simdId = 0;

    Cycle readyAt = 0;
    bool atBarrier = false;
    bool parked = false;    ///< waiting on a ticket-lock handoff
    bool done = false;

    unsigned iter = 0;
    Phase phase = Phase::NextIter;
    unsigned phaseLeft = 0; ///< remaining ops in the current phase
    unsigned csLeft = 0;    ///< remaining critical sections this iter
    unsigned csMemLeft = 0;
    unsigned backoff = 16;  ///< EBO state, cycles
    bool countedWaiter = false; ///< already in the mutex waiter count
    std::uint64_t ticket = 0;
};

struct WorkgroupState
{
    unsigned arrived = 0;
    unsigned wavesDone = 0;
    bool resident = false;
};

struct MutexState
{
    int owner = -1;              ///< wave index or -1
    std::uint64_t nextTicket = 0;
    std::uint64_t nowServing = 0;
    std::deque<int> parkedWaves; ///< FIFO of ticket-lock waiters
    unsigned waiters = 0;        ///< spinning/parked contenders
};

struct CuState
{
    Cycle saluBusyUntil = 0;
    Cycle ldsBusyUntil = 0;
    unsigned residentWaves = 0;
    unsigned vgprUsed = 0;
    unsigned sgprUsed = 0;
    unsigned ldsUsed = 0;
    std::vector<Cycle> simdBusyUntil;
    std::vector<std::vector<int>> simdWaves; ///< wave indices per SIMD
    std::vector<unsigned> rr;                ///< round-robin cursor
};

} // anonymous namespace

GpuRunResult
GpuModel::run(const KernelDesc &kernel)
{
    if (kernel.wavesPerWg == 0 || kernel.numWorkgroups == 0)
        fatal("GpuModel: kernel '" + kernel.name + "' launches no work");
    if (kernel.wavesPerWg > cfg.simdPerCu) {
        fatal("GpuModel: kernel '" + kernel.name + "' has more waves "
              "per workgroup than SIMDs per CU");
    }

    // Seeded by the kernel alone: two policies see the same draw
    // stream, so identical schedules produce identical timings.
    Rng rng(kernel.name);
    GpuRunResult res;

    // --- state ---
    std::vector<Wave> waves(kernel.totalWaves());
    std::vector<WorkgroupState> wgs(kernel.numWorkgroups);
    std::vector<CuState> cus(cfg.numCus);
    for (auto &cu : cus) {
        cu.simdBusyUntil.assign(cfg.simdPerCu, 0);
        cu.simdWaves.assign(cfg.simdPerCu, {});
        cu.rr.assign(cfg.simdPerCu, 0);
    }

    unsigned num_mutexes = kernel.uniqueLockPerWg
                               ? kernel.numWorkgroups
                               : (kernel.mutexKind == MutexKind::None
                                      ? 0
                                      : 1);
    std::vector<MutexState> mutexes(std::max(num_mutexes, 1u));

    for (unsigned w = 0; w < waves.size(); ++w)
        waves[w].wgId = w / kernel.wavesPerWg;

    unsigned next_wg_to_dispatch = 0;
    unsigned waves_done = 0;
    Cycle dram_busy_until = 0;
    Cycle atomic_busy_until = 0;
    Cycle cycle = 0;

    const unsigned wave_limit = residentWaveLimit(kernel);

    // --- helpers ---
    auto mutex_of = [&](const Wave &w) -> MutexState & {
        return mutexes[kernel.uniqueLockPerWg ? w.wgId : 0];
    };

    auto mem_latency = [&](const CuState &cu, double locality) -> Cycle {
        // L1 locality degrades as resident waves multiply the live
        // working set per CU.
        double occ = double(cu.residentWaves) / double(cfg.simdPerCu);
        double p1 = locality / std::sqrt(std::max(occ, 1.0));
        if (rng.chance(p1)) {
            ++res.l1Hits;
            return cfg.l1HitCycles;
        }
        if (rng.chance(kernel.l2Locality)) {
            ++res.l2Hits;
            return cfg.l2HitCycles;
        }
        ++res.dramAccesses;
        Cycle start = std::max(cycle, dram_busy_until);
        dram_busy_until = start + cfg.dramGapCycles;
        return (start - cycle) + cfg.dramCycles;
    };

    auto atomic_latency = [&](MutexState &m) -> Cycle {
        Cycle start = std::max(cycle, atomic_busy_until);
        atomic_busy_until = start + cfg.atomicGapCycles;
        // Atomics to a contended line queue behind the other waiters.
        return (start - cycle) + cfg.atomicCycles + 2 * m.waiters;
    };

    // Lock-protected data lives on lines every waiter is polling; each
    // critical-section access arbitrates against that polling traffic,
    // so the lock-holder's progress degrades with the waiter count —
    // the dominant reason oversubscription hurts the HeteroSync suite.
    auto cs_mem_latency = [&](const CuState &cu, MutexState &m) -> Cycle {
        Cycle base = mem_latency(cu, 0.15);
        return base + Cycle(std::lround(double(base) * 0.35 *
                                        double(m.waiters)));
    };

    auto start_iteration = [&](Wave &w) {
        if (w.iter >= kernel.iterations) {
            w.phase = Phase::Done;
            return;
        }
        ++w.iter;
        w.csLeft = kernel.csPerIter;
        if (w.csLeft > 0 && kernel.mutexKind != MutexKind::None) {
            w.phase = Phase::CsAcquire;
        } else if (kernel.vmemPerIter) {
            w.phase = Phase::Vmem;
            w.phaseLeft = kernel.vmemPerIter;
        } else if (kernel.valuPerIter) {
            w.phase = Phase::Valu;
            w.phaseLeft = kernel.valuPerIter;
        } else if (kernel.ldsOpsPerIter) {
            w.phase = Phase::Lds;
            w.phaseLeft = kernel.ldsOpsPerIter;
        } else if (kernel.saluPerIter) {
            w.phase = Phase::Salu;
            w.phaseLeft = kernel.saluPerIter;
        } else if (kernel.barriersPerIter) {
            w.phase = Phase::Barrier;
            w.phaseLeft = kernel.barriersPerIter;
        } else {
            w.phase = Phase::NextIter;
        }
    };

    auto next_phase = [&](Wave &w) {
        switch (w.phase) {
          case Phase::CsAcquire:
          case Phase::CsBody:
          case Phase::CsRelease:
            // handled inline
            break;
          case Phase::Vmem:
            if (kernel.valuPerIter) {
                w.phase = Phase::Valu;
                w.phaseLeft = kernel.valuPerIter;
                return;
            }
            [[fallthrough]];
          case Phase::Valu:
            if (kernel.ldsOpsPerIter) {
                w.phase = Phase::Lds;
                w.phaseLeft = kernel.ldsOpsPerIter;
                return;
            }
            [[fallthrough]];
          case Phase::Lds:
            if (kernel.saluPerIter) {
                w.phase = Phase::Salu;
                w.phaseLeft = kernel.saluPerIter;
                return;
            }
            [[fallthrough]];
          case Phase::Salu:
            if (kernel.barriersPerIter) {
                w.phase = Phase::Barrier;
                w.phaseLeft = kernel.barriersPerIter;
                return;
            }
            [[fallthrough]];
          default:
            w.phase = Phase::NextIter;
        }
    };

    auto finish_wave = [&](Wave &w, int wave_idx) {
        (void)wave_idx;
        w.done = true;
        ++waves_done;
        WorkgroupState &wg = wgs[w.wgId];
        if (++wg.wavesDone == kernel.wavesPerWg) {
            // Free the workgroup's CU resources.
            CuState &cu = cus[w.cuId];
            cu.residentWaves -= kernel.wavesPerWg;
            cu.vgprUsed -= kernel.wavesPerWg * kernel.vgprsPerWave;
            cu.sgprUsed -= kernel.wavesPerWg * kernel.sgprsPerWave;
            cu.ldsUsed -= kernel.ldsPerWg;
            for (auto &simd : cu.simdWaves) {
                simd.erase(std::remove_if(simd.begin(), simd.end(),
                                          [&](int idx) {
                                              return waves[idx].wgId ==
                                                     w.wgId;
                                          }),
                           simd.end());
            }
        }
    };

    // Dispatch one workgroup to @p cu if the policy's budget allows.
    auto try_dispatch = [&](unsigned cu_id) -> bool {
        if (next_wg_to_dispatch >= kernel.numWorkgroups)
            return false;
        CuState &cu = cus[cu_id];

        if (cu.residentWaves + kernel.wavesPerWg > wave_limit)
            return false;
        if (policy == RegAllocPolicy::Dynamic) {
            if (cu.vgprUsed + kernel.wavesPerWg * kernel.vgprsPerWave >
                cfg.vgprPerCu)
                return false;
            if (cu.sgprUsed + kernel.wavesPerWg * kernel.sgprsPerWave >
                cfg.sgprPerCu)
                return false;
            if (kernel.ldsPerWg &&
                cu.ldsUsed + kernel.ldsPerWg > cfg.ldsBytesPerCu)
                return false;
        }
        // Find SIMD slots: simple needs an empty SIMD per wave;
        // dynamic takes the least-loaded SIMDs under maxWavesPerSimd.
        std::vector<unsigned> chosen;
        std::vector<unsigned> load(cfg.simdPerCu);
        for (unsigned s = 0; s < cfg.simdPerCu; ++s)
            load[s] = unsigned(cu.simdWaves[s].size());
        for (unsigned w = 0; w < kernel.wavesPerWg; ++w) {
            unsigned best = cfg.simdPerCu;
            for (unsigned s = 0; s < cfg.simdPerCu; ++s) {
                bool ok = policy == RegAllocPolicy::Simple
                              ? load[s] == 0
                              : load[s] < cfg.maxWavesPerSimd;
                if (ok && (best == cfg.simdPerCu ||
                           load[s] < load[best])) {
                    best = s;
                }
            }
            if (best == cfg.simdPerCu)
                return false;
            chosen.push_back(best);
            ++load[best];
        }

        unsigned wg = next_wg_to_dispatch++;
        wgs[wg].resident = true;
        cu.residentWaves += kernel.wavesPerWg;
        cu.vgprUsed += kernel.wavesPerWg * kernel.vgprsPerWave;
        cu.sgprUsed += kernel.wavesPerWg * kernel.sgprsPerWave;
        cu.ldsUsed += kernel.ldsPerWg;
        res.maxResidentWavesPerCu =
            std::max<std::uint64_t>(res.maxResidentWavesPerCu,
                                    cu.residentWaves);

        for (unsigned w = 0; w < kernel.wavesPerWg; ++w) {
            unsigned idx = wg * kernel.wavesPerWg + w;
            Wave &wave = waves[idx];
            wave.cuId = cu_id;
            wave.simdId = chosen[w];
            wave.readyAt = cycle + 8; // dispatch latency
            start_iteration(wave);
            cu.simdWaves[chosen[w]].push_back(int(idx));
        }
        return true;
    };

    // Execute one op of @p w; assumes the wave is ready.
    auto execute = [&](Wave &w, int wave_idx, CuState &cu) {
        switch (w.phase) {
          case Phase::NextIter:
            start_iteration(w);
            if (w.phase == Phase::Done)
                finish_wave(w, wave_idx);
            return;
          case Phase::Done:
            return;

          case Phase::CsAcquire: {
            MutexState &m = mutex_of(w);
            Cycle lat = atomic_latency(m);
            ++res.memRequests;
            if (kernel.mutexKind == MutexKind::FetchAdd) {
                // Ticket lock: one atomic, then FIFO handoff.
                w.ticket = m.nextTicket++;
                if (m.owner < 0 && w.ticket == m.nowServing) {
                    m.owner = wave_idx;
                    w.phase = Phase::CsBody;
                    w.csMemLeft = kernel.csMemOps;
                    w.readyAt = cycle + lat;
                } else {
                    ++m.waiters;
                    w.parked = true;
                    m.parkedWaves.push_back(wave_idx);
                    w.readyAt = never;
                }
            } else {
                if (m.owner < 0) {
                    m.owner = wave_idx;
                    w.phase = Phase::CsBody;
                    w.csMemLeft = kernel.csMemOps;
                    w.backoff = 16;
                    w.readyAt = cycle + lat;
                    if (w.countedWaiter) {
                        --m.waiters;
                        w.countedWaiter = false;
                    }
                } else {
                    // Failed acquire: back off and retry the atomic.
                    ++res.atomicRetries;
                    if (!w.countedWaiter) {
                        ++m.waiters;
                        w.countedWaiter = true;
                    }
                    unsigned cap = kernel.mutexKind == MutexKind::Sleep
                                       ? 4096
                                       : 1024;
                    w.backoff = std::min(w.backoff * 2, cap);
                    Cycle pause =
                        kernel.mutexKind == MutexKind::Sleep
                            ? w.backoff + 512
                            : w.backoff;
                    w.readyAt = cycle + lat + pause;
                }
            }
            return;
          }

          case Phase::CsBody: {
            // Critical-section loads/stores hit shared, contended data.
            Cycle lat = cs_mem_latency(cu, mutex_of(w));
            ++res.memRequests;
            w.readyAt = cycle + lat;
            if (--w.csMemLeft == 0)
                w.phase = Phase::CsRelease;
            return;
          }

          case Phase::CsRelease: {
            MutexState &m = mutex_of(w);
            Cycle lat = atomic_latency(m);
            ++res.memRequests;
            m.owner = -1;
            w.parked = false;
            if (kernel.mutexKind == MutexKind::FetchAdd) {
                ++m.nowServing;
                if (!m.parkedWaves.empty()) {
                    int next = m.parkedWaves.front();
                    m.parkedWaves.pop_front();
                    Wave &nw = waves[next];
                    m.owner = next;
                    --m.waiters;
                    nw.parked = false;
                    nw.phase = Phase::CsBody;
                    nw.csMemLeft = kernel.csMemOps;
                    // Handoff: the serving counter's line bounces
                    // through every poller before the next owner sees
                    // its ticket come up.
                    nw.readyAt = cycle + lat + 24 + 4 * m.waiters;
                }
            }
            w.readyAt = cycle + lat;
            if (--w.csLeft > 0) {
                w.phase = Phase::CsAcquire;
            } else if (kernel.vmemPerIter) {
                w.phase = Phase::Vmem;
                w.phaseLeft = kernel.vmemPerIter;
            } else {
                w.phase = Phase::Valu;
                w.phaseLeft = kernel.valuPerIter;
                if (!w.phaseLeft)
                    next_phase(w);
            }
            return;
          }

          case Phase::Vmem: {
            Cycle lat = mem_latency(cu, kernel.l1Locality);
            ++res.memRequests;
            // Coarse dependence tracking: the wave blocks until the
            // response returns.
            w.readyAt = cycle + lat;
            if (--w.phaseLeft == 0)
                next_phase(w);
            return;
          }

          case Phase::Valu: {
            ++res.valuIssues;
            cu.simdBusyUntil[w.simdId] = cycle + cfg.valuCycles;
            w.readyAt = cycle + cfg.valuCycles;
            if (--w.phaseLeft == 0)
                next_phase(w);
            return;
          }

          case Phase::Lds: {
            if (cu.ldsBusyUntil > cycle) {
                w.readyAt = cu.ldsBusyUntil; // port conflict
                return;
            }
            cu.ldsBusyUntil = cycle + 2;
            w.readyAt = cycle + cfg.ldsCycles;
            if (--w.phaseLeft == 0)
                next_phase(w);
            return;
          }

          case Phase::Salu: {
            if (cu.saluBusyUntil > cycle) {
                w.readyAt = cu.saluBusyUntil;
                return;
            }
            cu.saluBusyUntil = cycle + cfg.saluCycles;
            w.readyAt = cycle + cfg.saluCycles;
            if (--w.phaseLeft == 0)
                next_phase(w);
            return;
          }

          case Phase::Barrier: {
            WorkgroupState &wg = wgs[w.wgId];
            w.atBarrier = true;
            ++res.barrierWaits;
            if (++wg.arrived == kernel.wavesPerWg) {
                wg.arrived = 0;
                for (unsigned i = 0; i < kernel.wavesPerWg; ++i) {
                    Wave &peer = waves[w.wgId * kernel.wavesPerWg + i];
                    peer.atBarrier = false;
                    peer.readyAt = cycle + 2;
                    if (&peer != &w) {
                        if (--peer.phaseLeft == 0)
                            next_phase(peer);
                        else
                            peer.phase = Phase::Barrier;
                    }
                }
                if (--w.phaseLeft == 0)
                    next_phase(w);
            } else {
                w.readyAt = never;
            }
            return;
          }
        }
    };

    // --- main loop ---
    std::uint64_t guard = 0;
    while (waves_done < waves.size()) {
        if (++guard > 600'000'000)
            panic("GpuModel: kernel '" + kernel.name +
                  "' exceeded the cycle guard (hung?)");

        bool progress = false;
        bool ready_missed = false;

        // One dispatch attempt per CU per cycle.
        for (unsigned c = 0; c < cfg.numCus; ++c)
            if (try_dispatch(c))
                progress = true;

        auto is_ready = [&](int idx) {
            const Wave &w = waves[idx];
            return !w.done && !w.atBarrier && !w.parked &&
                   w.readyAt <= cycle;
        };

        for (unsigned c = 0; c < cfg.numCus; ++c) {
            CuState &cu = cus[c];
            for (unsigned s = 0; s < cfg.simdPerCu; ++s) {
                if (cu.simdBusyUntil[s] > cycle)
                    continue;
                auto &resident = cu.simdWaves[s];
                if (resident.empty())
                    continue;

                // Round-robin WITHOUT a readiness check: the arbiter
                // examines exactly one wave per cycle; picking a
                // blocked one wastes the slot (the modeled simplistic
                // dependence tracking).
                unsigned pick = cu.rr[s] % resident.size();
                cu.rr[s]++;
                if (cfg.perfectDependenceTracking &&
                    !is_ready(resident[pick])) {
                    // Ablation: an improved scoreboard knows readiness
                    // and rotates to a ready wave at no cost.
                    for (std::size_t probe = 0;
                         probe < resident.size(); ++probe) {
                        unsigned cand = (pick + unsigned(probe) + 1) %
                                        unsigned(resident.size());
                        if (is_ready(resident[cand])) {
                            pick = cand;
                            break;
                        }
                    }
                }
                if (!is_ready(resident[pick])) {
                    // The scoreboard has no per-operand readiness: the
                    // arbiter walks the wave's dependence state before
                    // discovering it cannot issue, and the walk grows
                    // with occupancy. This is the "simplistic
                    // dependence tracking" stall of the paper.
                    ++res.wastedIssueCycles;
                    cu.simdBusyUntil[s] =
                        cycle + 1 + Cycle(resident.size() / 2);
                    // Was a schedulable wave passed over? Then time
                    // must advance cycle by cycle, not skip ahead.
                    for (int idx : resident) {
                        if (is_ready(idx)) {
                            ready_missed = true;
                            break;
                        }
                    }
                    continue;
                }
                Wave &w = waves[resident[pick]];
                execute(w, resident[pick], cu);
                progress = true;
            }
        }

        // Advance time: next cycle, or skip ahead over a dead region.
        if (progress || ready_missed) {
            ++cycle;
            continue;
        }
        Cycle next = never;
        for (const Wave &w : waves) {
            if (!w.done && !w.atBarrier && !w.parked &&
                w.readyAt != never && w.readyAt > cycle)
                next = std::min(next, w.readyAt);
        }
        for (const CuState &cu : cus) {
            for (Cycle b : cu.simdBusyUntil)
                if (b > cycle)
                    next = std::min(next, b);
        }
        if (next == never || next <= cycle) {
            // Nothing is in flight; avoid stalling forever.
            ++cycle;
        } else {
            cycle = next;
        }
    }

    res.shaderCycles = cycle;
    return res;
}

} // namespace g5::sim::gpu
