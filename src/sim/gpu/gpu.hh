/**
 * @file
 * A GCN3-style GPU timing model, built for the paper's use-case 3: the
 * interaction between register-allocation (wavefront scheduling) policy
 * and the model's deliberately simplistic dependence tracking.
 *
 * Structure (Table III): numCus compute units, each with simdPerCu
 * SIMD16 vector units, a scalar unit, an LDS port, vector/scalar
 * register files, and a private L1 over a shared L2 and one DRAM
 * channel.
 *
 * Two register allocators, as in gem5's GCN3 model circa v21.0:
 *
 *  - Simple:  at most ONE wavefront resident per SIMD16 at a time;
 *             a workgroup dispatches only when every one of its waves
 *             gets a free SIMD. Minimises stalls, foregoes overlap.
 *  - Dynamic: up to maxWavesPerSimd resident waves per SIMD, limited by
 *             the CU's vector/scalar register and LDS budgets.
 *
 * Dependence tracking is modeled the way the paper describes gem5's:
 * coarse. A wave with ANY outstanding memory operation cannot issue,
 * and the per-SIMD issue arbiter is a round-robin WITHOUT a readiness
 * check — selecting a blocked wave wastes the issue cycle. Hence more
 * resident waves buy latency hiding but also more wasted-issue cycles,
 * more cache pressure (L1 locality degrades with occupancy), more
 * memory queueing, and far more lock contention in synchronization
 * benchmarks — which is exactly the tension Fig 9 measures.
 *
 * The model is cycle-stepped with idle-region skipping, self-contained
 * (it does not use the CPU-side event queue), and reports execution
 * time in shader cycles ("shader ticks" in the paper's Fig 9).
 */

#ifndef G5_SIM_GPU_GPU_HH
#define G5_SIM_GPU_GPU_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/json.hh"

namespace g5::sim::gpu
{

/** The two register-allocation policies of Fig 9. */
enum class RegAllocPolicy { Simple, Dynamic };

const char *regAllocName(RegAllocPolicy p);
RegAllocPolicy regAllocFromName(const std::string &name);

/** Hardware parameters (defaults = Table III). */
struct GpuConfig
{
    unsigned numCus = 4;
    unsigned simdPerCu = 4;
    unsigned wavefrontSize = 64;
    unsigned maxWavesPerSimd = 10;
    unsigned vgprPerCu = 8192;
    unsigned sgprPerCu = 8192;
    unsigned ldsBytesPerCu = 64 * 1024;

    // Latencies in shader cycles.
    unsigned valuCycles = 4;      ///< 64 threads over 16 lanes
    unsigned saluCycles = 1;
    unsigned ldsCycles = 4;
    unsigned l1HitCycles = 28;
    unsigned l2HitCycles = 120;
    unsigned dramCycles = 320;
    unsigned dramGapCycles = 12;  ///< global bandwidth: min gap/burst
    unsigned atomicCycles = 160;  ///< base latency of a global atomic
    unsigned atomicGapCycles = 8; ///< atomic unit serialization

    /**
     * Ablation knob: model an improved scoreboard that knows which
     * waves are ready (the "future contribution" the paper's use-case
     * 3 calls for). When true, the per-SIMD arbiter always issues a
     * ready wave if one exists and pays no scan stall.
     */
    bool perfectDependenceTracking = false;
};

/** How a synchronization benchmark acquires its critical sections. */
enum class MutexKind {
    None,        ///< no locks
    SpinEbo,     ///< spin with exponential backoff
    FetchAdd,    ///< ticket lock (fetch-add), FIFO handoff
    Sleep,       ///< sleep-based backoff
};

/**
 * A GPU kernel launch descriptor — the unit gem5-resources ships for
 * each Table IV application. Per iteration, every wave executes
 * csPerIter lock/critical-section sequences, vmemPerIter global memory
 * ops, valuPerIter vector-ALU ops, ldsOpsPerIter LDS ops, saluPerIter
 * scalar ops, and then barriersPerIter workgroup barriers.
 */
struct KernelDesc
{
    std::string name;

    unsigned numWorkgroups = 1;
    unsigned wavesPerWg = 1;
    unsigned vgprsPerWave = 256;   ///< against the 8K/CU budget
    unsigned sgprsPerWave = 128;
    unsigned ldsPerWg = 0;         ///< bytes

    unsigned iterations = 1;
    unsigned valuPerIter = 0;
    unsigned saluPerIter = 0;
    unsigned vmemPerIter = 0;
    unsigned ldsOpsPerIter = 0;
    unsigned barriersPerIter = 0;

    // Synchronization behaviour (HeteroSync-style workloads).
    MutexKind mutexKind = MutexKind::None;
    unsigned csPerIter = 0;
    unsigned csMemOps = 0;         ///< loads+stores inside the CS
    bool uniqueLockPerWg = false;  ///< the "Uniq" variants

    /** Fraction of global accesses hitting L1 at baseline occupancy. */
    double l1Locality = 0.5;
    /** Fraction of L1 misses hitting L2. */
    double l2Locality = 0.7;

    /** @return total wavefronts the launch creates. */
    unsigned totalWaves() const { return numWorkgroups * wavesPerWg; }

    Json toJson() const;
    static KernelDesc fromJson(const Json &j);
};

/** The outcome of one kernel launch. */
struct GpuRunResult
{
    std::uint64_t shaderCycles = 0;   ///< Fig 9's execution time
    std::uint64_t valuIssues = 0;
    std::uint64_t wastedIssueCycles = 0;
    std::uint64_t memRequests = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t atomicRetries = 0;
    std::uint64_t barrierWaits = 0;
    std::uint64_t maxResidentWavesPerCu = 0;

    Json toJson() const;
};

class GpuModel
{
  public:
    GpuModel(const GpuConfig &cfg, RegAllocPolicy policy);

    /** Run one kernel to completion; @return timing and counters. */
    GpuRunResult run(const KernelDesc &kernel);

    /** @return waves the policy allows resident per CU for @p kernel. */
    unsigned residentWaveLimit(const KernelDesc &kernel) const;

  private:
    GpuConfig cfg;
    RegAllocPolicy policy;
};

} // namespace g5::sim::gpu

#endif // G5_SIM_GPU_GPU_HH
