#include "sim/stats.hh"

#include <cstdio>

#include "base/logging.hh"

namespace g5::sim
{

StatGroup::StatGroup(std::string name)
    : groupName(std::move(name))
{}

void
StatGroup::addStat(const std::string &name, Scalar *stat,
                   const std::string &desc)
{
    if (!stats.emplace(name, Entry{stat, desc}).second)
        panic("StatGroup '" + groupName + "': duplicate stat '" + name +
              "'");
}

void
StatGroup::addChild(StatGroup *child)
{
    children.push_back(child);
}

std::string
StatGroup::dumpText(const std::string &prefix) const
{
    std::string path =
        prefix.empty() ? groupName
                       : (groupName.empty() ? prefix
                                            : prefix + "." + groupName);
    std::string out;
    for (const auto &kv : stats) {
        char line[256];
        std::string full =
            path.empty() ? kv.first : path + "." + kv.first;
        std::snprintf(line, sizeof(line), "%-48s %20.6f  # %s\n",
                      full.c_str(), kv.second.stat->value(),
                      kv.second.desc.c_str());
        out += line;
    }
    for (const auto *child : children)
        out += child->dumpText(path);
    return out;
}

Json
StatGroup::dumpJson() const
{
    Json obj = Json::object();
    for (const auto &kv : stats)
        obj[kv.first] = kv.second.stat->value();
    for (const auto *child : children)
        obj[child->name()] = child->dumpJson();
    return obj;
}

void
StatGroup::reset()
{
    for (auto &kv : stats)
        kv.second.stat->set(0.0);
    for (auto *child : children)
        child->reset();
}

const Scalar *
StatGroup::find(const std::string &dotted_path) const
{
    std::size_t dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        auto it = stats.find(dotted_path);
        return it == stats.end() ? nullptr : it->second.stat;
    }
    std::string head = dotted_path.substr(0, dot);
    std::string tail = dotted_path.substr(dot + 1);
    for (const auto *child : children)
        if (child->name() == head)
            return child->find(tail);
    return nullptr;
}

} // namespace g5::sim
