#include "sim/eventq.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"
#include "scheduler/task_queue.hh"

namespace g5::sim
{

namespace
{

/** Min-heap order for the far (beyond-horizon) key heap. */
const auto farCmp = [](const auto &a, const auto &b) { return b < a; };

} // namespace

EventQueue::EventQueue() = default;
EventQueue::~EventQueue() = default;

void
EventQueue::pastPanic(Tick when) const
{
    panic(csprintf("event scheduled in the past (%llu < %llu)",
                   (unsigned long long)when, (unsigned long long)now));
}

void
EventQueue::addSlabChunk()
{
    slabChunks.push_back(std::make_unique<Rec[]>(chunkSize));
}

void
EventQueue::pushFar(const Key &k)
{
    far.push_back(k);
    std::push_heap(far.begin(), far.end(), farCmp);
    ++residentKeys;
}

void
EventQueue::insertNearSlow(std::vector<Key> &b, const Key &k,
                           std::uint64_t day)
{
    // The dead prefix of the current day's bucket is off-limits: a key
    // scheduled at curTick can compare below an already-fired same-tick
    // key, and landing inside the prefix would make it unreachable.
    const std::size_t lo = (day == curDay) ? drainPos : 0;
    auto it = std::lower_bound(b.begin() + lo, b.end(), k);
    b.insert(it, k);
}

void
EventQueue::deschedule(std::uint64_t event_id)
{
    const std::uint32_t slot = static_cast<std::uint32_t>(event_id);
    const std::uint32_t gen = static_cast<std::uint32_t>(event_id >> 32);
    if (slot >= slabSize)
        return;
    Rec &r = rec(slot);
    // Fired or already-descheduled ids fail the generation check and
    // are no-ops — nothing is retained for them (the old tombstone set
    // kept an entry forever when a fired id was descheduled).
    if (r.gen != gen || !r.live)
        return;
    freeSlot(slot);
    --liveEvents;
    maybePurge();
}

void
EventQueue::maybePurge()
{
    const std::size_t dead = residentKeys - liveEvents;
    // Amortized O(1): a sweep costs O(resident) = O(dead + live), and
    // the trigger guarantees dead dominates, so the cost charges to the
    // deschedules that created the stale keys.
    if (dead > 1024 && dead > 4 * liveEvents)
        purgeDeadKeys();
}

void
EventQueue::purgeDeadKeys()
{
    auto isStale = [this](const Key &k) { return stale(k); };
    for (unsigned i = 0; i < numBuckets; ++i) {
        std::vector<Key> &b = buckets[i];
        if (b.empty())
            continue;
        std::erase_if(b, isStale);
        if (b.empty())
            clearOccupied(i);
    }
    drainPos = 0; // prefix of the current bucket was stale by definition
    std::erase_if(far, isStale);
    std::make_heap(far.begin(), far.end(), farCmp);

    std::size_t resident = far.size();
    for (const std::vector<Key> &b : buckets)
        resident += b.size();
    residentKeys = resident;
}

unsigned
EventQueue::nextOccupiedOffset() const
{
    const unsigned idx = indexOf(curDay);
    unsigned d = 1;
    while (d < numBuckets) {
        const unsigned i = (idx + d) & (numBuckets - 1);
        const std::uint64_t w = occupied[i >> 6] >> (i & 63);
        if (w & 1)
            return d;
        if (w == 0)
            d += 64 - (i & 63); // skip to the next bitmap word
        else
            d += std::countr_zero(w); // jump to the next set bit
    }
    return 0;
}

void
EventQueue::dropFarStale()
{
    while (!far.empty() && stale(far.front())) {
        std::pop_heap(far.begin(), far.end(), farCmp);
        far.pop_back();
        --residentKeys;
    }
}

void
EventQueue::migrateFar()
{
    // Far keys all satisfy when >= ringStart (the calendar never
    // advances past the earliest pending event).
    if (far.empty() || far.front().when - ringStart() >= horizon)
        return;
    std::vector<Key> keep;
    keep.reserve(far.size());
    for (const Key &k : far) {
        if (stale(k)) {
            --residentKeys;
        } else if (k.when - ringStart() < horizon) {
            --residentKeys;
            insertNear(k);
        } else {
            keep.push_back(k);
        }
    }
    far.swap(keep);
    std::make_heap(far.begin(), far.end(), farCmp);
}

void
EventQueue::advanceToDay(std::uint64_t day)
{
    // Everything left in the outgoing bucket has fired or been
    // descheduled (peekNext found no live key in it).
    std::vector<Key> &old = buckets[indexOf(curDay)];
    residentKeys -= old.size();
    old.clear();
    clearOccupied(indexOf(curDay));
    // Reclaim the outgoing bucket's storage into the shared spare;
    // insertNear hands it to the next day that starts.
    if (old.capacity() > spareStorage.capacity())
        spareStorage.swap(old);
    curDay = day;
    drainPos = 0;
    migrateFar();
}

const EventQueue::Key *
EventQueue::peekNext(std::uint64_t *advance_day)
{
    // 1. Current day's bucket: skip the stale prefix; the remainder is
    //    sorted, so the first live key is the global minimum.
    std::vector<Key> &cur = buckets[indexOf(curDay)];
    while (drainPos < cur.size() && stale(cur[drainPos]))
        ++drainPos;
    if (drainPos < cur.size()) {
        *advance_day = curDay;
        return &cur[drainPos];
    }

    // 2. Next occupied bucket in the ring. All-stale buckets met along
    //    the way are physically erased (safe: stale keys never fire).
    for (;;) {
        const unsigned d = nextOccupiedOffset();
        if (d == 0)
            break;
        const unsigned i = indexOf(curDay + d);
        std::vector<Key> &b = buckets[i];
        std::size_t p = 0;
        while (p < b.size() && stale(b[p]))
            ++p;
        if (p > 0) {
            residentKeys -= p;
            b.erase(b.begin(), b.begin() + p);
        }
        if (b.empty()) {
            clearOccupied(i);
            continue;
        }
        *advance_day = curDay + d;
        return &b.front();
    }

    // 3. Beyond the horizon.
    dropFarStale();
    if (!far.empty()) {
        *advance_day = dayOf(far.front().when);
        return &far.front();
    }
    return nullptr;
}

void
EventQueue::exitSimLoop(const std::string &cause, int code)
{
    exitRequested = true;
    exitDesc.cause = cause;
    exitDesc.code = code;
    exitDesc.limitReached = false;
}

ExitEvent
EventQueue::run(Tick max_tick, scheduler::CancelToken *token)
{
    exitRequested = false;
    exitDesc = ExitEvent{};

    for (;;) {
        // Fast path: fire events straight out of the current day's
        // bucket. The bucket vector object (not its storage) has a
        // stable address, and callbacks can only append to / cancel in
        // it, never change curDay, so re-indexing per event is all the
        // re-validation needed.
        std::vector<Key> &cur = buckets[indexOf(curDay)];
        while (drainPos < cur.size()) {
            const Key &kr = cur[drainPos];
            Rec &r = rec(kr.slot);
            if (r.gen != kr.gen || !r.live) {
                ++drainPos; // lazily drop descheduled keys
                continue;
            }
            if (kr.when > max_tick) {
                // No calendar state is committed here: ringStart stays
                // <= now, so later schedules can't alias a stale bucket.
                exitDesc.cause = "simulate() limit reached";
                exitDesc.code = 0;
                exitDesc.limitReached = true;
                now = max_tick;
                return exitDesc;
            }
            const std::uint32_t slot = kr.slot;
            const Tick when = kr.when; // kr dies if the callback appends
            ++drainPos;

            // Pre-invalidate so a self-deschedule from inside the
            // callback is a generation-mismatch no-op, then invoke in
            // place — slab chunks never move, even if the callback
            // schedules events.
            r.live = false;
            ++r.gen;
            --liveEvents;
            now = when;
            r.fn.consume();
            freeSlots.push_back(slot);
            ++eventsRun;

            if (token && (eventsRun % pollInterval) == 0)
                token->checkpoint();

            if (exitRequested)
                return exitDesc;
        }

        // Slow path: current bucket exhausted — find the next occupied
        // day (ring scan or far heap) and advance the calendar.
        std::uint64_t day;
        const Key *cand = peekNext(&day);
        if (!cand)
            break;
        if (cand->when > max_tick) {
            exitDesc.cause = "simulate() limit reached";
            exitDesc.code = 0;
            exitDesc.limitReached = true;
            now = max_tick;
            return exitDesc;
        }
        advanceToDay(day);
    }

    exitDesc.cause = "event queue drained";
    exitDesc.code = 0;
    return exitDesc;
}

std::size_t
EventQueue::footprintBytes() const
{
    std::size_t bytes = sizeof(*this);
    bytes += slabChunks.size() * chunkSize * sizeof(Rec);
    bytes += slabChunks.capacity() * sizeof(slabChunks[0]);
    bytes += freeSlots.capacity() * sizeof(std::uint32_t);
    bytes += far.capacity() * sizeof(Key);
    bytes += spareStorage.capacity() * sizeof(Key);
    for (const std::vector<Key> &b : buckets)
        bytes += b.capacity() * sizeof(Key);
    return bytes;
}

} // namespace g5::sim
