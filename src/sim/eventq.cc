#include "sim/eventq.hh"

#include "base/logging.hh"
#include "scheduler/task_queue.hh"

namespace g5::sim
{

EventQueue::EventQueue() = default;

std::uint64_t
EventQueue::schedule(Tick when, std::function<void()> fn, int priority)
{
    if (when < now)
        panic(csprintf("event scheduled in the past (%llu < %llu)",
                       (unsigned long long)when, (unsigned long long)now));
    std::uint64_t id = nextSeq++;
    pq.push(Entry{when, priority, id, std::move(fn)});
    ++liveEvents;
    return id;
}

void
EventQueue::deschedule(std::uint64_t event_id)
{
    // O(1) tombstone insert; the guard keeps a double-deschedule of the
    // same id from draining liveEvents twice (which made empty() lie).
    if (cancelled.insert(event_id).second && liveEvents > 0)
        --liveEvents;
}

bool
EventQueue::isCancelled(std::uint64_t seq)
{
    // O(1) probe on the pop path (was a linear std::find per event).
    auto it = cancelled.find(seq);
    if (it == cancelled.end())
        return false;
    cancelled.erase(it);
    return true;
}

void
EventQueue::exitSimLoop(const std::string &cause, int code)
{
    exitRequested = true;
    exitDesc.cause = cause;
    exitDesc.code = code;
    exitDesc.limitReached = false;
}

ExitEvent
EventQueue::run(Tick max_tick, scheduler::CancelToken *token)
{
    exitRequested = false;
    exitDesc = ExitEvent{};

    while (!pq.empty()) {
        Entry entry = pq.top();
        if (entry.when > max_tick) {
            exitDesc.cause = "simulate() limit reached";
            exitDesc.code = 0;
            exitDesc.limitReached = true;
            now = max_tick;
            return exitDesc;
        }
        pq.pop();
        if (isCancelled(entry.seq))
            continue;
        --liveEvents;

        now = entry.when;
        entry.fn();
        ++eventsRun;

        if (token && (eventsRun % pollInterval) == 0)
            token->checkpoint();

        if (exitRequested)
            return exitDesc;
    }

    exitDesc.cause = "event queue drained";
    exitDesc.code = 0;
    return exitDesc;
}

} // namespace g5::sim
