/**
 * @file
 * Browse the g5-resources catalog and inspect a disk image's manifest
 * and Packer provenance.
 *
 * Usage: ./build/examples/example_resource_browser [resource]
 *        (default: parsec)
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "resources/catalog.hh"

using namespace g5;
using namespace g5::resources;

int
main(int argc, char **argv)
{
    std::string which = argc > 1 ? argv[1] : "parsec";

    std::printf("g5-resources catalog (%zu entries):\n", catalog().size());
    for (const auto &entry : catalog()) {
        std::printf("  %-14s %-18s%s%s\n", entry.name.c_str(),
                    resourceTypeName(entry.type),
                    entry.variant.empty()
                        ? ""
                        : (" [" + entry.variant + "]").c_str(),
                    entry.requiresLicense ? " [license required]" : "");
    }

    const ResourceEntry *entry = findResource(which);
    if (!entry) {
        std::printf("\nno resource named '%s'\n", which.c_str());
        return 1;
    }
    std::printf("\n%s — %s\n", entry->name.c_str(),
                entry->description.c_str());

    sim::fs::DiskImagePtr image;
    if (which == "parsec")
        image = buildParsecImage("20.04");
    else if (which == "boot-exit")
        image = buildBootExitImage();

    if (image) {
        std::printf("\nmaterialized image (%zu bytes serialized):\n",
                    image->sizeBytes());
        std::printf("  OS: %s %s, kernel %s, compiler %s\n",
                    image->osInfo().getString("name").c_str(),
                    image->osInfo().getString("release").c_str(),
                    image->osInfo().getString("kernel").c_str(),
                    image->osInfo().getString("compiler").c_str());
        std::printf("  programs:\n");
        for (const auto &path : image->programPaths())
            std::printf("    %s\n", path.c_str());
        std::printf("  provenance (Packer steps):\n");
        for (const auto &step :
             image->manifest().at("provenance").asArray())
            std::printf("    - %s\n", step.asString().c_str());
    } else {
        std::printf("\n(no materializer wired for '%s'; images exist "
                    "for 'parsec' and 'boot-exit')\n",
                    which.c_str());
    }
    return 0;
}
