/**
 * @file
 * The hack-back resource end to end: boot once, checkpoint, then run
 * several different host-provided scripts from the same checkpoint —
 * never paying for the boot again.
 *
 * Usage: ./build/examples/example_hack_back_demo
 */

#include <cstdio>

#include "base/wallclock.hh"
#include "resources/catalog.hh"
#include "sim/fs/fs_system.hh"
#include "sim/fs/guest_abi.hh"
#include "sim/isa/builder.hh"

using namespace g5;
using namespace g5::sim;
using namespace g5::sim::fs;

namespace
{

FsConfig
baseConfig(DiskImagePtr disk)
{
    FsConfig cfg;
    cfg.cpuType = CpuType::TimingSimple;
    cfg.numCpus = 1;
    cfg.memSystem = "classic";
    cfg.kernelVersion = "4.15.18";
    cfg.disk = std::move(disk);
    cfg.initProgramPath = "/root/hack_back.sh";
    cfg.checkpointAfterBoot = true;
    cfg.simVersion = "";
    return cfg;
}

isa::ProgramPtr
script(const std::string &name, int work_items)
{
    isa::ProgramBuilder pb(name);
    pb.movi(1, pb.str(name + ": starting"));
    pb.syscall(SYS_WRITE);
    pb.movi(9, 0);
    pb.movi(7, work_items);
    auto loop = pb.newLabel();
    auto done = pb.newLabel();
    pb.bind(loop);
    pb.beq(7, 9, done);
    pb.muli(10, 10, 1664525);
    pb.addi(7, 7, -1);
    pb.jmp(loop);
    pb.bind(done);
    pb.movi(1, pb.str(name + ": done"));
    pb.syscall(SYS_WRITE);
    pb.movi(1, 0);
    pb.syscall(SYS_EXIT);
    return pb.finish();
}

} // anonymous namespace

int
main()
{
    // Phase 1: boot once, stop at the post-boot checkpoint.
    double t0 = monotonicSeconds();
    Json ckpt;
    Tick boot_ticks;
    {
        FsSystem fs(baseConfig(resources::buildHackBackImage()));
        SimResult r = fs.run();
        if (r.exitCause != "checkpoint") {
            std::printf("unexpected exit: %s\n", r.exitCause.c_str());
            return 1;
        }
        ckpt = fs.checkpoint();
        boot_ticks = r.simTicks;
    }
    double boot_wall = monotonicSeconds() - t0;
    std::printf("boot + checkpoint: %.2f ms simulated, %.0f ms host, "
                "checkpoint %.1f KiB\n\n",
                double(boot_ticks) / 1e9, boot_wall * 1e3,
                double(ckpt.dump().size()) / 1024.0);

    // Phase 2: restore the same checkpoint against three different
    // host scripts.
    for (int i = 1; i <= 3; ++i) {
        std::string name = "experiment-" + std::to_string(i);
        auto disk =
            resources::buildHackBackImage(script(name, 20000 * i));
        double t1 = monotonicSeconds();
        FsSystem fs(baseConfig(disk), ckpt);
        SimResult r = fs.run();
        // Restored systems restart the clock at 0: simTicks is the
        // post-checkpoint portion only.
        std::printf("%s: %-34s %8.3f ms simulated, %4.0f ms host "
                    "(no re-boot)\n",
                    r.success() ? "ok " : "ERR", name.c_str(),
                    double(r.simTicks) / 1e9,
                    (monotonicSeconds() - t1) * 1e3);
    }

    std::printf("\nThe checkpoint froze the guest right after boot; "
                "each experiment resumed from\nit with a different "
                "/root/hack_back.sh — the hack-back resource's "
                "workflow.\n");
    return 0;
}
