/**
 * @file
 * Analysis workflow (the paper's Jupyter + Matplotlib step): run a
 * small boot study, then query the database, export CSV, and draw a
 * terminal bar chart of boot times by kernel version.
 *
 * Usage: ./build/examples/example_analyze_results
 */

#include <cstdio>

#include "art/report.hh"
#include "art/tasks.hh"
#include "art/workspace.hh"
#include "resources/catalog.hh"
#include "sim/fs/known_issues.hh"

using namespace g5;
using namespace g5::art;

int
main()
{
    Workspace ws("/tmp/g5art_analyze");
    auto binary = ws.gem5Binary();
    auto disk = ws.disk("boot-exit", resources::buildBootExitImage());
    auto script = ws.runScript("run_exit.py", "boot-exit run script");

    // One timing boot per LTS kernel.
    Tasks tasks(ws.adb()); // 0 workers = one per hardware thread
    for (const auto &version : sim::fs::fig8Kernels()) {
        auto kernel = ws.kernel(version);
        Json params = Json::object();
        params["cpu"] = "timing";
        params["num_cpus"] = 1;
        params["mem_system"] = "classic";
        params["boot_type"] = "init";
        tasks.applyAsync(Gem5Run::createFSRun(
            ws.adb(), "boot-" + version, binary.path, script.path,
            ws.outdir("boot-" + version), binary.artifact,
            binary.repoArtifact, script.repoArtifact, kernel.path,
            disk.path, kernel.artifact, disk.artifact, params, 300.0));
    }
    tasks.waitAll();

    // 1. CSV export, like df.to_csv() from the paper's notebook.
    Json all = Json::object();
    all["status"] = "SUCCESS";
    std::string csv = runsToCsv(
        ws.adb(), all,
        {"name", "params.cpu", "simTicks", "totalInsts",
         "stats.os.numSyscalls", "wallSeconds"});
    std::printf("---- runs.csv "
                "--------------------------------------------------\n%s",
                csv.c_str());

    // 2. A chart, like plt.barh(): boot time by kernel version.
    auto metric = collectMetric(ws.adb(), all, "simTicks");
    for (auto &row : metric)
        row.second /= 1e9; // ticks -> ms
    std::printf("\n---- boot time by kernel (ms simulated) "
                "-------------------------\n%s",
                asciiBarChart(metric, 44).c_str());
    std::printf("\nnewer kernels execute more boot-time work — the "
                "effect use-case 1 builds on.\n");
    return 0;
}
