/**
 * @file
 * Use-case 1 in miniature: run one PARSEC application on both Ubuntu
 * LTS releases and compare.
 *
 * Usage: ./build/examples/example_parsec_study [app] [cores]
 *        (defaults: blackscholes 2)
 *
 * The OS difference lives entirely on the disk image: each image
 * carries binaries compiled by that release's toolchain, so the same
 * run script produces different instruction streams — the mechanism
 * behind the paper's Fig 6.
 */

#include <cstdio>
#include <cstdlib>

#include "art/tasks.hh"
#include "art/workspace.hh"
#include "resources/catalog.hh"
#include "workloads/parsec.hh"

using namespace g5;
using namespace g5::art;

int
main(int argc, char **argv)
{
    std::string app = argc > 1 ? argv[1] : "blackscholes";
    int cores = argc > 2 ? std::atoi(argv[2]) : 2;
    workloads::parsecApp(app); // validate early (fatal on junk)

    Workspace ws("/tmp/g5art_parsec_study");
    auto gem5 = ws.gem5Binary("20.1.0.4");
    auto script = ws.runScript("launch_parsec_tests.py",
                               "PARSEC launch script");

    Tasks tasks(ws.adb()); // 0 workers = one per hardware thread
    for (const char *release : {"18.04", "20.04"}) {
        auto kernel =
            ws.kernel(release == std::string("18.04") ? "4.15.18"
                                                      : "5.4.51");
        auto disk = ws.disk("parsec-ubuntu-" + std::string(release),
                            resources::buildParsecImage(release));

        Json params = Json::object();
        params["cpu"] = "timing";
        params["num_cpus"] = cores;
        params["mem_system"] = cores == 1 ? "classic" : "MESI_Two_Level";
        params["boot_type"] = "init";
        params["workload"] = "/parsec/bin/" + app;
        params["workload_arg"] = cores;
        params["max_ticks"] = std::int64_t(300'000'000'000'000);

        std::string name = app + "-ubuntu" + release;
        tasks.applyAsync(Gem5Run::createFSRun(
            ws.adb(), name, gem5.path, script.path, ws.outdir(name),
            gem5.artifact, gem5.repoArtifact, script.repoArtifact,
            kernel.path, disk.path, kernel.artifact, disk.artifact,
            params, 3600.0));
    }
    tasks.waitAll();

    std::printf("%s on %d TimingSimpleCPU core(s), simmedium:\n\n",
                app.c_str(), cores);
    std::printf("%-14s %14s %16s %14s\n", "userland", "ROI (ms)",
                "instructions", "utilization");
    for (const char *release : {"18.04", "20.04"}) {
        Json doc = ws.adb().runs().findOne(Json::object(
            {{"name", Json(app + "-ubuntu" + release)}}));
        if (doc.getString("status") != "SUCCESS") {
            std::printf("%-14s FAILED: %s\n", release,
                        doc.getString("error").c_str());
            continue;
        }
        // Utilization: busy fraction over all CPUs during the run.
        double busy = 0, total = 0;
        for (int c = 0; c < cores; ++c) {
            auto prefix = "stats.cpu" + std::to_string(c);
            const Json *b = doc.find(prefix + ".busyTicks");
            const Json *i = doc.find(prefix + ".idleTicks");
            if (b && i) {
                busy += b->asDouble();
                total += b->asDouble() + i->asDouble();
            }
        }
        std::printf("%-14s %14.3f %16lld %13.1f%%\n",
                    ("ubuntu-" + std::string(release)).c_str(),
                    double(doc.getInt("roiTicks")) / 1e9,
                    (long long)doc.getInt("totalInsts"),
                    total > 0 ? 100.0 * busy / total : 0.0);
    }
    std::printf("\nexpected: 20.04 executes more instructions at higher "
                "utilization and\n(for most applications) finishes "
                "sooner.\n");
    return 0;
}
