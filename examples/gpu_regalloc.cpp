/**
 * @file
 * Use-case 3 in miniature: compare the simple and dynamic register
 * allocators on selected GPU applications.
 *
 * Usage: ./build/examples/example_gpu_regalloc [app ...]
 *        (defaults: FAMutex fwd_pool MatrixTranspose HACC)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/gpu/gpu.hh"
#include "workloads/gpu_apps.hh"

using namespace g5;
using namespace g5::sim::gpu;
using namespace g5::workloads;

int
main(int argc, char **argv)
{
    std::vector<std::string> apps;
    for (int i = 1; i < argc; ++i)
        apps.push_back(argv[i]);
    if (apps.empty())
        apps = {"FAMutex", "fwd_pool", "MatrixTranspose", "HACC"};

    GpuConfig cfg; // Table III defaults
    std::printf("GCN3-style GPU: %u CUs x %u SIMD16, %u waves/SIMD max, "
                "%uK VGPRs/CU\n\n",
                cfg.numCus, cfg.simdPerCu, cfg.maxWavesPerSimd,
                cfg.vgprPerCu / 1024);
    std::printf("%-24s %12s %12s %9s %10s %9s\n", "application",
                "simple(cyc)", "dynamic(cyc)", "speedup", "waves/CU",
                "retries");

    for (const auto &name : apps) {
        const GpuAppEntry &app = gpuApp(name);
        GpuModel simple(cfg, RegAllocPolicy::Simple);
        GpuModel dynamic(cfg, RegAllocPolicy::Dynamic);
        GpuRunResult rs = simple.run(app.kernel);
        GpuRunResult rd = dynamic.run(app.kernel);

        std::printf("%-24s %12llu %12llu %9.3f %10llu %9llu\n",
                    name.c_str(),
                    (unsigned long long)rs.shaderCycles,
                    (unsigned long long)rd.shaderCycles,
                    double(rs.shaderCycles) / double(rd.shaderCycles),
                    (unsigned long long)rd.maxResidentWavesPerCu,
                    (unsigned long long)rd.atomicRetries);
    }

    std::printf("\nspeedup > 1: the dynamic allocator's extra wavefronts "
                "hide memory latency;\nspeedup < 1: oversubscription "
                "amplifies dependence-tracking stalls, cache\nthrash "
                "and lock contention (the paper's surprising result).\n");
    return 0;
}
