/**
 * @file
 * Guest-level error-injection coverage study — the "Fig 10" census.
 *
 * Flips one architectural bit (a register or a word of physical
 * memory) at a chosen dynamic instruction count of an SE workload,
 * pairs every injected run with a checker replay (the identical
 * configuration without the flip), and classifies each pair by the
 * divergence of the two runs' outcomes and final architectural MD5
 * digests: crashed / detected / silent-corruption / masked.
 *
 * Like the boot sweep, the study is crash-resumable (journalled to an
 * on-disk database) and distributes across forked worker processes
 * under G5_WORKERS — the census is byte-identical either way.
 *
 * Usage: ./build/examples/example_error_study [cpu] [flips-per-target]
 *        cpu in {atomic, fast}      (default fast)
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "art/errstudy.hh"
#include "art/tasks.hh"
#include "art/workspace.hh"
#include "base/logging.hh"
#include "scheduler/worker_pool.hh"
#include "sim/fs/guest_abi.hh"
#include "sim/isa/builder.hh"

using namespace g5;
using namespace g5::art;

namespace
{

/** A store-heavy accumulator loop: flips have room to propagate. */
sim::isa::ProgramPtr
workloadProgram()
{
    sim::isa::ProgramBuilder pb("err-loop");
    pb.movi(3, 0x9000);
    pb.movi(4, 0);
    pb.movi(5, 0);
    pb.movi(6, 256);
    auto loop = pb.newLabel();
    pb.bind(loop);
    pb.muli(7, 5, 3);
    pb.add(4, 4, 7);
    pb.st(3, 0, 4);
    pb.addi(3, 3, 8);
    pb.addi(5, 5, 1);
    pb.blt(5, 6, loop);
    pb.movi(1, pb.str("loop done"));
    pb.syscall(sim::fs::SYS_WRITE);
    pb.movi(1, 0);
    pb.syscall(sim::fs::SYS_EXIT);
    return pb.finish();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string cpu = argc > 1 ? argv[1] : "fast";
    int flips = argc > 2 ? std::atoi(argv[2]) : 8;

    setQuiet(true); // corrupted runs failing is the point
    std::string db_dir = "/tmp/g5art_error_study_db_" + cpu;
    Workspace ws("/tmp/g5art_error_study", db_dir);
    auto gem5 = ws.gem5Binary("21.0", "X86");
    auto script = ws.runScript("err_study.py", "error-study script");

    // Materialize + register the workload binary.
    std::string bin_path = ws.root() + "/workloads/err-loop";
    std::filesystem::create_directories(ws.root() + "/workloads");
    {
        std::ofstream out(bin_path);
        out << workloadProgram()->toJson().dump();
    }
    Artifact::Params wp;
    wp.typ = "binary";
    wp.name = "err-loop";
    wp.command = "gcc -O2 err_loop.c -o err_loop";
    wp.path = bin_path;
    Artifact workload = Artifact::registerArtifact(ws.adb(), wp);

    Json params = Json::object();
    params["cpu"] = cpu;
    params["num_cpus"] = 1;
    params["mem_system"] = "classic";

    // The flip matrix: register and memory targets, seeds spread so
    // each flip lands in a different word, triggers spread through the
    // loop's lifetime.
    std::vector<ErrorCell> cells;
    for (int i = 0; i < flips; ++i) {
        for (const char *target : {"reg", "mem"}) {
            std::string flip = std::string(target) + ":" +
                               std::to_string((i * 11) % 64) + ":" +
                               std::to_string(50 + i * 150) + ":" +
                               std::to_string(1 + i);
            cells.push_back({"loop", flip, params});
        }
    }

    ErrorStudy study(ws.adb(), "error-study-" + cpu);
    Tasks tasks(ws.adb());
    auto factory = [&](const std::string &name, const Json &p) {
        std::string flat = name;
        for (char &c : flat)
            if (c == '/' || c == ':')
                c = '_';
        return Gem5Run::createSERun(
            ws.adb(), name, gem5.path, script.path, ws.outdir(flat),
            gem5.artifact, gem5.repoArtifact, script.repoArtifact,
            bin_path, workload, p, 120.0);
    };
    Json census = study.run(tasks, cells, factory);
    setQuiet(false);

    if (study.skipped() > 0)
        std::printf("resumed: %zu pair members already had terminal "
                    "results and were skipped\n\n",
                    study.skipped());
    if (auto pool = tasks.workerPool()) {
        Json ps = pool->summary();
        std::printf("worker cluster: %lld processes, %lld lost\n\n",
                    static_cast<long long>(ps.getInt("live")),
                    static_cast<long long>(ps.getInt("lost")));
    }

    std::printf("error-detection census, %s CPU, %zu flips:\n\n",
                cpu.c_str(), cells.size());
    std::printf("%-10s %-16s %-18s %-12s %-12s\n", "workload", "flip",
                "class", "main", "checker");
    const Json &rows = census.at("cells");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Json &cell = rows.at(i);
        std::printf("%-10s %-16s %-18s %-12s %-12s\n",
                    cell.getString("workload").c_str(),
                    cell.getString("flip").c_str(),
                    cell.getString("class").c_str(),
                    cell.getString("mainOutcome").c_str(),
                    cell.getString("checkerOutcome").c_str());
    }
    std::printf("\ntotals: %s\n", census.at("totals").dump().c_str());
    std::printf("\nRe-run this command: every pair is served from the "
                "journal and the census\nreproduces byte-for-byte. Run "
                "under G5_WORKERS=4 for the distributed version.\n");
    return 0;
}
