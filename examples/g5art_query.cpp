/**
 * @file
 * g5art_query — a command-line client for a persisted g5art database
 * (the "query the database at any time" arrow of Fig 2, step 8).
 *
 * Usage:
 *   example_g5art_query <db-dir> runs [status]
 *   example_g5art_query <db-dir> artifacts [type]
 *   example_g5art_query <db-dir> show <hash-or-run-id>
 *   example_g5art_query <db-dir> csv <field> [field ...]
 *   example_g5art_query <db-dir> provenance <artifact-hash>
 *
 * With no db-dir on disk yet, run example_quickstart or any bench with
 * an on-disk Workspace first, or point it at a directory produced by
 * `Workspace(root, db_dir)`.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "art/report.hh"
#include "art/run.hh"
#include "db/query.hh"
#include "art/workspace.hh"

using namespace g5;
using namespace g5::art;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: example_g5art_query <db-dir> <command> [args]\n"
        "  runs [status]            list runs (optionally by status)\n"
        "  artifacts [type]         list artifacts (optionally by type)\n"
        "  show <hash|run-id>       dump one document as JSON\n"
        "  csv <field> [field...]   export all runs as CSV\n"
        "  provenance <hash>        runs that used this artifact\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string db_dir = argv[1];
    std::string cmd = argv[2];

    auto database = std::make_shared<db::Database>(db_dir);
    ArtifactDb adb(database);

    if (cmd == "runs") {
        Json q = Json::object();
        if (argc > 3)
            q["status"] = argv[3];
        std::printf("%-36s %-10s %-12s %14s\n", "name", "status",
                    "outcome", "simTicks");
        adb.runs().forEach([&](const Json &doc) {
            if (!db::matches(doc, q))
                return;
            std::printf("%-36s %-10s %-12s %14lld\n",
                        doc.getString("name").c_str(),
                        doc.getString("status").c_str(),
                        doc.getString("outcome").c_str(),
                        (long long)doc.getInt("simTicks"));
        });
        return 0;
    }

    if (cmd == "artifacts") {
        std::vector<Json> hits =
            argc > 3 ? adb.searchByType(argv[3])
                     : adb.artifacts().find(Json::object());
        std::printf("%-24s %-16s %s\n", "name", "type", "hash");
        for (const auto &doc : hits)
            std::printf("%-24s %-16s %s\n",
                        doc.getString("name").c_str(),
                        doc.getString("type").c_str(),
                        doc.getString("hash").c_str());
        return 0;
    }

    if (cmd == "show" && argc > 3) {
        std::string key = argv[3];
        Json doc = adb.artifacts().findOne(
            Json::object({{"hash", Json(key)}}));
        if (doc.isNull())
            doc = adb.runs().findById(key);
        if (doc.isNull()) {
            std::fprintf(stderr, "nothing with hash/id '%s'\n",
                         key.c_str());
            return 1;
        }
        std::printf("%s\n", doc.dump(2).c_str());
        return 0;
    }

    if (cmd == "csv" && argc > 3) {
        std::vector<std::string> columns = {"name", "status"};
        for (int i = 3; i < argc; ++i)
            columns.push_back(argv[i]);
        std::printf("%s",
                    runsToCsv(adb, Json::object(), columns).c_str());
        return 0;
    }

    if (cmd == "provenance" && argc > 3) {
        auto runs = adb.runsUsingArtifact(argv[3]);
        std::printf("%zu run(s) used artifact %s:\n", runs.size(),
                    argv[3]);
        for (const auto &doc : runs)
            std::printf("  %-36s %s\n", doc.getString("name").c_str(),
                        doc.getString("outcome").c_str());
        return 0;
    }

    return usage();
}
