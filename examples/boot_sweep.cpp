/**
 * @file
 * Use-case 2 in miniature: boot-test a single CPU model across memory
 * systems, core counts, and the five LTS kernels — a slice of Fig 8.
 *
 * The sweep is crash-resumable: progress is journalled to an on-disk
 * database, so killing the process mid-sweep and re-running the same
 * command resumes where it stopped, skipping every run that already
 * has a terminal result.
 *
 * Usage: ./build/examples/example_boot_sweep [cpu] [boot]
 *        cpu  in {kvm, atomic, timing, o3}   (default o3 — the
 *             interesting one: it exhibits the v20.1.0.4 bug census)
 *        boot in {init, systemd}             (default init)
 */

#include <cstdio>
#include <map>
#include <vector>

#include "art/sweep.hh"
#include "art/tasks.hh"
#include "art/workspace.hh"
#include "base/logging.hh"
#include "resources/catalog.hh"
#include "scheduler/worker_pool.hh"
#include "sim/fs/known_issues.hh"

using namespace g5;
using namespace g5::art;

int
main(int argc, char **argv)
{
    std::string cpu = argc > 1 ? argv[1] : "o3";
    std::string boot = argc > 2 ? argv[2] : "init";

    setQuiet(true); // failures are expected data here
    // The on-disk database is what makes the sweep resumable: the
    // journal (and every finished run document) survives the process.
    std::string db_dir =
        "/tmp/g5art_boot_sweep_db_" + cpu + "_" + boot;
    Workspace ws("/tmp/g5art_boot_sweep", db_dir);
    auto gem5 = ws.gem5Binary("20.1.0.4");
    auto disk = ws.disk("boot-exit", resources::buildBootExitImage());
    auto script = ws.runScript("run_exit.py", "boot-exit run script");

    std::map<std::string, Workspace::Item> kernels;
    for (const auto &v : sim::fs::fig8Kernels())
        kernels.emplace(v, ws.kernel(v));

    std::vector<Gem5Run> runs;
    for (const char *mem : {"classic", "MI_example", "MESI_Two_Level"}) {
        for (int cores : {1, 2, 4, 8}) {
            for (const auto &kv : kernels) {
                Json params = Json::object();
                params["cpu"] = cpu;
                params["num_cpus"] = cores;
                params["mem_system"] = mem;
                params["boot_type"] = boot;
                params["max_ticks"] = std::int64_t(200'000'000'000);
                std::string name = std::string(mem) + "-" +
                                   std::to_string(cores) + "-" + kv.first;
                runs.push_back(Gem5Run::createFSRun(
                    ws.adb(), name, gem5.path, script.path,
                    ws.outdir(name), gem5.artifact, gem5.repoArtifact,
                    script.repoArtifact, kv.second.path, disk.path,
                    kv.second.artifact, disk.artifact, params, 600.0));
            }
        }
    }

    Tasks tasks(ws.adb()); // 0 workers = one per hardware thread
    SweepJournal sweep(ws.adb(), "boot-" + cpu + "-" + boot);
    sweep.submit(tasks, runs);
    tasks.waitAll();
    ws.adb().db().save();
    setQuiet(false);

    // With G5_WORKERS set the cells simulated in forked worker
    // processes under heartbeat leases (SIGKILL one mid-sweep: the run
    // retries and the census below still completes).
    if (auto pool = tasks.workerPool()) {
        Json ps = pool->summary();
        std::printf("worker cluster: %lld processes, %lld lost/%lld "
                    "respawned, %lld lease expiries, %.1f MB IPC\n\n",
                    static_cast<long long>(ps.getInt("live")),
                    static_cast<long long>(ps.getInt("lost")),
                    static_cast<long long>(ps.getInt("respawned")),
                    static_cast<long long>(ps.getInt("leaseExpiries")),
                    double(ps.getInt("ipcBytes")) / (1024.0 * 1024.0));
    }

    if (sweep.skipped() > 0)
        std::printf("resumed: %zu of %zu runs already had terminal "
                    "results and were skipped\n\n",
                    sweep.skipped(), runs.size());

    std::printf("%s, boot type '%s', gem5 %s:\n\n", cpu.c_str(),
                boot.c_str(), "20.1.0.4");
    std::printf("%-16s %-6s", "memory", "cores");
    for (const auto &kv : kernels)
        std::printf(" %-12s", kv.first.c_str());
    std::printf("\n");
    for (const char *mem : {"classic", "MI_example", "MESI_Two_Level"}) {
        for (int cores : {1, 2, 4, 8}) {
            std::printf("%-16s %-6d", mem, cores);
            for (const auto &kv : kernels) {
                std::string name = std::string(mem) + "-" +
                                   std::to_string(cores) + "-" + kv.first;
                Json doc = ws.adb().runs().findOne(
                    Json::object({{"name", Json(name)}}));
                std::printf(" %-12s",
                            runOutcomeName(Gem5Run::classify(doc)));
            }
            std::printf("\n");
        }
    }
    std::printf("\nA single misconfigured run could waste engineering "
                "effort on a phantom bug;\nwith every run archived, "
                "the failure census above is reproducible — and a\n"
                "killed sweep resumes from its journal instead of "
                "starting over.\n");
    return 0;
}
