/**
 * @file
 * Quickstart: the complete g5art protocol from Fig 2 in one file.
 *
 *   1. register artifacts (simulator binary, kernel, disk image, run
 *      script) — each with its provenance and dependency DAG;
 *   2. create a run object referencing those artifacts (createFSRun);
 *   3. execute it through the task layer;
 *   4. query the database for the archived results.
 *
 * Build & run:  ./build/examples/example_quickstart [workdir]
 */

#include <cstdio>

#include "art/tasks.hh"
#include "art/workspace.hh"
#include "resources/catalog.hh"

using namespace g5;
using namespace g5::art;

int
main(int argc, char **argv)
{
    std::string root = argc > 1 ? argv[1] : "/tmp/g5art_quickstart";

    // ------------------------------------------------------------------
    // 1. A workspace materializes the experiment's inputs and registers
    //    each as an artifact (steps 1-2 of Fig 2).
    // ------------------------------------------------------------------
    Workspace ws(root);
    auto gem5 = ws.gem5Binary("20.1.0.4", "X86");
    auto kernel = ws.kernel("5.4.49");
    auto disk = ws.disk("boot-exit", resources::buildBootExitImage());
    auto script = ws.runScript("run_exit.py",
                               "boots the kernel, then exits via m5");

    std::printf("registered artifacts:\n");
    for (const auto &item : {gem5, kernel, disk, script}) {
        std::printf("  %-24s %-12s md5/rev %s\n",
                    item.artifact.name().c_str(),
                    item.artifact.typ().c_str(),
                    item.artifact.hash().c_str());
    }

    // ------------------------------------------------------------------
    // 2. Create the run object (step 3): one unique data point.
    // ------------------------------------------------------------------
    Json params = Json::object();
    params["cpu"] = "timing";
    params["num_cpus"] = 1;
    params["mem_system"] = "classic";
    params["boot_type"] = "init";

    Gem5Run run = Gem5Run::createFSRun(
        ws.adb(), "quickstart-boot", gem5.path, script.path,
        ws.outdir("quickstart-boot"), gem5.artifact, gem5.repoArtifact,
        script.repoArtifact, kernel.path, disk.path, kernel.artifact,
        disk.artifact, params, /* timeout */ 15 * 60);

    // ------------------------------------------------------------------
    // 3. Execute through the task layer (steps 4-7).
    // ------------------------------------------------------------------
    Tasks tasks(ws.adb(), 1);
    tasks.applyAsync(run)->wait();

    // ------------------------------------------------------------------
    // 4. Query the database (step 8).
    // ------------------------------------------------------------------
    Json doc = ws.adb().runs().findOne(
        Json::object({{"name", Json("quickstart-boot")}}));
    std::printf("\nrun status:   %s\n", doc.getString("status").c_str());
    std::printf("exit cause:   %s\n", doc.getString("exitCause").c_str());
    std::printf("simulated:    %.3f ms (%lld instructions)\n",
                double(doc.getInt("simTicks")) / 1e9,
                (long long)doc.getInt("totalInsts"));
    std::printf("outputs:      %s/{stats.txt, system.terminal, "
                "results.json}\n",
                ws.outdir("quickstart-boot").c_str());

    // The run's inputs remain traceable forever:
    std::printf("\ninput artifacts of this run:\n");
    for (const auto &kv : doc.at("artifacts").asObject()) {
        Json art = ws.adb().artifacts().findOne(
            Json::object({{"hash", kv.second}}));
        std::printf("  %-14s -> %s (%s)\n", kv.first.c_str(),
                    kv.second.asString().c_str(),
                    art.isNull() ? "repo revision"
                                 : art.getString("type").c_str());
    }

    return doc.getString("status") == "SUCCESS" ? 0 : 1;
}
