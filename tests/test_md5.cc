/** @file Unit tests for the MD5 implementation against RFC 1321 vectors. */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/md5.hh"

using g5::Md5;

TEST(Md5, Rfc1321Vectors)
{
    // The canonical test suite from RFC 1321 appendix A.5.
    EXPECT_EQ(Md5::hashString(""), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(Md5::hashString("a"), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(Md5::hashString("abc"), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(Md5::hashString("message digest"),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(Md5::hashString("abcdefghijklmnopqrstuvwxyz"),
              "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(Md5::hashString("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmn"
                              "opqrstuvwxyz0123456789"),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(Md5::hashString("1234567890123456789012345678901234567890"
                              "1234567890123456789012345678901234567890"),
              "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot)
{
    std::string payload(100'000, 'x');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = char('a' + (i * 31) % 26);

    Md5 h;
    // Feed in awkward chunk sizes straddling block boundaries.
    std::size_t pos = 0;
    std::size_t chunk = 1;
    while (pos < payload.size()) {
        std::size_t take = std::min(chunk, payload.size() - pos);
        h.update(payload.data() + pos, take);
        pos += take;
        chunk = (chunk * 7 + 3) % 200 + 1;
    }
    EXPECT_EQ(h.hexDigest(), Md5::hashString(payload));
}

TEST(Md5, BoundaryLengths)
{
    // Lengths around the 64-byte block and 56-byte padding boundaries.
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
        std::string s(len, 'q');
        Md5 a;
        a.update(s);
        Md5 b;
        for (char c : s)
            b.update(&c, 1);
        EXPECT_EQ(a.hexDigest(), b.hexDigest()) << "len=" << len;
    }
}

TEST(Md5, DigestTwiceIsAnError)
{
    Md5 h;
    h.update("abc");
    h.hexDigest();
    EXPECT_THROW(h.hexDigest(), g5::PanicError);
}

TEST(Md5, HashFileMissingIsFatal)
{
    EXPECT_THROW(Md5::hashFile("/nonexistent/path/xyz"), g5::FatalError);
}
