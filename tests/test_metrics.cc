/** @file Tests for the process-wide metrics registry and the
 *  observability counters the db/scheduler/art layers feed into it. */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "art/sweep.hh"
#include "art/tasks.hh"
#include "art/workspace.hh"
#include "base/faultinject.hh"
#include "base/logging.hh"
#include "base/metrics.hh"
#include "resources/catalog.hh"
#include "scheduler/retry.hh"

using namespace g5;
using namespace g5::art;

namespace
{

std::string
freshDir(const std::string &name)
{
    auto p = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(p);
    return p.string();
}

Json
bootParams(const std::string &cpu, int cores, const std::string &mem)
{
    Json p = Json::object();
    p["cpu"] = cpu;
    p["num_cpus"] = cores;
    p["mem_system"] = mem;
    p["boot_type"] = "init";
    return p;
}

/** Quiet logging + clean cache/fault env for the whole test. */
class TestGuard
{
  public:
    TestGuard()
    {
        setQuiet(true);
        unsetenv("G5ART_NO_CACHE");
        fault::reset();
    }
    ~TestGuard()
    {
        fault::reset();
        setQuiet(false);
    }
};

/** One workspace with the boot-exit resources materialized. */
struct Fixture
{
    /** @param db_dir non-empty = on-disk database (WAL persistence). */
    explicit Fixture(const std::string &root,
                     const std::string &db_dir = "")
        : ws(root, db_dir), binary(ws.gem5Binary("20.1.0.4")),
          kernel(ws.kernel("5.4.49")),
          disk(ws.disk("boot-exit", resources::buildBootExitImage())),
          script(ws.runScript("run_exit.py", "boot-exit run script"))
    {}

    Gem5Run
    makeRun(const std::string &name, const Json &params,
            double timeout = 60.0)
    {
        return Gem5Run::createFSRun(
            ws.adb(), name, binary.path, script.path, ws.outdir(name),
            binary.artifact, binary.repoArtifact, script.repoArtifact,
            kernel.path, disk.path, kernel.artifact, disk.artifact,
            params, timeout);
    }

    Workspace ws;
    Workspace::Item binary, kernel, disk, script;
};

} // anonymous namespace

TEST(Metrics, CounterIncrementsAndResets)
{
    metrics::Counter &c = metrics::counter("test.metrics.counter");
    std::int64_t before = c.value();
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), before + 42);
    // The registry hands back the same object for the same name.
    EXPECT_EQ(&metrics::counter("test.metrics.counter"), &c);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, GaugeSetsAndAdjusts)
{
    metrics::Gauge &g = metrics::gauge("test.metrics.gauge");
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.add(-3);
    EXPECT_EQ(g.value(), 4);
}

TEST(Metrics, CountersAreRaceFreeUnderContention)
{
    metrics::Counter &c = metrics::counter("test.metrics.contended");
    c.reset();
    constexpr int threads = 4, per = 10'000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&c] {
            for (int i = 0; i < per; ++i)
                c.inc();
        });
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(c.value(), std::int64_t(threads) * per);
}

TEST(Metrics, HistogramBucketsCumulativeAndMeanExact)
{
    metrics::Histogram &h =
        metrics::histogram("test.metrics.hist", {1.0, 10.0, 100.0});
    h.reset();
    for (double v : {0.5, 0.5, 5.0, 50.0, 500.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 5);
    EXPECT_NEAR(h.sum(), 556.0, 1e-6);
    Json snap = h.snapshot();
    EXPECT_EQ(snap.getInt("count"), 5);
    EXPECT_NEAR(snap.getDouble("mean"), 556.0 / 5, 1e-9);
    const Json &buckets = snap.at("buckets");
    EXPECT_EQ(buckets.getInt("<=1.0"), 2);   // cumulative counts
    EXPECT_EQ(buckets.getInt("<=10.0"), 3);
    EXPECT_EQ(buckets.getInt("<=100.0"), 4);
    EXPECT_EQ(buckets.getInt("+Inf"), 5);
}

TEST(Metrics, HistogramClampsNegativeAndDropsNaN)
{
    metrics::Histogram &h =
        metrics::histogram("test.metrics.clamp", {1.0, 10.0});
    h.reset();
    h.observe(std::numeric_limits<double>::quiet_NaN()); // dropped
    h.observe(-5.0);                                     // clamps to 0
    h.observe(0.5);
    EXPECT_EQ(h.count(), 2);
    EXPECT_NEAR(h.sum(), 0.5, 1e-6); // the clamp adds 0, not -5
    Json snap = h.snapshot();
    EXPECT_EQ(snap.at("buckets").getInt("<=1.0"), 2);
    EXPECT_EQ(snap.at("buckets").getInt("+Inf"), 2);
    // mean stays finite and non-negative even after bad inputs
    EXPECT_GE(snap.getDouble("mean"), 0.0);
}

TEST(Metrics, SnapshotIsDeterministicAndResetAllZeroes)
{
    metrics::counter("test.snap.a").inc(3);
    metrics::gauge("test.snap.b").set(-1);
    Json one = metrics::snapshot();
    Json two = metrics::snapshot();
    // Byte-stable: sorted keys, identical serialization.
    EXPECT_EQ(one.dump(), two.dump());
    EXPECT_EQ(one.getInt("test.snap.a"), 3);
    EXPECT_EQ(one.getInt("test.snap.b"), -1);

    metrics::resetAll();
    Json zeroed = metrics::snapshot();
    EXPECT_EQ(zeroed.getInt("test.snap.a"), 0);
    EXPECT_EQ(zeroed.getInt("test.snap.b"), 0);
    // Registrations survive a reset.
    EXPECT_TRUE(zeroed.contains("test.snap.a"));
}

TEST(MetricsSweep, DeterministicCountersForFixedSweep)
{
    TestGuard guard;
    std::string root = freshDir("g5_metrics_sweep_db");
    Fixture fx(root, root + "/db"); // on-disk: exercises WAL appends

    metrics::Counter &hits = metrics::counter("art.runCache.hits");
    metrics::Counter &misses = metrics::counter("art.runCache.misses");
    metrics::Counter &retries =
        metrics::counter("scheduler.tasks.retries");
    metrics::Counter &wal_bytes =
        metrics::counter("db.wal.bytesAppended");
    metrics::Counter &run_inserts = metrics::counter("db.runs.inserts");
    std::int64_t hits0 = hits.value(), misses0 = misses.value();
    std::int64_t retries0 = retries.value();
    std::int64_t wal0 = wal_bytes.value();
    std::int64_t inserts0 = run_inserts.value();

    // A fixed fig8-style slice: 4 configurations, run twice. The first
    // wave misses the run cache 4 times; the second wave hits 4 times.
    std::vector<Json> grid;
    for (int cores : {1, 2, 4, 8})
        grid.push_back(bootParams("kvm", cores, "classic"));

    Tasks tasks(fx.ws.adb(), 0, Tasks::Backend::Inline);
    for (int wave = 0; wave < 2; ++wave) {
        std::vector<Gem5Run> runs;
        for (std::size_t i = 0; i < grid.size(); ++i)
            runs.push_back(fx.makeRun("w" + std::to_string(wave) + "-" +
                                          std::to_string(i),
                                      grid[i]));
        std::vector<scheduler::TaskFuturePtr> futs;
        for (Gem5Run &run : runs)
            futs.push_back(tasks.applyAsync(run));
        for (auto &f : futs)
            f->wait();
    }

    EXPECT_EQ(misses.value() - misses0, 4);
    EXPECT_EQ(hits.value() - hits0, 4);
    EXPECT_EQ(retries.value() - retries0, 0);
    EXPECT_EQ(run_inserts.value() - inserts0, 8);
    // The on-disk database appended every journal/run mutation to WALs.
    fx.ws.adb().db().save();
    EXPECT_GT(wal_bytes.value() - wal0, 0);
}

TEST(MetricsSweep, RetryCounterTracksInjectedTransientFaults)
{
    TestGuard guard;
    Fixture fx(freshDir("g5_metrics_retry_db"));
    metrics::Counter &retries =
        metrics::counter("scheduler.tasks.retries");
    std::int64_t before = retries.value();

    // First attempt dies from an injected host fault; the retry runs
    // clean — exactly one retry is scheduled.
    fault::armAfter("run.execute", 0);
    Tasks tasks(fx.ws.adb(), 0, Tasks::Backend::Inline);
    tasks.setRetryPolicy(scheduler::RetryPolicy::transientFaults(2));
    auto fut =
        tasks.applyAsync(fx.makeRun("crashy", bootParams("kvm", 1,
                                                         "classic")));
    fut->wait();
    EXPECT_EQ(retries.value() - before, 1);
}

TEST(MetricsSweep, SweepArchivesMetricsSnapshotOnCompletion)
{
    TestGuard guard;
    Fixture fx(freshDir("g5_metrics_archive_db"));

    std::vector<Gem5Run> runs;
    for (int cores : {1, 2})
        runs.push_back(fx.makeRun("kvm-" + std::to_string(cores),
                                  bootParams("kvm", cores, "classic")));

    Tasks tasks(fx.ws.adb(), 0, Tasks::Backend::Inline);
    SweepJournal sweep(fx.ws.adb(), "metrics-archive");
    sweep.submit(tasks, runs);
    tasks.waitAll();

    // The completed sweep archived a process metrics snapshot...
    Json doc = fx.ws.adb().db().collection("sweepMetrics")
                   .findById("metrics-archive");
    ASSERT_FALSE(doc.isNull());
    const Json &snap = doc.at("metricsSnapshot");
    EXPECT_GE(snap.getInt("db.runs.inserts"), 2);
    EXPECT_TRUE(snap.contains("art.runCache.misses"));
    // ...without perturbing the journal census.
    Json census = sweep.census();
    EXPECT_EQ(census.getInt("total"), 2);
    EXPECT_EQ(census.getInt("done"), 2);
}

TEST(MetricsSweep, RunReportAttachesMetricsSnapshot)
{
    TestGuard guard;
    Fixture fx(freshDir("g5_metrics_report_db"));
    Gem5Run run = fx.makeRun("solo", bootParams("kvm", 1, "classic"));
    run.execute(fx.ws.adb());
    Json doc = run.report(fx.ws.adb());
    ASSERT_TRUE(doc.contains("metricsSnapshot"));
    EXPECT_GE(doc.at("metricsSnapshot").getInt("db.runs.inserts"), 1);
    EXPECT_EQ(doc.getString("status"), "SUCCESS");
}

TEST(Metrics, TaskQueueSummaryCarriesLiveMetrics)
{
    scheduler::TaskQueue queue(2);
    std::atomic<bool> release{false};
    auto fut = queue.applyAsync("probe", [&](scheduler::CancelToken &) {
        while (!release.load())
            std::this_thread::yield();
        return Json();
    });
    Json summary = queue.summary();
    ASSERT_TRUE(summary.contains("metrics"));
    const Json &m = summary.at("metrics");
    EXPECT_EQ(m.getInt("workersLive"), 2);
    EXPECT_GE(m.getInt("workersBusy"), 0);
    EXPECT_GE(m.getDouble("utilization"), 0.0);
    EXPECT_LE(m.getDouble("utilization"), 1.0);
    EXPECT_TRUE(m.contains("queueDepth"));
    EXPECT_TRUE(m.contains("taskSeconds"));
    release.store(true);
    fut->wait();
    Json after = queue.summary();
    EXPECT_GE(after.at("metrics").at("taskSeconds").getInt("count"), 1);
}
