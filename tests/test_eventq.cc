/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "sim/eventq.hh"

using g5::Tick;
using g5::sim::EventQueue;
using g5::sim::ExitEvent;

TEST(EventQueue, OrdersByTickThenPriorityThenSeq)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(50, [&] { order.push_back(2); });
    eq.schedule(100, [&] { order.push_back(3); },
                EventQueue::memRespPri); // lower priority value first
    eq.schedule(50, [&] { order.push_back(4); });

    ExitEvent ev = eq.run();
    EXPECT_EQ(ev.cause, "event queue drained");
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 2); // tick 50, insertion order
    EXPECT_EQ(order[1], 4);
    EXPECT_EQ(order[2], 3); // tick 100, memRespPri beats default
    EXPECT_EQ(order[3], 1);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&eq] {
        EXPECT_THROW(eq.schedule(5, [] {}), g5::PanicError);
    });
    eq.run();
}

TEST(EventQueue, ExitStopsTheLoop)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] {
        ++ran;
        eq.exitSimLoop("m5_exit instruction encountered", 0);
    });
    eq.schedule(20, [&] { ++ran; });

    ExitEvent ev = eq.run();
    EXPECT_EQ(ev.cause, "m5_exit instruction encountered");
    EXPECT_FALSE(ev.limitReached);
    EXPECT_EQ(ran, 1);
    // The loop can resume with the remaining events afterwards.
    ev = eq.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, TickLimitReported)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(1000, [&] { ++ran; });
    ExitEvent ev = eq.run(500);
    EXPECT_TRUE(ev.limitReached);
    EXPECT_EQ(ev.cause, "simulate() limit reached");
    EXPECT_EQ(ran, 0);
    EXPECT_EQ(eq.curTick(), 500u);
    // Event still pending; raising the limit runs it.
    ev = eq.run(2000);
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    int ran = 0;
    auto id = eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    eq.deschedule(id);
    eq.run();
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, RecurringEventChains)
{
    EventQueue eq;
    int fires = 0;
    std::function<void()> rearm = [&] {
        if (++fires < 5)
            eq.schedule(eq.curTick() + 100, rearm);
    };
    eq.schedule(0, rearm);
    eq.run();
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.curTick(), 400u);
}

TEST(EventQueue, DescheduleAfterFireIsHarmless)
{
    EventQueue eq;
    int ran = 0;
    auto id = eq.schedule(10, [&] { ++ran; });
    eq.run();
    EXPECT_EQ(ran, 1);

    // The slot may be recycled by a new event; a stale id must neither
    // crash nor kill the new occupant (generation mismatch).
    auto id2 = eq.schedule(20, [&] { ++ran; });
    eq.deschedule(id);
    eq.deschedule(id); // double-cancel of a fired id: still a no-op
    eq.run();
    EXPECT_EQ(ran, 2);
    (void)id2;
}

TEST(EventQueue, FarHorizonEventsInterleaveWithNearOnes)
{
    // Events far beyond the calendar ring (timer wakeups, watchdogs)
    // take the far-heap path and must migrate back in order.
    EventQueue eq;
    std::vector<int> order;
    constexpr Tick far = Tick(1) << 32; // way past the ring horizon
    eq.schedule(far + 5, [&] { order.push_back(3); });
    eq.schedule(7, [&] { order.push_back(1); });
    auto dead = eq.schedule(far + 1, [&] { order.push_back(99); });
    eq.schedule(far, [&] { order.push_back(2); });
    eq.deschedule(dead); // cancelled while still in the far heap
    eq.schedule(far * 2, [&] { order.push_back(4); });

    eq.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.curTick(), far * 2);
}

TEST(EventQueue, SameTickAppendsDuringDrainRunThisTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] {
        order.push_back(1);
        // Appended at the tick being drained: must still fire now,
        // after already-pending same-tick events.
        eq.schedule(50, [&] { order.push_back(3); });
    });
    eq.schedule(50, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 50u);
}

TEST(EventQueue, DescheduleHeavyWorkloadHasBoundedFootprint)
{
    // Regression for the former tombstone design: a cancel-heavy
    // workload (timeout timers that almost never fire) must recycle
    // records and keys instead of accumulating per-cancel state.
    EventQueue eq;
    int fired = 0;

    auto churn = [&](int rounds) {
        for (int i = 0; i < rounds; ++i) {
            auto a = eq.schedule(eq.curTick() + 100, [&] { ++fired; });
            auto b = eq.schedule(eq.curTick() + 200, [&] { ++fired; });
            eq.deschedule(a);
            eq.deschedule(b);
            if (i % 16 == 0) { // keep time moving like a real run
                eq.schedule(eq.curTick() + 1, [] {});
                eq.run();
            }
        }
    };

    // One full round reaches steady state: the purge policy caps stale
    // keys at max(1024, 4 x live), so bucket/slab capacities plateau.
    churn(500'000);
    const std::size_t warm = eq.footprintBytes();
    churn(500'000);
    const std::size_t after = eq.footprintBytes();

    EXPECT_EQ(eq.size(), 0u);
    // No per-cancel growth: another 1M cancels must not move the
    // footprint. A tombstone-style leak (~24 B per cancel) would add
    // ~24 MB here; allow only rounding slack.
    EXPECT_LE(after, warm + (warm / 2) + 4096);
}
