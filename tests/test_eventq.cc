/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "sim/eventq.hh"

using g5::Tick;
using g5::sim::EventQueue;
using g5::sim::ExitEvent;

TEST(EventQueue, OrdersByTickThenPriorityThenSeq)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(50, [&] { order.push_back(2); });
    eq.schedule(100, [&] { order.push_back(3); },
                EventQueue::memRespPri); // lower priority value first
    eq.schedule(50, [&] { order.push_back(4); });

    ExitEvent ev = eq.run();
    EXPECT_EQ(ev.cause, "event queue drained");
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 2); // tick 50, insertion order
    EXPECT_EQ(order[1], 4);
    EXPECT_EQ(order[2], 3); // tick 100, memRespPri beats default
    EXPECT_EQ(order[3], 1);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&eq] {
        EXPECT_THROW(eq.schedule(5, [] {}), g5::PanicError);
    });
    eq.run();
}

TEST(EventQueue, ExitStopsTheLoop)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] {
        ++ran;
        eq.exitSimLoop("m5_exit instruction encountered", 0);
    });
    eq.schedule(20, [&] { ++ran; });

    ExitEvent ev = eq.run();
    EXPECT_EQ(ev.cause, "m5_exit instruction encountered");
    EXPECT_FALSE(ev.limitReached);
    EXPECT_EQ(ran, 1);
    // The loop can resume with the remaining events afterwards.
    ev = eq.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, TickLimitReported)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(1000, [&] { ++ran; });
    ExitEvent ev = eq.run(500);
    EXPECT_TRUE(ev.limitReached);
    EXPECT_EQ(ev.cause, "simulate() limit reached");
    EXPECT_EQ(ran, 0);
    EXPECT_EQ(eq.curTick(), 500u);
    // Event still pending; raising the limit runs it.
    ev = eq.run(2000);
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    int ran = 0;
    auto id = eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    eq.deschedule(id);
    eq.run();
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, RecurringEventChains)
{
    EventQueue eq;
    int fires = 0;
    std::function<void()> rearm = [&] {
        if (++fires < 5)
            eq.schedule(eq.curTick() + 100, rearm);
    };
    eq.schedule(0, rearm);
    eq.run();
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.curTick(), 400u);
}
