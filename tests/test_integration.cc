/** @file Cross-module integration: persistence, provenance queries,
 *  and the paper's reproducibility claims end-to-end. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "art/tasks.hh"
#include "art/workspace.hh"
#include "base/logging.hh"
#include "resources/catalog.hh"
#include "sim/fs/fs_system.hh"

using namespace g5;
using namespace g5::art;

namespace stdfs = std::filesystem;

namespace
{

std::string
freshDir(const std::string &tag)
{
    auto p = stdfs::temp_directory_path() / ("g5_integ_" + tag);
    stdfs::remove_all(p);
    return p.string();
}

} // anonymous namespace

TEST(Integration, ResultsSurviveDatabaseReopen)
{
    std::string db_dir = freshDir("reopen");
    std::string run_id;
    std::string disk_hash;

    {
        Workspace ws(freshDir("reopen_ws"), db_dir);
        auto binary = ws.gem5Binary();
        auto kernel = ws.kernel("5.4.49");
        auto disk =
            ws.disk("boot-exit", resources::buildBootExitImage());
        auto script = ws.runScript("run_exit.py", "boot-exit");
        disk_hash = disk.artifact.hash();

        Json params = Json::object();
        params["cpu"] = "kvm";
        params["num_cpus"] = 1;
        params["mem_system"] = "classic";
        params["boot_type"] = "init";
        Gem5Run run = Gem5Run::createFSRun(
            ws.adb(), "persisted-run", binary.path, script.path,
            ws.outdir("persisted-run"), binary.artifact,
            binary.repoArtifact, script.repoArtifact, kernel.path,
            disk.path, kernel.artifact, disk.artifact, params, 60.0);
        run_id = run.id();
        run.execute(ws.adb());
        ws.adb().db().save();
    }

    // A new process (modeled: a fresh Database) sees everything.
    auto database = std::make_shared<db::Database>(db_dir);
    ArtifactDb adb(database);
    Json doc = adb.runs().findById(run_id);
    ASSERT_FALSE(doc.isNull());
    EXPECT_EQ(doc.getString("status"), "SUCCESS");
    EXPECT_GT(doc.getInt("simTicks"), 0);

    // The results blob is retrievable and parses.
    Json results =
        Json::parse(database->getBlob(doc.getString("resultsBlob")));
    EXPECT_TRUE(results.getBool("success"));

    // The disk image can be recovered from the blob store by its hash
    // and still parses as an image — the paper's "any resource related
    // to a particular run can be recovered for reproduction".
    std::string img_text = database->getBlob(disk_hash);
    auto img = sim::fs::DiskImage::deserialize(img_text);
    EXPECT_TRUE(img->hasFile("/etc/os-release"));
    stdfs::remove_all(db_dir);
}

TEST(Integration, RunsAreQueryableByInputArtifact)
{
    Workspace ws(freshDir("query_ws"));
    auto binary = ws.gem5Binary();
    auto k1 = ws.kernel("4.19.83");
    auto k2 = ws.kernel("5.4.49");
    auto disk = ws.disk("boot-exit", resources::buildBootExitImage());
    auto script = ws.runScript("run_exit.py", "boot-exit");

    Tasks tasks(ws.adb(), 2);
    for (const auto &kern : {k1, k2}) {
        for (const char *cpu : {"kvm", "atomic"}) {
            Json params = Json::object();
            params["cpu"] = cpu;
            params["num_cpus"] = 1;
            params["mem_system"] = "classic";
            params["boot_type"] = "init";
            std::string name =
                std::string(cpu) + "-" + kern.artifact.name();
            tasks.applyAsync(Gem5Run::createFSRun(
                ws.adb(), name, binary.path, script.path,
                ws.outdir(name), binary.artifact, binary.repoArtifact,
                script.repoArtifact, kern.path, disk.path,
                kern.artifact, disk.artifact, params, 60.0));
        }
    }
    tasks.waitAll();

    // Which runs used kernel 4.19.83? (Mongo-style provenance query.)
    Json q = Json::object();
    q["artifacts.linuxBinary"] = k1.artifact.hash();
    auto runs = ws.adb().runs().find(q);
    EXPECT_EQ(runs.size(), 2u);
    for (const auto &doc : runs)
        EXPECT_NE(doc.getString("name").find("4.19.83"),
                  std::string::npos);

    // Which runs used the kvm CPU and succeeded?
    Json q2 = Json::object();
    q2["params.cpu"] = "kvm";
    q2["status"] = "SUCCESS";
    EXPECT_EQ(ws.adb().runs().count(q2), 2u);
}

TEST(Integration, IdenticalConfigsProduceIdenticalTimings)
{
    // Determinism is the backbone of the reproduction: same inputs,
    // same simulated outcome, bit for bit.
    sim::fs::FsConfig cfg;
    cfg.cpuType = sim::CpuType::TimingSimple;
    cfg.numCpus = 2;
    cfg.memSystem = "MESI_Two_Level";
    cfg.kernelVersion = "4.19.83";
    cfg.bootType = sim::fs::BootType::Systemd;
    cfg.simVersion = "";

    sim::fs::FsSystem a(cfg);
    sim::fs::FsSystem b(cfg);
    auto ra = a.run(2'000'000'000'000ULL);
    auto rb = b.run(2'000'000'000'000ULL);
    EXPECT_EQ(ra.simTicks, rb.simTicks);
    EXPECT_EQ(ra.totalInsts, rb.totalInsts);
    EXPECT_EQ(ra.consoleText, rb.consoleText);
    EXPECT_EQ(ra.stats.dump(), rb.stats.dump());
}

TEST(Integration, StatsFileLooksLikeGem5Output)
{
    Workspace ws(freshDir("stats_ws"));
    auto binary = ws.gem5Binary();
    auto kernel = ws.kernel("5.4.49");
    auto disk = ws.disk("boot-exit", resources::buildBootExitImage());
    auto script = ws.runScript("run_exit.py", "boot-exit");

    Json params = Json::object();
    params["cpu"] = "timing";
    params["num_cpus"] = 1;
    params["mem_system"] = "classic";
    params["boot_type"] = "init";
    Gem5Run run = Gem5Run::createFSRun(
        ws.adb(), "statsrun", binary.path, script.path,
        ws.outdir("statsrun"), binary.artifact, binary.repoArtifact,
        script.repoArtifact, kernel.path, disk.path, kernel.artifact,
        disk.artifact, params, 60.0);
    run.execute(ws.adb());

    std::ifstream stats(ws.outdir("statsrun") + "/stats.txt");
    ASSERT_TRUE(stats.good());
    std::string text((std::istreambuf_iterator<char>(stats)),
                     std::istreambuf_iterator<char>());
    // gem5-flavoured lines: dotted stat paths with '#' descriptions.
    EXPECT_NE(text.find("system.cpu0.numInsts"), std::string::npos);
    EXPECT_NE(text.find("system.mem.l1_misses"), std::string::npos);
    EXPECT_NE(text.find("system.os.numSyscalls"), std::string::npos);
    EXPECT_NE(text.find("#"), std::string::npos);

    std::ifstream term(ws.outdir("statsrun") + "/system.terminal");
    std::string console((std::istreambuf_iterator<char>(term)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(console.find("Booting Linux version 5.4.49"),
              std::string::npos);
}

TEST(Integration, WorkspaceItemsDeduplicateAcrossCalls)
{
    Workspace ws(freshDir("dedup_ws"));
    auto k1 = ws.kernel("4.19.83");
    auto k2 = ws.kernel("4.19.83");
    EXPECT_EQ(k1.artifact.id(), k2.artifact.id());
    auto d1 = ws.disk("img", resources::buildBootExitImage());
    auto d2 = ws.disk("img", resources::buildBootExitImage());
    EXPECT_EQ(d1.artifact.hash(), d2.artifact.hash());
    // Exactly one artifact per unique content in the database.
    EXPECT_EQ(ws.adb().artifacts().count(
                  Json::object({{"type", Json("kernel")}})),
              1u);
}
