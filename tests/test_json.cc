/** @file Unit tests for the JSON DOM, parser, and serializer. */

#include <gtest/gtest.h>

#include "base/json.hh"

using g5::Json;
using g5::JsonError;

TEST(Json, ScalarRoundTrips)
{
    EXPECT_EQ(Json::parse("null").type(), Json::Type::Null);
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_FALSE(Json::parse("false").asBool());
    EXPECT_EQ(Json::parse("42").asInt(), 42);
    EXPECT_EQ(Json::parse("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(Json::parse("3.25").asDouble(), 3.25);
    EXPECT_DOUBLE_EQ(Json::parse("1e3").asDouble(), 1000.0);
    EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, IntVsDoubleDetection)
{
    EXPECT_TRUE(Json::parse("5").isInt());
    EXPECT_TRUE(Json::parse("5.0").isDouble());
    EXPECT_TRUE(Json::parse("5e0").isDouble());
    // Overflowing int64 falls back to double.
    EXPECT_TRUE(Json::parse("99999999999999999999999").isDouble());
}

TEST(Json, StringEscapes)
{
    Json j = Json::parse(R"("a\"b\\c\nd\teA")");
    EXPECT_EQ(j.asString(), "a\"b\\c\nd\teA");
    // Serialization escapes control characters back.
    Json s("line1\nline2\t\"x\"");
    Json round = Json::parse(s.dump());
    EXPECT_EQ(round.asString(), s.asString());
}

TEST(Json, NestedDocumentRoundTrip)
{
    const std::string text = R"({
        "name": "gem5",
        "versions": [20.1, 21, null],
        "git": {"url": "https://gem5.googlesource.com", "hash": "440f0b"},
        "flags": {"fs": true, "se": false}
    })";
    Json doc = Json::parse(text);
    EXPECT_EQ(doc.getString("name"), "gem5");
    EXPECT_EQ(doc.at("versions").size(), 3u);
    EXPECT_EQ(doc.find("git.hash")->asString(), "440f0b");
    EXPECT_TRUE(doc.find("flags.fs")->asBool());
    EXPECT_EQ(doc.find("flags.missing"), nullptr);

    // compact and pretty forms parse back to the same document
    EXPECT_EQ(Json::parse(doc.dump()), doc);
    EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Json, ObjectKeysAreSortedDeterministically)
{
    Json a = Json::object();
    a["zeta"] = 1;
    a["alpha"] = 2;
    Json b = Json::object();
    b["alpha"] = 2;
    b["zeta"] = 1;
    EXPECT_EQ(a.dump(), b.dump());
    EXPECT_LT(a.dump().find("alpha"), a.dump().find("zeta"));
}

TEST(Json, NumericCrossTypeEquality)
{
    EXPECT_EQ(Json(3), Json(3.0));
    EXPECT_NE(Json(3), Json(3.5));
    EXPECT_NE(Json(3), Json("3"));
}

TEST(Json, ParseErrorsCarryOffsets)
{
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
    EXPECT_THROW(Json::parse("tru"), JsonError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
    EXPECT_THROW(Json::parse("1 2"), JsonError);
    try {
        Json::parse("[1, x]");
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
}

TEST(Json, TypeMismatchesThrow)
{
    Json j = Json::parse("{\"a\": [1,2]}");
    EXPECT_THROW(j.at("a").asString(), JsonError);
    EXPECT_THROW(j.at("b"), JsonError);
    EXPECT_THROW(j.at("a").at(std::size_t(5)), JsonError);
    EXPECT_THROW(Json(5).asArray(), JsonError);
}

TEST(Json, GettersWithDefaults)
{
    Json j = Json::parse("{\"s\":\"v\",\"i\":7,\"d\":1.5,\"b\":true}");
    EXPECT_EQ(j.getString("s"), "v");
    EXPECT_EQ(j.getString("missing", "dflt"), "dflt");
    EXPECT_EQ(j.getInt("i"), 7);
    EXPECT_EQ(j.getInt("missing", -1), -1);
    EXPECT_DOUBLE_EQ(j.getDouble("d"), 1.5);
    EXPECT_TRUE(j.getBool("b"));
    // Wrong-typed members fall back to the default too.
    EXPECT_EQ(j.getInt("s", 9), 9);
}

TEST(Json, AutoVivification)
{
    Json j; // null
    j["a"]["b"] = 1;
    EXPECT_EQ(j.find("a.b")->asInt(), 1);
    Json arr; // null
    arr.push(1);
    arr.push("two");
    EXPECT_EQ(arr.size(), 2u);
}

TEST(Json, DoubleFormattingSurvivesRoundTrip)
{
    for (double v : {0.1, 1.0 / 3.0, 1e-10, 123456789.123456789, -2.5}) {
        Json j(v);
        EXPECT_DOUBLE_EQ(Json::parse(j.dump()).asDouble(), v);
        EXPECT_TRUE(Json::parse(j.dump()).isDouble());
    }
}
