/** @file Tests for peripherals and miscellaneous sim glue. */

#include <gtest/gtest.h>

#include "art/tasks.hh"
#include "art/workspace.hh"
#include "base/logging.hh"
#include "resources/catalog.hh"
#include "sim/cpu/o3_cpu.hh"
#include "sim/fs/devices.hh"
#include "sim/fs/fs_system.hh"

using namespace g5;
using namespace g5::sim;
using namespace g5::sim::fs;

TEST(Terminal, CollectsLinesInOrder)
{
    Terminal term;
    EXPECT_EQ(term.numLines(), 0u);
    term.writeLine("first");
    term.writeLine("second");
    EXPECT_EQ(term.text(), "first\nsecond");
    EXPECT_TRUE(term.contains("irs"));
    EXPECT_FALSE(term.contains("third"));
    EXPECT_EQ(term.bytesWritten.value(), 13.0); // incl. newlines
}

TEST(DiskDevice, LatencyScalesWithTransferSize)
{
    DiskDevice disk;
    Tick small = disk.readLatency(1);
    Tick big = disk.readLatency(100'000);
    EXPECT_GT(big, small);
    EXPECT_GT(small, 0u); // seek dominates small reads
    EXPECT_EQ(disk.reads.value(), 2.0);
    EXPECT_EQ(disk.wordsRead.value(), 100'001.0);
    EXPECT_GT(disk.probeLatency(), 0u);
}

TEST(O3Stats, BranchesAndMispredictsAreCounted)
{
    FsConfig cfg;
    cfg.cpuType = CpuType::O3;
    cfg.numCpus = 1;
    cfg.memSystem = "classic";
    cfg.kernelVersion = "4.19.83";
    cfg.simVersion = "";
    FsSystem fs(cfg);
    SimResult r = fs.run(2'000'000'000'000ULL);
    ASSERT_TRUE(r.success());

    double branches = r.stats.find("cpu0.numBranches")->asDouble();
    double mispredicts = r.stats.find("cpu0.numMispredicts")->asDouble();
    EXPECT_GT(branches, 1000.0);
    EXPECT_GT(mispredicts, 0.0);
    // ~4% of taken branches mispredict; sanity-bound the rate.
    EXPECT_LT(mispredicts / branches, 0.10);
}

TEST(ArtTimeout, HungRunIsKilledByTheScheduler)
{
    // A livelocked run under a tiny host timeout: gem5art kills the job
    // and records TIMEOUT, exactly like the paper's 24-hour cap.
    setQuiet(true);
    art::Workspace ws("/tmp/g5art_timeout_test");
    auto binary = ws.gem5Binary("20.1.0.4");
    auto kernel = ws.kernel("4.19.83");
    auto disk =
        ws.disk("boot-exit", resources::buildBootExitImage());
    auto script = ws.runScript("run_exit.py", "boot-exit");

    Json params = Json::object();
    params["cpu"] = "o3";
    params["num_cpus"] = 4;
    params["mem_system"] = "MI_example"; // livelock census entry
    params["boot_type"] = "init";
    params["max_ticks"] = std::int64_t(1) << 62; // no tick limit

    art::Tasks tasks(ws.adb(), 1);
    auto fut = tasks.applyAsync(art::Gem5Run::createFSRun(
        ws.adb(), "hung-run", binary.path, script.path,
        ws.outdir("hung-run"), binary.artifact, binary.repoArtifact,
        script.repoArtifact, kernel.path, disk.path, kernel.artifact,
        disk.artifact, params, /* timeout seconds */ 0.3));
    fut->wait();
    setQuiet(false);

    EXPECT_EQ(fut->state(), scheduler::TaskState::Timeout);
    Json doc = ws.adb().runs().findOne(
        Json::object({{"name", Json("hung-run")}}));
    EXPECT_EQ(doc.getString("status"), "TIMEOUT");
    EXPECT_EQ(art::Gem5Run::classify(doc), art::RunOutcome::Timeout);
}

TEST(SimResult, RoiFallsBackToTotalTicks)
{
    SimResult r;
    r.simTicks = 500;
    EXPECT_EQ(r.roiTicks(), 500u);
    r.workBeginTick = 100;
    r.workEndTick = 400;
    EXPECT_EQ(r.roiTicks(), 300u);
    // Degenerate marks are ignored.
    r.workEndTick = 50;
    EXPECT_EQ(r.roiTicks(), 500u);
}

TEST(FsConfig, SignatureReflectsEveryKnob)
{
    FsConfig a;
    std::string base = a.signature();
    FsConfig b = a;
    b.numCpus = 8;
    EXPECT_NE(b.signature(), base);
    b = a;
    b.memSystem = "MI_example";
    EXPECT_NE(b.signature(), base);
    b = a;
    b.kernelVersion = "4.4.186";
    EXPECT_NE(b.signature(), base);
    b = a;
    b.simVersion = "";
    EXPECT_NE(b.signature(), base);
}
